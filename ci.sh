#!/usr/bin/env bash
# CI gate for the VIBNN reproduction. Later PRs must keep every step
# green; the first two lines are the repository's tier-1 verify.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --no-run

echo "==> cargo doc --workspace --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace (deny warnings)"
    cargo clippy --workspace -- -D warnings
else
    echo "==> NOTICE: clippy unavailable (offline toolchain); skipping lint step"
fi

echo "==> train-determinism suite (bit-identity at 1/2/4 threads)"
cargo test -q --test train_determinism

echo "==> lane-determinism suite (LANES contract vs single-chain oracle, all float paths)"
cargo test -q --test lane_determinism

echo "==> steady-state zero-allocation suite (StepArena contract)"
cargo test -q --test alloc_steady_state

echo "==> serve-determinism suite (engine == batched inference, any order/worker count)"
cargo test -q --test serve_determinism

echo "==> cluster-determinism suite (cluster == engine == batched, any replica count, hot swap)"
cargo test -q --test cluster_determinism

echo "==> online-determinism suite (full loop bit-identical across thread counts and kill/resume)"
cargo test -q --test online_determinism

echo "==> backend-determinism suite (quantized == historical path, cycle == ticked model, mixed-pool attribution)"
cargo test -q --test backend_determinism

echo "==> ingest protocol suite (fault injection over live sockets; skips itself if sockets are unavailable)"
cargo test -q --test ingest_protocol

echo "==> ingest determinism suite (wire == direct submit, lanes/deadlines; skips itself if sockets are unavailable)"
cargo test -q --test ingest_determinism

echo "==> sampler determinism suite (ExactN == pre-policy bits, EarlyExit invariant everywhere, typed abstentions)"
cargo test -q --test sampler_determinism

echo "==> VIBNN_SCALE=quick smoke run (table1 + machine-readable GRNG bench)"
VIBNN_SCALE=quick cargo run --release -p vibnn_bench --bin table1
VIBNN_SCALE=quick VIBNN_BENCH_OUT="target/BENCH_grng.json" \
    cargo run --release -p vibnn_bench --bin bench_grng

echo "==> VIBNN_SCALE=quick training-engine bench (machine-readable, asserts bit-identity)"
VIBNN_SCALE=quick VIBNN_BENCH_OUT="target/BENCH_train.json" \
    cargo run --release -p vibnn_bench --bin bench_train
for field in phase_seconds allocations_per_step; do
    grep -q "\"$field\"" target/BENCH_train.json \
        || { echo "FAIL: BENCH_train.json lacks the $field breakdown"; exit 1; }
done

echo "==> VIBNN_SCALE=quick serving bench (machine-readable, asserts serve == batched and ExactN == batched)"
VIBNN_SCALE=quick VIBNN_BENCH_OUT="target/BENCH_serve.json" \
    cargo run --release -p vibnn_bench --bin bench_serve
for field in samples_used_mean policy_speedup; do
    grep -q "\"$field\"" target/BENCH_serve.json \
        || { echo "FAIL: BENCH_serve.json lacks the $field field"; exit 1; }
done

echo "==> VIBNN_SCALE=quick cluster bench (machine-readable, asserts cluster == batched)"
VIBNN_SCALE=quick VIBNN_BENCH_OUT="target/BENCH_cluster.json" \
    cargo run --release -p vibnn_bench --bin bench_cluster

echo "==> VIBNN_SCALE=quick ingest bench (real sockets, asserts wire == direct submit; writes a stub if sockets are unavailable)"
VIBNN_SCALE=quick VIBNN_BENCH_OUT="target/BENCH_ingest.json" \
    cargo run --release -p vibnn_bench --bin bench_ingest

echo "==> VIBNN_SCALE=quick backend bench (software/quantized/cycle, asserts determinism before timing)"
VIBNN_SCALE=quick VIBNN_BENCH_OUT="target/BENCH_backend.json" \
    cargo run --release -p vibnn_bench --bin bench_backend
for field in cycles_per_request energy_nj_per_request; do
    grep -q "\"$field\"" target/BENCH_backend.json \
        || { echo "FAIL: BENCH_backend.json lacks the $field field"; exit 1; }
done

echo "==> VIBNN_SCALE=quick online bench (drift loop, asserts report bit-identity and adaptive >= baseline)"
VIBNN_SCALE=quick VIBNN_BENCH_OUT="target/BENCH_online.json" \
    cargo run --release -p vibnn_bench --bin bench_online
for field in drift_accuracy_adaptive drift_accuracy_baseline swaps_completed; do
    grep -q "\"$field\"" target/BENCH_online.json \
        || { echo "FAIL: BENCH_online.json lacks the $field field"; exit 1; }
done

echo "CI green."
