#!/usr/bin/env bash
# CI gate for the VIBNN reproduction. Later PRs must keep every step
# green; the first two lines are the repository's tier-1 verify.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --no-run

echo "==> cargo doc --workspace --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "CI green."
