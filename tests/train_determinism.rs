//! The training engine's determinism contract: losses and trained
//! parameters are bit-identical at `VIBNN_THREADS` = 1/2/4 (exercised via
//! the explicit-thread API, which the env knob merely defaults), and the
//! multi-sample path at `samples == 1` coincides exactly with
//! `train_batch` / `train_epoch`.

use vibnn::bnn::{Bnn, BnnConfig, BnnTrainReport};
use vibnn::nn::{GaussianInit, Matrix};

fn toy_data(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = GaussianInit::new(seed);
    let mut x = Matrix::zeros(n, 6);
    let mut y = Vec::with_capacity(n);
    for r in 0..n {
        let mut s = 0.0f32;
        for c in 0..6 {
            let v = rng.next_gaussian() as f32;
            x[(r, c)] = v;
            s += v;
        }
        y.push(usize::from(s > 0.0) + usize::from(s > 1.5));
    }
    (x, y)
}

fn fresh(seed: u64) -> Bnn {
    Bnn::new(
        BnnConfig::new(&[6, 24, 3]).with_lr(5e-3).with_kl_weight(1e-3),
        seed,
    )
}

/// Every trained tensor, bit-exact.
fn param_bits(bnn: &Bnn) -> Vec<u32> {
    let p = bnn.params();
    let mut bits = Vec::new();
    for m in p.weight_mu.iter().chain(&p.weight_sigma) {
        bits.extend(m.data().iter().map(|v| v.to_bits()));
    }
    for v in p.bias_mu.iter().chain(&p.bias_sigma) {
        bits.extend(v.iter().map(|x| x.to_bits()));
    }
    bits
}

fn train(threads: usize, samples: usize, epochs: usize) -> (Vec<BnnTrainReport>, Vec<u32>) {
    // 50-row batches over 120 rows: exercises shard tails (50 = 16+16+16+2)
    // and a ragged final batch of 20 rows.
    let (x, y) = toy_data(120, 11);
    let mut bnn = fresh(13);
    let reports = (0..epochs)
        .map(|_| bnn.train_epoch_mc_threads(&x, &y, 50, samples, threads))
        .collect();
    (reports, param_bits(&bnn))
}

#[test]
fn single_sample_training_is_bit_identical_across_thread_counts() {
    let reference = train(1, 1, 3);
    for threads in [2usize, 4] {
        let got = train(threads, 1, 3);
        assert_eq!(got.0, reference.0, "{threads} threads: reports diverged");
        assert_eq!(got.1, reference.1, "{threads} threads: parameters diverged");
    }
}

#[test]
fn multi_sample_training_is_bit_identical_across_thread_counts() {
    let reference = train(1, 3, 2);
    for threads in [2usize, 4, 16] {
        let got = train(threads, 3, 2);
        assert_eq!(got.0, reference.0, "{threads} threads: reports diverged");
        assert_eq!(got.1, reference.1, "{threads} threads: parameters diverged");
    }
}

#[test]
fn train_batch_mc_with_one_sample_matches_train_batch_exactly() {
    let (x, y) = toy_data(64, 21);
    let mut a = fresh(23);
    let mut b = a.clone();
    for _ in 0..5 {
        let ra = a.train_batch(&x, &y);
        let rb = b.train_batch_mc(&x, &y, 1);
        assert_eq!(ra, rb, "losses diverged");
    }
    assert_eq!(param_bits(&a), param_bits(&b), "parameters diverged");
}

#[test]
fn train_epoch_mc_with_one_sample_matches_train_epoch_exactly() {
    let (x, y) = toy_data(96, 31);
    let mut a = fresh(33);
    let mut b = a.clone();
    for _ in 0..3 {
        assert_eq!(
            a.train_epoch(&x, &y, 32),
            b.train_epoch_mc(&x, &y, 32, 1),
            "epoch reports diverged"
        );
    }
    assert_eq!(param_bits(&a), param_bits(&b), "parameters diverged");
}

#[test]
fn explicit_threads_match_the_env_default_path() {
    // Whatever VIBNN_THREADS resolves to in this process, the env-driven
    // default (threads == 0) must coincide with every explicit count.
    let (x, y) = toy_data(64, 41);
    let mut a = fresh(43);
    let mut b = a.clone();
    let ra = a.train_batch_mc(&x, &y, 2); // VIBNN_THREADS default
    let rb = b.train_batch_mc_threads(&x, &y, 2, 3); // explicit
    assert_eq!(ra, rb);
    assert_eq!(param_bits(&a), param_bits(&b));
}

#[test]
fn engine_training_still_learns_and_reports_finite_losses() {
    let (x, y) = toy_data(256, 51);
    let mut bnn = fresh(53);
    let first = bnn.train_epoch_mc(&x, &y, 64, 2);
    assert!(first.loss.is_finite() && first.kl.is_finite() && first.nll.is_finite());
    for _ in 0..30 {
        bnn.train_epoch_mc(&x, &y, 64, 2);
    }
    let acc = bnn.evaluate_mean(&x, &y);
    assert!(acc > 0.75, "accuracy {acc}");
}
