//! The cluster's determinism contract, pinned end to end:
//!
//! For any replica count (1/2/4), any per-replica worker count (1/2), and
//! any arrival order, every request's mean probabilities are
//! **bit-identical** to a single `ServeEngine` over the cluster's derived
//! replica ε source — and therefore to the one-shot batched
//! `Vibnn::predict_proba_parallel` call. Hot swaps mid-traffic lose no
//! responses, duplicate none, and answer post-swap requests with the new
//! checkpoint exactly as a fresh single engine on that checkpoint would.
//!
//! Run explicitly by `ci.sh`.

use vibnn::bnn::{replica_source, Bnn, BnnConfig};
use vibnn::cluster::{ClusterConfig, ClusterEngine};
use vibnn::grng::ZigguratGrng;
use vibnn::nn::{GaussianInit, Matrix};
use vibnn::serve::{ServeConfig, ServeEngine};
use vibnn::{Vibnn, VibnnBuilder, VibnnError};

const CLUSTER_SEED: u64 = 0xC1_0FFEE;
const FEATURES: usize = 4;
const REQUESTS: usize = 12;

/// A lightly trained deployment (training makes the probabilities
/// non-degenerate, so bit-comparisons are meaningful).
fn deployed(train_seed: u64) -> Vibnn {
    let mut rng = GaussianInit::new(3);
    let mut x = Matrix::zeros(64, FEATURES);
    let mut y = Vec::new();
    for r in 0..64 {
        let mut s = 0.0;
        for c in 0..FEATURES {
            let v = rng.next_gaussian() as f32;
            x[(r, c)] = v;
            s += v;
        }
        y.push(usize::from(s > 0.0));
    }
    let mut bnn = Bnn::new(
        BnnConfig::new(&[FEATURES, 8, 2]).with_lr(0.02),
        train_seed,
    );
    for _ in 0..3 {
        bnn.train_epoch(&x, &y, 16);
    }
    VibnnBuilder::new(bnn.params())
        .mc_samples(5)
        .calibration(x.rows_slice(0, 16))
        .build()
        .expect("valid deployment")
}

fn request_rows() -> Matrix {
    let mut rng = GaussianInit::new(29);
    let mut x = Matrix::zeros(REQUESTS, FEATURES);
    for v in x.data_mut() {
        *v = rng.next_gaussian() as f32;
    }
    x
}

fn cluster(
    vibnn: Vibnn,
    replicas: usize,
    workers: usize,
    max_batch: usize,
) -> ClusterEngine<ZigguratGrng> {
    ClusterEngine::with_eps(
        vibnn,
        ClusterConfig {
            replicas,
            max_batch,
            max_queue: 64,
            workers,
            spill: true,
            batch_skip_bound: 4,
            backend: None,
            policy: None,
        },
        ZigguratGrng::new(CLUSTER_SEED),
    )
    .expect("valid cluster config")
}

fn bits(row: &[f32]) -> Vec<u32> {
    row.iter().map(|v| v.to_bits()).collect()
}

/// The reference every cluster configuration must reproduce: the raw
/// batched path under the cluster's derived replica ε source — a pure
/// function of the cluster seed (`replica_source` is exactly what
/// `ClusterEngine::replica_eps` returns).
fn reference_rows(vibnn: &Vibnn, x: &Matrix) -> Matrix {
    let eps = replica_source(&ZigguratGrng::new(CLUSTER_SEED));
    vibnn.predict_proba_parallel(x, &eps, 1)
}

#[test]
fn cluster_matches_single_engine_and_batched_path() {
    let x = request_rows();
    let vibnn = deployed(5);
    let reference = reference_rows(&vibnn, &x);
    // `replica_eps` is the same derivation the reference uses, and the
    // single-engine path over it agrees with the batched path (the PR 4
    // contract, under the cluster's ε derivation).
    let probe = cluster(vibnn.clone(), 1, 1, 4);
    let probe_eps = probe.replica_eps();
    probe.shutdown();
    let single = ServeEngine::with_eps(
        vibnn.clone(),
        ServeConfig {
            max_batch: 4,
            max_queue: 64,
            workers: 1,
            backend: None,
            policy: None,
        },
        probe_eps,
    )
    .expect("valid serve config")
    .submit_batch(&x)
    .expect("serve");
    for (r, res) in single.iter().enumerate() {
        assert_eq!(bits(&res.proba), bits(reference.row(r)), "engine row {r}");
    }
    // Every cluster shape reproduces the reference bit for bit.
    for replicas in [1usize, 2, 4] {
        for workers in [1usize, 2] {
            for max_batch in [1usize, 3, 32] {
                let c = cluster(vibnn.clone(), replicas, workers, max_batch);
                let ids: Vec<u64> = (0..REQUESTS)
                    .map(|r| c.submit(x.row(r).to_vec()).expect("submit"))
                    .collect();
                for (r, &id) in ids.iter().enumerate() {
                    let res = c.wait(id).expect("result");
                    assert_eq!(
                        bits(&res.proba),
                        bits(reference.row(r)),
                        "row {r} diverged at replicas={replicas} workers={workers} \
                         max_batch={max_batch}"
                    );
                }
                let metrics = c.metrics();
                assert_eq!(metrics.served, REQUESTS as u64);
                assert_eq!(
                    metrics.replicas.iter().map(|r| r.served).sum::<u64>(),
                    REQUESTS as u64
                );
                assert!(c.shutdown().is_empty());
            }
        }
    }
}

#[test]
fn arrival_order_never_changes_results() {
    let x = request_rows();
    let vibnn = deployed(5);
    let reference = reference_rows(&vibnn, &x);
    let orders: [Vec<usize>; 3] = [
        (0..REQUESTS).collect(),
        (0..REQUESTS).rev().collect(),
        vec![5, 0, 9, 2, 7, 11, 1, 8, 3, 10, 6, 4],
    ];
    for replicas in [1usize, 2, 4] {
        for workers in [1usize, 2] {
            for (o, order) in orders.iter().enumerate() {
                let c = cluster(vibnn.clone(), replicas, workers, 4);
                let mut ids = [0u64; REQUESTS];
                for &row in order {
                    ids[row] = loop {
                        match c.submit(x.row(row).to_vec()) {
                            Ok(id) => break id,
                            Err(VibnnError::QueueFull { .. }) => std::thread::yield_now(),
                            Err(e) => panic!("submit failed: {e}"),
                        }
                    };
                }
                for (row, &id) in ids.iter().enumerate() {
                    let res = c.wait(id).expect("result");
                    assert_eq!(
                        bits(&res.proba),
                        bits(reference.row(row)),
                        "order {o}, replicas {replicas}, workers {workers}, row {row} diverged"
                    );
                }
                assert!(c.shutdown().is_empty());
            }
        }
    }
}

#[test]
fn spill_and_admission_preserve_bit_identity() {
    // A tiny cluster queue forces constant backpressure and spill
    // pressure; every accepted request must still resolve to the
    // reference bits.
    let x = request_rows();
    let vibnn = deployed(5);
    let reference = reference_rows(&vibnn, &x);
    let c = ClusterEngine::with_eps(
        vibnn,
        ClusterConfig {
            replicas: 2,
            max_batch: 2,
            max_queue: 3,
            workers: 1,
            spill: true,
            batch_skip_bound: 4,
            backend: None,
            policy: None,
        },
        ZigguratGrng::new(CLUSTER_SEED),
    )
    .expect("valid cluster config");
    let mut accepted: Vec<(usize, u64)> = Vec::new();
    for round in 0..5 {
        for row in 0..REQUESTS {
            match c.submit(x.row(row).to_vec()) {
                Ok(id) => accepted.push((row, id)),
                Err(VibnnError::QueueFull { depth, capacity }) => {
                    assert_eq!(capacity, 3, "round {round}");
                    assert!(depth >= capacity);
                }
                Err(e) => panic!("round {round}: unexpected error {e}"),
            }
        }
    }
    for &(row, id) in &accepted {
        let res = c.wait(id).expect("result");
        assert_eq!(bits(&res.proba), bits(reference.row(row)), "row {row}");
    }
    let metrics = c.metrics();
    assert_eq!(metrics.submitted, accepted.len() as u64);
    assert!(c.shutdown().is_empty());
}

#[test]
fn hot_swap_mid_traffic_loses_and_duplicates_nothing() {
    let x = request_rows();
    let old_model = deployed(5);
    let new_model = deployed(21); // genuinely different parameters
    let old_reference = reference_rows(&old_model, &x);
    let new_reference = reference_rows(&new_model, &x);
    assert_ne!(
        old_reference.data(),
        new_reference.data(),
        "the two checkpoints must disagree for the swap to be observable"
    );
    for replicas in [1usize, 2] {
        let c = cluster(old_model.clone(), replicas, 1, 3);
        // Phase 1: requests submitted before the swap — answered by the
        // old checkpoint no matter when the dispatcher gets to them.
        let pre: Vec<u64> = (0..REQUESTS)
            .map(|r| c.submit(x.row(r).to_vec()).expect("submit"))
            .collect();
        // Roll the new checkpoint across every replica mid-traffic.
        let reports = c.rollout(new_model.clone()).expect("rollout");
        assert_eq!(reports.len(), replicas);
        assert!(reports.iter().all(|r| r.version == 1));
        // Phase 2: requests submitted after the rollout — answered by the
        // new checkpoint.
        let post: Vec<u64> = (0..REQUESTS)
            .map(|r| c.submit(x.row(r).to_vec()).expect("submit"))
            .collect();
        // Exactly one response per request, with the right version's bits.
        for (r, &id) in pre.iter().enumerate() {
            let res = c.wait(id).expect("pre-swap result");
            assert_eq!(
                bits(&res.proba),
                bits(old_reference.row(r)),
                "replicas {replicas}: pre-swap row {r} not served by the old checkpoint"
            );
        }
        for (r, &id) in post.iter().enumerate() {
            let res = c.wait(id).expect("post-swap result");
            assert_eq!(
                bits(&res.proba),
                bits(new_reference.row(r)),
                "replicas {replicas}: post-swap row {r} not served by the new checkpoint"
            );
        }
        // Double-claiming is impossible: the results were taken.
        for &id in pre.iter().chain(&post) {
            assert!(c.try_take(id).is_none());
        }
        let metrics = c.metrics();
        assert_eq!(metrics.served, 2 * REQUESTS as u64);
        assert_eq!(metrics.swaps_completed, replicas as u64);
        assert!(c.shutdown().is_empty(), "no orphaned responses");
    }
}

#[test]
fn hot_swap_from_checkpoint_file_matches_a_fresh_engine() {
    let x = request_rows();
    let old_model = deployed(5);
    let new_model = deployed(21);
    let new_reference = reference_rows(&new_model, &x);
    let path = std::env::temp_dir().join(format!(
        "vibnn_cluster_swap_{}.ckpt",
        std::process::id()
    ));
    new_model.save(&path).expect("save kind-3 checkpoint");
    let c = cluster(old_model, 2, 1, 4);
    c.hot_swap_from(0, &path).expect("swap replica 0");
    c.hot_swap_from(1, &path).expect("swap replica 1");
    let ids: Vec<u64> = (0..REQUESTS)
        .map(|r| c.submit(x.row(r).to_vec()).expect("submit"))
        .collect();
    for (r, &id) in ids.iter().enumerate() {
        let res = c.wait(id).expect("result");
        assert_eq!(
            bits(&res.proba),
            bits(new_reference.row(r)),
            "row {r}: checkpoint-loaded replica diverged from the fresh deployment"
        );
    }
    assert!(c.shutdown().is_empty());
    std::fs::remove_file(&path).ok();
}

#[test]
fn metrics_track_batches_and_drain_state() {
    let vibnn = deployed(5);
    let c = cluster(vibnn, 2, 1, 4);
    let x = request_rows();
    let ids: Vec<u64> = (0..REQUESTS)
        .map(|r| c.submit(x.row(r).to_vec()).expect("submit"))
        .collect();
    for id in ids {
        c.wait(id).expect("result");
    }
    let m = c.metrics();
    assert_eq!(m.capacity, 64);
    assert_eq!(m.queued, 0);
    assert!(!m.draining);
    assert_eq!(m.submitted, REQUESTS as u64);
    assert_eq!(m.served, REQUESTS as u64);
    // Histogram mass equals the number of dispatched micro-batches, and
    // weighted mass equals the requests served.
    let mut batches = 0u64;
    let mut weighted = 0u64;
    for rep in &m.replicas {
        assert_eq!(rep.batch_histogram.len(), 4);
        assert!(rep.alive);
        assert!(!rep.swap_pending);
        for (i, &count) in rep.batch_histogram.iter().enumerate() {
            batches += count;
            weighted += count * (i as u64 + 1);
        }
    }
    assert!(batches > 0);
    assert_eq!(weighted, REQUESTS as u64);
    assert!(c.shutdown().is_empty());
}

#[test]
fn rollout_under_sustained_traffic_with_concurrent_trainer() {
    // The online-loop deployment story, exercised at the cluster seam: a
    // trainer thread keeps producing checkpoints — saving each as a
    // kind-3 file and rolling it across every replica via
    // `hot_swap_from` — while a client pumps requests the whole time.
    // Every accepted request must resolve exactly once, and every
    // answer must be bit-attributable to exactly one of the known
    // checkpoint versions (the references are pairwise distinct, so
    // attribution is unambiguous). Traffic before the trainer starts is
    // version 0; traffic after it finishes is the final version.
    let x = request_rows();
    let models: Vec<Vibnn> = [5u64, 21, 33, 47].iter().map(|&s| deployed(s)).collect();
    let references: Vec<Matrix> = models.iter().map(|m| reference_rows(m, &x)).collect();
    for a in 0..references.len() {
        for b in (a + 1)..references.len() {
            assert_ne!(
                references[a].data(),
                references[b].data(),
                "checkpoints {a} and {b} must disagree for attribution to be unambiguous"
            );
        }
    }
    let dir = std::env::temp_dir().join(format!(
        "vibnn_cluster_trainer_{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let replicas = 2usize;
    let c = cluster(models[0].clone(), replicas, 2, 3);
    // Wave 0, before any trainer activity: pure version-0 traffic.
    let wave = |expect_rows: &Matrix| {
        for r in 0..REQUESTS {
            let id = loop {
                match c.submit(x.row(r).to_vec()) {
                    Ok(id) => break id,
                    Err(VibnnError::QueueFull { .. }) => std::thread::yield_now(),
                    Err(e) => panic!("submit failed: {e}"),
                }
            };
            let res = c.wait(id).expect("result");
            assert_eq!(bits(&res.proba), bits(expect_rows.row(r)));
            assert!(c.try_take(id).is_none(), "result claimed twice");
        }
    };
    wave(&references[0]);
    let done = std::sync::atomic::AtomicBool::new(false);
    let mut accepted = 0u64;
    std::thread::scope(|s| {
        let trainer = s.spawn(|| {
            // Each "training round" lands a new checkpoint on disk and
            // rolls it out replica by replica, mid-traffic.
            for (v, model) in models.iter().enumerate().skip(1) {
                let path = dir.join(format!("v{v}.ckpt"));
                model.save(&path).expect("save kind-3 checkpoint");
                for rep in 0..replicas {
                    let report = c.hot_swap_from(rep, &path).expect("rollout from file");
                    assert_eq!(report.replica, rep);
                    assert_eq!(report.version, v as u64);
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            done.store(true, std::sync::atomic::Ordering::Release);
        });
        // Sustained client traffic for the trainer's whole lifetime:
        // every answer must match exactly one known version's bits for
        // its row — never a torn or mixed response.
        while !done.load(std::sync::atomic::Ordering::Acquire) {
            for r in 0..REQUESTS {
                let id = loop {
                    match c.submit(x.row(r).to_vec()) {
                        Ok(id) => break id,
                        Err(VibnnError::QueueFull { .. }) => std::thread::yield_now(),
                        Err(e) => panic!("submit failed: {e}"),
                    }
                };
                accepted += 1;
                let res = c.wait(id).expect("mid-rollout result");
                let row_bits = bits(&res.proba);
                let matches = references
                    .iter()
                    .filter(|reference| row_bits == bits(reference.row(r)))
                    .count();
                assert_eq!(
                    matches, 1,
                    "row {r} not attributable to exactly one checkpoint"
                );
                assert!(c.try_take(id).is_none(), "result claimed twice");
            }
        }
        trainer.join().expect("trainer panicked");
    });
    // Wave after the trainer finished: everything serves the final
    // checkpoint, and both replicas agree on its fingerprint.
    wave(references.last().expect("final reference"));
    let m = c.metrics();
    assert_eq!(m.served, accepted + 2 * REQUESTS as u64);
    assert_eq!(m.cancelled, 0, "sustained traffic must lose nothing");
    assert_eq!(m.swaps_completed, ((models.len() - 1) * replicas) as u64);
    let final_fp = m.replicas[0].checkpoint_fingerprint;
    for rep in &m.replicas {
        assert_eq!(rep.version, (models.len() - 1) as u64);
        assert_eq!(rep.checkpoint_fingerprint, final_fp);
        assert!(!rep.swap_pending);
    }
    assert!(c.shutdown().is_empty(), "no orphaned responses");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_under_queued_swap_never_hangs() {
    // Regression: with traffic queued and a rollout in flight, a
    // graceful stop used to depend on dispatcher timing to drain the
    // requests stranded behind the swap marker. `drain` must return
    // promptly — cancelling the stranded requests, still applying the
    // marker so the swapper resolves — and every accepted id must
    // settle as served, cancelled, or (when the race stops the cluster
    // first) refuse the swap; nothing may hang or be left unanswered.
    let x = request_rows();
    let old_model = deployed(5);
    let new_model = deployed(21);
    for round in 0..3u64 {
        let c = cluster(old_model.clone(), 1, 1, 2);
        let ids: Vec<u64> = (0..REQUESTS)
            .map(|r| c.submit(x.row(r).to_vec()).expect("submit"))
            .collect();
        std::thread::scope(|s| {
            let swapper = s.spawn(|| c.hot_swap(0, new_model.clone()));
            // Vary the interleaving a little across rounds; correctness
            // must not depend on who wins the race.
            if round > 0 {
                std::thread::sleep(std::time::Duration::from_millis(round));
            }
            c.drain();
            match swapper.join().expect("swapper panicked") {
                Ok(report) => assert_eq!(report.replica, 0),
                Err(VibnnError::EngineStopped) => {}
                Err(e) => panic!("unexpected hot_swap error: {e}"),
            }
        });
        // Every accepted request resolves with a definite outcome.
        let reference = reference_rows(&old_model, &x);
        for (r, &id) in ids.iter().enumerate() {
            match c.wait(id) {
                Ok(res) => assert_eq!(
                    bits(&res.proba),
                    bits(reference.row(r)),
                    "round {round}: pre-swap row {r} served by the wrong checkpoint"
                ),
                Err(VibnnError::EngineStopped) => {}
                Err(e) => panic!("round {round}, id {id}: unexpected outcome {e}"),
            }
        }
        let m = c.metrics();
        assert_eq!(
            m.served + m.cancelled,
            REQUESTS as u64,
            "round {round}: every accepted request must be served or cancelled"
        );
        assert!(c.shutdown().is_empty());
    }
}
