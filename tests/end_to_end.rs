//! Cross-crate integration: train -> quantize -> deploy -> verify the full
//! pipeline on a realistic (synthetic) dataset.

use vibnn::bnn::{Bnn, BnnConfig};
use vibnn::datasets::parkinson_original;
use vibnn::grng::{BnnWallaceGrng, BoxMullerGrng};
use vibnn::VibnnBuilder;

#[test]
fn train_quantize_deploy_parkinson() {
    let ds = parkinson_original(1);
    let mut bnn = Bnn::new(
        BnnConfig::new(&[ds.features(), 32, 32, ds.classes]).with_lr(2e-3),
        2,
    );
    for _ in 0..12 {
        bnn.train_epoch(&ds.train_x, &ds.train_y, 32);
    }
    let sw = bnn.evaluate_mean(&ds.test_x, &ds.test_y);
    assert!(sw > 0.7, "software accuracy {sw}");

    let accel = VibnnBuilder::new(bnn.params())
        .bit_len(8)
        .mc_samples(8)
        .calibration(ds.train_x.rows_slice(0, 64))
        .build()
        .expect("valid deployment");
    let mut eps = BnnWallaceGrng::new(8, 256, 3);
    let hw = accel.evaluate(&ds.test_x, &ds.test_y, &mut eps);
    assert!(
        hw > sw - 0.1,
        "hardware accuracy {hw} degraded too far from software {sw}"
    );
}

#[test]
fn cycle_accurate_equals_functional_on_trained_network() {
    let ds = parkinson_original(5);
    let mut bnn = Bnn::new(BnnConfig::new(&[ds.features(), 16, 2]), 6);
    for _ in 0..4 {
        bnn.train_epoch(&ds.train_x, &ds.train_y, 32);
    }
    let mut accel = VibnnBuilder::new(bnn.params())
        .mc_samples(3)
        .calibration(ds.train_x.rows_slice(0, 32))
        .build()
        .expect("valid deployment");
    for r in 0..5 {
        let mut eps_a = BoxMullerGrng::new(100 + r as u64);
        let mut eps_b = BoxMullerGrng::new(100 + r as u64);
        let f = accel.predict_proba(&ds.test_x.rows_slice(r, r + 1), &mut eps_a);
        let t = accel.infer_cycle_accurate(ds.test_x.row(r), &mut eps_b);
        for (c, &p) in f.row(0).iter().enumerate() {
            assert!((t[c] - p).abs() < 1e-5, "row {r} class {c}: {} vs {p}", t[c]);
        }
    }
}

#[test]
fn accelerator_models_stay_consistent_across_grngs() {
    let ds = parkinson_original(9);
    let bnn = Bnn::new(BnnConfig::new(&[ds.features(), 16, 2]), 10);
    for kind in [vibnn::grng::GrngKind::Rlf, vibnn::grng::GrngKind::BnnWallace] {
        let accel = VibnnBuilder::new(bnn.params())
            .grng(kind)
            .calibration(ds.train_x.rows_slice(0, 16))
            .build()
            .expect("valid deployment");
        assert!(accel.images_per_second() > 0.0);
        assert!(accel.power_w() > vibnn::hw::power::P_STATIC_W);
        assert!(accel.resources().fits_device());
    }
}
