//! Hardware-model invariants across configuration space.

use vibnn::bnn::{Bnn, BnnConfig};
use vibnn::grng::BoxMullerGrng;
use vibnn::hw::{AcceleratorConfig, CycleAccelerator, QuantizedBnn, ResourceModel, Schedule};
use vibnn::nn::Matrix;

fn cfg(t: usize, n: usize, mc: usize) -> AcceleratorConfig {
    AcceleratorConfig {
        pe_sets: t,
        pes_per_set: n,
        pe_inputs: n,
        max_word_size: 4096,
        mc_samples: mc,
        ..AcceleratorConfig::paper()
    }
}

#[test]
fn simulator_cycles_equal_schedule_across_geometries() {
    let arch = [20usize, 24, 12, 4];
    let bnn = Bnn::new(BnnConfig::new(&arch), 1);
    let calib = Matrix::zeros(2, 20);
    let q = QuantizedBnn::from_params(&bnn.params(), 8, &calib);
    for (t, n) in [(1usize, 4usize), (2, 4), (4, 4), (2, 8), (4, 8)] {
        let c = cfg(t, n, 1);
        let mut sim = CycleAccelerator::new(c.clone(), q.clone());
        let mut eps = BoxMullerGrng::new(7);
        let _ = sim.infer_sample(calib.row(0), &mut eps);
        let sched = Schedule::new(&c, &arch);
        assert_eq!(
            sim.stats().cycles,
            sched.cycles_per_sample(),
            "geometry T={t} N={n}"
        );
    }
}

#[test]
fn simulator_outputs_invariant_to_geometry() {
    // The hardware geometry changes scheduling, never numerics.
    let arch = [20usize, 24, 4];
    let bnn = Bnn::new(BnnConfig::new(&arch), 3);
    let calib = Matrix::zeros(2, 20);
    let q = QuantizedBnn::from_params(&bnn.params(), 8, &calib);
    let mut reference: Option<Vec<f32>> = None;
    for (t, n) in [(1usize, 4usize), (4, 4), (2, 8)] {
        let mut sim = CycleAccelerator::new(cfg(t, n, 1), q.clone());
        let mut eps = BoxMullerGrng::new(11);
        let out = sim.infer_sample(calib.row(0), &mut eps);
        match &reference {
            None => reference = Some(out),
            Some(r) => {
                for (a, b) in r.iter().zip(&out) {
                    assert!((a - b).abs() < 1e-9, "geometry changed numerics");
                }
            }
        }
    }
}

#[test]
fn cycles_monotone_in_network_and_mc() {
    let base = Schedule::new(&cfg(4, 8, 1), &[64, 32, 8]).cycles_per_image();
    let wider = Schedule::new(&cfg(4, 8, 1), &[128, 64, 8]).cycles_per_image();
    let more_mc = Schedule::new(&cfg(4, 8, 4), &[64, 32, 8]).cycles_per_image();
    assert!(wider > base);
    assert_eq!(more_mc, 4 * base);
}

#[test]
fn resource_model_monotone_in_pe_count() {
    let small = ResourceModel.system(&cfg(4, 8, 1), 50_000, 784);
    let big = ResourceModel.system(&cfg(16, 8, 1), 50_000, 784);
    assert!(big.alms > small.alms);
    assert!(big.registers > small.registers);
    assert!(big.dsps >= small.dsps);
}

#[test]
fn invalid_configs_rejected_everywhere() {
    let mut bad = cfg(4, 8, 1);
    bad.pes_per_set = 4; // S != N
    assert!(bad.validate().is_err());
    let bnn = Bnn::new(BnnConfig::new(&[8, 4]), 1);
    let q = QuantizedBnn::from_params(&bnn.params(), 8, &Matrix::zeros(1, 8));
    let result = std::panic::catch_unwind(|| CycleAccelerator::new(bad, q));
    assert!(result.is_err(), "simulator accepted an invalid config");
}
