//! The adaptive sampling subsystem's determinism contract, pinned end
//! to end:
//!
//! - `ExactN` is the pre-policy serving path bit for bit — through a
//!   single engine, every cluster shape, and the ingest wire — and
//!   every answer reports the full `mc_samples` budget as
//!   `samples_used`.
//! - `EarlyExit` stopping decisions are a pure function of the request
//!   row and the ε substreams: the served bits *and* `samples_used`
//!   are identical across worker counts {1, 2, 4}, replica counts
//!   {1, 2, 4}, micro-batch sizes, permuted arrival orders, and
//!   spill-induced rerouting.
//! - `RiskTiered` abstentions are typed
//!   (`VibnnError::Abstained { samples_used, entropy_milli }`) and
//!   exactly attributable: per-request through `wait`, in aggregate
//!   through `ClusterMetrics::sampling`. An escalated-but-served
//!   request runs to the full budget and therefore reproduces the
//!   `ExactN` bits exactly.
//! - `samples_used` survives the reply codec for any value (property
//!   test over single, batch, and abstention reply frames).
//!
//! Run explicitly by `ci.sh`.

use proptest::prelude::*;
use vibnn::bnn::{replica_source, Bnn, BnnConfig};
use vibnn::cluster::{ClusterConfig, ClusterEngine};
use vibnn::grng::ZigguratGrng;
use vibnn::ingest::{decode_reply, encode_reply, Reply, WireError};
use vibnn::nn::{GaussianInit, Matrix};
use vibnn::sampler::PolicySpec;
use vibnn::serve::ServeResult;
use vibnn::{
    IngestClient, IngestConfig, IngestServer, Priority, Vibnn, VibnnBuilder, VibnnError,
};

const CLUSTER_SEED: u64 = 0xC1_0FFEE;
const FEATURES: usize = 4;
const REQUESTS: usize = 12;
const MC_SAMPLES: usize = 5;

/// Same lightly trained deployment as `tests/cluster_determinism.rs`,
/// so this suite pins the identical pre-PR reference bits.
fn deployed(train_seed: u64) -> Vibnn {
    let mut rng = GaussianInit::new(3);
    let mut x = Matrix::zeros(64, FEATURES);
    let mut y = Vec::new();
    for r in 0..64 {
        let mut s = 0.0;
        for c in 0..FEATURES {
            let v = rng.next_gaussian() as f32;
            x[(r, c)] = v;
            s += v;
        }
        y.push(usize::from(s > 0.0));
    }
    let mut bnn = Bnn::new(BnnConfig::new(&[FEATURES, 8, 2]).with_lr(0.02), train_seed);
    for _ in 0..3 {
        bnn.train_epoch(&x, &y, 16);
    }
    VibnnBuilder::new(bnn.params())
        .mc_samples(MC_SAMPLES)
        .calibration(x.rows_slice(0, 16))
        .build()
        .expect("valid deployment")
}

fn request_rows() -> Matrix {
    let mut rng = GaussianInit::new(29);
    let mut x = Matrix::zeros(REQUESTS, FEATURES);
    for v in x.data_mut() {
        *v = rng.next_gaussian() as f32;
    }
    x
}

fn bits(row: &[f32]) -> Vec<u32> {
    row.iter().map(|v| v.to_bits()).collect()
}

/// The pre-PR reference: the one-shot batched call under the cluster's
/// derived replica ε source — exactly what `tests/cluster_determinism.rs`
/// pins for the policy-free path.
fn reference_rows(vibnn: &Vibnn, x: &Matrix) -> Matrix {
    let eps = replica_source(&ZigguratGrng::new(CLUSTER_SEED));
    vibnn.predict_proba_parallel(x, &eps, 1)
}

fn cluster_with(
    vibnn: Vibnn,
    replicas: usize,
    workers: usize,
    max_batch: usize,
    max_queue: usize,
    policy: PolicySpec,
) -> ClusterEngine<ZigguratGrng> {
    ClusterEngine::with_eps(
        vibnn,
        ClusterConfig {
            replicas,
            max_batch,
            max_queue,
            workers,
            spill: true,
            batch_skip_bound: 4,
            backend: None,
            policy: Some(policy),
        },
        ZigguratGrng::new(CLUSTER_SEED),
    )
    .expect("valid cluster config")
}

#[test]
fn exact_n_is_the_pre_policy_path_bit_for_bit_through_engine_cluster_and_wire() {
    let x = request_rows();
    let vibnn = deployed(5);
    let reference = reference_rows(&vibnn, &x);
    // Cluster: every shape under an explicit `ExactN` must reproduce the
    // policy-free reference, and every answer reports the full budget.
    for replicas in [1usize, 2, 4] {
        let c = cluster_with(vibnn.clone(), replicas, 1, 4, 64, PolicySpec::ExactN);
        let ids: Vec<u64> = (0..REQUESTS)
            .map(|r| c.submit(x.row(r).to_vec()).expect("submit"))
            .collect();
        for (r, &id) in ids.iter().enumerate() {
            let res = c.wait(id).expect("result");
            assert_eq!(
                bits(&res.proba),
                bits(reference.row(r)),
                "ExactN diverged from the pre-policy bits at replicas={replicas}, row {r}"
            );
            assert_eq!(res.samples_used as usize, MC_SAMPLES, "row {r}");
        }
        let m = c.metrics();
        assert_eq!(m.sampling.samples_used_total, (REQUESTS * MC_SAMPLES) as u64);
        assert_eq!(m.sampling.abstained, 0);
        // Every served request sits in the full-budget histogram bucket.
        assert_eq!(m.sampling.histogram[MC_SAMPLES - 1], REQUESTS as u64);
        assert!(c.shutdown().is_empty());
    }
    // Wire: the same reference bits and the full budget per reply.
    let c = cluster_with(vibnn.clone(), 2, 1, 4, 64, PolicySpec::ExactN);
    let server = match IngestServer::bind(c, "127.0.0.1:0", IngestConfig::default()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("skipping wire leg: cannot bind loopback ({e})");
            return;
        }
    };
    let mut client = IngestClient::connect(server.local_addr()).expect("connect");
    for r in 0..REQUESTS {
        let res = client
            .predict_with(x.row(r), Priority::Interactive, 0)
            .expect("wire predict");
        assert_eq!(
            bits(&res.proba),
            bits(reference.row(r)),
            "ExactN row {r} diverged over the wire"
        );
        assert_eq!(res.samples_used as usize, MC_SAMPLES, "wire row {r}");
    }
    let m = client.metrics().expect("wire metrics");
    assert_eq!(m.samples_used_total, (REQUESTS * MC_SAMPLES) as u64);
    assert_eq!(m.abstained, 0);
    assert!(server.shutdown().shutdown().is_empty());
}

#[test]
fn early_exit_bits_and_samples_used_are_invariant_everywhere() {
    let x = request_rows();
    let vibnn = deployed(5);
    let policy = PolicySpec::EarlyExit {
        k: 2,
        min_samples: 2,
    };
    // Canonical per-row outcome: the smallest possible cluster.
    let canon: Vec<(Vec<u32>, u32)> = {
        let c = cluster_with(vibnn.clone(), 1, 1, 4, 64, policy);
        let out = (0..REQUESTS)
            .map(|r| {
                let id = c.submit(x.row(r).to_vec()).expect("submit");
                let res = c.wait(id).expect("result");
                (bits(&res.proba), res.samples_used)
            })
            .collect();
        assert!(c.shutdown().is_empty());
        out
    };
    // The policy genuinely exits early somewhere, or this test proves
    // nothing.
    assert!(
        canon.iter().any(|(_, used)| (*used as usize) < MC_SAMPLES),
        "no request exited early; stability threshold too strict for this workload"
    );
    // Worker counts × replica counts × micro-batch sizes.
    for replicas in [1usize, 2, 4] {
        for workers in [1usize, 2, 4] {
            for max_batch in [1usize, 3, 32] {
                let c = cluster_with(vibnn.clone(), replicas, workers, max_batch, 64, policy);
                let ids: Vec<u64> = (0..REQUESTS)
                    .map(|r| c.submit(x.row(r).to_vec()).expect("submit"))
                    .collect();
                for (r, &id) in ids.iter().enumerate() {
                    let res = c.wait(id).expect("result");
                    assert_eq!(
                        (bits(&res.proba), res.samples_used),
                        canon[r].clone(),
                        "row {r} diverged at replicas={replicas} workers={workers} \
                         max_batch={max_batch}"
                    );
                }
                assert!(c.shutdown().is_empty());
            }
        }
    }
    // Permuted arrival orders.
    let orders: [Vec<usize>; 3] = [
        (0..REQUESTS).collect(),
        (0..REQUESTS).rev().collect(),
        vec![5, 0, 9, 2, 7, 11, 1, 8, 3, 10, 6, 4],
    ];
    for (o, order) in orders.iter().enumerate() {
        let c = cluster_with(vibnn.clone(), 2, 2, 4, 64, policy);
        let mut ids = [0u64; REQUESTS];
        for &row in order {
            ids[row] = loop {
                match c.submit(x.row(row).to_vec()) {
                    Ok(id) => break id,
                    Err(VibnnError::QueueFull { .. }) => std::thread::yield_now(),
                    Err(e) => panic!("submit failed: {e}"),
                }
            };
        }
        for (row, &id) in ids.iter().enumerate() {
            let res = c.wait(id).expect("result");
            assert_eq!(
                (bits(&res.proba), res.samples_used),
                canon[row].clone(),
                "order {o}, row {row} diverged"
            );
        }
        assert!(c.shutdown().is_empty());
    }
    // Spill pressure: a tiny shared queue forces rerouting between the
    // two (same-policy) replicas; every accepted request still resolves
    // to its canonical bits and sample count.
    let c = cluster_with(vibnn.clone(), 2, 1, 2, 3, policy);
    let mut accepted: Vec<(usize, u64)> = Vec::new();
    for _ in 0..5 {
        for row in 0..REQUESTS {
            match c.submit(x.row(row).to_vec()) {
                Ok(id) => accepted.push((row, id)),
                Err(VibnnError::QueueFull { .. }) => {}
                Err(e) => panic!("unexpected error {e}"),
            }
        }
    }
    for &(row, id) in &accepted {
        let res = c.wait(id).expect("result");
        assert_eq!(
            (bits(&res.proba), res.samples_used),
            canon[row].clone(),
            "spilled row {row} diverged"
        );
    }
    // The aggregate ledger agrees with the per-request ground truth.
    let m = c.metrics();
    let expect_total: u64 = accepted
        .iter()
        .map(|&(row, _)| u64::from(canon[row].1))
        .sum();
    assert_eq!(m.sampling.samples_used_total, expect_total);
    assert_eq!(m.sampling.abstained, 0);
    assert!(c.shutdown().is_empty());
}

#[test]
fn risk_tiered_abstentions_are_typed_and_exactly_attributable() {
    let x = request_rows();
    let vibnn = deployed(5);
    // `escalate_milli: 0` escalates every request (entropy is never
    // negative), and `abstain: true` refuses them all at the budget —
    // the extreme that makes attribution exact.
    let refuse_all = PolicySpec::RiskTiered {
        k: 2,
        min_samples: 2,
        escalate_milli: 0,
        abstain: true,
    };
    let c = cluster_with(vibnn.clone(), 2, 1, 4, 64, refuse_all);
    let ids: Vec<u64> = (0..REQUESTS)
        .map(|r| c.submit(x.row(r).to_vec()).expect("submit"))
        .collect();
    for (r, &id) in ids.iter().enumerate() {
        match c.wait(id) {
            Err(VibnnError::Abstained {
                samples_used,
                entropy_milli,
            }) => {
                // Escalation runs to the full budget before abstaining,
                // and the reported entropy is a normalized fraction.
                assert_eq!(samples_used as usize, MC_SAMPLES, "row {r}");
                assert!(entropy_milli <= 1000, "row {r}: entropy {entropy_milli}");
            }
            Ok(_) => panic!("row {r} was served under an always-abstain policy"),
            Err(e) => panic!("row {r}: wrong error type {e}"),
        }
    }
    let m = c.metrics();
    assert_eq!(m.sampling.abstained, REQUESTS as u64);
    assert_eq!(m.served, 0, "abstentions must never count as served");
    assert_eq!(m.sampling.samples_used_total, 0);
    assert!(m.sampling.histogram.iter().all(|&b| b == 0));
    // The refused work is still on the cost ledger: every abstention
    // drew its full budget.
    let drawn: u64 = m.replicas.iter().map(|r| r.cost.samples).sum();
    assert_eq!(drawn, (REQUESTS * MC_SAMPLES) as u64);
    assert!(c.shutdown().is_empty());
    // The service tier of the same policy: `abstain: false` escalates
    // every request to the full budget but serves it — which must be
    // the `ExactN` (= pre-policy batched) bits exactly.
    let escalate_all = PolicySpec::RiskTiered {
        k: 2,
        min_samples: 2,
        escalate_milli: 0,
        abstain: false,
    };
    let reference = reference_rows(&vibnn, &x);
    let c = cluster_with(vibnn.clone(), 2, 1, 4, 64, escalate_all);
    let ids: Vec<u64> = (0..REQUESTS)
        .map(|r| c.submit(x.row(r).to_vec()).expect("submit"))
        .collect();
    for (r, &id) in ids.iter().enumerate() {
        let res = c.wait(id).expect("escalated request must be served");
        assert_eq!(
            bits(&res.proba),
            bits(reference.row(r)),
            "escalated row {r} must reproduce the full-budget bits"
        );
        assert_eq!(res.samples_used as usize, MC_SAMPLES, "row {r}");
    }
    let m = c.metrics();
    assert_eq!(m.sampling.abstained, 0);
    assert_eq!(m.served, REQUESTS as u64);
    assert!(c.shutdown().is_empty());
}

proptest! {
    /// `samples_used` survives the reply codec bit-exactly for any
    /// value, on single-prediction, batch, and abstention frames.
    #[test]
    fn samples_used_survives_the_reply_codec(
        tag in 0u64..,
        id in 0u64..,
        samples_used in 0u32..,
        entropy_milli in 0u64..,
        proba in prop::collection::vec(0.0f32..1.0, 1..6),
    ) {
        let result = ServeResult {
            id,
            argmax: 0,
            entropy: 0.5,
            mc_std: 0.01,
            samples_used,
            proba,
        };
        let single = Reply::Predict { tag, result: result.clone() };
        prop_assert_eq!(decode_reply(&encode_reply(&single)).unwrap(), single);
        let batch = Reply::PredictBatch {
            tag,
            rows: vec![Ok(result), Err(WireError::Abstained {
                samples_used: u64::from(samples_used),
                entropy_milli,
            })],
        };
        prop_assert_eq!(decode_reply(&encode_reply(&batch)).unwrap(), batch);
        let error = Reply::Error {
            tag,
            error: WireError::Abstained {
                samples_used: u64::from(samples_used),
                entropy_milli,
            },
        };
        prop_assert_eq!(decode_reply(&encode_reply(&error)).unwrap(), error);
    }
}
