//! Smoke test for the `vibnn` public API surface: the root-crate types
//! (`Vibnn`, `VibnnBuilder`, `Pipeline`, `train_and_deploy`, the
//! checkpoint entry points) and the subsystem re-exports (`bnn`, `grng`,
//! `hw`, …) must resolve and construct. This guards the workspace wiring
//! in `Cargo.toml` — a broken re-export or dependency edge fails here
//! before any behavioural test runs.

use vibnn::bnn::{Bnn, BnnConfig, LrSchedule};
use vibnn::grng::{BnnWallaceGrng, GaussianSource, ParallelRlfGrng};
use vibnn::hw::{AcceleratorConfig, CycleAccelerator, QuantizedBnn, Schedule};
use vibnn::nn::Matrix;
use vibnn::{train_and_deploy, Pipeline, Vibnn, VibnnBuilder, VibnnError};

/// A tiny 6-3-2 network: big enough to exercise every layer type,
/// small enough that the whole smoke test runs in milliseconds.
fn tiny_bnn() -> Bnn {
    Bnn::new(BnnConfig::new(&[6, 3, 2]), 7)
}

/// A unique scratch path in the system temp directory.
fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("vibnn_{}_{}", std::process::id(), name))
}

#[test]
fn builder_constructs_vibnn_from_params() {
    let bnn = tiny_bnn();
    let calib = Matrix::zeros(4, 6);
    let accel: Vibnn = VibnnBuilder::new(bnn.params())
        .bit_len(8)
        .mc_samples(2)
        .calibration(calib)
        .build()
        .expect("valid deployment");
    assert_eq!(accel.classes(), 2);
    assert!(accel.images_per_second() > 0.0);
    assert!(accel.power_w() > 0.0);
}

#[test]
fn builder_reports_typed_errors() {
    // Missing calibration.
    assert!(matches!(
        VibnnBuilder::new(tiny_bnn().params()).build(),
        Err(VibnnError::MissingCalibration)
    ));
    // Empty layer list (the old `classes()` panic path).
    let empty = vibnn::bnn::BnnParams {
        weight_mu: vec![],
        weight_sigma: vec![],
        bias_mu: vec![],
        bias_sigma: vec![],
    };
    assert!(matches!(
        VibnnBuilder::new(empty)
            .calibration(Matrix::zeros(1, 1))
            .build(),
        Err(VibnnError::BadTopology(_))
    ));
    // Calibration width mismatch.
    assert!(matches!(
        VibnnBuilder::new(tiny_bnn().params())
            .calibration(Matrix::zeros(4, 5))
            .build(),
        Err(VibnnError::ShapeMismatch { .. })
    ));
}

#[test]
fn vibnn_predicts_with_both_paper_grngs() {
    let bnn = tiny_bnn();
    let accel = VibnnBuilder::new(bnn.params())
        .calibration(Matrix::zeros(4, 6))
        .build()
        .expect("valid deployment");
    let x = Matrix::zeros(3, 6);

    let mut rlf = ParallelRlfGrng::new(4, 11);
    let proba = accel.predict_proba(&x, &mut rlf);
    assert_eq!((proba.rows(), proba.cols()), (3, 2));

    let mut wallace = BnnWallaceGrng::new(2, 64, 13);
    let proba = accel.predict_proba(&x, &mut wallace);
    assert_eq!((proba.rows(), proba.cols()), (3, 2));
}

#[test]
fn train_and_deploy_round_trip() {
    let x = Matrix::zeros(8, 6);
    let y: Vec<usize> = (0..8).map(|i| i % 2).collect();
    let (trained, accel) = train_and_deploy(tiny_bnn(), &x, &y, 1, 4).expect("deploy");
    assert_eq!(trained.params().layer_sizes(), &[6, 3, 2]);
    let mut eps = ParallelRlfGrng::new(4, 3);
    let acc = accel.evaluate(&x, &y, &mut eps);
    assert!((0.0..=1.0).contains(&acc));
}

#[test]
fn pipeline_trains_checkpoints_and_deploys() {
    let x = Matrix::zeros(8, 6);
    let y: Vec<usize> = (0..8).map(|i| i % 2).collect();
    let path = temp_path("pipeline_smoke.ckpt");
    let deployed = Pipeline::new(BnnConfig::new(&[6, 3, 2]))
        .seed(7)
        .epochs(2)
        .batch(4)
        .lr_schedule(LrSchedule::StepDecay { every: 1, gamma: 0.5 })
        .train(&x, &y)
        .expect("train")
        .checkpoint(&path)
        .expect("checkpoint")
        .deploy(Matrix::zeros(4, 6))
        .expect("deploy");
    assert_eq!(deployed.vibnn.classes(), 2);
    assert_eq!(deployed.reports.len(), 2);
    // The checkpoint file is a loadable trainer snapshot of the same
    // network.
    let restored = Bnn::load(&path).expect("load");
    for (a, b) in restored.layers().iter().zip(deployed.bnn.layers()) {
        assert_eq!(a.mu().data(), b.mu().data());
        assert_eq!(a.rho().data(), b.rho().data());
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn trainer_checkpoint_resumes_bit_identically() {
    // Train 2 epochs, checkpoint, then compare: (a) the original network
    // continuing uninterrupted vs (b) a network loaded from the file —
    // per-epoch reports and final parameters must match bit for bit.
    let mut rng_x = Matrix::zeros(24, 6);
    for (i, v) in rng_x.data_mut().iter_mut().enumerate() {
        *v = ((i * 37) % 17) as f32 / 17.0 - 0.5;
    }
    let y: Vec<usize> = (0..24).map(|i| i % 2).collect();
    let path = temp_path("resume.ckpt");

    let mut a = Bnn::new(BnnConfig::new(&[6, 4, 2]).with_lr(0.02), 13);
    for _ in 0..2 {
        a.train_epoch(&rng_x, &y, 8);
    }
    a.save(&path).expect("save");
    let mut b = Bnn::load(&path).expect("load");
    for _ in 0..2 {
        let ra = a.train_epoch(&rng_x, &y, 8);
        let rb = b.train_epoch(&rng_x, &y, 8);
        assert_eq!(ra, rb, "resumed epoch diverged from uninterrupted run");
    }
    for (la, lb) in a.layers().iter().zip(b.layers()) {
        assert_eq!(la.mu().data(), lb.mu().data());
        assert_eq!(la.rho().data(), lb.rho().data());
        assert_eq!(la.bias_mu(), lb.bias_mu());
        assert_eq!(la.bias_rho(), lb.bias_rho());
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn params_and_deployment_checkpoints_round_trip() {
    let bnn = tiny_bnn();
    let params_path = temp_path("params.ckpt");
    let deploy_path = temp_path("deploy.ckpt");
    // Params (kind 1).
    let p = bnn.params();
    p.save(&params_path).expect("save params");
    let q = vibnn::bnn::BnnParams::load(&params_path).expect("load params");
    for l in 0..p.layers() {
        assert_eq!(p.weight_mu[l].data(), q.weight_mu[l].data());
        assert_eq!(p.weight_sigma[l].data(), q.weight_sigma[l].data());
    }
    // Deployment (kind 3): loaded instance predicts bit-identically.
    let calib = Matrix::zeros(4, 6);
    let a = VibnnBuilder::new(p)
        .mc_samples(2)
        .calibration(calib.clone())
        .build()
        .expect("build");
    a.save(&deploy_path).expect("save deployment");
    let b = Vibnn::load(&deploy_path).expect("load deployment");
    let eps = vibnn::grng::ZigguratGrng::new(3);
    assert_eq!(
        a.predict_proba_parallel(&calib, &eps, 2).data(),
        b.predict_proba_parallel(&calib, &eps, 2).data()
    );
    // Kinds are enforced: a deployment file is not a trainer file.
    assert!(matches!(
        Bnn::load(&deploy_path),
        Err(vibnn::bnn::CheckpointError::WrongKind { .. })
    ));
    std::fs::remove_file(&params_path).ok();
    std::fs::remove_file(&deploy_path).ok();
}

#[test]
fn hw_re_exports_construct() {
    let cfg = AcceleratorConfig::paper();
    let sched = Schedule::new(&cfg, &[6, 3, 2]);
    assert!(sched.cycles_per_sample() > 0);

    let bnn = tiny_bnn();
    let q = QuantizedBnn::from_params(&bnn.params(), 8, &Matrix::zeros(4, 6));
    let mut sim = CycleAccelerator::new(cfg, q);
    let mut eps = BnnWallaceGrng::new(2, 64, 5);
    let out = sim.infer(Matrix::zeros(1, 6).row(0), &mut eps);
    assert_eq!(out.len(), 2);
}

#[test]
fn sampling_engine_api_resolves() {
    use vibnn::grng::{Buffered, StreamFork};
    let bnn = tiny_bnn();
    let accel = VibnnBuilder::new(bnn.params())
        .mc_samples(2)
        .calibration(Matrix::zeros(4, 6))
        .build()
        .expect("valid deployment");
    let x = Matrix::zeros(3, 6);
    let eps = ParallelRlfGrng::new(4, 17);
    // Parallel MC through the root-crate surface, bit-identical per
    // thread count.
    let a = accel.predict_proba_parallel(&x, &eps, 1);
    let b = accel.predict_proba_parallel(&x, &eps, 2);
    assert_eq!(a.data(), b.data());
    // Fork + buffered adapter resolve through the re-exports.
    let mut sub = Buffered::new(eps.fork(3));
    assert!(sub.next_gaussian().is_finite());
    assert!(vibnn::bnn::vibnn_threads() >= 1);
}

#[test]
fn serve_engine_api_resolves() {
    use vibnn::serve::{ServeConfig, ServeEngine};
    let accel = VibnnBuilder::new(tiny_bnn().params())
        .mc_samples(2)
        .calibration(Matrix::zeros(4, 6))
        .build()
        .expect("valid deployment");
    let engine = ServeEngine::new(accel, ServeConfig::default()).expect("engine");
    let results = engine.submit_batch(&Matrix::zeros(3, 6)).expect("serve");
    assert_eq!(results.len(), 3);
    assert!(results.iter().all(|r| r.proba.len() == 2));
    // Full determinism coverage lives in tests/serve_determinism.rs.
}

#[test]
fn subsystem_re_exports_resolve() {
    // One representative symbol per re-exported crate, so a dropped
    // dependency edge in the root manifest is caught by name.
    let _ = vibnn::rng::SplitMix64::new(1);
    let _ = vibnn::stats::Moments::default();
    let _ = vibnn::fixed::QFormat::new(8, 4);
    let ds = vibnn::datasets::parkinson_original(17);
    assert_eq!(ds.train_x.rows(), ds.train_y.len());
    let mut src = vibnn::grng::BoxMullerGrng::new(2);
    let mut buf = [0.0; 4];
    src.fill(&mut buf);
    assert!(buf.iter().all(|v| v.is_finite()));
}
