//! Smoke test for the `vibnn` public API surface: the root-crate types
//! (`Vibnn`, `VibnnBuilder`, `train_and_deploy`) and the subsystem
//! re-exports (`bnn`, `grng`, `hw`, …) must resolve and construct. This
//! guards the workspace wiring in `Cargo.toml` — a broken re-export or
//! dependency edge fails here before any behavioural test runs.

use vibnn::bnn::{Bnn, BnnConfig};
use vibnn::grng::{BnnWallaceGrng, GaussianSource, ParallelRlfGrng};
use vibnn::hw::{AcceleratorConfig, CycleAccelerator, QuantizedBnn, Schedule};
use vibnn::nn::Matrix;
use vibnn::{train_and_deploy, Vibnn, VibnnBuilder};

/// A tiny 6-3-2 network: big enough to exercise every layer type,
/// small enough that the whole smoke test runs in milliseconds.
fn tiny_bnn() -> Bnn {
    Bnn::new(BnnConfig::new(&[6, 3, 2]), 7)
}

#[test]
fn builder_constructs_vibnn_from_params() {
    let bnn = tiny_bnn();
    let calib = Matrix::zeros(4, 6);
    let accel: Vibnn = VibnnBuilder::new(bnn.params())
        .bit_len(8)
        .mc_samples(2)
        .calibration(calib)
        .build();
    assert_eq!(accel.classes(), 2);
    assert!(accel.images_per_second() > 0.0);
    assert!(accel.power_w() > 0.0);
}

#[test]
fn vibnn_predicts_with_both_paper_grngs() {
    let bnn = tiny_bnn();
    let accel = VibnnBuilder::new(bnn.params())
        .calibration(Matrix::zeros(4, 6))
        .build();
    let x = Matrix::zeros(3, 6);

    let mut rlf = ParallelRlfGrng::new(4, 11);
    let proba = accel.predict_proba(&x, &mut rlf);
    assert_eq!((proba.rows(), proba.cols()), (3, 2));

    let mut wallace = BnnWallaceGrng::new(2, 64, 13);
    let proba = accel.predict_proba(&x, &mut wallace);
    assert_eq!((proba.rows(), proba.cols()), (3, 2));
}

#[test]
fn train_and_deploy_round_trip() {
    let x = Matrix::zeros(8, 6);
    let y: Vec<usize> = (0..8).map(|i| i % 2).collect();
    let (trained, accel) = train_and_deploy(tiny_bnn(), &x, &y, 1, 4);
    assert_eq!(trained.params().layer_sizes(), &[6, 3, 2]);
    let mut eps = ParallelRlfGrng::new(4, 3);
    let acc = accel.evaluate(&x, &y, &mut eps);
    assert!((0.0..=1.0).contains(&acc));
}

#[test]
fn hw_re_exports_construct() {
    let cfg = AcceleratorConfig::paper();
    let sched = Schedule::new(&cfg, &[6, 3, 2]);
    assert!(sched.cycles_per_sample() > 0);

    let bnn = tiny_bnn();
    let q = QuantizedBnn::from_params(&bnn.params(), 8, &Matrix::zeros(4, 6));
    let mut sim = CycleAccelerator::new(cfg, q);
    let mut eps = BnnWallaceGrng::new(2, 64, 5);
    let out = sim.infer(Matrix::zeros(1, 6).row(0), &mut eps);
    assert_eq!(out.len(), 2);
}

#[test]
fn sampling_engine_api_resolves() {
    use vibnn::grng::{Buffered, StreamFork};
    let bnn = tiny_bnn();
    let accel = VibnnBuilder::new(bnn.params())
        .mc_samples(2)
        .calibration(Matrix::zeros(4, 6))
        .build();
    let x = Matrix::zeros(3, 6);
    let eps = ParallelRlfGrng::new(4, 17);
    // Parallel MC through the root-crate surface, bit-identical per
    // thread count.
    let a = accel.predict_proba_parallel(&x, &eps, 1);
    let b = accel.predict_proba_parallel(&x, &eps, 2);
    assert_eq!(a.data(), b.data());
    // Fork + buffered adapter resolve through the re-exports.
    let mut sub = Buffered::new(eps.fork(3));
    assert!(sub.next_gaussian().is_finite());
    assert!(vibnn::bnn::vibnn_threads() >= 1);
}

#[test]
fn subsystem_re_exports_resolve() {
    // One representative symbol per re-exported crate, so a dropped
    // dependency edge in the root manifest is caught by name.
    let _ = vibnn::rng::SplitMix64::new(1);
    let _ = vibnn::stats::Moments::default();
    let _ = vibnn::fixed::QFormat::new(8, 4);
    let ds = vibnn::datasets::parkinson_original(17);
    assert_eq!(ds.train_x.rows(), ds.train_y.len());
    let mut src = vibnn::grng::BoxMullerGrng::new(2);
    let mut buf = [0.0; 4];
    src.fill(&mut buf);
    assert!(buf.iter().all(|v| v.is_finite()));
}
