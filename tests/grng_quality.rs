//! Statistical quality gates across the GRNG family (Table 1 / Figure 15
//! invariants at test scale).

use vibnn::grng::{
    BnnWallaceGrng, BoxMullerGrng, CdfInversionGrng, GaussianSource, ParallelRlfGrng,
    SoftwareWallace, WallaceNss, ZigguratGrng,
};
use vibnn::stats::{ks_test_normal, runs_test, Moments};

fn stability(src: &mut dyn GaussianSource, n: usize) -> (f64, f64) {
    Moments::from_slice(&src.take_vec(n)).stability_errors()
}

#[test]
fn every_generator_is_marginally_stable() {
    let sources: Vec<(&str, Box<dyn GaussianSource>)> = vec![
        ("box-muller", Box::new(BoxMullerGrng::new(1))),
        ("ziggurat", Box::new(ZigguratGrng::new(2))),
        ("inversion", Box::new(CdfInversionGrng::new(3))),
        ("rlf-64", Box::new(ParallelRlfGrng::new(64, 4))),
        ("sw-wallace-4096", Box::new(SoftwareWallace::new(4096, 1, 5))),
        ("bnnwallace", Box::new(BnnWallaceGrng::new(8, 256, 6))),
        ("wallace-nss", Box::new(WallaceNss::new(256, 7))),
    ];
    for (name, mut src) in sources {
        let (mu, sigma) = stability(&mut src, 100_000);
        assert!(mu < 0.08, "{name}: mu error {mu}");
        // NSS's closed quads give it the worst sigma stability (paper
        // Table 1: 0.466); everything else should be well under 0.1.
        let bound = if name == "wallace-nss" { 0.5 } else { 0.1 };
        assert!(sigma < bound, "{name}: sigma error {sigma}");
    }
}

#[test]
fn reference_generators_pass_distribution_tests() {
    for (name, mut src) in [
        ("box-muller", Box::new(BoxMullerGrng::new(11)) as Box<dyn GaussianSource>),
        ("ziggurat", Box::new(ZigguratGrng::new(12))),
        ("inversion", Box::new(CdfInversionGrng::new(13))),
    ] {
        let xs = src.take_vec(50_000);
        assert!(ks_test_normal(&xs).passes(0.01), "{name} KS failed");
        assert!(runs_test(&xs).passes(0.01), "{name} runs failed");
    }
}

#[test]
fn nss_fails_where_bnnwallace_passes() {
    let mut nss = WallaceNss::new(256, 21);
    assert!(!runs_test(&nss.take_vec(100_000)).passes(0.05));
    let mut bw = BnnWallaceGrng::new(8, 256, 22);
    let _ = bw.take_vec(20_000); // warm-up mixing
    assert!(runs_test(&bw.take_vec(100_000)).passes(0.05));
}

#[test]
fn stability_improves_with_software_pool_size() {
    let err = |pool: usize| {
        let mut g = SoftwareWallace::new(pool, 1, 31);
        stability(&mut g, 200_000).1
    };
    let e256 = err(256);
    let e4096 = err(4096);
    assert!(e4096 <= e256 + 0.01, "pool 256 {e256} vs 4096 {e4096}");
}
