//! Pins the online-loop determinism contract: a full run — stream →
//! rounds → triggers → swaps → served results — is bit-identical across
//! thread/worker counts and across a kill-and-resume at an arbitrary
//! round boundary.

use std::path::PathBuf;

use vibnn::datasets::{Drift, DriftStream, SynthSpec};
use vibnn::online::{OnlineConfig, OnlineEventKind, OnlineRuntime};

const ROUNDS: usize = 8;

fn stream() -> DriftStream {
    DriftStream::new(
        SynthSpec::new("online-det", 6, 2, 10, 10).with_separability(2.5),
        0xD21F7,
    )
    .with(Drift::CovariateShift { magnitude: 1.5 }, 3, 3)
    .with(Drift::Rotation { radians: 1.4 }, 6, 4)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vibnn_online_det_{}_{}",
        tag,
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(dir: &PathBuf, threads: usize, workers: usize) -> OnlineConfig {
    let mut cfg = OnlineConfig::new(dir);
    cfg.rounds = ROUNDS;
    cfg.serve_rows = 24;
    cfg.train_rows = 32;
    cfg.hidden = vec![8];
    cfg.initial_epochs = 4;
    cfg.epochs_per_round = 2;
    cfg.train_batch = 8;
    cfg.threads = threads;
    cfg.mc_samples = 4;
    cfg.trigger_window = 48;
    // The rotation ramping in from stream step 6 should spike entropy
    // past this; the periodic fallback guarantees at least one retrain
    // regardless.
    cfg.entropy_threshold = 0.15;
    cfg.periodic_fallback = 4;
    cfg.cluster.workers = workers;
    cfg
}

#[test]
fn full_run_is_bit_identical_across_thread_and_worker_counts() {
    let reference = {
        let dir = scratch("t1w1");
        let report = OnlineRuntime::new(config(&dir, 1, 1), stream())
            .unwrap()
            .run()
            .unwrap();
        std::fs::remove_dir_all(&dir).ok();
        report
    };
    assert_eq!(reference.rounds.len(), ROUNDS);
    for (threads, workers) in [(2, 1), (4, 2), (1, 4)] {
        let dir = scratch(&format!("t{threads}w{workers}"));
        let report = OnlineRuntime::new(config(&dir, threads, workers), stream())
            .unwrap()
            .run()
            .unwrap();
        std::fs::remove_dir_all(&dir).ok();
        // Full-report equality: every per-round digest, accuracy,
        // entropy aggregate, trigger firing, and swap point — f64s
        // compared exactly.
        assert_eq!(report, reference, "threads={threads} workers={workers}");
    }
}

#[test]
fn kill_and_resume_at_any_round_boundary_is_bit_identical() {
    let reference = {
        let dir = scratch("ref");
        let report = OnlineRuntime::new(config(&dir, 2, 2), stream())
            .unwrap()
            .run()
            .unwrap();
        std::fs::remove_dir_all(&dir).ok();
        report
    };
    for kill_after in [1usize, 4, 6] {
        let dir = scratch(&format!("kill{kill_after}"));
        let cfg = config(&dir, 2, 2);
        let mut rt = OnlineRuntime::new(cfg.clone(), stream()).unwrap();
        rt.run_rounds(kill_after).unwrap();
        assert_eq!(rt.rounds_done(), kill_after as u64);
        // "Kill": tear the process-local state down without applying
        // any in-flight retrain; only the crash-safe checkpoints
        // survive.
        rt.shutdown();
        let report = OnlineRuntime::resume(cfg, stream()).unwrap().run().unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(report, reference, "killed after round {kill_after}");
    }
}

#[test]
fn uncertainty_triggers_fire_and_swaps_follow() {
    let dir = scratch("events");
    let report = OnlineRuntime::new(config(&dir, 1, 1), stream())
        .unwrap()
        .run()
        .unwrap();
    std::fs::remove_dir_all(&dir).ok();
    let triggers = report
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                OnlineEventKind::UncertaintyTrigger | OnlineEventKind::PeriodicTrigger
            )
        })
        .count() as u64;
    let swaps = report
        .events
        .iter()
        .filter(|e| e.kind == OnlineEventKind::Swap)
        .count() as u64;
    assert!(triggers >= 1, "no retrain ever fired: {:?}", report.events);
    assert_eq!(swaps, report.swaps);
    assert_eq!(swaps, triggers, "every trigger must land as a rollout");
    // Drift is injected from round 3: at least one *uncertainty* (not
    // just periodic) trigger should fire on this workload.
    assert!(
        report
            .events
            .iter()
            .any(|e| e.kind == OnlineEventKind::UncertaintyTrigger),
        "covariate shift never tripped the entropy threshold: {:?}",
        report.events
    );
    // Each swap event follows its trigger: swap k applies at a round
    // strictly after trigger k fires, and versions count up.
    let trigger_rounds: Vec<u64> = report
        .events
        .iter()
        .filter(|e| e.kind != OnlineEventKind::Swap)
        .map(|e| e.round)
        .collect();
    let swap_events: Vec<_> = report
        .events
        .iter()
        .filter(|e| e.kind == OnlineEventKind::Swap)
        .collect();
    for (k, swap) in swap_events.iter().enumerate() {
        assert!(swap.round > trigger_rounds[k]);
        assert_eq!(swap.version, k as u64 + 1);
    }
    // Round reports attribute serving versions monotonically.
    let mut last = 0;
    for r in &report.rounds {
        assert!(r.serving_version >= last);
        last = r.serving_version;
    }
}
