//! Protocol-level fault injection against a **live** ingest server:
//! truncated frames, hostile length prefixes, bad magic/version/kind,
//! mid-request disconnects, slow-loris stalls, and queue-full recovery.
//! The contract under every attack: a typed error reply or a clean
//! drop — never a panic — and other clients keep being served.
//!
//! Run explicitly by `ci.sh`. Every test skips gracefully when the
//! sandbox forbids loopback sockets.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use vibnn::bnn::checkpoint::{read_frame, write_frame, WireWriter, MAX_FRAME_LEN};
use vibnn::bnn::{Bnn, BnnConfig};
use vibnn::ingest::{decode_reply, Reply, WireError, KIND_PREDICT};
use vibnn::nn::Matrix;
use vibnn::{
    ClusterConfig, ClusterEngine, IngestClient, IngestConfig, IngestServer, Priority, Vibnn,
    VibnnBuilder, VibnnError,
};

const FEATURES: usize = 3;

fn tiny_vibnn() -> Vibnn {
    let bnn = Bnn::new(BnnConfig::new(&[FEATURES, 6, 2]).with_sigma_init(0.1), 11);
    VibnnBuilder::new(bnn.params())
        .mc_samples(3)
        .calibration(Matrix::zeros(2, FEATURES))
        .build()
        .expect("valid deployment")
}

/// Binds a loopback server, or `None` when the sandbox forbids sockets
/// (the suite then passes vacuously, as ci.sh expects).
fn try_server(cluster_cfg: ClusterConfig, ingest_cfg: IngestConfig) -> Option<IngestServer> {
    let cluster = ClusterEngine::new(tiny_vibnn(), cluster_cfg).expect("valid cluster");
    match IngestServer::bind(cluster, "127.0.0.1:0", ingest_cfg) {
        Ok(server) => Some(server),
        Err(e) => {
            eprintln!("skipping ingest protocol test: cannot bind loopback ({e})");
            None
        }
    }
}

fn default_server() -> Option<IngestServer> {
    try_server(
        ClusterConfig::default(),
        IngestConfig {
            read_timeout: Duration::from_millis(500),
            ..IngestConfig::default()
        },
    )
}

/// Reads one reply frame off a raw socket.
fn read_reply(stream: &mut TcpStream) -> Option<Reply> {
    let envelope = read_frame(stream, MAX_FRAME_LEN).ok()??;
    decode_reply(&envelope).ok()
}

/// The liveness probe used after every attack: a fresh well-behaved
/// client must still get served.
fn assert_still_serving(server: &IngestServer) {
    let mut client = IngestClient::connect(server.local_addr()).expect("connect");
    let result = client.predict(&[0.0; FEATURES]).expect("predict");
    assert_eq!(result.proba.len(), 2);
}

#[test]
fn hostile_length_prefixes_get_typed_error_then_clean_close() {
    let Some(server) = default_server() else {
        return;
    };
    // Zero length prefix, oversized length prefix: both rejected before
    // any allocation, with a typed protocol error where possible.
    for prefix in [0u32, u32::MAX, MAX_FRAME_LEN + 1] {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(&prefix.to_le_bytes()).expect("write");
        // For nonzero prefixes the server would wait for the payload if
        // it trusted the length; prove it does not by sending nothing
        // more. Close our write half so a (buggy) trusting read would
        // see EOF rather than hang.
        stream.shutdown(Shutdown::Write).ok();
        match read_reply(&mut stream) {
            Some(Reply::Error { error, .. }) => {
                assert!(matches!(error, WireError::Protocol(_)), "{error:?}")
            }
            Some(other) => panic!("prefix {prefix:#x}: unexpected reply {other:?}"),
            None => {} // clean drop is also within contract
        }
        // The connection is closed afterwards: next read sees EOF.
        let mut buf = [0u8; 1];
        assert_eq!(stream.read(&mut buf).unwrap_or(0), 0, "prefix {prefix:#x}");
        assert_still_serving(&server);
    }
    assert!(server.metrics().protocol_errors >= 3);
    server.shutdown();
}

#[test]
fn truncated_frame_is_a_typed_error_not_a_hang() {
    let Some(server) = default_server() else {
        return;
    };
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // Promise 100 bytes, deliver 10, then half-close: the server must
    // answer a typed error (or drop), not wait forever.
    stream.write_all(&100u32.to_le_bytes()).expect("write");
    stream.write_all(&[0xAB; 10]).expect("write");
    stream.shutdown(Shutdown::Write).ok();
    if let Some(reply) = read_reply(&mut stream) {
        assert!(
            matches!(
                reply,
                Reply::Error {
                    error: WireError::Protocol(_),
                    ..
                }
            ),
            "{reply:?}"
        );
    }
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn bad_magic_version_and_kind_keep_the_connection_alive() {
    let Some(server) = default_server() else {
        return;
    };
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // Three malformed envelopes inside well-formed frames: the stream
    // stays synchronized, so each gets a typed error and the connection
    // survives all of them.
    let bad_magic = b"NOPE\x01\x00\x10rest".to_vec();
    let bad_version = {
        let mut env = b"VIBN".to_vec();
        env.extend_from_slice(&99u16.to_le_bytes());
        env.push(KIND_PREDICT);
        env
    };
    let bad_kind = {
        let mut w = WireWriter::new(0x7F);
        w.u64(42);
        w.into_bytes()
    };
    for (what, envelope) in [
        ("magic", bad_magic),
        ("version", bad_version),
        ("kind", bad_kind),
    ] {
        write_frame(&mut stream, &envelope).expect("write frame");
        match read_reply(&mut stream) {
            Some(Reply::Error { error, .. }) => {
                assert!(matches!(error, WireError::Protocol(_)), "bad {what}")
            }
            other => panic!("bad {what}: expected typed error, got {other:?}"),
        }
    }
    // The unknown-kind envelope carried a readable tag; the error reply
    // must echo it so the client can correlate.
    let mut w = WireWriter::new(0x70);
    w.u64(4242);
    write_frame(&mut stream, &w.into_bytes()).expect("write frame");
    match read_reply(&mut stream) {
        Some(Reply::Error { tag, .. }) => assert_eq!(tag, 4242),
        other => panic!("expected tagged error, got {other:?}"),
    }
    // Same connection, now a well-formed request: still served.
    drop(stream);
    let mut client = IngestClient::connect(server.local_addr()).expect("connect");
    assert_eq!(client.predict(&[0.0; FEATURES]).expect("predict").proba.len(), 2);
    assert!(server.metrics().protocol_errors >= 4);
    server.shutdown();
}

#[test]
fn mid_request_disconnect_never_panics_the_server() {
    let Some(server) = default_server() else {
        return;
    };
    for cut_after in [1usize, 3, 4, 7] {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut frame = Vec::new();
        let mut w = WireWriter::new(KIND_PREDICT);
        w.u64(1);
        w.u8(0);
        w.u64(0);
        w.dim(FEATURES);
        w.f32s(&[0.0; FEATURES]);
        write_frame(&mut frame, &w.into_bytes()).expect("encode");
        stream.write_all(&frame[..cut_after]).expect("write");
        drop(stream); // vanish mid-frame
        assert_still_serving(&server);
    }
    server.shutdown();
}

#[test]
fn slow_loris_is_dropped_after_the_read_timeout() {
    let Some(server) = try_server(
        ClusterConfig::default(),
        IngestConfig {
            read_timeout: Duration::from_millis(200),
            ..IngestConfig::default()
        },
    ) else {
        return;
    };
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // Drip two bytes of the length prefix, then stall past the timeout.
    stream.write_all(&[0x08, 0x00]).expect("write");
    std::thread::sleep(Duration::from_millis(600));
    // The server must have dropped us (EOF or reset on the next read) —
    // and must still serve everyone else while we stalled.
    let mut buf = [0u8; 16];
    match stream.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => {
            // At most a best-effort error frame before the close.
            assert!(n <= buf.len());
            assert_eq!(stream.read(&mut [0u8; 1]).unwrap_or(0), 0);
        }
    }
    assert_still_serving(&server);
    assert!(server.metrics().protocol_errors >= 1);
    server.shutdown();
}

#[test]
fn queue_full_travels_typed_and_the_connection_recovers() {
    // A deliberately tiny cluster queue: a 32-row batch must trip
    // QueueFull for at least one row, the error must carry the real
    // depth/capacity payload over the wire, and the same connection
    // must serve a plain predict right afterwards.
    let Some(server) = try_server(
        ClusterConfig {
            replicas: 1,
            max_batch: 1,
            max_queue: 2,
            workers: 1,
            spill: false,
            batch_skip_bound: 4,
            backend: None,
            policy: None,
        },
        IngestConfig::default(),
    ) else {
        return;
    };
    let mut client = IngestClient::connect(server.local_addr()).expect("connect");
    let rows: Vec<Vec<f32>> = (0..32).map(|i| vec![i as f32 * 0.01; FEATURES]).collect();
    let mut saw_queue_full = false;
    for _ in 0..5 {
        let outcomes = client
            .predict_batch_with(&rows, Priority::Batch, 0)
            .expect("batch round-trip");
        assert_eq!(outcomes.len(), rows.len());
        for outcome in &outcomes {
            match outcome {
                Ok(result) => assert_eq!(result.proba.len(), 2),
                Err(VibnnError::QueueFull { depth, capacity }) => {
                    assert_eq!(*capacity, 2, "configured capacity must travel the wire");
                    assert!(*depth >= 2, "depth {depth} below capacity");
                    saw_queue_full = true;
                }
                Err(e) => panic!("unexpected row error: {e}"),
            }
        }
        if saw_queue_full {
            break;
        }
    }
    assert!(
        saw_queue_full,
        "32 rows against a 2-deep queue never tripped backpressure"
    );
    // Reply-after-QueueFull recovery: the same connection still serves.
    let result = client.predict(&[0.5; FEATURES]).expect("recovery predict");
    assert_eq!(result.proba.len(), 2);
    let metrics = client.metrics().expect("metrics");
    assert!(metrics.rejected >= 1);
    assert_eq!(metrics.capacity, 2);
    server.shutdown();
}

#[test]
fn shutdown_request_stops_accepting_but_settles_in_flight_work() {
    let Some(server) = default_server() else {
        return;
    };
    let addr = server.local_addr();
    let mut client = IngestClient::connect(addr).expect("connect");
    client.predict(&[0.1; FEATURES]).expect("predict");
    client.shutdown_server().expect("shutdown ack");
    assert!(server.is_stopping());
    // The returned cluster is intact and still serves in-process.
    let cluster = server.shutdown();
    let id = cluster.submit(vec![0.0; FEATURES]).expect("submit");
    assert!(cluster.wait(id).is_ok());
    cluster.shutdown();
}
