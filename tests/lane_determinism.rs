//! The fixed-lane accumulation contract (PR 7), pinned end to end:
//!
//! One accumulation rule governs every float reduction in the workspace —
//! `LANES` independent partial-sum chains, element `k` belonging to lane
//! `k % LANES`, lanes folded in ascending lane order. Because lane
//! membership is a function of the data index alone (never of the thread
//! count or schedule), every path built on the rule is bit-identical at
//! 1/2/4 threads. The retained pre-lane single-chain kernels
//! (`vibnn_nn::matrix::single_chain`, the `single-chain-oracle` feature)
//! serve as the cross-check oracle: same terms, different association, so
//! the two agree within floating-point reassociation tolerance.
//!
//! Run explicitly by `ci.sh`.

use proptest::prelude::*;
use vibnn::bnn::{reduce_mean, replica_source, Bnn, BnnConfig};
use vibnn::cluster::{ClusterConfig, ClusterEngine};
use vibnn::grng::ZigguratGrng;
use vibnn::hw::QuantizedBnn;
use vibnn::nn::matrix::single_chain;
use vibnn::nn::{GaussianInit, Matrix, LANES};
use vibnn::serve::{ServeConfig, ServeEngine};
use vibnn::{Vibnn, VibnnBuilder};

fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = GaussianInit::new(seed);
    let mut m = Matrix::zeros(rows, cols);
    for v in m.data_mut() {
        *v = rng.next_gaussian() as f32;
    }
    m
}

/// Relative-error agreement between a lane kernel and the single-chain
/// oracle: identical terms, different association order.
fn assert_close(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!(got.rows(), want.rows(), "{what}: row mismatch");
    assert_eq!(got.cols(), want.cols(), "{what}: col mismatch");
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        let tol = 1e-4f32.max(w.abs() * 1e-4);
        assert!(
            (g - w).abs() <= tol,
            "{what}: element {i} diverged: lane {g} vs single-chain {w}"
        );
    }
}

#[test]
fn lane_kernels_agree_with_single_chain_oracle() {
    // Inner dimensions straddling multiples of LANES exercise both the
    // strip loops and the scalar tails.
    for (m, k, n, seed) in [(3, 5, 4, 1u64), (7, 64, 9, 2), (5, 131, 12, 3), (1, 200, 17, 4)] {
        let a = filled(m, k, seed);
        let b = filled(k, n, seed + 100);
        assert_close(&a.matmul(&b), &single_chain::matmul(&a, &b), "matmul");
        let at = filled(k, m, seed + 200);
        assert_close(&at.t_matmul(&b), &single_chain::t_matmul(&at, &b), "t_matmul");
        let bt = filled(n, k, seed + 300);
        assert_close(&a.matmul_t(&bt), &single_chain::matmul_t(&a, &bt), "matmul_t");
        let cols = single_chain::col_sums(&a);
        let mut got = vec![0.0f32; a.cols()];
        a.col_sums_into(&mut got);
        for (i, (g, w)) in got.iter().zip(&cols).enumerate() {
            let tol = 1e-4f32.max(w.abs() * 1e-4);
            assert!((g - w).abs() <= tol, "col_sums element {i}: {g} vs {w}");
        }
    }
}

#[test]
fn matmul_t_matches_the_explicit_lane_reference_bitwise() {
    // The contract itself, not just oracle closeness: element k of each
    // dot product goes to lane k % LANES, lanes fold in ascending order.
    let a = filled(4, 77, 11);
    let b = filled(6, 77, 12);
    let got = a.matmul_t(&b);
    for i in 0..a.rows() {
        for j in 0..b.rows() {
            let mut lanes = [0.0f32; LANES];
            for k in 0..a.cols() {
                lanes[k % LANES] += a[(i, k)] * b[(j, k)];
            }
            let mut want = 0.0f32;
            for l in lanes {
                want += l;
            }
            assert_eq!(
                got[(i, j)].to_bits(),
                want.to_bits(),
                "dot ({i},{j}) broke the lane rule"
            );
        }
    }
}

fn toy_data(n: usize, features: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let x = filled(n, features, seed);
    let y = (0..n)
        .map(|r| {
            let s: f32 = x.row(r).iter().sum();
            usize::from(s > 0.0) + usize::from(s > 1.5)
        })
        .collect();
    (x, y)
}

/// Every trained tensor, bit-exact.
fn param_bits(bnn: &Bnn) -> Vec<u32> {
    let p = bnn.params();
    let mut bits = Vec::new();
    for m in p.weight_mu.iter().chain(&p.weight_sigma) {
        bits.extend(m.data().iter().map(|v| v.to_bits()));
    }
    for v in p.bias_mu.iter().chain(&p.bias_sigma) {
        bits.extend(v.iter().map(|x| x.to_bits()));
    }
    bits
}

#[test]
fn training_is_bit_identical_across_threads_beyond_lane_count() {
    // 160-row batches split into 10 shards (> LANES) and 10 MC samples
    // (> LANES): both folds in the gradient reduction take the strided
    // lane path rather than the ≤LANES degenerate path.
    let (x, y) = toy_data(320, 6, 7);
    let train = |threads: usize| {
        let mut bnn = Bnn::new(
            BnnConfig::new(&[6, 24, 3]).with_lr(5e-3).with_kl_weight(1e-3),
            19,
        );
        let reports: Vec<_> = (0..2)
            .map(|_| bnn.train_epoch_mc_threads(&x, &y, 160, 10, threads))
            .collect();
        (reports, param_bits(&bnn))
    };
    let reference = train(1);
    for threads in [2usize, 4] {
        let got = train(threads);
        assert_eq!(got.0, reference.0, "{threads} threads: losses diverged");
        assert_eq!(got.1, reference.1, "{threads} threads: parameters diverged");
    }
}

/// A lightly trained network for the inference-path checks.
fn trained() -> Bnn {
    let (x, y) = toy_data(96, 5, 23);
    let mut bnn = Bnn::new(BnnConfig::new(&[5, 16, 3]).with_lr(0.02), 29);
    for _ in 0..3 {
        bnn.train_epoch_mc_threads(&x, &y, 32, 2, 1);
    }
    bnn
}

#[test]
fn software_mc_inference_is_bit_identical_across_threads() {
    let bnn = trained();
    let x = filled(9, 5, 31);
    // 11 samples > LANES: reduce_mean takes the lane path.
    let eps = ZigguratGrng::new(37);
    let reference = bnn.predict_proba_mc_parallel(&x, 11, &eps, 1);
    for threads in [2usize, 4] {
        let got = bnn.predict_proba_mc_parallel(&x, 11, &eps, threads);
        assert_eq!(
            got.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            reference.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "software MC inference diverged at {threads} threads"
        );
    }
}

#[test]
fn quantized_hw_mc_inference_is_bit_identical_across_threads() {
    let bnn = trained();
    let x = filled(9, 5, 41);
    let q = QuantizedBnn::from_params(&bnn.params(), 8, &x);
    let eps = ZigguratGrng::new(43);
    let reference = q.predict_proba_mc_parallel(&x, 11, &eps, 1);
    for threads in [2usize, 4] {
        let got = q.predict_proba_mc_parallel(&x, 11, &eps, threads);
        assert_eq!(
            got.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            reference.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "quantized MC inference diverged at {threads} threads"
        );
    }
}

fn deployed() -> Vibnn {
    let bnn = trained();
    let calib = filled(16, 5, 47);
    VibnnBuilder::new(bnn.params())
        .mc_samples(11)
        .calibration(calib)
        .build()
        .expect("valid deployment")
}

#[test]
fn serving_inherits_the_lane_contract() {
    const EPS_SEED: u64 = 0xAB5;
    let x = filled(10, 5, 53);
    let reference = deployed().predict_proba_parallel(&x, &ZigguratGrng::new(EPS_SEED), 1);
    for workers in [1usize, 2, 4] {
        let engine = ServeEngine::with_eps(
            deployed(),
            ServeConfig {
                max_batch: 4,
                max_queue: 64,
                workers,
                backend: None,
                policy: None,
            },
            ZigguratGrng::new(EPS_SEED),
        )
        .expect("valid serve config");
        let results = engine.submit_batch(&x).expect("serve");
        for (r, res) in results.iter().enumerate() {
            assert_eq!(
                res.proba.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.row(r).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "served row {r} diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn cluster_inherits_the_lane_contract() {
    const CLUSTER_SEED: u64 = 0xC1A7;
    let x = filled(8, 5, 59);
    // The reference: one-shot batched inference with the cluster's
    // derived replica ε source.
    let reference = deployed().predict_proba_parallel(
        &x,
        &replica_source(&ZigguratGrng::new(CLUSTER_SEED)),
        1,
    );
    for replicas in [1usize, 2] {
        let cluster = ClusterEngine::with_eps(
            deployed(),
            ClusterConfig {
                replicas,
                max_batch: 4,
                workers: 2,
                ..ClusterConfig::default()
            },
            ZigguratGrng::new(CLUSTER_SEED),
        )
        .expect("valid cluster config");
        let ids: Vec<u64> = (0..x.rows())
            .map(|r| cluster.submit(x.row(r).to_vec()).expect("submit"))
            .collect();
        for (r, id) in ids.into_iter().enumerate() {
            let res = cluster.wait(id).expect("result");
            assert_eq!(
                res.proba.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                reference.row(r).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "cluster row {r} diverged at {replicas} replicas"
            );
        }
        cluster.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lane assignment is a function of the data index alone: for any
    /// draw count (straddling LANES) the production mean equals an
    /// explicit per-element lane fold, bitwise.
    #[test]
    fn reduce_mean_lane_assignment_is_schedule_independent(
        n in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let draws: Vec<Matrix> = (0..n).map(|k| filled(3, 2, seed * 100 + k as u64)).collect();
        let got = reduce_mean(&draws);
        for i in 0..6 {
            let mut lanes = [0.0f32; LANES];
            for (k, d) in draws.iter().enumerate() {
                lanes[k % LANES] += d.data()[i];
            }
            let mut want = 0.0f32;
            for l in lanes {
                want += l;
            }
            // `reduce_mean` multiplies by the reciprocal (Matrix::scale);
            // a literal division rounds differently.
            want *= 1.0 / n as f32;
            prop_assert_eq!(
                got.data()[i].to_bits(),
                want.to_bits(),
                "element {} broke the lane rule at n={}",
                i,
                n
            );
        }
    }

    /// The threaded MC ensemble gives every schedule (any thread count)
    /// the same bits as the serial one.
    #[test]
    fn mc_ensemble_is_schedule_independent(
        samples in 1usize..20,
        threads in 2usize..9,
    ) {
        let bnn = trained();
        let x = filled(4, 5, 61);
        let eps = ZigguratGrng::new(67);
        let reference = bnn.predict_proba_mc_parallel(&x, samples, &eps, 1);
        let got = bnn.predict_proba_mc_parallel(&x, samples, &eps, threads);
        prop_assert_eq!(
            got.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            reference.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
