//! Scaled-down smoke runs of every experiment driver (the binaries run the
//! full-scale versions).

use vibnn::experiments::{
    fig15, fig16, fig17, fig18, table1, table2, table3, table4, table5, table6, table7,
    LearnScale,
};

#[test]
fn grng_tables_smoke() {
    let t1 = table1(30_000, 1);
    assert_eq!(t1.len(), 6);
    assert!(t1.iter().all(|r| r.mu_error.is_finite() && r.sigma_error >= 0.0));
    let f15 = fig15(2, 20_000, 2);
    assert_eq!(f15.len(), 7);
    assert!(f15.iter().all(|r| (0.0..=1.0).contains(&r.pass_rate)));
}

#[test]
fn hardware_tables_smoke() {
    assert_eq!(table2().len(), 2);
    assert!(table3().contains("RLF"));
    let t4 = table4();
    assert_eq!(t4.len(), 2);
    assert!(t4.iter().all(|r| r.alm_frac > 0.0 && r.alm_frac < 1.0));
    let t5 = table5();
    assert_eq!(t5.len(), 4);
    // FPGA rows dominate the CPU anchor.
    assert!(t5[2].throughput > t5[0].throughput);
}

#[test]
fn learning_experiments_smoke() {
    let scale = LearnScale::smoke();
    let f16 = fig16(scale, 3);
    assert_eq!(f16.len(), 9);
    let f17 = fig17(scale, 4);
    assert!(f17.len() >= 6);
    let (f18, float_acc) = fig18(scale, 5);
    assert_eq!(f18.len(), 9);
    assert!(float_acc > 0.2);
    // Accuracy at 16 bits should be at least as good as at 3 bits.
    let acc3 = f18.iter().find(|p| p.bits == 3).unwrap().accuracy;
    let acc16 = f18.iter().find(|p| p.bits == 16).unwrap().accuracy;
    assert!(acc16 >= acc3 - 0.05, "3-bit {acc3} vs 16-bit {acc16}");
    let t6 = table6(scale, 6);
    assert_eq!(t6.len(), 3);
}

#[test]
#[ignore = "several minutes; run explicitly with --ignored"]
fn table7_all_datasets() {
    let mut scale = LearnScale::smoke();
    scale.hidden = 32;
    let rows = table7(scale, 7);
    assert_eq!(rows.len(), 9);
    for r in &rows {
        assert!(r.fnn > 0.3 && r.bnn > 0.3 && r.vibnn > 0.2, "{r:?}");
    }
}
