//! Property-based tests (proptest) on the core invariants.

use proptest::prelude::*;
use vibnn::fixed::{choose_format, MacAccumulator, QFormat};
use vibnn::grng::WallaceUnit;
use vibnn::hw::{AcceleratorConfig, Schedule};
use vibnn::rng::{BitVec, CircularLfsr, RlfLogic, RlfMode, SplitMix64};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The RAM-based linear feedback logic is bit-exact to the shifting
    /// circular LFSR for any non-zero seed (paper Section 4.1.2's claim).
    #[test]
    fn rlf_equals_circular_lfsr(seed in 1u64.., steps in 1usize..300) {
        let mut src = SplitMix64::new(seed);
        let bits = BitVec::random(255, &mut src);
        let mut rlf = RlfLogic::new(bits, RlfMode::Simple);
        let mut reference = rlf.to_circular();
        for _ in 0..steps {
            prop_assert_eq!(rlf.step(), reference.step());
        }
        prop_assert_eq!(rlf.state_from_head(), reference.state().clone());
    }

    /// One combined RLF step is exactly two simple steps (eq. 12 = 2x eq. 11).
    #[test]
    fn combined_equals_two_simple(seed in 1u64.., steps in 1usize..200) {
        let mut src = SplitMix64::new(seed);
        let bits = BitVec::random(255, &mut src);
        let mut combined = RlfLogic::new(bits.clone(), RlfMode::Combined);
        let mut twice = RlfLogic::new(bits, RlfMode::Simple);
        for _ in 0..steps {
            let a = combined.step();
            twice.step();
            let b = twice.step();
            prop_assert_eq!(a, b);
        }
    }

    /// The circular LFSR never reaches the all-zero state and its popcount
    /// changes by at most the tap count per step.
    #[test]
    fn lfsr_never_zero_and_bounded_delta(seed in 1u64.., steps in 1usize..500) {
        let mut src = SplitMix64::new(seed);
        let mut lfsr = CircularLfsr::random(255, &[250, 252, 253], &mut src);
        let mut prev = lfsr.state().count_ones() as i64;
        for _ in 0..steps {
            let c = i64::from(lfsr.step());
            prop_assert!(c > 0, "reached all-zero state");
            prop_assert!((c - prev).abs() <= 3);
            prev = c;
        }
    }

    /// The Wallace 4x4 transform preserves the sum of squares exactly
    /// (H/2 is orthogonal), for any finite quad.
    #[test]
    fn wallace_transform_preserves_energy(
        a in -100.0f64..100.0, b in -100.0f64..100.0,
        c in -100.0f64..100.0, d in -100.0f64..100.0,
        loops in 1u32..16,
    ) {
        let x = [a, b, c, d];
        let y = WallaceUnit::transform_loops(x, loops);
        let before: f64 = x.iter().map(|v| v * v).sum();
        let after: f64 = y.iter().map(|v| v * v).sum();
        prop_assert!((before - after).abs() <= 1e-9 * before.max(1.0));
    }

    /// Quantize/dequantize round-trips within half an LSB for in-range
    /// values, and saturates (not wraps) out-of-range values.
    #[test]
    fn fixed_point_roundtrip_and_saturation(
        total in 3u32..=16,
        x in -1000.0f64..1000.0,
    ) {
        let fmt = QFormat::new(total, total / 2);
        let raw = fmt.quantize(x);
        prop_assert!(raw >= fmt.min_raw() && raw <= fmt.max_raw());
        let back = fmt.dequantize(raw);
        if x.abs() < fmt.max_value() {
            prop_assert!((back - x).abs() <= fmt.lsb() / 2.0 + 1e-12);
        } else {
            // Saturation: sign preserved, magnitude clamped to the rail.
            prop_assert!(back.signum() == x.signum());
        }
    }

    /// MAC accumulation is exact: matches i128 arithmetic for any operand
    /// sequence.
    #[test]
    fn mac_accumulator_is_exact(pairs in prop::collection::vec((-128i32..=127, -128i32..=127), 1..64)) {
        let mut acc = MacAccumulator::new();
        let mut expect: i128 = 0;
        for &(a, b) in &pairs {
            acc.mac(a, b);
            expect += i128::from(a) * i128::from(b);
        }
        prop_assert_eq!(i128::from(acc.raw()), expect);
        prop_assert_eq!(acc.ops() as usize, pairs.len());
    }

    /// choose_format always covers the requested range with the maximum
    /// fraction width that does so.
    #[test]
    fn choose_format_covers_and_is_tight(total in 3u32..=16, max in 0.01f64..100.0) {
        let fmt = choose_format(total, max);
        let representable = f64::from((1i64 << (total - 1)) as i32 - 1);
        if max <= representable {
            prop_assert!(fmt.max_value() >= max);
            // One more fraction bit would no longer cover the range.
            if fmt.frac_bits() + 1 < total {
                let tighter = QFormat::new(total, fmt.frac_bits() + 1);
                prop_assert!(tighter.max_value() < max);
            }
        } else {
            // Out-of-gamut ranges fall back to the widest integer format.
            prop_assert_eq!(fmt.frac_bits(), 0);
        }
    }

    /// Schedule cycles are monotone in layer width and exactly linear in
    /// MC samples, for any valid geometry.
    #[test]
    fn schedule_monotonicity(
        t in 1usize..8,
        n_pow in 1u32..4,
        width in 8usize..256,
        mc in 1usize..8,
    ) {
        let n = 1usize << n_pow; // 2,4,8
        let cfg = AcceleratorConfig {
            pe_sets: t,
            pes_per_set: n,
            pe_inputs: n,
            max_word_size: 8192,
            mc_samples: mc,
            ..AcceleratorConfig::paper()
        };
        let base = Schedule::new(&cfg, &[width, width, 4]);
        let wider = Schedule::new(&cfg, &[width * 2, width, 4]);
        prop_assert!(wider.cycles_per_sample() >= base.cycles_per_sample());
        prop_assert_eq!(base.cycles_per_image(), base.cycles_per_sample() * mc as u64);
        prop_assert!(base.utilization() > 0.0 && base.utilization() <= 1.0);
    }

    /// Stratified fractions keep per-class representation for any
    /// fraction.
    #[test]
    fn stratified_fraction_keeps_classes(frac in 0.01f64..1.0, seed in 0u64..1000) {
        use vibnn::nn::Matrix;
        let n = 80;
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::new();
        for r in 0..n {
            x[(r, 0)] = r as f32;
            y.push(r % 4);
        }
        let (sx, sy) = vibnn::datasets::stratified_fraction(&x, &y, frac, 4, seed);
        prop_assert_eq!(sx.rows(), sy.len());
        let mut seen = [false; 4];
        for &l in &sy { seen[l] = true; }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
