//! Property-based tests (proptest) on the core invariants.

use std::io::Cursor;

use proptest::prelude::*;
use vibnn::bnn::checkpoint::{read_frame, write_frame, MAX_FRAME_LEN};
use vibnn::fixed::{choose_format, MacAccumulator, QFormat};
use vibnn::grng::WallaceUnit;
use vibnn::hw::{AcceleratorConfig, Schedule};
use vibnn::ingest::{decode_reply, decode_request, encode_reply, encode_request};
use vibnn::ingest::{IngestMetrics, Reply, Request, WireError};
use vibnn::rng::{BitVec, CircularLfsr, RlfLogic, RlfMode, SplitMix64};
use vibnn::serve::ServeResult;
use vibnn::Priority;
use vibnn::{BackendCost, BackendKind};

fn lane(code: u8) -> Priority {
    if code == 0 {
        Priority::Interactive
    } else {
        Priority::Batch
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The RAM-based linear feedback logic is bit-exact to the shifting
    /// circular LFSR for any non-zero seed (paper Section 4.1.2's claim).
    #[test]
    fn rlf_equals_circular_lfsr(seed in 1u64.., steps in 1usize..300) {
        let mut src = SplitMix64::new(seed);
        let bits = BitVec::random(255, &mut src);
        let mut rlf = RlfLogic::new(bits, RlfMode::Simple);
        let mut reference = rlf.to_circular();
        for _ in 0..steps {
            prop_assert_eq!(rlf.step(), reference.step());
        }
        prop_assert_eq!(rlf.state_from_head(), reference.state().clone());
    }

    /// One combined RLF step is exactly two simple steps (eq. 12 = 2x eq. 11).
    #[test]
    fn combined_equals_two_simple(seed in 1u64.., steps in 1usize..200) {
        let mut src = SplitMix64::new(seed);
        let bits = BitVec::random(255, &mut src);
        let mut combined = RlfLogic::new(bits.clone(), RlfMode::Combined);
        let mut twice = RlfLogic::new(bits, RlfMode::Simple);
        for _ in 0..steps {
            let a = combined.step();
            twice.step();
            let b = twice.step();
            prop_assert_eq!(a, b);
        }
    }

    /// The circular LFSR never reaches the all-zero state and its popcount
    /// changes by at most the tap count per step.
    #[test]
    fn lfsr_never_zero_and_bounded_delta(seed in 1u64.., steps in 1usize..500) {
        let mut src = SplitMix64::new(seed);
        let mut lfsr = CircularLfsr::random(255, &[250, 252, 253], &mut src);
        let mut prev = lfsr.state().count_ones() as i64;
        for _ in 0..steps {
            let c = i64::from(lfsr.step());
            prop_assert!(c > 0, "reached all-zero state");
            prop_assert!((c - prev).abs() <= 3);
            prev = c;
        }
    }

    /// The Wallace 4x4 transform preserves the sum of squares exactly
    /// (H/2 is orthogonal), for any finite quad.
    #[test]
    fn wallace_transform_preserves_energy(
        a in -100.0f64..100.0, b in -100.0f64..100.0,
        c in -100.0f64..100.0, d in -100.0f64..100.0,
        loops in 1u32..16,
    ) {
        let x = [a, b, c, d];
        let y = WallaceUnit::transform_loops(x, loops);
        let before: f64 = x.iter().map(|v| v * v).sum();
        let after: f64 = y.iter().map(|v| v * v).sum();
        prop_assert!((before - after).abs() <= 1e-9 * before.max(1.0));
    }

    /// Quantize/dequantize round-trips within half an LSB for in-range
    /// values, and saturates (not wraps) out-of-range values.
    #[test]
    fn fixed_point_roundtrip_and_saturation(
        total in 3u32..=16,
        x in -1000.0f64..1000.0,
    ) {
        let fmt = QFormat::new(total, total / 2);
        let raw = fmt.quantize(x);
        prop_assert!(raw >= fmt.min_raw() && raw <= fmt.max_raw());
        let back = fmt.dequantize(raw);
        if x.abs() < fmt.max_value() {
            prop_assert!((back - x).abs() <= fmt.lsb() / 2.0 + 1e-12);
        } else {
            // Saturation: sign preserved, magnitude clamped to the rail.
            prop_assert!(back.signum() == x.signum());
        }
    }

    /// MAC accumulation is exact: matches i128 arithmetic for any operand
    /// sequence.
    #[test]
    fn mac_accumulator_is_exact(pairs in prop::collection::vec((-128i32..=127, -128i32..=127), 1..64)) {
        let mut acc = MacAccumulator::new();
        let mut expect: i128 = 0;
        for &(a, b) in &pairs {
            acc.mac(a, b);
            expect += i128::from(a) * i128::from(b);
        }
        prop_assert_eq!(i128::from(acc.raw()), expect);
        prop_assert_eq!(acc.ops() as usize, pairs.len());
    }

    /// choose_format always covers the requested range with the maximum
    /// fraction width that does so.
    #[test]
    fn choose_format_covers_and_is_tight(total in 3u32..=16, max in 0.01f64..100.0) {
        let fmt = choose_format(total, max);
        let representable = f64::from((1i64 << (total - 1)) as i32 - 1);
        if max <= representable {
            prop_assert!(fmt.max_value() >= max);
            // One more fraction bit would no longer cover the range.
            if fmt.frac_bits() + 1 < total {
                let tighter = QFormat::new(total, fmt.frac_bits() + 1);
                prop_assert!(tighter.max_value() < max);
            }
        } else {
            // Out-of-gamut ranges fall back to the widest integer format.
            prop_assert_eq!(fmt.frac_bits(), 0);
        }
    }

    /// Schedule cycles are monotone in layer width and exactly linear in
    /// MC samples, for any valid geometry.
    #[test]
    fn schedule_monotonicity(
        t in 1usize..8,
        n_pow in 1u32..4,
        width in 8usize..256,
        mc in 1usize..8,
    ) {
        let n = 1usize << n_pow; // 2,4,8
        let cfg = AcceleratorConfig {
            pe_sets: t,
            pes_per_set: n,
            pe_inputs: n,
            max_word_size: 8192,
            mc_samples: mc,
            ..AcceleratorConfig::paper()
        };
        let base = Schedule::new(&cfg, &[width, width, 4]);
        let wider = Schedule::new(&cfg, &[width * 2, width, 4]);
        prop_assert!(wider.cycles_per_sample() >= base.cycles_per_sample());
        prop_assert_eq!(base.cycles_per_image(), base.cycles_per_sample() * mc as u64);
        prop_assert!(base.utilization() > 0.0 && base.utilization() <= 1.0);
    }

    /// Stratified fractions keep per-class representation for any
    /// fraction.
    #[test]
    fn stratified_fraction_keeps_classes(frac in 0.01f64..1.0, seed in 0u64..1000) {
        use vibnn::nn::Matrix;
        let n = 80;
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::new();
        for r in 0..n {
            x[(r, 0)] = r as f32;
            y.push(r % 4);
        }
        let (sx, sy) = vibnn::datasets::stratified_fraction(&x, &y, frac, 4, seed);
        prop_assert_eq!(sx.rows(), sy.len());
        let mut seen = [false; 4];
        for &l in &sy { seen[l] = true; }
        prop_assert!(seen.iter().all(|&s| s));
    }
}

// Wire-protocol invariants: the frame layer and the ingest codecs must
// round-trip every value exactly and must never panic on hostile bytes
// (the fuzz-shaped counterpart to `tests/ingest_protocol.rs`).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `write_frame` → `read_frame` round-trips any payload, back to
    /// back, with a clean `None` EOF exactly at the stream boundary.
    #[test]
    fn frame_codec_round_trips(payload in prop::collection::vec(0u8.., 1usize..600)) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        write_frame(&mut buf, &payload).unwrap();
        let mut cur = Cursor::new(buf);
        prop_assert_eq!(read_frame(&mut cur, MAX_FRAME_LEN).unwrap().unwrap(), payload.clone());
        prop_assert_eq!(read_frame(&mut cur, MAX_FRAME_LEN).unwrap().unwrap(), payload);
        prop_assert!(read_frame(&mut cur, MAX_FRAME_LEN).unwrap().is_none());
    }

    /// Arbitrary bytes fed to the frame reader and both ingest decoders
    /// return a typed error (or a valid value) — they never panic and
    /// the frame reader always makes progress.
    #[test]
    fn arbitrary_bytes_never_panic_the_decoders(
        bytes in prop::collection::vec(0u8.., 0usize..300),
    ) {
        let mut cur = Cursor::new(bytes.clone());
        while let Ok(Some(frame)) = read_frame(&mut cur, MAX_FRAME_LEN) {
            // Any frame that parses is fed onward, like the server does.
            let _ = decode_request(&frame);
            let _ = decode_reply(&frame);
        }
        let _ = decode_request(&bytes);
        let _ = decode_reply(&bytes);
    }

    /// Predict requests round-trip the codec exactly for any tag, lane,
    /// deadline, and feature row (f32 bits preserved).
    #[test]
    fn predict_request_codec_round_trips(
        tag in 0u64..,
        lane_code in 0u8..2,
        deadline_micros in 0u64..,
        features in prop::collection::vec(-1e6f32..1e6, 0usize..40),
    ) {
        let req = Request::Predict {
            tag,
            priority: lane(lane_code),
            deadline_micros,
            features,
        };
        prop_assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
    }

    /// Batch requests round-trip with the row-major layout and row width
    /// intact, including the empty batch.
    #[test]
    fn batch_request_codec_round_trips(
        tag in 0u64..,
        lane_code in 0u8..2,
        rows in 0usize..6,
        dim in 1usize..8,
        seed in 0u64..,
    ) {
        let features: Vec<f32> = (0..rows * dim)
            .map(|i| (seed.wrapping_add(i as u64) % 4001) as f32 * 0.25 - 500.0)
            .collect();
        let req = Request::PredictBatch {
            tag,
            priority: lane(lane_code),
            deadline_micros: seed,
            dim,
            features,
        };
        prop_assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
    }

    /// Served predictions round-trip the reply codec bit-exactly —
    /// f32/f64 travel as raw bits, so the wire cannot perturb them.
    #[test]
    fn predict_reply_codec_round_trips(
        tag in 0u64..,
        id in 0u64..,
        p0 in 0.0f32..1.0,
        entropy in 0.0f64..2.0,
        mc_std in 0.0f64..1.0,
        samples_used in 1u32..1025,
    ) {
        let result = ServeResult {
            id,
            proba: vec![p0, 1.0 - p0],
            argmax: usize::from(p0 < 0.5),
            entropy,
            mc_std,
            samples_used,
        };
        let single = Reply::Predict { tag, result: result.clone() };
        prop_assert_eq!(decode_reply(&encode_reply(&single)).unwrap(), single);
        // Batch replies carry per-row outcomes; Ok and Err rows mix.
        let batch = Reply::PredictBatch {
            tag,
            rows: vec![
                Ok(result),
                Err(WireError::QueueFull { depth: id, capacity: tag }),
            ],
        };
        prop_assert_eq!(decode_reply(&encode_reply(&batch)).unwrap(), batch);
    }

    /// Metrics snapshots — counters, uncertainty means, the fixed-width
    /// entropy histogram, and the backend cost accounting (cluster total
    /// plus per-replica `(kind, cost)` entries) — round-trip the reply
    /// codec exactly for arbitrary values (f64 means and energies travel
    /// as raw bits).
    #[test]
    fn metrics_reply_codec_round_trips(
        tag in 0u64..,
        counters in prop::collection::vec(0u64.., 15usize..16),
        entropy_mean in 0.0f64..10.0,
        mc_std_mean in 0.0f64..10.0,
        histogram in prop::collection::vec(
            0u64..,
            vibnn::cluster::ENTROPY_BUCKETS..vibnn::cluster::ENTROPY_BUCKETS + 1,
        ),
        total_cycles in 0u64..,
        total_energy in 0.0f64..1e12,
        total_samples in 0u64..,
        replica_raw in prop::collection::vec(
            (0u8..3, 0u64.., 0.0f64..1e12, 0u64..),
            0usize..5,
        ),
        samples_used_total in 0u64..,
        mean_samples in 0.0f64..1e4,
        samples_histogram in prop::collection::vec(0u64.., 0usize..12),
        abstained in 0u64..,
        budget_shed in 0u64..,
    ) {
        let replica_costs: Vec<(BackendKind, BackendCost)> = replica_raw
            .into_iter()
            .map(|(code, cycles, energy_nj, samples)| {
                (
                    BackendKind::from_code(code).expect("codes 0..3 are valid"),
                    BackendCost { cycles, energy_nj, samples },
                )
            })
            .collect();
        let metrics = IngestMetrics {
            queued: counters[0],
            capacity: counters[1],
            submitted: counters[2],
            served: counters[3],
            served_interactive: counters[4],
            served_batch: counters[5],
            rejected: counters[6],
            deadline_expired: counters[7],
            cancelled: counters[8],
            replicas_alive: counters[9],
            connections_open: counters[10],
            connections_total: counters[11],
            requests_decoded: counters[12],
            protocol_errors: counters[13],
            uncertainty_count: counters[14],
            entropy_mean,
            mc_std_mean,
            entropy_histogram: histogram,
            cost: BackendCost {
                cycles: total_cycles,
                energy_nj: total_energy,
                samples: total_samples,
            },
            replica_costs,
            samples_used_total,
            mean_samples,
            samples_histogram,
            abstained,
            budget_shed,
        };
        let reply = Reply::Metrics { tag, metrics };
        prop_assert_eq!(decode_reply(&encode_reply(&reply)).unwrap(), reply);
    }

    /// Every typed wire-error variant survives the reply codec with its
    /// payload intact.
    #[test]
    fn error_reply_codec_round_trips(
        tag in 0u64..,
        depth in 0u64..,
        capacity in 0u64..,
        expected in 0u64..,
        got in 0u64..,
    ) {
        for error in [
            WireError::QueueFull { depth, capacity },
            WireError::DeadlineExceeded,
            WireError::EngineStopped,
            WireError::ShapeMismatch { expected, got },
            WireError::Protocol("torn frame header".to_owned()),
            WireError::Other("replica thread failure".to_owned()),
            WireError::Abstained {
                samples_used: depth,
                entropy_milli: capacity,
            },
            WireError::BudgetExceeded {
                predicted_micros: expected,
                remaining_micros: got,
            },
        ] {
            let reply = Reply::Error { tag, error };
            prop_assert_eq!(decode_reply(&encode_reply(&reply)).unwrap(), reply);
        }
    }
}
