//! The backend subsystem's determinism contract, pinned end to end:
//!
//! 1. The default (quantized) backend serves **bit-identically** to the
//!    historical quantized-host path through both `ServeEngine` and
//!    `ClusterEngine`, at worker counts 1/2/4.
//! 2. The cycle backend's probabilities are **bit-identical** to the
//!    ticked functional model (`CycleAccelerator::infer_forked`) on the
//!    same ε substream.
//! 3. A mixed pool answers every request with the backend of its home
//!    replica — each answer is attributable to exactly one
//!    `(version, backend)` pair, and nothing is dropped.
//! 4. Hardware cost is monotone: cycle totals strictly increase with
//!    every micro-batch a cycle replica serves, and host backends never
//!    charge cycles.
//!
//! Run explicitly by `ci.sh`.

use vibnn::bnn::{Bnn, BnnConfig};
use vibnn::cluster::{ClusterConfig, ClusterEngine};
use vibnn::grng::ZigguratGrng;
use vibnn::hw::CycleAccelerator;
use vibnn::nn::{GaussianInit, Matrix};
use vibnn::serve::{ServeConfig, ServeEngine};
use vibnn::{BackendKind, Vibnn, VibnnBuilder};

const EPS_SEED: u64 = 0xBAC0_0111;
const FEATURES: usize = 4;
const REQUESTS: usize = 12;

/// A lightly trained deployment (training makes the probabilities
/// non-degenerate, so bit-comparisons are meaningful).
fn deployed() -> Vibnn {
    let mut rng = GaussianInit::new(11);
    let mut x = Matrix::zeros(64, FEATURES);
    let mut y = Vec::new();
    for r in 0..64 {
        let mut s = 0.0;
        for c in 0..FEATURES {
            let v = rng.next_gaussian() as f32;
            x[(r, c)] = v;
            s += v;
        }
        y.push(usize::from(s > 0.0));
    }
    let mut bnn = Bnn::new(BnnConfig::new(&[FEATURES, 8, 2]).with_lr(0.02), 7);
    for _ in 0..3 {
        bnn.train_epoch(&x, &y, 16);
    }
    VibnnBuilder::new(bnn.params())
        .mc_samples(4)
        .calibration(x.rows_slice(0, 16))
        .build()
        .expect("valid deployment")
}

fn request_rows() -> Matrix {
    let mut rng = GaussianInit::new(23);
    let mut x = Matrix::zeros(REQUESTS, FEATURES);
    for v in x.data_mut() {
        *v = rng.next_gaussian() as f32;
    }
    x
}

fn engine(vibnn: Vibnn, backend: Option<BackendKind>, workers: usize) -> ServeEngine<ZigguratGrng> {
    ServeEngine::with_eps(
        vibnn,
        ServeConfig {
            max_batch: 4,
            max_queue: 64,
            workers,
            backend,
            policy: None,
        },
        ZigguratGrng::new(EPS_SEED),
    )
    .expect("valid serve config")
}

fn bits(row: &[f32]) -> Vec<u32> {
    row.iter().map(|v| v.to_bits()).collect()
}

/// The ticked functional model's per-row probabilities for every request
/// row, on the given ε substream — the cycle backend's reference.
fn cycle_reference(vibnn: &Vibnn, x: &Matrix, eps: &ZigguratGrng) -> Vec<Vec<f32>> {
    let mut sim = CycleAccelerator::new(vibnn.config().clone(), vibnn.network().clone());
    (0..x.rows())
        .map(|r| sim.infer_forked(x.row(r), eps).0)
        .collect()
}

#[test]
fn quantized_backend_is_bit_identical_to_the_historical_path() {
    let x = request_rows();
    let reference = deployed().predict_proba_parallel(&x, &ZigguratGrng::new(EPS_SEED), 1);
    for workers in [1usize, 2, 4] {
        // `backend: None` resolves to the deployment default (quantized);
        // `Some(Quantized)` must be the same thing.
        for backend in [None, Some(BackendKind::Quantized)] {
            let engine = engine(deployed(), backend, workers);
            assert_eq!(engine.backend_kind(), BackendKind::Quantized);
            let results = engine.submit_batch(&x).expect("serve");
            for (r, res) in results.iter().enumerate() {
                assert_eq!(
                    bits(&res.proba),
                    bits(reference.row(r)),
                    "row {r} diverged at workers={workers} backend={backend:?}"
                );
            }
        }
    }
}

#[test]
fn quantized_cluster_is_bit_identical_to_the_historical_path() {
    let x = request_rows();
    for workers in [1usize, 2, 4] {
        let cluster = ClusterEngine::with_eps(
            deployed(),
            ClusterConfig {
                replicas: 2,
                max_batch: 4,
                max_queue: 64,
                workers,
                spill: true,
                batch_skip_bound: 4,
                backend: None,
                policy: None,
            },
            ZigguratGrng::new(EPS_SEED),
        )
        .expect("valid cluster config");
        let reference = deployed().predict_proba_parallel(&x, &cluster.replica_eps(), 1);
        let ids: Vec<u64> = (0..REQUESTS)
            .map(|r| cluster.submit(x.row(r).to_vec()).expect("submit"))
            .collect();
        for (r, &id) in ids.iter().enumerate() {
            let res = cluster.wait(id).expect("serve");
            assert_eq!(
                bits(&res.proba),
                bits(reference.row(r)),
                "row {r} diverged at workers={workers}"
            );
        }
        let m = cluster.metrics();
        assert_eq!(m.served, REQUESTS as u64);
        // Host serving charges no hardware cycles or energy, but the MC
        // sample ledger still counts.
        assert_eq!(m.cost.cycles, 0);
        assert_eq!(m.cost.energy_nj, 0.0);
        assert_eq!(m.cost.samples as usize, REQUESTS * deployed().mc_samples());
        cluster.shutdown();
    }
}

#[test]
fn cycle_backend_matches_the_ticked_functional_model() {
    let x = request_rows();
    let vibnn = deployed();
    let reference = cycle_reference(&vibnn, &x, &ZigguratGrng::new(EPS_SEED));
    for workers in [1usize, 2, 4] {
        let engine = engine(deployed(), Some(BackendKind::Cycle), workers);
        assert_eq!(engine.backend_kind(), BackendKind::Cycle);
        let (results, cost) = engine.submit_batch_costed(&x).expect("serve");
        for (r, res) in results.iter().enumerate() {
            assert_eq!(
                bits(&res.proba),
                bits(&reference[r]),
                "row {r} diverged from the ticked model at workers={workers}"
            );
        }
        // Hardware-in-the-loop serving charges real cycles and energy.
        assert!(cost.cycles > 0, "cycle serving must charge cycles");
        assert!(cost.energy_nj > 0.0, "cycle serving must charge energy");
        assert_eq!(cost.samples as usize, REQUESTS * vibnn.mc_samples());
    }
}

#[test]
fn mixed_pool_answers_are_attributable_to_exactly_one_backend() {
    let x = request_rows();
    let vibnn = deployed();
    let kinds = [
        BackendKind::Quantized,
        BackendKind::Cycle,
        BackendKind::Quantized,
    ];
    let cluster = ClusterEngine::with_backends(
        deployed(),
        ClusterConfig {
            replicas: kinds.len(),
            max_batch: 4,
            max_queue: 64,
            workers: 1,
            spill: true,
            batch_skip_bound: 4,
            backend: None,
            policy: None,
        },
        ZigguratGrng::new(EPS_SEED),
        &kinds,
    )
    .expect("valid mixed pool");
    let quant_ref = vibnn.predict_proba_parallel(&x, &cluster.replica_eps(), 1);
    let cycle_ref = cycle_reference(&vibnn, &x, &cluster.replica_eps());
    let ids: Vec<u64> = (0..REQUESTS)
        .map(|r| cluster.submit(x.row(r).to_vec()).expect("submit"))
        .collect();
    // The two reference paths must disagree somewhere, or backend
    // attribution below would be vacuous. (Individual rows may round
    // identically — both paths share the quantized logits — but the
    // f32-lane vs f64 averaging diverges on a nontrivial request set.)
    assert!(
        (0..REQUESTS).any(|r| bits(quant_ref.row(r)) != bits(&cycle_ref[r])),
        "quantized and cycle references agree on every row"
    );
    // Nothing dropped, and every answer is the home replica's backend —
    // spill never crosses a backend boundary, so attribution is exact.
    for (r, &id) in ids.iter().enumerate() {
        let res = cluster.wait(id).expect("mixed pool must not drop requests");
        let home = (id % kinds.len() as u64) as usize;
        let expected: &[f32] = match kinds[home] {
            BackendKind::Cycle => &cycle_ref[r],
            _ => quant_ref.row(r),
        };
        assert_eq!(
            bits(&res.proba),
            bits(expected),
            "row {r} not served by its home backend {:?}",
            kinds[home]
        );
    }
    let m = cluster.metrics();
    assert_eq!(m.served, REQUESTS as u64);
    // Spill can neither enter nor leave the lone cycle replica, so it
    // served exactly the requests homed on it.
    let cycle_homes = ids
        .iter()
        .filter(|&&id| id % kinds.len() as u64 == 1)
        .count() as u64;
    assert_eq!(m.replicas[1].served, cycle_homes);
    for (i, rep) in m.replicas.iter().enumerate() {
        assert_eq!(rep.backend, kinds[i]);
        match kinds[i] {
            BackendKind::Cycle => {
                assert!(rep.cost.cycles > 0, "cycle replica {i} must charge cycles");
                assert!(rep.cost.energy_nj > 0.0);
            }
            _ => {
                assert_eq!(rep.cost.cycles, 0, "host replica {i} must not charge cycles");
                assert_eq!(rep.cost.energy_nj, 0.0);
            }
        }
        assert_eq!(
            rep.cost.samples,
            rep.served * vibnn.mc_samples() as u64,
            "replica {i} sample ledger"
        );
    }
    assert_eq!(
        m.cost.cycles,
        m.replicas.iter().map(|r| r.cost.cycles).sum::<u64>(),
        "cluster cost is the sum of replica costs"
    );
    cluster.shutdown();
}

#[test]
fn cycle_costs_increase_strictly_with_served_requests() {
    let x = request_rows();
    let engine = engine(deployed(), Some(BackendKind::Cycle), 1);
    let mut last = engine.cost();
    assert_eq!(last.cycles, 0);
    for r in 0..REQUESTS {
        let row = Matrix::from_rows(&[x.row(r)]);
        engine.submit_batch(&row).expect("serve");
        let now = engine.cost();
        assert!(
            now.cycles > last.cycles,
            "cycles must strictly increase (request {r}: {} -> {})",
            last.cycles,
            now.cycles
        );
        assert!(now.energy_nj > last.energy_nj);
        assert_eq!(now.samples, last.samples + deployed().mc_samples() as u64);
        last = now;
    }
}
