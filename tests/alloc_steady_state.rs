//! The `StepArena` zero-allocation contract (PR 7): once the engine's
//! pools have grown to the workload's shapes, a steady-state
//! `train_batch_mc_threads` step at one thread performs **zero** heap
//! allocations. Measured with a counting `#[global_allocator]` installed
//! in this test binary; the file holds exactly one test so no concurrent
//! test can pollute the counter.
//!
//! Run explicitly by `ci.sh`.

// `GlobalAlloc` is an `unsafe` trait; this test binary is a sanctioned
// exception to the workspace's `unsafe_code = "deny"` lint, mirroring the
// allocator in `bench_train`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use vibnn::bnn::{Bnn, BnnConfig};
use vibnn::nn::{GaussianInit, Matrix};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_training_step_allocates_nothing() {
    // A workload that exercises every pool: 48 rows → 3 shards, 3 MC
    // samples, two hidden layers.
    let mut rng = GaussianInit::new(3);
    let mut x = Matrix::zeros(48, 6);
    let mut y = Vec::with_capacity(48);
    for r in 0..48 {
        let mut s = 0.0f32;
        for c in 0..6 {
            let v = rng.next_gaussian() as f32;
            x[(r, c)] = v;
            s += v;
        }
        y.push(usize::from(s > 0.0) + usize::from(s > 1.5));
    }
    let mut bnn = Bnn::new(
        BnnConfig::new(&[6, 24, 16, 3]).with_lr(5e-3).with_kl_weight(1e-3),
        11,
    );

    // Warm-up: the first steps grow the arena pools (and any lazily
    // initialized process state, e.g. the VIBNN_THREADS cache).
    for _ in 0..4 {
        bnn.train_batch_mc_threads(&x, &y, 3, 1);
    }

    let steps = 8;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..steps {
        bnn.train_batch_mc_threads(&x, &y, 3, 1);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state training made {} allocations over {} steps",
        after - before,
        steps
    );
}
