//! Block-engine determinism gates.
//!
//! Two contracts hold the sampling engine together:
//!
//! 1. **Block = scalar.** For every [`GaussianSource`] implementation, the
//!    block API (`fill` / `fill_f32` / `take_vec`) must reproduce the
//!    scalar `next_gaussian` stream exactly, under any interleaving of
//!    block sizes.
//! 2. **Threads don't matter.** Parallel Monte Carlo inference forks one
//!    substream per sample and reduces in sample order, so its output is
//!    bit-identical at 1, 2, and 4 (or any) threads.

use vibnn::bnn::{Bnn, BnnConfig};
use vibnn::grng::{
    BnnWallaceGrng, BoxMullerGrng, Buffered, CdfInversionGrng, CltGrng, GaussianSource,
    ParallelRlfGrng, PolarGrng, RlfGrng, SoftwareWallace, StreamFork, UniformSumGrng, WallaceNss,
    ZigguratGrng,
};
use vibnn::hw::QuantizedBnn;
use vibnn::nn::Matrix;

type GeneratorPair = (&'static str, Box<dyn GaussianSource>, Box<dyn GaussianSource>);

/// Every generator twice, identically seeded, for pairwise comparisons.
fn generator_pairs() -> Vec<GeneratorPair> {
    fn pair<G: GaussianSource + Clone + 'static>(name: &'static str, g: G) -> GeneratorPair {
        (name, Box::new(g.clone()), Box::new(g))
    }
    vec![
        pair("rlf-single", RlfGrng::from_seed(1)),
        pair("rlf-parallel-64", ParallelRlfGrng::new(64, 2)),
        pair("rlf-parallel-7-no-interleave", ParallelRlfGrng::without_interleaver(7, 3)),
        pair("bnnwallace-8x256", BnnWallaceGrng::new(8, 256, 4)),
        pair("bnnwallace-3x12", BnnWallaceGrng::new(3, 12, 5)),
        pair("software-wallace", SoftwareWallace::new(256, 2, 6)),
        pair("wallace-nss", WallaceNss::new(64, 7)),
        pair("clt", CltGrng::new(255, 4, 8)),
        pair("uniform-sum", UniformSumGrng::new(12, 9)),
        pair("box-muller", BoxMullerGrng::new(10)),
        pair("polar", PolarGrng::new(11)),
        pair("ziggurat", ZigguratGrng::new(12)),
        pair("inversion", CdfInversionGrng::new(13)),
        pair("buffered-rlf", Buffered::with_block_len(ParallelRlfGrng::new(16, 14), 37)),
    ]
}

#[test]
fn block_api_reproduces_scalar_stream_for_every_generator() {
    // Awkward block sizes: primes, one, and sizes straddling every
    // generator's internal cycle/quad/block boundary.
    let sizes = [1usize, 3, 4, 31, 32, 33, 257, 7, 1024, 5];
    for (name, mut scalar, mut block) in generator_pairs() {
        for &n in &sizes {
            let via_scalar: Vec<f64> = (0..n).map(|_| scalar.next_gaussian()).collect();
            let via_block = block.take_vec(n);
            assert_eq!(via_block, via_scalar, "{name}: fill({n}) diverged");
        }
    }
}

#[test]
fn fill_f32_matches_scalar_stream_for_every_generator() {
    for (name, mut scalar, mut block) in generator_pairs() {
        let mut out = vec![0.0f32; 777];
        block.fill_f32(&mut out);
        for (i, &v) in out.iter().enumerate() {
            let want = scalar.next_gaussian() as f32;
            assert!(
                v == want,
                "{name}: fill_f32 sample {i} diverged ({v} vs {want})"
            );
        }
    }
}

#[test]
fn mixed_scalar_and_block_reads_stay_in_sync() {
    for (name, mut scalar, mut mixed) in generator_pairs() {
        for round in 0..4 {
            let a = mixed.next_gaussian();
            assert_eq!(a, scalar.next_gaussian(), "{name}: round {round} scalar");
            let via_block = mixed.take_vec(9 + round);
            let via_scalar: Vec<f64> =
                (0..9 + round).map(|_| scalar.next_gaussian()).collect();
            assert_eq!(via_block, via_scalar, "{name}: round {round} block");
        }
    }
}

#[test]
fn forked_substreams_are_reproducible_and_pairwise_distinct() {
    fn check<G: StreamFork>(name: &str, parent: G) {
        let mut streams: Vec<Vec<f64>> = (0..4)
            .map(|id| parent.fork(id).take_vec(96))
            .collect();
        for (id, s) in streams.iter().enumerate() {
            let again = parent.fork(id as u64).take_vec(96);
            assert_eq!(*s, again, "{name}: fork({id}) not reproducible");
        }
        streams.push(parent.fork(0).fork(1).take_vec(96));
        for i in 0..streams.len() {
            for j in i + 1..streams.len() {
                assert_ne!(streams[i], streams[j], "{name}: streams {i}/{j} collide");
            }
        }
    }
    check("rlf-single", RlfGrng::from_seed(21));
    check("rlf-parallel", ParallelRlfGrng::new(16, 22));
    check("bnnwallace", BnnWallaceGrng::new(4, 32, 23));
    check("software-wallace", SoftwareWallace::new(128, 1, 24));
    check("wallace-nss", WallaceNss::new(64, 25));
    check("clt", CltGrng::new(255, 2, 26));
    check("uniform-sum", UniformSumGrng::new(8, 27));
    check("box-muller", BoxMullerGrng::new(28));
    check("polar", PolarGrng::new(29));
    check("ziggurat", ZigguratGrng::new(30));
    check("inversion", CdfInversionGrng::new(31));
    check("buffered", Buffered::new(BoxMullerGrng::new(32)));
}

#[test]
fn parallel_bnn_mc_identical_at_1_2_4_threads() {
    let bnn = Bnn::new(BnnConfig::new(&[6, 12, 3]).with_sigma_init(0.25), 41);
    let x = Matrix::from_rows(&[
        &[0.2, -0.4, 0.9, 0.0, -1.1, 0.3],
        &[1.0, 0.1, -0.6, 0.4, 0.0, -0.2],
        &[-0.5, 0.5, 0.5, -0.5, 0.25, 0.75],
    ]);
    for eps_name in ["box-muller", "rlf", "bnnwallace"] {
        let run = |threads: usize| -> Matrix {
            match eps_name {
                "box-muller" => {
                    bnn.predict_proba_mc_parallel(&x, 9, &BoxMullerGrng::new(43), threads)
                }
                "rlf" => bnn.predict_proba_mc_parallel(
                    &x,
                    9,
                    &ParallelRlfGrng::new(16, 44),
                    threads,
                ),
                _ => bnn.predict_proba_mc_parallel(
                    &x,
                    9,
                    &BnnWallaceGrng::new(4, 32, 45),
                    threads,
                ),
            }
        };
        let one = run(1);
        for threads in [2usize, 4] {
            assert_eq!(
                run(threads).data(),
                one.data(),
                "{eps_name}: {threads}-thread MC diverged from 1-thread"
            );
        }
    }
}

#[test]
fn parallel_hw_mc_identical_at_1_2_4_threads_and_env_knob_is_safe() {
    let bnn = Bnn::new(BnnConfig::new(&[5, 8, 2]), 51);
    let calib = {
        let mut m = Matrix::zeros(3, 5);
        for (i, v) in m.data_mut().iter_mut().enumerate() {
            *v = (i as f32 * 0.31).cos();
        }
        m
    };
    let q = QuantizedBnn::from_params(&bnn.params(), 8, &calib);
    let eps = BnnWallaceGrng::new(8, 32, 53);
    let one = q.predict_proba_mc_parallel(&calib, 6, &eps, 1);
    for threads in [2usize, 4] {
        assert_eq!(
            q.predict_proba_mc_parallel(&calib, 6, &eps, threads).data(),
            one.data(),
            "hw MC diverged at {threads} threads"
        );
    }
    // threads == 0 routes through the VIBNN_THREADS knob; whatever it
    // resolves to, the result must be the same.
    assert_eq!(q.predict_proba_mc_parallel(&calib, 6, &eps, 0).data(), one.data());
    assert!(vibnn::bnn::vibnn_threads() >= 1);
}
