//! The ingest server's determinism contract, pinned over real sockets:
//!
//! For any replica count {1, 2}, any number of concurrent TCP clients,
//! any arrival order, and any lane assignment, every wire-served
//! prediction is **bit-identical** to the one-shot batched
//! `Vibnn::predict_proba_parallel` call under the cluster's derived
//! replica ε source — the same reference `tests/cluster_determinism.rs`
//! pins for the in-process path. Deadline-expired requests are the only
//! requests that are not answered with a served result, and they fail
//! with the typed `DeadlineExceeded` error, never silently.
//!
//! Run explicitly by `ci.sh`. Every test skips gracefully when the
//! sandbox forbids loopback sockets.

use vibnn::bnn::{replica_source, Bnn, BnnConfig};
use vibnn::cluster::{ClusterConfig, ClusterEngine};
use vibnn::grng::ZigguratGrng;
use vibnn::hw::CycleAccelerator;
use vibnn::nn::{GaussianInit, Matrix};
use vibnn::{
    BackendKind, IngestClient, IngestConfig, IngestServer, Priority, Vibnn, VibnnBuilder,
    VibnnError,
};

const CLUSTER_SEED: u64 = 0xC1_0FFEE;
const FEATURES: usize = 4;
const REQUESTS: usize = 12;

/// Same lightly trained deployment as `tests/cluster_determinism.rs`, so
/// the two suites pin the identical reference bits.
fn deployed(train_seed: u64) -> Vibnn {
    let mut rng = GaussianInit::new(3);
    let mut x = Matrix::zeros(64, FEATURES);
    let mut y = Vec::new();
    for r in 0..64 {
        let mut s = 0.0;
        for c in 0..FEATURES {
            let v = rng.next_gaussian() as f32;
            x[(r, c)] = v;
            s += v;
        }
        y.push(usize::from(s > 0.0));
    }
    let mut bnn = Bnn::new(BnnConfig::new(&[FEATURES, 8, 2]).with_lr(0.02), train_seed);
    for _ in 0..3 {
        bnn.train_epoch(&x, &y, 16);
    }
    VibnnBuilder::new(bnn.params())
        .mc_samples(5)
        .calibration(x.rows_slice(0, 16))
        .build()
        .expect("valid deployment")
}

fn request_rows() -> Matrix {
    let mut rng = GaussianInit::new(29);
    let mut x = Matrix::zeros(REQUESTS, FEATURES);
    for v in x.data_mut() {
        *v = rng.next_gaussian() as f32;
    }
    x
}

fn bits(row: &[f32]) -> Vec<u32> {
    row.iter().map(|v| v.to_bits()).collect()
}

fn reference_rows(vibnn: &Vibnn, x: &Matrix) -> Matrix {
    let eps = replica_source(&ZigguratGrng::new(CLUSTER_SEED));
    vibnn.predict_proba_parallel(x, &eps, 1)
}

/// Binds a loopback ingest server over a freshly built cluster, or
/// `None` when the sandbox forbids sockets (suite passes vacuously).
fn try_server(
    vibnn: Vibnn,
    replicas: usize,
    max_batch: usize,
    max_queue: usize,
) -> Option<IngestServer> {
    let cluster = ClusterEngine::with_eps(
        vibnn,
        ClusterConfig {
            replicas,
            max_batch,
            max_queue,
            workers: 1,
            spill: true,
            batch_skip_bound: 4,
            backend: None,
            policy: None,
        },
        ZigguratGrng::new(CLUSTER_SEED),
    )
    .expect("valid cluster config");
    match IngestServer::bind(cluster, "127.0.0.1:0", IngestConfig::default()) {
        Ok(server) => Some(server),
        Err(e) => {
            eprintln!("skipping ingest determinism test: cannot bind loopback ({e})");
            None
        }
    }
}

#[test]
fn concurrent_clients_any_order_any_lane_match_batched_path() {
    let x = request_rows();
    let vibnn = deployed(5);
    let reference = reference_rows(&vibnn, &x);
    // Three arrival orders × two replica counts × three concurrent
    // clients × both lanes: each wire prediction must reproduce the
    // one-shot batched reference bit for bit, independent of which
    // client carried it, when it arrived, and which lane it rode.
    let orders: [Vec<usize>; 3] = [
        (0..REQUESTS).collect(),
        (0..REQUESTS).rev().collect(),
        vec![5, 0, 9, 2, 7, 11, 1, 8, 3, 10, 6, 4],
    ];
    for replicas in [1usize, 2] {
        for (o, order) in orders.iter().enumerate() {
            let Some(server) = try_server(vibnn.clone(), replicas, 4, 64) else {
                return;
            };
            let addr = server.local_addr();
            std::thread::scope(|scope| {
                for client_idx in 0..3usize {
                    let order = &order[..];
                    let x = &x;
                    let reference = &reference;
                    scope.spawn(move || {
                        let mut client = IngestClient::connect(addr).expect("connect");
                        // Client k carries arrival positions k, k+3, …
                        // of this permutation, alternating lanes.
                        for pos in (client_idx..order.len()).step_by(3) {
                            let row = order[pos];
                            let lane = if row % 2 == 0 {
                                Priority::Interactive
                            } else {
                                Priority::Batch
                            };
                            let res = client
                                .predict_with(x.row(row), lane, 0)
                                .expect("wire predict");
                            assert_eq!(
                                bits(&res.proba),
                                bits(reference.row(row)),
                                "order {o}, replicas {replicas}, client {client_idx}, \
                                 row {row} diverged over the wire"
                            );
                        }
                    });
                }
            });
            let metrics = server.metrics();
            assert_eq!(metrics.served, REQUESTS as u64, "order {o}");
            assert!(metrics.served_interactive > 0 && metrics.served_batch > 0);
            assert!(server.shutdown().shutdown().is_empty());
        }
    }
}

#[test]
fn wire_batch_request_is_bit_identical_to_one_shot_batched_path() {
    let x = request_rows();
    let vibnn = deployed(5);
    let reference = reference_rows(&vibnn, &x);
    let rows: Vec<Vec<f32>> = (0..REQUESTS).map(|r| x.row(r).to_vec()).collect();
    for lane in [Priority::Interactive, Priority::Batch] {
        let Some(server) = try_server(vibnn.clone(), 2, 4, 64) else {
            return;
        };
        let mut client = IngestClient::connect(server.local_addr()).expect("connect");
        let outcomes = client
            .predict_batch_with(&rows, lane, 0)
            .expect("wire batch");
        assert_eq!(outcomes.len(), REQUESTS);
        for (r, outcome) in outcomes.iter().enumerate() {
            let res = outcome.as_ref().expect("row served");
            assert_eq!(
                bits(&res.proba),
                bits(reference.row(r)),
                "lane {lane:?}, batch row {r} diverged over the wire"
            );
        }
        assert!(server.shutdown().shutdown().is_empty());
    }
}

#[test]
fn deadline_expired_requests_are_the_only_unanswered_ones() {
    let x = request_rows();
    let vibnn = deployed(5);
    let reference = reference_rows(&vibnn, &x);
    // One slow replica and a deep queue: a big no-deadline batch keeps
    // the dispatcher busy while the probe client sends 1 µs deadlines.
    let Some(server) = try_server(vibnn.clone(), 1, 2, 512) else {
        return;
    };
    let addr = server.local_addr();
    let congestion: Vec<Vec<f32>> = (0..240).map(|r| x.row(r % REQUESTS).to_vec()).collect();
    let loader = std::thread::spawn(move || {
        let mut client = IngestClient::connect(addr).expect("connect");
        client
            .predict_batch_with(&congestion, Priority::Batch, 0)
            .expect("congestion batch")
    });
    // Wait until the cluster queue is visibly non-empty, so the probe
    // requests genuinely queue behind work.
    let mut probe = IngestClient::connect(addr).expect("connect");
    for _ in 0..2000 {
        if probe.metrics().expect("metrics").queued > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(50));
    }
    let mut expired = 0usize;
    let mut answered = 0usize;
    for r in 0..6usize {
        match probe.predict_with(x.row(r), Priority::Interactive, 1) {
            // A served reply must still carry the reference bits …
            Ok(res) => {
                assert_eq!(bits(&res.proba), bits(reference.row(r)), "probe row {r}");
                answered += 1;
            }
            // … and the only admissible refusal is the typed deadline.
            Err(VibnnError::DeadlineExceeded) => expired += 1,
            Err(e) => panic!("probe row {r}: unexpected error {e}"),
        }
    }
    assert_eq!(answered + expired, 6, "every probe request got a reply");
    assert!(
        expired >= 1,
        "1 µs deadlines behind a 240-row backlog never expired"
    );
    // The congestion batch itself — no deadline — is answered in full,
    // every row bit-identical: expiry steals nothing from live traffic.
    let outcomes = loader.join().expect("loader thread");
    assert_eq!(outcomes.len(), 240);
    for (i, outcome) in outcomes.iter().enumerate() {
        let res = outcome.as_ref().expect("congestion row served");
        assert_eq!(
            bits(&res.proba),
            bits(reference.row(i % REQUESTS)),
            "congestion row {i} diverged"
        );
    }
    let metrics = server.metrics();
    assert_eq!(metrics.deadline_expired, expired as u64);
    assert_eq!(metrics.served, 240 + answered as u64);
    assert!(server.shutdown().shutdown().is_empty());
}

#[test]
fn cycle_backend_serves_the_wire_with_nonzero_cost_metrics() {
    let x = request_rows();
    let vibnn = deployed(5);
    // The ticked functional model on the cluster's derived replica
    // source is the reference for every wire answer.
    let eps = replica_source(&ZigguratGrng::new(CLUSTER_SEED));
    let mut sim = CycleAccelerator::new(vibnn.config().clone(), vibnn.network().clone());
    let reference: Vec<Vec<f32>> = (0..REQUESTS)
        .map(|r| sim.infer_forked(x.row(r), &eps).0)
        .collect();
    let cluster = ClusterEngine::with_eps(
        vibnn.clone(),
        ClusterConfig {
            replicas: 2,
            max_batch: 4,
            max_queue: 64,
            workers: 1,
            spill: true,
            batch_skip_bound: 4,
            backend: Some(BackendKind::Cycle),
            policy: None,
        },
        ZigguratGrng::new(CLUSTER_SEED),
    )
    .expect("valid cluster config");
    let server = match IngestServer::bind(cluster, "127.0.0.1:0", IngestConfig::default()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("skipping ingest determinism test: cannot bind loopback ({e})");
            return;
        }
    };
    let mut client = IngestClient::connect(server.local_addr()).expect("connect");
    for r in 0..REQUESTS {
        let res = client
            .predict_with(x.row(r), Priority::Interactive, 0)
            .expect("wire predict");
        assert_eq!(
            bits(&res.proba),
            bits(&reference[r]),
            "row {r} diverged from the ticked model over the wire"
        );
    }
    // The hardware ledger travels the wire: nonzero cycles/energy in the
    // Metrics reply, per-replica entries tagged Cycle, totals consistent.
    let m = client.metrics().expect("wire metrics");
    assert_eq!(m.served, REQUESTS as u64);
    assert!(m.cost.cycles > 0, "cycle serving must charge cycles");
    assert!(m.cost.energy_nj > 0.0, "cycle serving must charge energy");
    assert_eq!(m.cost.samples as usize, REQUESTS * vibnn.mc_samples());
    assert_eq!(m.replica_costs.len(), 2);
    for (kind, _) in &m.replica_costs {
        assert_eq!(*kind, BackendKind::Cycle);
    }
    assert_eq!(
        m.cost.cycles,
        m.replica_costs.iter().map(|(_, c)| c.cycles).sum::<u64>(),
        "wire total is the sum of per-replica costs"
    );
    assert!(server.shutdown().shutdown().is_empty());
}
