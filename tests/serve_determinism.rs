//! The serving engine's determinism contract, pinned end to end:
//!
//! For any interleaving of N single-row requests — any arrival order, any
//! micro-batch coalescing, any worker count (1/2/4), synchronous or
//! thread-backed — the per-request mean probabilities are **bit-identical**
//! to the one-shot batched `Vibnn::predict_proba_parallel` call over the
//! same N rows with the engine's ε source.
//!
//! Run explicitly by `ci.sh`.

use vibnn::bnn::{Bnn, BnnConfig};
use vibnn::grng::ZigguratGrng;
use vibnn::nn::{GaussianInit, Matrix};
use vibnn::serve::{ServeConfig, ServeEngine};
use vibnn::{Vibnn, VibnnBuilder, VibnnError};

const EPS_SEED: u64 = 0xC0FFEE;
const FEATURES: usize = 4;
const REQUESTS: usize = 10;

/// A lightly trained deployment (training makes the probabilities
/// non-degenerate, so bit-comparisons are meaningful).
fn deployed() -> Vibnn {
    let mut rng = GaussianInit::new(3);
    let mut x = Matrix::zeros(64, FEATURES);
    let mut y = Vec::new();
    for r in 0..64 {
        let mut s = 0.0;
        for c in 0..FEATURES {
            let v = rng.next_gaussian() as f32;
            x[(r, c)] = v;
            s += v;
        }
        y.push(usize::from(s > 0.0));
    }
    let mut bnn = Bnn::new(BnnConfig::new(&[FEATURES, 8, 2]).with_lr(0.02), 5);
    for _ in 0..3 {
        bnn.train_epoch(&x, &y, 16);
    }
    VibnnBuilder::new(bnn.params())
        .mc_samples(5)
        .calibration(x.rows_slice(0, 16))
        .build()
        .expect("valid deployment")
}

fn request_rows() -> Matrix {
    let mut rng = GaussianInit::new(17);
    let mut x = Matrix::zeros(REQUESTS, FEATURES);
    for v in x.data_mut() {
        *v = rng.next_gaussian() as f32;
    }
    x
}

fn engine(vibnn: Vibnn, max_batch: usize, workers: usize) -> ServeEngine<ZigguratGrng> {
    ServeEngine::with_eps(
        vibnn,
        ServeConfig {
            max_batch,
            max_queue: 64,
            workers,
            backend: None,
            policy: None,
        },
        ZigguratGrng::new(EPS_SEED),
    )
    .expect("valid serve config")
}

fn bits(row: &[f32]) -> Vec<u32> {
    row.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn sync_serving_is_bit_identical_to_batched_parallel_inference() {
    let x = request_rows();
    // The reference: one batched call, at several worker counts (which by
    // the PR 2 contract all agree).
    let reference = deployed().predict_proba_parallel(&x, &ZigguratGrng::new(EPS_SEED), 1);
    for threads in [2usize, 4] {
        let direct = deployed().predict_proba_parallel(&x, &ZigguratGrng::new(EPS_SEED), threads);
        assert_eq!(direct.data(), reference.data(), "direct path at {threads} threads");
    }
    // The engine: every (max_batch, workers) combination — including
    // micro-batches that split the 10 requests unevenly — must reproduce
    // the reference row for row.
    for max_batch in [1usize, 3, 4, 10, 32] {
        for workers in [1usize, 2, 4] {
            let results = engine(deployed(), max_batch, workers)
                .submit_batch(&x)
                .expect("serve");
            assert_eq!(results.len(), REQUESTS);
            for (r, res) in results.iter().enumerate() {
                assert_eq!(
                    bits(&res.proba),
                    bits(reference.row(r)),
                    "row {r} diverged at max_batch={max_batch} workers={workers}"
                );
            }
        }
    }
}

#[test]
fn arrival_order_never_changes_results() {
    let x = request_rows();
    let reference = deployed().predict_proba_parallel(&x, &ZigguratGrng::new(EPS_SEED), 1);
    // Several arrival orders, served through the threaded queue one
    // request at a time; results keyed by submission id map back to the
    // original row.
    let orders: [Vec<usize>; 3] = [
        (0..REQUESTS).collect(),
        (0..REQUESTS).rev().collect(),
        vec![5, 0, 9, 2, 7, 1, 8, 3, 6, 4],
    ];
    for (o, order) in orders.iter().enumerate() {
        for workers in [1usize, 2, 4] {
            let handle = engine(deployed(), 4, workers).spawn();
            let mut ids = [0u64; REQUESTS];
            for &row in order {
                let id = loop {
                    match handle.submit(x.row(row).to_vec()) {
                        Ok(id) => break id,
                        Err(VibnnError::QueueFull { .. }) => std::thread::yield_now(),
                        Err(e) => panic!("submit failed: {e}"),
                    }
                };
                ids[row] = id;
            }
            for (row, &id) in ids.iter().enumerate() {
                let res = handle.wait(id).expect("result");
                assert_eq!(
                    bits(&res.proba),
                    bits(reference.row(row)),
                    "order {o}, workers {workers}, row {row} diverged"
                );
            }
            let leftovers = handle.shutdown();
            assert!(leftovers.is_empty(), "all results were claimed");
        }
    }
}

#[test]
fn uncertainty_is_deterministic_and_consistent() {
    let x = request_rows();
    let a = engine(deployed(), 3, 1).submit_batch(&x).expect("serve");
    let b = engine(deployed(), 10, 4).submit_batch(&x).expect("serve");
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.proba, rb.proba);
        assert_eq!(ra.entropy.to_bits(), rb.entropy.to_bits());
        assert_eq!(ra.mc_std.to_bits(), rb.mc_std.to_bits());
        assert_eq!(ra.argmax, rb.argmax);
        // argmax really is the max of the probabilities.
        assert!(ra.proba.iter().all(|&p| p <= ra.proba[ra.argmax]));
    }
}

#[test]
fn backpressure_and_shutdown_are_well_behaved() {
    // A capacity-1 queue under a hammering submitter: Full errors are
    // expected (and tolerated), every accepted request must still be
    // answered correctly, and shutdown drains the queue.
    let x = request_rows();
    let reference = deployed().predict_proba_parallel(&x, &ZigguratGrng::new(EPS_SEED), 1);
    let handle = ServeEngine::with_eps(
        deployed(),
        ServeConfig {
            max_batch: 2,
            max_queue: 1,
            workers: 1,
            backend: None,
            policy: None,
        },
        ZigguratGrng::new(EPS_SEED),
    )
    .expect("valid serve config")
    .spawn();
    let mut accepted: Vec<(usize, u64)> = Vec::new();
    let mut full_seen = 0usize;
    for round in 0..5 {
        for row in 0..REQUESTS {
            match handle.submit(x.row(row).to_vec()) {
                Ok(id) => accepted.push((row, id)),
                Err(VibnnError::QueueFull {
                    depth: 1,
                    capacity: 1,
                }) => full_seen += 1,
                Err(e) => panic!("round {round}: unexpected error {e}"),
            }
        }
    }
    // We can't force a Full deterministically with a live dispatcher, but
    // every accepted request must resolve to the reference bits.
    for &(row, id) in &accepted {
        let res = handle.wait(id).expect("result");
        assert_eq!(bits(&res.proba), bits(reference.row(row)), "row {row}");
    }
    let _ = full_seen; // informational; the capacity gate is unit-tested
    assert!(handle.shutdown().is_empty());
}

#[test]
fn waiting_for_an_unknown_id_is_a_typed_error() {
    let handle = engine(deployed(), 2, 1).spawn();
    let id = handle.submit(vec![0.0; FEATURES]).unwrap();
    let _ = handle.wait(id).unwrap();
    // Waiting for an id that was never issued fails fast instead of
    // hanging.
    assert!(matches!(
        handle.wait(1_000),
        Err(VibnnError::UnknownRequest(1_000))
    ));
}
