//! Offline stand-in for the `proptest` property-testing harness.
//!
//! Implements the subset of the proptest 1.x API used by this
//! workspace's tests: the [`proptest!`] macro, `prop_assert!` /
//! `prop_assert_eq!`, [`ProptestConfig`], and strategies for integer
//! and float ranges, tuples, and `prop::collection::vec`.
//!
//! Each generated test samples its inputs from a deterministic
//! SplitMix64 stream and runs the body `config.cases` times. A failing
//! case panics immediately with the sampled inputs' debug
//! representation; unlike real proptest there is **no shrinking** — the
//! reported counterexample is the raw sampled one.
//!
//! See `vendor/README.md` for why this exists (no network access at
//! build time) and how to swap the real crate back in.

#![warn(missing_docs)]

/// Per-test configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod test_runner {
    //! Deterministic random source backing the generated tests.

    /// SplitMix64 stream used to sample strategy values.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Fixed-seed RNG so failures reproduce across runs. The seed
        /// can be overridden with the `PROPTEST_SEED` env var (decimal).
        pub fn deterministic() -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x5DEECE66D_u64);
            TestRng(seed)
        }

        /// Next 64 uniform random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform i128 in `[lo, hi]` (inclusive); `hi - lo` must fit u64.
        pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u128 + 1;
            if span == 0 {
                // Full u64-sized span: every draw is in range.
                lo + self.next_u64() as i128
            } else {
                lo + (self.next_u64() as u128 % span) as i128
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (sampling only, no shrinking).

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// A recipe for sampling values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draw one value from the strategy.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    rng.int_in(self.start as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.int_in(*self.start() as i128, *self.end() as i128) as $t
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.int_in(self.start as i128, <$t>::MAX as i128) as $t
                }
            }
        )*};
    }
    int_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! float_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    // Scale in f64 so narrow-type rounding can't produce
                    // exactly `end` (the range is half-open).
                    let v = (self.start as f64
                        + rng.next_f64() * (self.end as f64 - self.start as f64))
                        as $t;
                    if v >= self.end {
                        self.start
                    } else {
                        v
                    }
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    (*self.start() as f64
                        + rng.next_f64() * (*self.end() as f64 - *self.start() as f64))
                        as $t
                }
            }
        )*};
    }
    float_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($n:ident),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of values drawn from an element
    /// strategy, with length in a half-open range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A `Vec` strategy with length drawn from `len` (half-open).
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! Mirror of the `prop` module alias from the real prelude.
        pub use crate::collection;
    }
}

/// Assert a condition inside a property; panics with the current case's
/// inputs on failure (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Prints the failing case's inputs when dropped during a panic
/// unwind; silent otherwise. Lets the generated tests report inputs
/// without wrapping the body in a closure (which would break
/// `prop_assume!`'s `continue` and move-out of sampled values).
#[doc(hidden)]
#[derive(Debug)]
pub struct FailureReporter {
    /// `stringify!`d test name.
    pub test: &'static str,
    /// Pre-formatted `name = value` list for the current case.
    pub inputs: String,
}

impl Drop for FailureReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("proptest failure in `{}` with {}", self.test, self.inputs);
        }
    }
}

/// Skip the current case when its sampled inputs don't satisfy a
/// precondition (maps to `continue` on the case loop; the body runs
/// inline in that loop, not in a closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Mirror of proptest's `proptest!` macro: each `fn name(arg in
/// strategy, ...) { body }` item becomes a `#[test]` running the body
/// over `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                )+
                // Formatted up front because the body may move the
                // sampled values; the reporter only prints on unwind.
                let __reporter = $crate::FailureReporter {
                    test: stringify!($name),
                    inputs: format!(
                        concat!("case {}: ", $(stringify!($arg), " = {:?}, ",)+),
                        case $(, &$arg)+
                    ),
                };
                { $body }
                drop(__reporter);
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        /// Half-open ranges never yield their upper bound, even for f32
        /// where f64→f32 rounding could otherwise land on it.
        #[test]
        fn float_range_is_half_open(x in 0.0f32..1.0f32, y in -3.0f64..3.0) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((-3.0..3.0).contains(&y));
        }

        /// prop_assume! rejects cases without failing the test, from
        /// inside the unwind-catching case loop.
        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        /// Collection and tuple strategies respect their bounds.
        #[test]
        fn vec_strategy_len_in_range(v in prop::collection::vec((0i32..10, 5u8..6), 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            for (a, b) in v {
                prop_assert!((0..10).contains(&a));
                prop_assert_eq!(b, 5);
            }
        }
    }
}
