//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API used by this
//! workspace's benches (`Criterion`, `BenchmarkGroup`, `Bencher`,
//! [`Throughput`], [`criterion_group!`], [`criterion_main!`]). Unlike a
//! mock, it really runs the benchmark closures on a short fixed budget
//! and reports a median ns/iter (plus derived throughput), so relative
//! comparisons between benches remain meaningful. It performs no
//! statistical analysis, plotting, or baseline persistence.
//!
//! See `vendor/README.md` for why this exists (no network access at
//! build time) and how to swap the real crate back in.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How many "items" one iteration of a benchmark processes, used to
/// derive a rate from the measured time per iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (samples, images, …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Run `f` repeatedly, recording wall-clock time per call.
    ///
    /// The budget is intentionally small (a fraction of the configured
    /// measurement time, capped) so the whole suite stays fast.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget (capped) elapses.
        let warm_budget = self.warm_up_time.min(Duration::from_millis(100));
        let start = Instant::now();
        while start.elapsed() < warm_budget {
            black_box(f());
        }
        // Measurement: up to `sample_size` samples within the budget.
        let budget = self.measurement_time.min(Duration::from_millis(250));
        let start = Instant::now();
        for _ in 0..self.sample_size.max(1) {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_secs_f64());
            if start.elapsed() > budget {
                break;
            }
        }
    }

    fn median_secs(&mut self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        self.samples[self.samples.len() / 2]
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(250),
            warm_up_time: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Set the target number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Set the measurement budget per benchmark (capped internally).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up budget per benchmark (capped internally).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self, None, name, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A named group of benchmarks sharing throughput/sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut cfg = self.criterion.clone();
        if let Some(n) = self.sample_size {
            cfg.sample_size = n;
        }
        run_one(&cfg, Some(&self.name), name, self.throughput, f);
        self
    }

    /// Finish the group (report nothing extra; exists for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    cfg: &Criterion,
    group: Option<&str>,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: cfg.sample_size,
        measurement_time: cfg.measurement_time,
        warm_up_time: cfg.warm_up_time,
    };
    f(&mut b);
    let secs = b.median_secs();
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>10.3} Melem/s", n as f64 / secs / 1e6),
        Some(Throughput::Bytes(n)) => format!("  {:>10.3} MiB/s", n as f64 / secs / (1 << 20) as f64),
        None => String::new(),
    };
    println!("bench {label:<48} {:>12.0} ns/iter{rate}", secs * 1e9);
}

/// Mirror of criterion's `criterion_group!`: bundles target functions
/// under a named runner with a shared configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirror of criterion's `criterion_main!`: emits `fn main` running the
/// given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
