//! The continuous train→serve loop: [`OnlineRuntime`].
//!
//! An online runtime owns a serving [`ClusterEngine`] and a background
//! trainer thread, and closes the loop between them over a deterministic
//! [`DriftStream`]: each **round** serves a fresh batch of streamed
//! requests through the cluster, folds the served predictive entropies
//! into a sliding trigger window, and — when the windowed mean crosses
//! [`OnlineConfig::entropy_threshold`] (or the periodic fallback fires) —
//! hands the round's training batch to the trainer. The trainer continues
//! the **same** Bayes-by-Backprop state (optimizer moments, ε substreams,
//! schedule position) through the shared round machinery, builds a fresh
//! deployment, and the runtime hot-swaps it across every replica via
//! [`ClusterEngine::rollout`] at the next round boundary — mid-traffic,
//! with nothing dropped.
//!
//! # Determinism contract
//!
//! Every decision the loop makes is a pure function of the configuration,
//! the stream seed, and the served request data:
//!
//! - stream batches are pure in `(spec, seed, step)`;
//! - per-request cluster results are bit-identical at any worker /
//!   replica / thread count (the cluster contract), and the runtime
//!   aggregates them in submission order, never from live completion-order
//!   metrics;
//! - training rounds are bit-identical at any thread count (the training
//!   engine contract), and retrains overlap exactly one round of serving
//!   before their swap applies at the next boundary;
//! - the loop state (trigger window, event log, trainer bytes) is
//!   persisted crash-safely at every round boundary, so a killed run
//!   resumed with [`OnlineRuntime::resume`] replays the remaining rounds
//!   **bit-identically** to one that was never interrupted.
//!
//! `tests/online_determinism.rs` pins all of the above.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use vibnn_bnn::checkpoint::{atomic_write, CheckpointError, WireReader, WireWriter};
use vibnn_bnn::{Bnn, BnnConfig, LrSchedule, TrainSchedule};
use vibnn_datasets::DriftStream;
use vibnn_grng::ZigguratGrng;
use vibnn_nn::Matrix;

use crate::cluster::{ClusterConfig, ClusterEngine};
use crate::pipeline::train_round;
use crate::serve::ServeResult;
use crate::{Vibnn, VibnnBuilder, VibnnError};

/// Checkpoint-envelope kind for the persisted online-loop state
/// (extends the kind-1/2/3 catalog in [`vibnn_bnn::checkpoint`]).
pub const KIND_ONLINE: u8 = 4;

/// Configuration for an [`OnlineRuntime`].
///
/// Plain fields: build one with [`OnlineConfig::new`] and override what
/// the workload needs. All sizes are per round unless stated otherwise.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// BNN initialization / training-ε seed.
    pub seed: u64,
    /// Rounds the loop runs before [`OnlineRuntime::run`] returns.
    pub rounds: usize,
    /// Streamed requests served per round.
    pub serve_rows: usize,
    /// Streamed training rows per retraining round.
    pub train_rows: usize,
    /// Hidden-layer widths (the input/output widths come from the
    /// stream's spec).
    pub hidden: Vec<usize>,
    /// Base learning rate.
    pub lr: f32,
    /// Epochs for the initial (round-0) fit.
    pub initial_epochs: usize,
    /// Epochs per incremental retraining round.
    pub epochs_per_round: usize,
    /// Training minibatch size.
    pub train_batch: usize,
    /// Monte Carlo gradient samples per training step.
    pub train_mc: usize,
    /// Trainer thread count (`0` honours `VIBNN_THREADS`; never affects
    /// results).
    pub threads: usize,
    /// Learning-rate schedule, indexed on lifetime epochs.
    pub lr_schedule: LrSchedule,
    /// Monte Carlo samples per served request.
    pub mc_samples: usize,
    /// Retrain when the windowed mean served entropy (nats) exceeds
    /// this. `f64::INFINITY` disables uncertainty triggering.
    ///
    /// The window consumes whatever entropy each served result carries:
    /// under an adaptive [`crate::sampler::PolicySpec`] on
    /// [`OnlineConfig::cluster`] that is the early-exit entropy tap —
    /// the estimate computed over however many samples the policy
    /// actually drew — so uncertainty-triggered retraining works
    /// unchanged (and cheaper) on adaptively sampled traffic.
    pub entropy_threshold: f64,
    /// Served requests in the sliding trigger window.
    pub trigger_window: usize,
    /// Also retrain every `n` rounds regardless of uncertainty
    /// (`0` disables the periodic fallback).
    pub periodic_fallback: usize,
    /// Serving-cluster shape, including the optional
    /// [`ClusterConfig::policy`] for adaptive sampling.
    pub cluster: ClusterConfig,
    /// Cluster serving-ε seed.
    pub cluster_seed: u64,
    /// Kind-3 deployment checkpoint path — always holds the version the
    /// cluster is currently serving (written before every rollout).
    pub deploy_path: PathBuf,
    /// Kind-4 loop-state checkpoint path — written crash-safely at every
    /// round boundary; [`OnlineRuntime::resume`] restarts from it.
    pub state_path: PathBuf,
}

impl OnlineConfig {
    /// A small default configuration writing its checkpoints under
    /// `dir`: 12 rounds of 64 served / 64 training rows, one 16-unit
    /// hidden layer, 2 replicas, entropy threshold 0.45 nats over a
    /// 128-request window, no periodic fallback.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        Self {
            seed: 1,
            rounds: 12,
            serve_rows: 64,
            train_rows: 64,
            hidden: vec![16],
            lr: 0.05,
            initial_epochs: 8,
            epochs_per_round: 4,
            train_batch: 16,
            train_mc: 1,
            threads: 0,
            lr_schedule: LrSchedule::Const,
            mc_samples: 8,
            entropy_threshold: 0.45,
            trigger_window: 128,
            periodic_fallback: 0,
            cluster: ClusterConfig {
                replicas: 2,
                max_batch: 16,
                max_queue: 256,
                ..ClusterConfig::default()
            },
            cluster_seed: 0x0815_EED0,
            deploy_path: dir.join("online_deploy.ckpt"),
            state_path: dir.join("online_state.ckpt"),
        }
    }
}

/// What happened at a loop decision point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnlineEventKind {
    /// The windowed entropy mean crossed the threshold; a retrain was
    /// dispatched.
    UncertaintyTrigger,
    /// The periodic fallback fired; a retrain was dispatched.
    PeriodicTrigger,
    /// A finished retrain was rolled out across the cluster.
    Swap,
}

/// One deterministic loop event, in firing order.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineEvent {
    /// Round the event fired in (triggers fire at the end of their
    /// round; swaps apply at the end of the following round).
    pub round: u64,
    /// Event kind.
    pub kind: OnlineEventKind,
    /// Windowed entropy mean at the decision point.
    pub entropy_window_mean: f64,
    /// Deployment version after the event (swap count so far).
    pub version: u64,
}

/// Per-round aggregates over the served batch, in submission order.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// Round index.
    pub round: u64,
    /// Fraction of served requests whose argmax matched the stream
    /// label.
    pub accuracy: f64,
    /// Mean predictive entropy (nats) of this round's served requests.
    pub entropy_mean: f64,
    /// Mean Monte Carlo spread of this round's served requests.
    pub mc_std_mean: f64,
    /// Sliding-window entropy mean after folding this round in (the
    /// trigger aggregate).
    pub window_mean: f64,
    /// FNV-1a digest over the served probability bits in submission
    /// order — the round's bit-identity witness.
    pub digest: u64,
    /// Whether a retrain was dispatched at the end of this round.
    pub triggered: bool,
    /// Whether a finished retrain was rolled out at the end of this
    /// round.
    pub swapped: bool,
    /// Deployment version this round was served by.
    pub serving_version: u64,
}

/// The loop's full deterministic record, from [`OnlineRuntime::run`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OnlineReport {
    /// Per-round aggregates, in order.
    pub rounds: Vec<RoundReport>,
    /// Trigger and swap events, in firing order.
    pub events: Vec<OnlineEvent>,
    /// Rollouts completed.
    pub swaps: u64,
}

/// Work order for the trainer thread: continue training on one streamed
/// batch, then build a deployment calibrated on that batch.
struct TrainerJob {
    round: u64,
    x: Matrix,
    y: Vec<usize>,
}

struct TrainerDone {
    round: u64,
    result: Result<(Vibnn, Vec<u8>), VibnnError>,
}

/// Mutable loop state; exactly this (plus the trainer bytes) is what the
/// kind-4 state checkpoint persists.
struct LoopState {
    rounds_done: u64,
    swaps: u64,
    in_flight: Option<u64>,
    window: VecDeque<f64>,
    events: Vec<OnlineEvent>,
    rounds: Vec<RoundReport>,
    /// Kind-2 serialization of the trainer as of its last completed
    /// round (the resume seed for an interrupted retrain).
    trainer_bytes: Vec<u8>,
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// The continuous online-learning runtime. See the [module docs](self)
/// for the loop architecture and determinism contract.
///
/// # Example
///
/// ```
/// use vibnn::datasets::{Drift, DriftStream, SynthSpec};
/// use vibnn::online::{OnlineConfig, OnlineRuntime};
///
/// let dir = std::env::temp_dir().join(format!("vibnn_online_doc_{}", std::process::id()));
/// std::fs::create_dir_all(&dir).unwrap();
/// let stream = DriftStream::new(
///     SynthSpec::new("live", 4, 2, 10, 10).with_separability(2.0),
///     7,
/// )
/// .with(Drift::CovariateShift { magnitude: 3.0 }, 2, 2);
///
/// let mut cfg = OnlineConfig::new(&dir);
/// cfg.rounds = 3;
/// cfg.serve_rows = 8;
/// cfg.train_rows = 16;
/// cfg.initial_epochs = 2;
/// cfg.epochs_per_round = 1;
/// cfg.mc_samples = 2;
/// cfg.periodic_fallback = 2; // retrain every 2 rounds as a fallback
/// cfg.cluster.replicas = 1;
///
/// let report = OnlineRuntime::new(cfg, stream)?.run()?;
/// assert_eq!(report.rounds.len(), 3);
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), vibnn::VibnnError>(())
/// ```
pub struct OnlineRuntime {
    cfg: OnlineConfig,
    stream: DriftStream,
    cluster: Option<ClusterEngine<ZigguratGrng>>,
    job_tx: Option<Sender<TrainerJob>>,
    done_rx: Receiver<TrainerDone>,
    trainer: Option<JoinHandle<()>>,
    st: LoopState,
}

/// Stream-step layout: step 0 is the initial fit; round `t` then owns
/// steps `1 + 2t` (training) and `2 + 2t` (serving), so training and
/// serving batches never share rows.
fn train_step(round: u64) -> u64 {
    1 + 2 * round
}
fn serve_step(round: u64) -> u64 {
    2 + 2 * round
}

impl OnlineRuntime {
    /// Builds the loop from scratch: fits the initial model on stream
    /// step 0, deploys it to `deploy_path`, starts the serving cluster
    /// and the trainer thread, and persists the round-0 loop state.
    ///
    /// # Errors
    ///
    /// Training validation errors, [`VibnnError::Checkpoint`] on
    /// unwritable paths, and every [`VibnnBuilder::build`] error.
    pub fn new(cfg: OnlineConfig, stream: DriftStream) -> Result<Self, VibnnError> {
        let (x0, y0) = stream.batch(0, cfg.train_rows.max(cfg.train_batch));
        let mut sizes = vec![stream.spec().features()];
        sizes.extend_from_slice(&cfg.hidden);
        sizes.push(stream.spec().classes());
        let mut bnn = Bnn::new(BnnConfig::new(&sizes).with_lr(cfg.lr), cfg.seed);
        train_round(
            &mut bnn,
            &x0,
            &y0,
            cfg.train_batch,
            cfg.train_mc,
            cfg.threads,
            &TrainSchedule {
                epochs: cfg.initial_epochs,
                lr: cfg.lr_schedule,
                early_stop: None,
            },
            None,
        )?;
        let trainer_bytes = bnn.to_bytes();
        let vibnn = VibnnBuilder::new(bnn.params())
            .mc_samples(cfg.mc_samples)
            .calibration(x0)
            .build()?;
        vibnn.save(&cfg.deploy_path)?;
        let st = LoopState {
            rounds_done: 0,
            swaps: 0,
            in_flight: None,
            window: VecDeque::new(),
            events: Vec::new(),
            rounds: Vec::new(),
            trainer_bytes,
        };
        let rt = Self::assemble(cfg, stream, vibnn, bnn, st)?;
        rt.save_state()?;
        Ok(rt)
    }

    /// Restarts an interrupted loop from its state checkpoint: reloads
    /// the serving deployment from `deploy_path`, the trainer from the
    /// persisted kind-2 bytes, and — if a retrain was in flight when the
    /// run died — re-dispatches it (its training batch regenerates from
    /// the stream). The continuation is bit-identical to a run that was
    /// never interrupted.
    ///
    /// # Errors
    ///
    /// [`VibnnError::Checkpoint`] on missing/corrupt state or deployment
    /// files.
    pub fn resume(cfg: OnlineConfig, stream: DriftStream) -> Result<Self, VibnnError> {
        let bytes = std::fs::read(&cfg.state_path).map_err(CheckpointError::Io)?;
        let st = read_state(&bytes)?;
        let bnn = Bnn::from_bytes(&st.trainer_bytes)?;
        let vibnn = Vibnn::load(&cfg.deploy_path)?;
        let resend = st.in_flight;
        let mut rt = Self::assemble(cfg, stream, vibnn, bnn, st)?;
        if let Some(round) = resend {
            rt.dispatch_retrain(round)?;
        }
        Ok(rt)
    }

    fn assemble(
        cfg: OnlineConfig,
        stream: DriftStream,
        vibnn: Vibnn,
        bnn: Bnn,
        st: LoopState,
    ) -> Result<Self, VibnnError> {
        let cluster =
            ClusterEngine::with_eps(vibnn, cfg.cluster, ZigguratGrng::new(cfg.cluster_seed))?;
        let (job_tx, job_rx) = channel::<TrainerJob>();
        let (done_tx, done_rx) = channel::<TrainerDone>();
        let tcfg = cfg.clone();
        let trainer = std::thread::spawn(move || trainer_loop(bnn, tcfg, &job_rx, &done_tx));
        Ok(Self {
            cfg,
            stream,
            cluster: Some(cluster),
            job_tx: Some(job_tx),
            done_rx,
            trainer: Some(trainer),
            st,
        })
    }

    /// Rounds completed so far.
    pub fn rounds_done(&self) -> u64 {
        self.st.rounds_done
    }

    /// The loop record so far (identical to what [`OnlineRuntime::run`]
    /// would return if the loop stopped now, minus any in-flight swap).
    pub fn report(&self) -> OnlineReport {
        OnlineReport {
            rounds: self.st.rounds.clone(),
            events: self.st.events.clone(),
            swaps: self.st.swaps,
        }
    }

    /// Runs up to `n` more rounds (stopping at the configured budget)
    /// and persists the loop state after each.
    ///
    /// # Errors
    ///
    /// Serving, training, and checkpoint errors; the loop state on disk
    /// stays consistent with the last completed round either way.
    pub fn run_rounds(&mut self, n: usize) -> Result<(), VibnnError> {
        for _ in 0..n {
            if self.st.rounds_done >= self.cfg.rounds as u64 {
                break;
            }
            self.run_round()?;
        }
        Ok(())
    }

    /// Runs every remaining round, applies any retrain still in flight,
    /// shuts the cluster and trainer down, and returns the full record.
    ///
    /// # Errors
    ///
    /// Everything [`OnlineRuntime::run_rounds`] can return.
    pub fn run(mut self) -> Result<OnlineReport, VibnnError> {
        while self.st.rounds_done < self.cfg.rounds as u64 {
            self.run_round()?;
        }
        // A retrain dispatched in the final round still lands: apply it
        // so `deploy_path` holds the freshest model, and log the swap at
        // the boundary round for a deterministic event record.
        if self.st.in_flight.is_some() {
            self.apply_finished_retrain(self.cfg.rounds as u64)?;
            self.save_state()?;
        }
        let report = self.report();
        self.teardown();
        Ok(report)
    }

    /// Abandons the loop **without** applying any in-flight retrain —
    /// the controlled stand-in for a kill: the state checkpoint on disk
    /// stays at the last round boundary, and [`OnlineRuntime::resume`]
    /// picks up from exactly there.
    pub fn shutdown(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        // Closing the job channel stops the trainer; an unread
        // TrainerDone (an in-flight retrain at a kill) is dropped with
        // the channel — resume re-runs that round from the persisted
        // trainer bytes instead.
        drop(self.job_tx.take());
        if let Some(t) = self.trainer.take() {
            let _ = t.join();
        }
        if let Some(c) = self.cluster.take() {
            let _ = c.shutdown();
        }
    }

    fn cluster(&self) -> &ClusterEngine<ZigguratGrng> {
        self.cluster.as_ref().expect("cluster alive until teardown")
    }

    /// One full round: serve, aggregate, maybe apply a finished retrain,
    /// maybe dispatch a new one, persist.
    fn run_round(&mut self) -> Result<(), VibnnError> {
        let t = self.st.rounds_done;
        let serving_version = self.st.swaps;
        let (sx, sy) = self.stream.batch(serve_step(t), self.cfg.serve_rows);
        let results = self.serve_batch(&sx)?;

        let n = results.len().max(1) as f64;
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        let mut correct = 0usize;
        let (mut esum, mut ssum) = (0.0f64, 0.0f64);
        for (r, res) in results.iter().enumerate() {
            for p in &res.proba {
                fnv1a(&mut digest, &p.to_bits().to_le_bytes());
            }
            if res.argmax == sy[r] {
                correct += 1;
            }
            esum += res.entropy;
            ssum += res.mc_std;
            if self.st.window.len() == self.cfg.trigger_window.max(1) {
                self.st.window.pop_front();
            }
            self.st.window.push_back(res.entropy);
        }
        let window_mean =
            self.st.window.iter().sum::<f64>() / self.st.window.len().max(1) as f64;

        // A retrain dispatched last round trained while this round
        // served the old model; fold it in at the boundary.
        let swapped = if self.st.in_flight.is_some() {
            self.apply_finished_retrain(t)?;
            true
        } else {
            false
        };

        // Trigger decision — driver-owned, from submission-order
        // aggregates only (live cluster metrics are completion-ordered
        // and therefore not replayable).
        let uncertainty = window_mean > self.cfg.entropy_threshold;
        let periodic = self.cfg.periodic_fallback > 0
            && (t + 1) % self.cfg.periodic_fallback as u64 == 0;
        let triggered = uncertainty || periodic;
        if triggered {
            self.st.events.push(OnlineEvent {
                round: t,
                kind: if uncertainty {
                    OnlineEventKind::UncertaintyTrigger
                } else {
                    OnlineEventKind::PeriodicTrigger
                },
                entropy_window_mean: window_mean,
                version: self.st.swaps,
            });
            self.dispatch_retrain(t)?;
        }

        self.st.rounds.push(RoundReport {
            round: t,
            accuracy: correct as f64 / n,
            entropy_mean: esum / n,
            mc_std_mean: ssum / n,
            window_mean,
            digest,
            triggered,
            swapped,
            serving_version,
        });
        self.st.rounds_done = t + 1;
        self.save_state()
    }

    /// Submits every row (in order, with backpressure-aware draining)
    /// and returns the results in submission order.
    fn serve_batch(&mut self, x: &Matrix) -> Result<Vec<ServeResult>, VibnnError> {
        let mut results: Vec<Option<ServeResult>> = (0..x.rows()).map(|_| None).collect();
        let mut pending: VecDeque<(usize, u64)> = VecDeque::new();
        for r in 0..x.rows() {
            loop {
                match self.cluster().submit(x.row(r).to_vec()) {
                    Ok(id) => {
                        pending.push_back((r, id));
                        break;
                    }
                    Err(VibnnError::QueueFull { .. }) => {
                        let (row, id) = pending.pop_front().expect("backpressure with empty queue");
                        results[row] = Some(self.cluster().wait(id)?);
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        for (row, id) in pending {
            results[row] = Some(self.cluster().wait(id)?);
        }
        Ok(results.into_iter().map(|r| r.expect("every row waited")).collect())
    }

    fn dispatch_retrain(&mut self, round: u64) -> Result<(), VibnnError> {
        let (x, y) = self.stream.batch(train_step(round), self.cfg.train_rows);
        self.job_tx
            .as_ref()
            .expect("trainer alive until teardown")
            .send(TrainerJob { round, x, y })
            .map_err(|_| VibnnError::EngineStopped)?;
        self.st.in_flight = Some(round);
        Ok(())
    }

    /// Blocks for the in-flight retrain, persists the new deployment,
    /// and rolls it across the cluster. `at_round` is the boundary the
    /// swap is logged under.
    fn apply_finished_retrain(&mut self, at_round: u64) -> Result<(), VibnnError> {
        let expected = self.st.in_flight.take().expect("caller checked in_flight");
        let done = self.done_rx.recv().map_err(|_| VibnnError::EngineStopped)?;
        debug_assert_eq!(done.round, expected, "retrains complete in dispatch order");
        let (vibnn, bytes) = done.result?;
        vibnn.save(&self.cfg.deploy_path)?;
        self.cluster().rollout(vibnn)?;
        self.st.trainer_bytes = bytes;
        self.st.swaps += 1;
        let window_mean =
            self.st.window.iter().sum::<f64>() / self.st.window.len().max(1) as f64;
        self.st.events.push(OnlineEvent {
            round: at_round,
            kind: OnlineEventKind::Swap,
            entropy_window_mean: window_mean,
            version: self.st.swaps,
        });
        Ok(())
    }

    /// Persists the loop state crash-safely (kind-4 envelope, atomic
    /// temp-and-rename write).
    fn save_state(&self) -> Result<(), VibnnError> {
        let mut w = WireWriter::new(KIND_ONLINE);
        w.u64(self.st.rounds_done);
        w.u64(self.st.swaps);
        match self.st.in_flight {
            Some(r) => {
                w.u8(1);
                w.u64(r);
            }
            None => {
                w.u8(0);
                w.u64(0);
            }
        }
        w.dim(self.st.window.len());
        for &e in &self.st.window {
            w.f64(e);
        }
        w.dim(self.st.events.len());
        for ev in &self.st.events {
            w.u64(ev.round);
            w.u8(match ev.kind {
                OnlineEventKind::UncertaintyTrigger => 0,
                OnlineEventKind::PeriodicTrigger => 1,
                OnlineEventKind::Swap => 2,
            });
            w.f64(ev.entropy_window_mean);
            w.u64(ev.version);
        }
        w.dim(self.st.rounds.len());
        for r in &self.st.rounds {
            w.u64(r.round);
            w.f64(r.accuracy);
            w.f64(r.entropy_mean);
            w.f64(r.mc_std_mean);
            w.f64(r.window_mean);
            w.u64(r.digest);
            w.u8(u8::from(r.triggered));
            w.u8(u8::from(r.swapped));
            w.u64(r.serving_version);
        }
        w.dim(self.st.trainer_bytes.len());
        w.raw(&self.st.trainer_bytes);
        atomic_write(&self.cfg.state_path, &w.into_bytes())?;
        Ok(())
    }
}

fn read_state(bytes: &[u8]) -> Result<LoopState, VibnnError> {
    let mut r = WireReader::open(bytes, KIND_ONLINE)?;
    let rounds_done = r.u64()?;
    let swaps = r.u64()?;
    let in_flight = match (r.u8()?, r.u64()?) {
        (0, _) => None,
        (1, round) => Some(round),
        (flag, _) => {
            return Err(VibnnError::Checkpoint(CheckpointError::Corrupt(format!(
                "bad in-flight flag {flag}"
            ))))
        }
    };
    let n = r.dim()?;
    let mut window = VecDeque::with_capacity(n);
    for _ in 0..n {
        window.push_back(r.f64()?);
    }
    let n = r.dim()?;
    let mut events = Vec::with_capacity(n.min(bytes.len()));
    for _ in 0..n {
        events.push(OnlineEvent {
            round: r.u64()?,
            kind: match r.u8()? {
                0 => OnlineEventKind::UncertaintyTrigger,
                1 => OnlineEventKind::PeriodicTrigger,
                2 => OnlineEventKind::Swap,
                k => {
                    return Err(VibnnError::Checkpoint(CheckpointError::Corrupt(format!(
                        "unknown event kind {k}"
                    ))))
                }
            },
            entropy_window_mean: r.f64()?,
            version: r.u64()?,
        });
    }
    let n = r.dim()?;
    let mut rounds = Vec::with_capacity(n.min(bytes.len()));
    for _ in 0..n {
        rounds.push(RoundReport {
            round: r.u64()?,
            accuracy: r.f64()?,
            entropy_mean: r.f64()?,
            mc_std_mean: r.f64()?,
            window_mean: r.f64()?,
            digest: r.u64()?,
            triggered: r.u8()? != 0,
            swapped: r.u8()? != 0,
            serving_version: r.u64()?,
        });
    }
    let len = r.dim()?;
    let trainer_bytes = r.raw(len)?.to_vec();
    r.finish()?;
    Ok(LoopState {
        rounds_done,
        swaps,
        in_flight,
        window,
        events,
        rounds,
        trainer_bytes,
    })
}

/// The trainer thread: one incremental round per job on a **persistent**
/// `Bnn` (optimizer moments, ε substreams, and schedule position carry
/// across rounds), deployment built and calibrated on the job's batch.
fn trainer_loop(
    mut bnn: Bnn,
    cfg: OnlineConfig,
    jobs: &Receiver<TrainerJob>,
    done: &Sender<TrainerDone>,
) {
    while let Ok(job) = jobs.recv() {
        let result = train_round(
            &mut bnn,
            &job.x,
            &job.y,
            cfg.train_batch,
            cfg.train_mc,
            cfg.threads,
            &TrainSchedule {
                epochs: cfg.epochs_per_round,
                lr: cfg.lr_schedule,
                early_stop: None,
            },
            None,
        )
        .and_then(|_| {
            VibnnBuilder::new(bnn.params())
                .mc_samples(cfg.mc_samples)
                .calibration(job.x)
                .build()
                .map(|vibnn| (vibnn, bnn.to_bytes()))
        });
        if done.send(TrainerDone { round: job.round, result }).is_err() {
            break;
        }
    }
}
