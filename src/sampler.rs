//! Adaptive Monte Carlo sampling: per-request sample-count decisions.
//!
//! Serving cost in this reproduction is linear in MC samples — the
//! paper's central trade-off treats the sample count `N` as a static
//! offline knob (its MC-samples ablation) — yet most requests are
//! decided after a handful of draws. This module turns the count into a
//! **per-request decision**: a [`SamplingPolicy`] watches each request's
//! running prediction sample by sample and decides when to stop.
//!
//! Three policies cover the spectrum:
//!
//! - [`ExactN`] — the pinned reference: always draw every configured
//!   sample. Results are bit-identical to the historical serve path.
//! - [`EarlyExit`] — stop once the running argmax and a quantized
//!   entropy estimate have been stable for `k` consecutive samples
//!   (after a warm-up of `min_samples`).
//! - [`RiskTiered`] — [`EarlyExit`] for confident requests, but a
//!   high-entropy request is *escalated* to the full sample budget, and
//!   (optionally) answered with a typed
//!   [`Abstained`](crate::VibnnError::Abstained) error if it is still
//!   uncertain at the budget.
//!
//! # Determinism
//!
//! A stopping decision is a pure function of the request's feature row
//! and the engine's ε substreams: sample `s` always draws from
//! `eps.fork(s)` (the workspace-wide convention), the decision tracker
//! consumes only that request's own member probabilities, and worker
//! count, batch composition, arrival order, replica count, and spill
//! never enter the decision. Consequently `samples_used` — and the
//! served bits — are reproducible anywhere the request lands, which is
//! what keeps cluster spill policy-safe. The decision accumulator is a
//! separate f64 running sum that never touches the served result's
//! arithmetic: a request that stops at `n` samples returns exactly what
//! the batched path would return for `mc_samples = n`.

use std::fmt;

/// Entropy-quantization levels in the stability signature (the running
/// normalized entropy is bucketed into this many levels; the signature
/// is stable when the bucket and the argmax both repeat).
pub const ENTROPY_QUANT_LEVELS: u32 = 16;

/// A serializable description of a sampling policy — the configuration
/// that travels through `ServeConfig`/`ClusterConfig`/`VibnnBuilder`
/// and shows up in metrics. [`instantiate`](Self::instantiate) turns it
/// into the policy object engines consult.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PolicySpec {
    /// Always draw the full configured sample count (the pinned
    /// reference; bit-identical to the historical serve path).
    #[default]
    ExactN,
    /// Stop when the stability signature repeats `k` consecutive times
    /// (counting the current sample), after at least `min_samples`
    /// draws.
    EarlyExit {
        /// Consecutive stable signatures required to stop (≥ 1).
        k: u32,
        /// Samples always drawn before stopping is considered (≥ 1).
        min_samples: u32,
    },
    /// [`PolicySpec::EarlyExit`], plus risk tiering: a request whose
    /// normalized entropy is at or above `escalate_milli / 1000` when
    /// it would stop is escalated to the full budget; if `abstain` is
    /// set and it is *still* that uncertain at the budget, it is
    /// answered with [`VibnnError::Abstained`](crate::VibnnError::Abstained)
    /// instead of a prediction.
    RiskTiered {
        /// Consecutive stable signatures required to stop (≥ 1).
        k: u32,
        /// Samples always drawn before stopping is considered (≥ 1).
        min_samples: u32,
        /// Escalation threshold in thousandths of the maximum entropy
        /// `ln(classes)` (e.g. `600` escalates requests whose running
        /// normalized entropy is ≥ 0.6).
        escalate_milli: u32,
        /// Abstain (typed error) when still above the threshold at the
        /// full budget; otherwise the full-sample prediction is served.
        abstain: bool,
    },
}

impl PolicySpec {
    /// Stable one-byte tag (metrics display and bench labels).
    pub fn code(self) -> u8 {
        match self {
            PolicySpec::ExactN => 0,
            PolicySpec::EarlyExit { .. } => 1,
            PolicySpec::RiskTiered { .. } => 2,
        }
    }

    /// Validates the knobs; engines call this at construction so a bad
    /// policy is a typed `BadServeConfig`, not a silent never-stop.
    pub fn validate(self) -> Result<(), &'static str> {
        match self {
            PolicySpec::ExactN => Ok(()),
            PolicySpec::EarlyExit { k, min_samples }
            | PolicySpec::RiskTiered { k, min_samples, .. } => {
                if k == 0 {
                    Err("sampling policy k must be positive")
                } else if min_samples == 0 {
                    Err("sampling policy min_samples must be positive")
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Instantiates the policy object a serving engine consults.
    pub fn instantiate(self) -> Box<dyn SamplingPolicy> {
        match self {
            PolicySpec::ExactN => Box::new(ExactN),
            PolicySpec::EarlyExit { k, min_samples } => Box::new(EarlyExit { k, min_samples }),
            PolicySpec::RiskTiered {
                k,
                min_samples,
                escalate_milli,
                abstain,
            } => Box::new(RiskTiered {
                k,
                min_samples,
                escalate_milli,
                abstain,
            }),
        }
    }
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicySpec::ExactN => write!(f, "exact-n"),
            PolicySpec::EarlyExit { k, min_samples } => {
                write!(f, "early-exit(k={k},min={min_samples})")
            }
            PolicySpec::RiskTiered {
                k,
                min_samples,
                escalate_milli,
                abstain,
            } => write!(
                f,
                "risk-tiered(k={k},min={min_samples},escalate={escalate_milli}m,abstain={abstain})"
            ),
        }
    }
}

/// What a request's [`RowTracker`] reports after folding in one Monte
/// Carlo member: everything a [`SamplingPolicy`] may base its decision
/// on. A pure summary of this request's own samples — nothing about the
/// batch, the queue, or the clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleObservation {
    /// Samples drawn so far, including the one just folded in.
    pub drawn: u32,
    /// The full sample budget (the deployment's `mc_samples`).
    pub max_samples: u32,
    /// Argmax of the running mean probabilities (lowest index wins
    /// ties).
    pub argmax: usize,
    /// Predictive entropy of the running mean, normalized to
    /// `ln(classes)` (`0.0` certain … `1.0` uniform).
    pub norm_entropy: f64,
    /// `norm_entropy` bucketed into [`ENTROPY_QUANT_LEVELS`] levels —
    /// half of the stability signature.
    pub entropy_quant: u32,
    /// Consecutive samples (including this one) for which the
    /// `(argmax, entropy_quant)` signature has not changed.
    pub stable: u32,
}

/// A sampling policy's verdict after each Monte Carlo member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleDecision {
    /// Draw another sample.
    Continue,
    /// Keep drawing to the full budget regardless of stability (the
    /// risk-tiered escalation lane). Operationally identical to
    /// [`SampleDecision::Continue`]; reported distinctly so drivers and
    /// tests can attribute the extra work.
    Escalate,
    /// Serve the running mean now.
    Stop,
    /// Decline to answer
    /// ([`VibnnError::Abstained`](crate::VibnnError::Abstained)).
    Abstain,
}

/// The per-sample stopping rule a serving engine consults.
///
/// `decide` must be a pure function of the observation (no interior
/// mutability, no clocks): the engine guarantees the observation stream
/// itself is deterministic, and purity here is what extends that to
/// `samples_used` and the served bits. A policy must return
/// [`SampleDecision::Stop`] or [`SampleDecision::Abstain`] once
/// `obs.drawn == obs.max_samples`; drivers additionally clamp at the
/// budget, treating anything else as `Stop`.
///
/// ```
/// use vibnn::sampler::{EarlyExit, RowTracker, SampleDecision, SamplingPolicy};
///
/// let policy = EarlyExit { k: 2, min_samples: 2 };
/// let mut tracker = RowTracker::new(2, 8);
/// // First confident sample: signature established, but k = 2 stable
/// // observations are required (and min_samples = 2).
/// let first = tracker.observe(&[0.9, 0.1]);
/// assert_eq!(policy.decide(&first), SampleDecision::Continue);
/// // Second agreeing sample: the running mean keeps the same argmax and
/// // quantized entropy, so the signature is 2-stable — stop at 2 of 8.
/// let second = tracker.observe(&[0.9, 0.1]);
/// assert_eq!(second.stable, 2);
/// assert_eq!(policy.decide(&second), SampleDecision::Stop);
/// ```
pub trait SamplingPolicy: Send + Sync {
    /// The serializable description of this policy.
    fn spec(&self) -> PolicySpec;

    /// The stopping verdict after the sample summarized by `obs`.
    fn decide(&self, obs: &SampleObservation) -> SampleDecision;
}

/// The pinned reference policy: always draw the full budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactN;

impl SamplingPolicy for ExactN {
    fn spec(&self) -> PolicySpec {
        PolicySpec::ExactN
    }

    fn decide(&self, obs: &SampleObservation) -> SampleDecision {
        if obs.drawn >= obs.max_samples {
            SampleDecision::Stop
        } else {
            SampleDecision::Continue
        }
    }
}

/// Deterministic early exit: stop once the `(argmax, quantized
/// entropy)` signature of the running mean has held for `k` consecutive
/// samples, after a warm-up of `min_samples`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EarlyExit {
    /// Consecutive stable signatures required to stop (≥ 1).
    pub k: u32,
    /// Samples always drawn before stopping is considered (≥ 1).
    pub min_samples: u32,
}

impl SamplingPolicy for EarlyExit {
    fn spec(&self) -> PolicySpec {
        PolicySpec::EarlyExit {
            k: self.k,
            min_samples: self.min_samples,
        }
    }

    fn decide(&self, obs: &SampleObservation) -> SampleDecision {
        let budget_spent = obs.drawn >= obs.max_samples;
        let stable = obs.drawn >= self.min_samples && obs.stable >= self.k;
        if budget_spent || stable {
            SampleDecision::Stop
        } else {
            SampleDecision::Continue
        }
    }
}

/// [`EarlyExit`] with risk tiering: confident requests exit early,
/// uncertain ones are escalated to the full budget, and — with
/// `abstain` — a request still at or above the entropy threshold after
/// every sample is declined with a typed error instead of answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RiskTiered {
    /// Consecutive stable signatures required to stop (≥ 1).
    pub k: u32,
    /// Samples always drawn before stopping is considered (≥ 1).
    pub min_samples: u32,
    /// Escalation threshold in thousandths of `ln(classes)`.
    pub escalate_milli: u32,
    /// Abstain at the budget when still above the threshold.
    pub abstain: bool,
}

impl RiskTiered {
    fn high_entropy(&self, obs: &SampleObservation) -> bool {
        obs.norm_entropy >= f64::from(self.escalate_milli) / 1000.0
    }
}

impl SamplingPolicy for RiskTiered {
    fn spec(&self) -> PolicySpec {
        PolicySpec::RiskTiered {
            k: self.k,
            min_samples: self.min_samples,
            escalate_milli: self.escalate_milli,
            abstain: self.abstain,
        }
    }

    fn decide(&self, obs: &SampleObservation) -> SampleDecision {
        if obs.drawn >= obs.max_samples {
            if self.abstain && self.high_entropy(obs) {
                SampleDecision::Abstain
            } else {
                SampleDecision::Stop
            }
        } else if obs.drawn >= self.min_samples && obs.stable >= self.k {
            if self.high_entropy(obs) {
                SampleDecision::Escalate
            } else {
                SampleDecision::Stop
            }
        } else {
            SampleDecision::Continue
        }
    }
}

/// Per-request decision state: folds Monte Carlo members into a running
/// mean (an f64 accumulator used **only** for stopping decisions — the
/// served result is always rebuilt through the backend's own member
/// arithmetic) and tracks the stability of the `(argmax, quantized
/// entropy)` signature.
#[derive(Debug, Clone)]
pub struct RowTracker {
    acc: Vec<f64>,
    drawn: u32,
    max_samples: u32,
    /// `1 / ln(classes)`, or 0 for degenerate single-class outputs.
    inv_max_entropy: f64,
    last_signature: Option<(usize, u32)>,
    stable: u32,
    norm_entropy: f64,
}

impl RowTracker {
    /// A fresh tracker for one request with `classes` output classes
    /// and a budget of `max_samples` draws.
    pub fn new(classes: usize, max_samples: usize) -> Self {
        let max_entropy = (classes as f64).ln();
        Self {
            acc: vec![0.0; classes],
            drawn: 0,
            max_samples: max_samples as u32,
            inv_max_entropy: if max_entropy > 0.0 {
                1.0 / max_entropy
            } else {
                0.0
            },
            last_signature: None,
            stable: 0,
            norm_entropy: 0.0,
        }
    }

    /// Folds one member probability vector (f64, one entry per class)
    /// into the running mean and returns the observation a policy
    /// decides on.
    pub fn observe(&mut self, member: &[f64]) -> SampleObservation {
        debug_assert_eq!(member.len(), self.acc.len(), "member width");
        for (a, &p) in self.acc.iter_mut().zip(member) {
            *a += p;
        }
        self.summarize()
    }

    /// [`observe`](Self::observe) for f32 members (the host backends'
    /// member matrices); each probability is widened to f64 first.
    pub fn observe_f32(&mut self, member: &[f32]) -> SampleObservation {
        debug_assert_eq!(member.len(), self.acc.len(), "member width");
        for (a, &p) in self.acc.iter_mut().zip(member) {
            *a += f64::from(p);
        }
        self.summarize()
    }

    /// Samples folded in so far.
    pub fn drawn(&self) -> u32 {
        self.drawn
    }

    /// The current running normalized entropy in thousandths, rounded —
    /// the `entropy_milli` payload of abstention errors.
    pub fn entropy_milli(&self) -> u32 {
        (self.norm_entropy.max(0.0) * 1000.0).round() as u32
    }

    fn summarize(&mut self) -> SampleObservation {
        self.drawn += 1;
        let inv_n = 1.0 / f64::from(self.drawn);
        let mut argmax = 0usize;
        let mut best = f64::NEG_INFINITY;
        let mut entropy = 0.0f64;
        for (c, &a) in self.acc.iter().enumerate() {
            let p = a * inv_n;
            if p > best {
                best = p;
                argmax = c;
            }
            if p > 0.0 {
                entropy -= p * p.ln();
            }
        }
        self.norm_entropy = entropy * self.inv_max_entropy;
        let entropy_quant = ((self.norm_entropy * f64::from(ENTROPY_QUANT_LEVELS)) as u32)
            .min(ENTROPY_QUANT_LEVELS - 1);
        let signature = (argmax, entropy_quant);
        self.stable = if self.last_signature == Some(signature) {
            self.stable + 1
        } else {
            1
        };
        self.last_signature = Some(signature);
        SampleObservation {
            drawn: self.drawn,
            max_samples: self.max_samples,
            argmax,
            norm_entropy: self.norm_entropy,
            entropy_quant,
            stable: self.stable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validation_and_codes() {
        assert_eq!(PolicySpec::default(), PolicySpec::ExactN);
        assert!(PolicySpec::ExactN.validate().is_ok());
        assert!(PolicySpec::EarlyExit { k: 2, min_samples: 2 }.validate().is_ok());
        assert!(PolicySpec::EarlyExit { k: 0, min_samples: 2 }.validate().is_err());
        assert!(PolicySpec::EarlyExit { k: 2, min_samples: 0 }.validate().is_err());
        assert!(PolicySpec::RiskTiered {
            k: 0,
            min_samples: 1,
            escalate_milli: 500,
            abstain: true
        }
        .validate()
        .is_err());
        assert_eq!(PolicySpec::ExactN.code(), 0);
        assert_eq!(PolicySpec::EarlyExit { k: 1, min_samples: 1 }.code(), 1);
        assert_eq!(
            PolicySpec::RiskTiered {
                k: 1,
                min_samples: 1,
                escalate_milli: 0,
                abstain: false
            }
            .code(),
            2
        );
    }

    #[test]
    fn instantiated_policies_report_their_specs() {
        for spec in [
            PolicySpec::ExactN,
            PolicySpec::EarlyExit { k: 3, min_samples: 2 },
            PolicySpec::RiskTiered {
                k: 2,
                min_samples: 2,
                escalate_milli: 700,
                abstain: true,
            },
        ] {
            assert_eq!(spec.instantiate().spec(), spec);
        }
    }

    #[test]
    fn exact_n_runs_to_the_budget() {
        let policy = ExactN;
        let mut tracker = RowTracker::new(3, 4);
        for s in 0..4u32 {
            let obs = tracker.observe(&[0.98, 0.01, 0.01]);
            let want = if s == 3 {
                SampleDecision::Stop
            } else {
                SampleDecision::Continue
            };
            assert_eq!(policy.decide(&obs), want, "sample {s}");
        }
    }

    #[test]
    fn early_exit_stops_on_a_stable_signature() {
        let policy = EarlyExit { k: 2, min_samples: 2 };
        let mut tracker = RowTracker::new(2, 8);
        assert_eq!(
            policy.decide(&tracker.observe(&[0.9, 0.1])),
            SampleDecision::Continue
        );
        let obs = tracker.observe(&[0.9, 0.1]);
        assert_eq!(obs.stable, 2);
        assert_eq!(policy.decide(&obs), SampleDecision::Stop);
    }

    #[test]
    fn early_exit_resets_stability_when_the_argmax_flips() {
        let policy = EarlyExit { k: 2, min_samples: 1 };
        let mut tracker = RowTracker::new(2, 8);
        let _ = tracker.observe(&[0.9, 0.1]);
        // The flip drags the running mean across the argmax boundary —
        // a fresh signature, so stability restarts at 1.
        let obs = tracker.observe(&[0.05, 0.95]);
        assert_eq!(obs.stable, 1);
        assert_eq!(policy.decide(&obs), SampleDecision::Continue);
    }

    #[test]
    fn min_samples_gates_the_exit() {
        let policy = EarlyExit { k: 1, min_samples: 3 };
        let mut tracker = RowTracker::new(2, 8);
        let _ = tracker.observe(&[1.0, 0.0]);
        let obs = tracker.observe(&[1.0, 0.0]);
        // Signature is already stable, but the warm-up floor holds.
        assert!(obs.stable >= 1);
        assert_eq!(policy.decide(&obs), SampleDecision::Continue);
        let obs = tracker.observe(&[1.0, 0.0]);
        assert_eq!(policy.decide(&obs), SampleDecision::Stop);
    }

    #[test]
    fn risk_tiered_escalates_and_abstains_on_high_entropy() {
        let policy = RiskTiered {
            k: 1,
            min_samples: 1,
            escalate_milli: 500,
            abstain: true,
        };
        let mut tracker = RowTracker::new(2, 3);
        // Near-uniform members: normalized entropy ~1.0 ≥ 0.5.
        let obs = tracker.observe(&[0.51, 0.49]);
        assert_eq!(policy.decide(&obs), SampleDecision::Escalate);
        let _ = tracker.observe(&[0.49, 0.51]);
        let obs = tracker.observe(&[0.5, 0.5]);
        assert_eq!(obs.drawn, 3);
        assert_eq!(policy.decide(&obs), SampleDecision::Abstain);
        assert!(tracker.entropy_milli() > 900);

        // Without the abstain flag the budgeted prediction is served.
        let serve_anyway = RiskTiered {
            abstain: false,
            ..policy
        };
        assert_eq!(serve_anyway.decide(&obs), SampleDecision::Stop);
    }

    #[test]
    fn risk_tiered_serves_confident_requests_early() {
        let policy = RiskTiered {
            k: 2,
            min_samples: 2,
            escalate_milli: 600,
            abstain: true,
        };
        let mut tracker = RowTracker::new(2, 8);
        let _ = tracker.observe(&[0.99, 0.01]);
        let obs = tracker.observe(&[0.99, 0.01]);
        assert_eq!(policy.decide(&obs), SampleDecision::Stop);
    }

    #[test]
    fn observe_f32_matches_observe_f64_for_exact_values() {
        let mut a = RowTracker::new(3, 4);
        let mut b = RowTracker::new(3, 4);
        // 0.5/0.25 are exact in both widths, so both trackers see the
        // identical accumulator and must emit the identical observation.
        let oa = a.observe(&[0.5, 0.25, 0.25]);
        let ob = b.observe_f32(&[0.5, 0.25, 0.25]);
        assert_eq!(oa, ob);
    }
}
