//! Deployment checkpoints: `Vibnn::{save, load}`.
//!
//! A deployment checkpoint (envelope kind 3; see [`vibnn_bnn::checkpoint`]
//! for the shared envelope) persists everything needed to reconstruct a
//! deployed accelerator **bit-identically** — without re-running
//! calibration:
//!
//! ```text
//! header           magic b"VIBN", version u16, kind u8 = 3
//! accel config     pe_sets, pes_per_set, pe_inputs, bit_len,
//!                  max_word_size (u32 each), grng kind (u8),
//!                  grng_lanes (u32), clock_mhz (f64), mc_samples (u32)
//! deployment       mc_samples (u32), quantizer bit_len (u32)
//! quant spec       bit_len (u32), then 4 × (total_bits u32, frac_bits u32)
//!                  for the weight / sigma / activation / ε formats
//! parameters       the kind-1 BnnParams payload (shapes + f32 LE tensors)
//! ```
//!
//! Loading re-quantizes the stored float parameters under the stored
//! [`QuantizationSpec`] — a deterministic transformation, so predictions
//! from a loaded instance match the saved instance bit for bit.

use std::path::Path;

use vibnn_bnn::checkpoint::{
    read_params_payload, write_params_payload, CheckpointError, WireReader, WireWriter,
    KIND_DEPLOY,
};
use vibnn_fixed::QFormat;
use vibnn_grng::GrngKind;
use vibnn_hw::{AcceleratorConfig, CycleAccelerator, QuantizationSpec, QuantizedBnn};

use crate::accelerator::validate_topology;
use crate::{Vibnn, VibnnError};

fn write_format(w: &mut WireWriter, fmt: &QFormat) {
    w.u32(fmt.total_bits());
    w.u32(fmt.frac_bits());
}

fn read_format(r: &mut WireReader<'_>) -> Result<QFormat, CheckpointError> {
    let total = r.u32()?;
    let frac = r.u32()?;
    if !(2..=32).contains(&total) || frac >= total {
        return Err(CheckpointError::Corrupt(format!(
            "bad fixed-point format Q({total}, {frac})"
        )));
    }
    Ok(QFormat::new(total, frac))
}

impl Vibnn {
    /// Serializes the deployment as a kind-3 checkpoint envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new(KIND_DEPLOY);
        let cfg = &self.config;
        w.dim(cfg.pe_sets);
        w.dim(cfg.pes_per_set);
        w.dim(cfg.pe_inputs);
        w.u32(cfg.bit_len);
        w.dim(cfg.max_word_size);
        w.u8(match cfg.grng {
            GrngKind::Rlf => 0,
            GrngKind::BnnWallace => 1,
        });
        w.dim(cfg.grng_lanes);
        w.f64(cfg.clock_mhz);
        w.dim(cfg.mc_samples);
        w.dim(self.mc_samples);
        w.u32(self.bit_len);
        let spec = self.qbnn.spec();
        w.u32(spec.bit_len);
        write_format(&mut w, &spec.weight_fmt);
        write_format(&mut w, &spec.sigma_fmt);
        write_format(&mut w, &spec.act_fmt);
        write_format(&mut w, &spec.eps_fmt);
        write_params_payload(&mut w, &self.params);
        w.into_bytes()
    }

    /// Reconstructs a deployment from a kind-3 envelope. The quantized
    /// tables, cycle simulator, and performance models come out identical
    /// to the instance that was saved.
    ///
    /// # Errors
    ///
    /// [`VibnnError::Checkpoint`] on malformed input,
    /// [`VibnnError::Config`] / [`VibnnError::BadTopology`] if the stored
    /// configuration or parameters fail validation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, VibnnError> {
        let mut r = WireReader::open(bytes, KIND_DEPLOY)?;
        let config = AcceleratorConfig {
            pe_sets: r.dim()?,
            pes_per_set: r.dim()?,
            pe_inputs: r.dim()?,
            bit_len: r.u32()?,
            max_word_size: r.dim()?,
            grng: match r.u8()? {
                0 => GrngKind::Rlf,
                1 => GrngKind::BnnWallace,
                k => {
                    return Err(VibnnError::Checkpoint(CheckpointError::Corrupt(format!(
                        "unknown GRNG kind {k}"
                    ))))
                }
            },
            grng_lanes: r.dim()?,
            clock_mhz: r.f64()?,
            mc_samples: r.dim()?,
        };
        let mc_samples = r.dim()?;
        let bit_len = r.u32()?;
        let spec = QuantizationSpec {
            bit_len: r.u32()?,
            weight_fmt: read_format(&mut r)?,
            sigma_fmt: read_format(&mut r)?,
            act_fmt: read_format(&mut r)?,
            eps_fmt: read_format(&mut r)?,
        };
        let params = read_params_payload(&mut r)?;
        r.finish().map_err(VibnnError::Checkpoint)?;
        validate_topology(&params)?;
        if mc_samples == 0 {
            return Err(VibnnError::Checkpoint(CheckpointError::Corrupt(
                "zero Monte Carlo samples".into(),
            )));
        }
        config.validate()?;
        let qbnn = QuantizedBnn::with_spec(&params, spec);
        let sim = CycleAccelerator::new(config.clone(), qbnn.clone());
        let classes = params.weight_mu[params.layers() - 1].cols();
        Ok(Vibnn {
            qbnn,
            sim,
            config,
            mc_samples,
            params,
            bit_len,
            classes,
            // Backend and sampling policy are runtime serving choices,
            // not part of the deployment: loads come back with the
            // quantized / exact-N defaults.
            default_backend: crate::backend::BackendKind::default(),
            default_policy: crate::sampler::PolicySpec::default(),
        })
    }

    /// Writes the deployment checkpoint to `path` via the crash-safe
    /// atomic writer ([`vibnn_bnn::checkpoint::atomic_write`]): an
    /// interrupted save never corrupts an existing checkpoint.
    ///
    /// # Errors
    ///
    /// [`VibnnError::Checkpoint`] on write failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), VibnnError> {
        vibnn_bnn::checkpoint::atomic_write(path, &self.to_bytes())?;
        Ok(())
    }

    /// Loads a deployment checkpoint written by [`Vibnn::save`].
    ///
    /// # Errors
    ///
    /// Any [`VibnnError::Checkpoint`] / validation error on malformed
    /// content.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, VibnnError> {
        Self::from_bytes(&std::fs::read(path).map_err(CheckpointError::Io)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VibnnBuilder;
    use vibnn_bnn::{Bnn, BnnConfig};
    use vibnn_grng::ZigguratGrng;
    use vibnn_nn::Matrix;

    #[test]
    fn deployment_round_trip_predicts_bit_identically() {
        let bnn = Bnn::new(BnnConfig::new(&[5, 7, 3]).with_sigma_init(0.1), 21);
        let calib = Matrix::from_rows(&[
            &[0.4, -0.2, 1.0, 0.1, -0.8],
            &[1.3, 0.6, -0.5, 0.0, 0.2],
        ]);
        let a = VibnnBuilder::new(bnn.params())
            .mc_samples(3)
            .calibration(calib.clone())
            .build()
            .unwrap();
        let b = Vibnn::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(b.classes(), a.classes());
        assert_eq!(b.bit_len(), a.bit_len());
        assert_eq!(b.mc_samples(), a.mc_samples());
        assert_eq!(b.network().spec(), a.network().spec());
        let pa = a.predict_proba_parallel(&calib, &ZigguratGrng::new(5), 2);
        let pb = b.predict_proba_parallel(&calib, &ZigguratGrng::new(5), 2);
        assert_eq!(pa.data(), pb.data());
        assert_eq!(a.images_per_second(), b.images_per_second());
    }

    #[test]
    fn deployment_rejects_wrong_kind() {
        let bnn = Bnn::new(BnnConfig::new(&[3, 2]), 1);
        let params_file = bnn.params().to_bytes();
        assert!(matches!(
            Vibnn::from_bytes(&params_file),
            Err(VibnnError::Checkpoint(CheckpointError::WrongKind { .. }))
        ));
    }
}
