//! The train → checkpoint → deploy pipeline builder.

use std::path::{Path, PathBuf};

use vibnn_bnn::{
    Bnn, BnnConfig, BnnTrainReport, EarlyStop, LrSchedule, ScheduledRun, TrainEpsSource,
    TrainSchedule,
};
use vibnn_nn::Matrix;

use crate::backend::BackendKind;
use crate::sampler::PolicySpec;
use crate::{Vibnn, VibnnBuilder, VibnnError};

/// A fallible, chainable train-and-deploy pipeline on top of the typed
/// deployment API: configure training, run it with an LR schedule and
/// optional early stopping, persist a resumable checkpoint, and deploy
/// the result on the simulated accelerator.
///
/// # Example
///
/// ```
/// use vibnn::bnn::{BnnConfig, LrSchedule};
/// use vibnn::nn::Matrix;
/// use vibnn::Pipeline;
///
/// let x = Matrix::zeros(8, 4);
/// let y = vec![0, 1, 0, 1, 0, 1, 0, 1];
/// let path = std::env::temp_dir().join("vibnn_pipeline_doc.ckpt");
/// let deployed = Pipeline::new(BnnConfig::new(&[4, 8, 2]))
///     .epochs(2)
///     .batch(4)
///     .lr_schedule(LrSchedule::Cosine { total_epochs: 2, min_lr: 1e-5 })
///     .train(&x, &y)?
///     .checkpoint(&path)?
///     .deploy(Matrix::zeros(4, 4))?;
/// assert_eq!(deployed.vibnn.classes(), 2);
/// assert_eq!(deployed.reports.len(), 2);
/// # std::fs::remove_file(&path).ok();
/// # Ok::<(), vibnn::VibnnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    cfg: BnnConfig,
    seed: u64,
    epochs: usize,
    batch: usize,
    train_mc: usize,
    threads: usize,
    lr: LrSchedule,
    early_stop: Option<EarlyStop>,
    checkpoint_every: Option<(usize, PathBuf)>,
    train_eps: TrainEpsSource,
    backend: Option<BackendKind>,
    sampling_policy: Option<PolicySpec>,
}

impl Pipeline {
    /// Starts a pipeline for the given network configuration, with the
    /// defaults: seed 1, 10 epochs, batch 64, one MC gradient sample,
    /// `VIBNN_THREADS` workers, constant learning rate, no early stop.
    pub fn new(cfg: BnnConfig) -> Self {
        Self {
            cfg,
            seed: 1,
            epochs: 10,
            batch: 64,
            train_mc: 1,
            threads: 0,
            lr: LrSchedule::Const,
            early_stop: None,
            checkpoint_every: None,
            train_eps: TrainEpsSource::default(),
            backend: None,
            sampling_policy: None,
        }
    }

    /// Sets the initialization / ε seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the epoch budget.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the minibatch size.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Sets Monte Carlo gradient samples per training step.
    pub fn train_mc_samples(mut self, samples: usize) -> Self {
        self.train_mc = samples;
        self
    }

    /// Sets the worker thread count (`0` honours `VIBNN_THREADS`; results
    /// are bit-identical for every value).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the learning-rate schedule.
    pub fn lr_schedule(mut self, schedule: LrSchedule) -> Self {
        self.lr = schedule;
        self
    }

    /// Selects which generator family supplies training ε (see
    /// [`TrainEpsSource`]). The default Ziggurat keeps every historical
    /// stream bit-identical; the RLF and BNNWallace families train with
    /// the paper's hardware GRNG designs instead. Runtime-only — kind-2
    /// checkpoints don't persist the choice, and [`Pipeline::resume_from`]
    /// re-applies **this** pipeline's setting to the loaded network.
    pub fn train_eps_source(mut self, source: TrainEpsSource) -> Self {
        self.train_eps = source;
        self
    }

    /// Selects the default serving backend the deployment will carry
    /// (see [`BackendKind`]); engines built without an explicit
    /// [`crate::ServeConfig::backend`] dispatch through it. Applied at
    /// [`TrainedPipeline::deploy`]; a `deploy_with` customization can
    /// still override it via [`VibnnBuilder::backend`].
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.backend = Some(kind);
        self
    }

    /// Selects the default sampling [`PolicySpec`] the deployment will
    /// carry; engines built without an explicit
    /// [`crate::ServeConfig::policy`] apply it. Applied at
    /// [`TrainedPipeline::deploy`]; a `deploy_with` customization can
    /// still override it via [`VibnnBuilder::sampling_policy`].
    pub fn sampling_policy(mut self, policy: PolicySpec) -> Self {
        self.sampling_policy = Some(policy);
        self
    }

    /// Enables patience-based early stopping on the epoch training loss.
    pub fn early_stop(mut self, patience: usize, min_delta: f64) -> Self {
        self.early_stop = Some(EarlyStop { patience, min_delta });
        self
    }

    /// Enables periodic auto-checkpointing: after every `n_epochs`
    /// completed **lifetime** epochs, the full training state is written
    /// to `path` as a resumable kind-2 checkpoint through the crash-safe
    /// atomic writer (temp file + rename, so an interrupt mid-save leaves
    /// the previous periodic checkpoint intact). [`Pipeline::resume`] from
    /// the latest periodic checkpoint continues **bit-identically** to a
    /// run that was never interrupted.
    ///
    /// `n_epochs == 0` is treated as 1 (checkpoint every epoch). The hook
    /// never perturbs training — schedules, early stopping, and every
    /// parameter are bit-identical with or without it.
    pub fn checkpoint_every(mut self, n_epochs: usize, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_every = Some((n_epochs.max(1), path.into()));
        self
    }

    /// Runs training through the deterministic data-parallel engine.
    ///
    /// # Errors
    ///
    /// - [`VibnnError::ShapeMismatch`] — dataset rows/labels disagree, the
    ///   feature width differs from the configured input layer, or the
    ///   batch size is zero.
    /// - [`VibnnError::LabelOutOfRange`] — a label exceeds the configured
    ///   class count.
    /// - [`VibnnError::Checkpoint`] — a periodic checkpoint
    ///   ([`Pipeline::checkpoint_every`]) could not be written; training
    ///   stops after the epoch that failed to persist.
    pub fn train(self, x: &Matrix, y: &[usize]) -> Result<TrainedPipeline, VibnnError> {
        let mut bnn = Bnn::new(self.cfg, self.seed);
        bnn.set_train_eps_source(self.train_eps);
        let run = train_round(
            &mut bnn,
            x,
            y,
            self.batch,
            self.train_mc,
            self.threads,
            &TrainSchedule {
                epochs: self.epochs,
                lr: self.lr,
                early_stop: self.early_stop,
            },
            self.checkpoint_every.as_ref(),
        )?;
        Ok(TrainedPipeline {
            bnn,
            run,
            backend: self.backend,
            sampling_policy: self.sampling_policy,
        })
    }

    /// Resumes a previously checkpointed training run for `epochs` more
    /// epochs: the loaded network continues **bit-identically** to a run
    /// that was never interrupted — same parameters, optimizer moments,
    /// ε substreams, epoch shuffles, *and* schedule position (LR
    /// schedules index on the checkpointed lifetime epoch count, so a
    /// resumed `StepDecay`/`Cosine` anneals from where it stopped, not
    /// from epoch 0).
    ///
    /// The dataset and schedule must be the ones the checkpoint was
    /// trained with for the bit-identity guarantee to be meaningful;
    /// shapes are re-validated.
    ///
    /// # Errors
    ///
    /// [`VibnnError::Checkpoint`] on unreadable files, plus the same
    /// validation errors as [`Pipeline::train`].
    pub fn resume(
        path: impl AsRef<Path>,
        x: &Matrix,
        y: &[usize],
        epochs: usize,
        batch: usize,
        sched: LrSchedule,
    ) -> Result<TrainedPipeline, VibnnError> {
        let mut bnn = Bnn::load(path)?;
        let run = train_round(
            &mut bnn,
            x,
            y,
            batch,
            1,
            0,
            &TrainSchedule {
                epochs,
                lr: sched,
                early_stop: None,
            },
            None,
        )?;
        Ok(TrainedPipeline {
            bnn,
            run,
            backend: None,
            sampling_policy: None,
        })
    }

    /// [`Pipeline::resume`] with this pipeline's full knob set: loads the
    /// kind-2 checkpoint at `path` and continues it through the shared
    /// round machinery with **this** pipeline's epoch budget, batch size,
    /// MC gradient samples, thread count, LR schedule, early stopping,
    /// and periodic checkpointing — everything except `cfg`/`seed`, which
    /// the checkpoint supersedes. With matching knobs the continuation is
    /// bit-identical to a run that was never interrupted, including the
    /// periodic [`Pipeline::checkpoint_every`] cadence (it indexes on
    /// lifetime epochs).
    ///
    /// # Errors
    ///
    /// [`VibnnError::Checkpoint`] on unreadable files, plus the same
    /// validation errors as [`Pipeline::train`].
    pub fn resume_from(
        self,
        path: impl AsRef<Path>,
        x: &Matrix,
        y: &[usize],
    ) -> Result<TrainedPipeline, VibnnError> {
        let mut bnn = Bnn::load(path)?;
        bnn.set_train_eps_source(self.train_eps);
        let run = train_round(
            &mut bnn,
            x,
            y,
            self.batch,
            self.train_mc,
            self.threads,
            &TrainSchedule {
                epochs: self.epochs,
                lr: self.lr,
                early_stop: self.early_stop,
            },
            self.checkpoint_every.as_ref(),
        )?;
        Ok(TrainedPipeline {
            bnn,
            run,
            backend: self.backend,
            sampling_policy: self.sampling_policy,
        })
    }
}

/// The shared round machinery every training entry point runs on —
/// [`Pipeline::train`], [`Pipeline::resume`], [`Pipeline::resume_from`],
/// and each incremental round of [`crate::online::OnlineRuntime`]:
/// validates the dataset against the network, then runs one scheduled
/// round of the deterministic engine with the periodic kind-2 checkpoint
/// observer attached. A round neither rebuilds optimizer state nor
/// resets schedule position (both live in `bnn`), so chaining rounds is
/// bit-identical to one long run with the same per-epoch LR sequence.
#[allow(clippy::too_many_arguments)] // mirrors `train_mc_scheduled_with`'s knobs plus the observer's
pub(crate) fn train_round(
    bnn: &mut Bnn,
    x: &Matrix,
    y: &[usize],
    batch: usize,
    train_mc: usize,
    threads: usize,
    sched: &TrainSchedule,
    checkpoint_every: Option<&(usize, PathBuf)>,
) -> Result<ScheduledRun, VibnnError> {
    validate_dataset(bnn.config().layer_sizes(), x, y, batch)?;
    bnn.train_mc_scheduled_with(
        x,
        y,
        batch,
        train_mc.max(1),
        threads,
        sched,
        |bnn, _report| match checkpoint_every {
            Some((every, path)) if bnn.epochs_trained() % *every as u64 == 0 => {
                bnn.save(path).map_err(VibnnError::from)
            }
            _ => Ok(()),
        },
    )
}

/// Shared dataset validation for [`Pipeline::train`] and
/// [`Pipeline::resume`]: row/label agreement, feature width, positive
/// batch, labels within the class range.
fn validate_dataset(
    sizes: &[usize],
    x: &Matrix,
    y: &[usize],
    batch: usize,
) -> Result<(), VibnnError> {
    let (input_dim, classes) = (sizes[0], *sizes.last().expect("at least two sizes"));
    if x.rows() != y.len() {
        return Err(VibnnError::ShapeMismatch {
            context: "label count",
            expected: x.rows(),
            got: y.len(),
        });
    }
    if x.cols() != input_dim {
        return Err(VibnnError::ShapeMismatch {
            context: "feature width",
            expected: input_dim,
            got: x.cols(),
        });
    }
    if batch == 0 {
        return Err(VibnnError::ShapeMismatch {
            context: "batch size",
            expected: 1,
            got: 0,
        });
    }
    if let Some(&label) = y.iter().find(|&&l| l >= classes) {
        return Err(VibnnError::LabelOutOfRange { label, classes });
    }
    Ok(())
}

/// A trained network ready to be checkpointed and/or deployed.
#[derive(Debug, Clone)]
pub struct TrainedPipeline {
    bnn: Bnn,
    run: ScheduledRun,
    backend: Option<BackendKind>,
    sampling_policy: Option<PolicySpec>,
}

impl TrainedPipeline {
    /// The trained network.
    pub fn bnn(&self) -> &Bnn {
        &self.bnn
    }

    /// Per-epoch training reports.
    pub fn reports(&self) -> &[BnnTrainReport] {
        &self.run.reports
    }

    /// Whether the early stopper ended training before the epoch budget.
    pub fn stopped_early(&self) -> bool {
        self.run.stopped_early
    }

    /// Writes a resumable training checkpoint (kind-2 envelope; see
    /// [`vibnn_bnn::checkpoint`]) and passes the pipeline through for
    /// further chaining.
    ///
    /// # Errors
    ///
    /// [`VibnnError::Checkpoint`] on write failure.
    pub fn checkpoint(self, path: impl AsRef<Path>) -> Result<Self, VibnnError> {
        self.bnn.save(path)?;
        Ok(self)
    }

    /// Deploys on the simulated accelerator with the default builder
    /// settings (8-bit datapath, 8 MC samples, paper configuration).
    ///
    /// # Errors
    ///
    /// Every [`VibnnBuilder::build`] error.
    pub fn deploy(self, calibration: Matrix) -> Result<Deployed, VibnnError> {
        self.deploy_with(calibration, |b| b)
    }

    /// Deploys with builder customization (bit length, GRNG choice, MC
    /// samples, accelerator configuration).
    ///
    /// # Errors
    ///
    /// Every [`VibnnBuilder::build`] error.
    pub fn deploy_with(
        self,
        calibration: Matrix,
        customize: impl FnOnce(VibnnBuilder) -> VibnnBuilder,
    ) -> Result<Deployed, VibnnError> {
        let mut builder = VibnnBuilder::new(self.bnn.params()).calibration(calibration);
        if let Some(kind) = self.backend {
            builder = builder.backend(kind);
        }
        if let Some(policy) = self.sampling_policy {
            builder = builder.sampling_policy(policy);
        }
        let vibnn = customize(builder).build()?;
        Ok(Deployed {
            bnn: self.bnn,
            vibnn,
            reports: self.run.reports,
        })
    }

    /// Unwraps the trained network.
    pub fn into_bnn(self) -> Bnn {
        self.bnn
    }
}

/// The pipeline's end state: the trained float network, the deployed
/// accelerator, and the training history.
#[derive(Debug, Clone)]
pub struct Deployed {
    /// The trained float network (still trainable / checkpointable).
    pub bnn: Bnn,
    /// The deployed accelerator instance.
    pub vibnn: Vibnn,
    /// Per-epoch training reports.
    pub reports: Vec<BnnTrainReport>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibnn_nn::GaussianInit;

    fn toy_data(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = GaussianInit::new(seed);
        let mut x = Matrix::zeros(n, 3);
        let mut y = Vec::with_capacity(n);
        for r in 0..n {
            let mut s = 0.0;
            for c in 0..3 {
                let v = rng.next_gaussian() as f32;
                x[(r, c)] = v;
                s += v;
            }
            y.push(usize::from(s > 0.0));
        }
        (x, y)
    }

    #[test]
    fn pipeline_validates_inputs() {
        let (x, y) = toy_data(16, 1);
        let bad_labels = vec![0usize; 9];
        assert!(matches!(
            Pipeline::new(BnnConfig::new(&[3, 4, 2])).train(&x, &bad_labels),
            Err(VibnnError::ShapeMismatch { .. })
        ));
        let mut high = y.clone();
        high[3] = 7;
        assert!(matches!(
            Pipeline::new(BnnConfig::new(&[3, 4, 2])).train(&x, &high),
            Err(VibnnError::LabelOutOfRange { label: 7, classes: 2 })
        ));
        assert!(matches!(
            Pipeline::new(BnnConfig::new(&[3, 4, 2])).batch(0).train(&x, &y),
            Err(VibnnError::ShapeMismatch { context: "batch size", .. })
        ));
        assert!(matches!(
            Pipeline::new(BnnConfig::new(&[5, 4, 2])).train(&x, &y),
            Err(VibnnError::ShapeMismatch { context: "feature width", .. })
        ));
    }

    #[test]
    fn resume_continues_schedule_and_validates_inputs() {
        use vibnn_bnn::LrSchedule;
        let (x, y) = toy_data(32, 5);
        let sched = LrSchedule::StepDecay { every: 1, gamma: 0.5 };
        let path = std::env::temp_dir().join(format!(
            "vibnn_pipeline_resume_{}.ckpt",
            std::process::id()
        ));
        // Uninterrupted 4-epoch reference.
        let full = Pipeline::new(BnnConfig::new(&[3, 4, 2]).with_lr(0.02))
            .seed(3)
            .epochs(4)
            .batch(8)
            .lr_schedule(sched)
            .train(&x, &y)
            .unwrap();
        // 2 epochs + checkpoint + 2 resumed epochs.
        let _ = Pipeline::new(BnnConfig::new(&[3, 4, 2]).with_lr(0.02))
            .seed(3)
            .epochs(2)
            .batch(8)
            .lr_schedule(sched)
            .train(&x, &y)
            .unwrap()
            .checkpoint(&path)
            .unwrap();
        let resumed = Pipeline::resume(&path, &x, &y, 2, 8, sched).unwrap();
        assert_eq!(resumed.reports(), &full.reports()[2..]);
        for (a, b) in full.bnn().layers().iter().zip(resumed.bnn().layers()) {
            assert_eq!(a.mu().data(), b.mu().data());
            assert_eq!(a.rho().data(), b.rho().data());
        }
        // Resume validates like train: typed errors, not panics.
        assert!(matches!(
            Pipeline::resume(&path, &x, &y, 1, 0, sched),
            Err(VibnnError::ShapeMismatch { context: "batch size", .. })
        ));
        let mut high = y.clone();
        high[0] = 9;
        assert!(matches!(
            Pipeline::resume(&path, &x, &high, 1, 8, sched),
            Err(VibnnError::LabelOutOfRange { label: 9, classes: 2 })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn periodic_checkpoints_resume_bit_exactly() {
        use vibnn_bnn::LrSchedule;
        let (x, y) = toy_data(32, 8);
        let sched = LrSchedule::StepDecay { every: 2, gamma: 0.5 };
        let path = std::env::temp_dir().join(format!(
            "vibnn_pipeline_periodic_{}.ckpt",
            std::process::id()
        ));
        // Uninterrupted 6-epoch reference.
        let full = Pipeline::new(BnnConfig::new(&[3, 4, 2]).with_lr(0.02))
            .seed(4)
            .epochs(6)
            .batch(8)
            .lr_schedule(sched)
            .train(&x, &y)
            .unwrap();
        // 4 epochs with a checkpoint every 2: the file holds the epoch-4
        // state (the latest periodic save overwrote the epoch-2 one).
        let partial = Pipeline::new(BnnConfig::new(&[3, 4, 2]).with_lr(0.02))
            .seed(4)
            .epochs(4)
            .batch(8)
            .lr_schedule(sched)
            .checkpoint_every(2, &path)
            .train(&x, &y)
            .unwrap();
        // The periodic hook never perturbs training.
        assert_eq!(partial.reports(), &full.reports()[..4]);
        let saved = Bnn::load(&path).unwrap();
        assert_eq!(saved.epochs_trained(), 4);
        // Resuming from the latest periodic checkpoint continues
        // bit-identically to the uninterrupted run.
        let resumed = Pipeline::resume(&path, &x, &y, 2, 8, sched).unwrap();
        assert_eq!(resumed.reports(), &full.reports()[4..]);
        for (a, b) in full.bnn().layers().iter().zip(resumed.bnn().layers()) {
            assert_eq!(a.mu().data(), b.mu().data());
            assert_eq!(a.rho().data(), b.rho().data());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kill_and_resume_from_periodic_checkpoint_equals_uninterrupted_run() {
        use vibnn_bnn::LrSchedule;
        let (x, y) = toy_data(32, 12);
        let sched = LrSchedule::Cosine { total_epochs: 8, min_lr: 1e-5 };
        let dir = std::env::temp_dir();
        let full_path = dir.join(format!("vibnn_killresume_full_{}.ckpt", std::process::id()));
        let part_path = dir.join(format!("vibnn_killresume_part_{}.ckpt", std::process::id()));
        let pipe = || {
            Pipeline::new(BnnConfig::new(&[3, 4, 2]).with_lr(0.02))
                .seed(6)
                .batch(8)
                .train_mc_samples(2)
                .lr_schedule(sched)
        };
        // Uninterrupted 8-epoch reference, checkpointing every 3 epochs.
        let full = pipe()
            .epochs(8)
            .checkpoint_every(3, &full_path)
            .train(&x, &y)
            .unwrap();
        // "Killed" after 5 epochs: the latest periodic save is the
        // epoch-3 state — a mid-cadence interrupt, not a round boundary.
        let _ = pipe()
            .epochs(5)
            .checkpoint_every(3, &part_path)
            .train(&x, &y)
            .unwrap();
        assert_eq!(Bnn::load(&part_path).unwrap().epochs_trained(), 3);
        // Resuming with the pipeline's own knobs (including the periodic
        // cadence) replays epochs 4..8 bit-identically.
        let resumed = pipe()
            .epochs(5)
            .checkpoint_every(3, &part_path)
            .resume_from(&part_path, &x, &y)
            .unwrap();
        assert_eq!(resumed.reports(), &full.reports()[3..]);
        for (a, b) in full.bnn().layers().iter().zip(resumed.bnn().layers()) {
            assert_eq!(a.mu().data(), b.mu().data());
            assert_eq!(a.rho().data(), b.rho().data());
        }
        // The periodic cadence indexes on lifetime epochs: both runs
        // last saved at lifetime epoch 6 (8 % 3 != 0), so the checkpoint
        // files are byte-identical.
        assert_eq!(
            std::fs::read(&full_path).unwrap(),
            std::fs::read(&part_path).unwrap()
        );
        std::fs::remove_file(&full_path).ok();
        std::fs::remove_file(&part_path).ok();
    }

    #[test]
    fn pipeline_matches_manual_training_bitwise() {
        let (x, y) = toy_data(32, 3);
        let trained = Pipeline::new(BnnConfig::new(&[3, 4, 2]).with_lr(0.02))
            .seed(9)
            .epochs(2)
            .batch(8)
            .train(&x, &y)
            .unwrap();
        let mut manual = Bnn::new(BnnConfig::new(&[3, 4, 2]).with_lr(0.02), 9);
        let r0 = manual.train_epoch(&x, &y, 8);
        let r1 = manual.train_epoch(&x, &y, 8);
        assert_eq!(trained.reports(), &[r0, r1]);
        for (a, b) in trained.bnn().layers().iter().zip(manual.layers()) {
            assert_eq!(a.mu().data(), b.mu().data());
            assert_eq!(a.rho().data(), b.rho().data());
        }
    }
}
