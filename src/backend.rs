//! Pluggable inference backends: one serving contract, three datapaths.
//!
//! The paper's deployment story is an accelerator serving Bayesian
//! inference, yet a serving stack usually grows around whichever
//! datapath existed first. This module makes the datapath a *plug*:
//! [`InferenceBackend`] is the micro-batch contract the serving engine
//! dispatches through, and three implementations cover the repo's
//! datapaths end to end:
//!
//! - [`SoftwareBackend`] — the parallel float path (weights sampled as
//!   `µ + σ·ε` in f32, dense forward, softmax), the precision reference.
//! - [`QuantizedBackend`] — the quantized-host path the engine has
//!   always used ([`QuantizedBnn::predict_proba_mc_members_parallel`]).
//!   This is the **default**; its results are bit-identical to the
//!   pre-backend serving engine.
//! - [`CycleBackend`] — hardware in the loop: every request runs
//!   through the cycle-ticked [`CycleAccelerator`], and the batch comes
//!   back with exact cycle counts and energy (nJ) charged under the
//!   [`vibnn_hw::power`] system model.
//!
//! # Determinism
//!
//! All three backends fork the engine's ε source per Monte Carlo
//! sample (`eps.fork(s)`), never consume a shared stream, and process
//! rows independently — so a request's answer depends only on its
//! feature row, the deployment, the backend kind, and the ε seed;
//! never on batch composition, arrival order, or worker count. The
//! cluster router exploits this: spill is restricted to replicas with
//! the same checkpoint fingerprint *and* the same backend kind, so
//! rerouting can never change a result.
//!
//! # Cost accounting
//!
//! Every micro-batch returns a [`BackendCost`]. The software and
//! quantized hosts charge zero cycles/energy (they are host code, not
//! modeled hardware); the cycle backend charges the exact simulated
//! cycles and the energy those cycles dissipate at the configured
//! clock. Costs accumulate per engine and per cluster replica, surface
//! in `ClusterMetrics`, and travel over the ingest wire.

use vibnn_bnn::{reduce_mean, BnnParams};
use vibnn_grng::{GaussianSource, StreamFork};
use vibnn_hw::{CycleAccelerator, QuantizedBnn};
use vibnn_nn::{relu, softmax_rows, Matrix, LANES};

use crate::sampler::{RowTracker, SampleDecision, SamplingPolicy};
use crate::serve::ServeResult;
use crate::{Vibnn, VibnnError};

/// Which datapath a serving slot runs inference through.
///
/// The default is [`BackendKind::Quantized`] — the quantized-host path
/// the serving engine has always used — so existing deployments are
/// unchanged unless a backend is selected explicitly (via
/// `VibnnBuilder::backend`, `ServeConfig::backend`, or a cluster's
/// per-replica kinds).
///
/// ```
/// use vibnn::backend::BackendKind;
///
/// assert_eq!(BackendKind::default(), BackendKind::Quantized);
/// // Kinds travel over the ingest wire as one byte.
/// for kind in [BackendKind::Software, BackendKind::Quantized, BackendKind::Cycle] {
///     assert_eq!(BackendKind::from_code(kind.code()), Some(kind));
/// }
/// assert_eq!(BackendKind::from_code(9), None);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Float-precision software path (µ + σ·ε in f32, dense forward).
    Software,
    /// Quantized host path — the historical serving datapath.
    #[default]
    Quantized,
    /// Cycle-ticked accelerator model with cycle/energy accounting.
    Cycle,
}

impl BackendKind {
    /// Stable one-byte wire code (ingest metrics, checkpoint-free).
    pub fn code(self) -> u8 {
        match self {
            BackendKind::Software => 0,
            BackendKind::Quantized => 1,
            BackendKind::Cycle => 2,
        }
    }

    /// Inverse of [`Self::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(BackendKind::Software),
            1 => Some(BackendKind::Quantized),
            2 => Some(BackendKind::Cycle),
            _ => None,
        }
    }

    /// Instantiates this backend for a deployment. The returned object
    /// is what a [`crate::serve::ServeEngine`] dispatches micro-batches
    /// through.
    pub fn instantiate<S: StreamFork + Sync>(
        self,
        vibnn: &Vibnn,
    ) -> Box<dyn InferenceBackend<S>> {
        match self {
            BackendKind::Software => Box::new(SoftwareBackend::new(vibnn.params().clone())),
            BackendKind::Quantized => Box::new(QuantizedBackend::new(vibnn.network().clone())),
            BackendKind::Cycle => Box::new(CycleBackend::new(CycleAccelerator::new(
                vibnn.config().clone(),
                vibnn.network().clone(),
            ))),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::Software => write!(f, "software"),
            BackendKind::Quantized => write!(f, "quantized"),
            BackendKind::Cycle => write!(f, "cycle"),
        }
    }
}

/// Hardware cost charged for served work: simulated clock cycles, the
/// energy those cycles dissipate (nanojoules, from the
/// [`vibnn_hw::power`] system model), and the Monte Carlo samples
/// drawn. Host backends (software/quantized) charge zero cycles and
/// energy; only the cycle backend meters modeled hardware.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BackendCost {
    /// Simulated accelerator clock cycles.
    pub cycles: u64,
    /// Energy in nanojoules for those cycles at the configured clock.
    pub energy_nj: f64,
    /// Monte Carlo samples executed (rows × MC samples per request).
    pub samples: u64,
}

impl BackendCost {
    /// Folds another cost into this one (cumulative accounting).
    pub fn accumulate(&mut self, other: BackendCost) {
        self.cycles += other.cycles;
        self.energy_nj += other.energy_nj;
        self.samples += other.samples;
    }
}

/// One row's outcome under an adaptive sampling policy: an answer, or
/// a typed abstention (a risk-tiered policy declining to predict).
#[derive(Debug, Clone, PartialEq)]
pub enum RowOutcome {
    /// The request was answered.
    Served(ServeResult),
    /// A risk-tiered policy declined to answer after exhausting the
    /// sample budget on a still-uncertain request.
    Abstained {
        /// Request id (row index within the chunk; engines rewrite it).
        id: u64,
        /// Monte Carlo samples drawn before abstaining.
        samples_used: u32,
        /// Final normalized predictive entropy, in thousandths of
        /// `ln(classes)`.
        entropy_milli: u32,
    },
}

impl RowOutcome {
    /// The request id this outcome answers.
    pub fn id(&self) -> u64 {
        match self {
            RowOutcome::Served(r) => r.id,
            RowOutcome::Abstained { id, .. } => *id,
        }
    }

    /// Rewrites the request id (engines map chunk-relative row indices
    /// to global ids).
    pub fn set_id(&mut self, id: u64) {
        match self {
            RowOutcome::Served(r) => r.id = id,
            RowOutcome::Abstained { id: slot, .. } => *slot = id,
        }
    }

    /// The served result, or the abstention as its typed error.
    pub fn into_result(self) -> Result<ServeResult, VibnnError> {
        match self {
            RowOutcome::Served(r) => Ok(r),
            RowOutcome::Abstained {
                samples_used,
                entropy_milli,
                ..
            } => Err(VibnnError::Abstained {
                samples_used,
                entropy_milli,
            }),
        }
    }

    /// Samples this row actually drew.
    pub fn samples_used(&self) -> u32 {
        match self {
            RowOutcome::Served(r) => r.samples_used,
            RowOutcome::Abstained { samples_used, .. } => *samples_used,
        }
    }
}

/// The micro-batch contract a serving slot dispatches through: run one
/// validated chunk of feature rows through `samples` Monte Carlo draws
/// and return one [`ServeResult`] per row (ids = row index within the
/// chunk; the engine rewrites them) plus the batch's [`BackendCost`].
///
/// Implementations must keep the serving determinism contract: sample
/// `s` draws from `eps.fork(s)`, rows are processed independently, and
/// `workers` never affects results.
///
/// ```
/// use vibnn::backend::{BackendKind, InferenceBackend};
/// use vibnn::bnn::{Bnn, BnnConfig};
/// use vibnn::grng::ZigguratGrng;
/// use vibnn::nn::Matrix;
/// use vibnn::VibnnBuilder;
///
/// let bnn = Bnn::new(BnnConfig::new(&[4, 8, 2]), 7);
/// let vibnn = VibnnBuilder::new(bnn.params())
///     .mc_samples(3)
///     .calibration(Matrix::zeros(2, 4))
///     .build()?;
/// let mut backend = BackendKind::Cycle.instantiate::<ZigguratGrng>(&vibnn);
/// let eps = ZigguratGrng::new(0x5EED);
/// let (results, cost) = backend.serve_microbatch(&Matrix::zeros(2, 4), 3, &eps, 1);
/// assert_eq!(results.len(), 2);
/// assert!(cost.cycles > 0 && cost.energy_nj > 0.0);
/// assert_eq!(cost.samples, 2 * 3);
/// # Ok::<(), vibnn::VibnnError>(())
/// ```
pub trait InferenceBackend<S: StreamFork + Sync>: Send {
    /// Which datapath this backend runs.
    fn kind(&self) -> BackendKind;

    /// Serves one micro-batch; see the trait docs for the contract.
    fn serve_microbatch(
        &mut self,
        chunk: &Matrix,
        samples: usize,
        eps: &S,
        workers: usize,
    ) -> (Vec<ServeResult>, BackendCost);

    /// The incremental per-sample seam: serves one micro-batch where
    /// each row draws Monte Carlo members one at a time (sample `s`
    /// still from `eps.fork(s)`), consults `policy` after every member,
    /// and stops — or abstains — per row as soon as the policy decides.
    /// `max_samples` is the budget a row can never exceed.
    ///
    /// The determinism contract extends to stopping: a row's member
    /// sequence and its policy observations are pure functions of that
    /// row's features and the ε substreams, so `samples_used` and the
    /// served bits are independent of batch composition, arrival order,
    /// and `workers`. A row that stops after `n` samples returns
    /// exactly what [`Self::serve_microbatch`] would return for that
    /// row with `samples = n`.
    ///
    /// The default implementation is a non-adaptive fallback for
    /// backends without an incremental datapath: it runs the full
    /// budget through [`Self::serve_microbatch`] and never abstains.
    /// All built-in backends override it with a true early-exit path.
    fn serve_adaptive(
        &mut self,
        chunk: &Matrix,
        policy: &dyn SamplingPolicy,
        max_samples: usize,
        eps: &S,
        workers: usize,
    ) -> (Vec<RowOutcome>, BackendCost) {
        let _ = policy;
        let (results, cost) = self.serve_microbatch(chunk, max_samples, eps, workers);
        (results.into_iter().map(RowOutcome::Served).collect(), cost)
    }
}

/// Drives the adaptive sampling loop for the host (software/quantized)
/// backends: `member_for(s, active)` computes sample `s`'s softmax
/// member for the still-active rows, each row's [`RowTracker`] folds in
/// its member, and the policy decides per row. Stopped rows are dropped
/// from subsequent member evaluations (that is the speedup), and a
/// finished row's result is rebuilt from its own flat member history
/// through [`result_from_history`] — the same arithmetic as the batched
/// path, which is element-wise per row, so stopping one row never
/// perturbs another. Returns the outcomes plus total samples drawn.
fn drive_adaptive_rows<F>(
    chunk: &Matrix,
    policy: &dyn SamplingPolicy,
    max_samples: usize,
    mut member_for: F,
) -> (Vec<RowOutcome>, u64)
where
    F: FnMut(usize, &Matrix) -> Matrix,
{
    assert!(max_samples > 0, "need at least one Monte Carlo sample");
    let rows = chunk.rows();
    let mut classes = 0usize;
    let mut trackers: Vec<RowTracker> = Vec::new();
    // Row r's sample k occupies histories[r][k*classes..(k+1)*classes];
    // one flat buffer per row keeps the hot loop allocation-free.
    let mut histories: Vec<Vec<f32>> = vec![Vec::new(); rows];
    let mut abstained: Vec<bool> = vec![false; rows];
    let mut active: Vec<usize> = (0..rows).collect();
    let mut sub = Matrix::zeros(0, 0);
    let mut drawn_total = 0u64;
    for s in 0..max_samples {
        if active.is_empty() {
            break;
        }
        let member = if active.len() == rows {
            member_for(s, chunk)
        } else {
            sub.resize(active.len(), chunk.cols());
            for (i, &r) in active.iter().enumerate() {
                sub.row_mut(i).copy_from_slice(chunk.row(r));
            }
            member_for(s, &sub)
        };
        if trackers.is_empty() {
            classes = member.cols();
            trackers = (0..rows)
                .map(|_| RowTracker::new(classes, max_samples))
                .collect();
            for h in &mut histories {
                h.reserve_exact(classes * max_samples);
            }
        }
        drawn_total += active.len() as u64;
        let mut still = Vec::with_capacity(active.len());
        for (i, &r) in active.iter().enumerate() {
            let probs = member.row(i);
            histories[r].extend_from_slice(probs);
            let obs = trackers[r].observe_f32(probs);
            match policy.decide(&obs) {
                SampleDecision::Continue | SampleDecision::Escalate => still.push(r),
                SampleDecision::Stop => {}
                SampleDecision::Abstain => abstained[r] = true,
            }
        }
        active = still;
    }
    let out = histories
        .iter()
        .enumerate()
        .map(|(r, history)| {
            if abstained[r] {
                RowOutcome::Abstained {
                    id: r as u64,
                    samples_used: (history.len() / classes) as u32,
                    entropy_milli: trackers[r].entropy_milli(),
                }
            } else {
                let mut res = result_from_history(history, classes);
                res.id = r as u64;
                RowOutcome::Served(res)
            }
        })
        .collect();
    (out, drawn_total)
}

/// Builds one row's [`ServeResult`] from its flat member history
/// (`samples × classes`, row-major), with the mean derived through the
/// same fixed-lane rule as [`reduce_mean`] — lane `l` folds members
/// `l, l+LANES, …` element-wise and lanes combine in ascending order,
/// then one reciprocal multiply — so an adaptive row's result is
/// bit-identical to the batched path at the same member count.
fn result_from_history(history: &[f32], classes: usize) -> ServeResult {
    let samples = history.len() / classes;
    debug_assert!(samples > 0 && history.len() == samples * classes);
    let mut proba: Vec<f32> = history[..classes].to_vec();
    if samples <= LANES {
        for k in 1..samples {
            for (c, p) in proba.iter_mut().enumerate() {
                *p += history[k * classes + c];
            }
        }
    } else {
        let mut k = LANES;
        while k < samples {
            for (c, p) in proba.iter_mut().enumerate() {
                *p += history[k * classes + c];
            }
            k += LANES;
        }
        let mut lane = vec![0.0f32; classes];
        for l in 1..LANES {
            lane.copy_from_slice(&history[l * classes..(l + 1) * classes]);
            let mut k = l + LANES;
            while k < samples {
                for (c, v) in lane.iter_mut().enumerate() {
                    *v += history[k * classes + c];
                }
                k += LANES;
            }
            for (c, p) in proba.iter_mut().enumerate() {
                *p += lane[c];
            }
        }
    }
    let recip = 1.0 / samples as f32;
    for p in &mut proba {
        *p *= recip;
    }
    let mut argmax = 0;
    for (c, &p) in proba.iter().enumerate() {
        if p > proba[argmax] {
            argmax = c;
        }
    }
    let entropy = entropy_nats(&proba);
    let mut std_sum = 0.0f64;
    for (c, &m) in proba.iter().enumerate() {
        let mean_c = f64::from(m);
        let var = (0..samples)
            .map(|k| (f64::from(history[k * classes + c]) - mean_c).powi(2))
            .sum::<f64>()
            / samples as f64;
        std_sum += var.sqrt();
    }
    ServeResult {
        id: 0,
        argmax,
        entropy,
        mc_std: std_sum / classes as f64,
        samples_used: samples as u32,
        proba,
    }
}

/// Builds per-row [`ServeResult`]s from f32 Monte Carlo member
/// matrices, with the mean derived through the shared fixed-lane
/// [`reduce_mean`] — the exact arithmetic the pre-backend serving
/// engine used, kept in one place so the quantized and software
/// backends stay bit-compatible with it.
fn results_from_members(members: &[Matrix], samples: usize) -> Vec<ServeResult> {
    let mean = reduce_mean(members);
    let mut out = Vec::with_capacity(mean.rows());
    for r in 0..mean.rows() {
        let proba = mean.row(r).to_vec();
        let mut argmax = 0;
        for (c, &p) in proba.iter().enumerate() {
            if p > proba[argmax] {
                argmax = c;
            }
        }
        let entropy = entropy_nats(&proba);
        let mut std_sum = 0.0f64;
        for (c, &m) in proba.iter().enumerate() {
            let mean_c = f64::from(m);
            let var = members
                .iter()
                .map(|s| (f64::from(s[(r, c)]) - mean_c).powi(2))
                .sum::<f64>()
                / samples as f64;
            std_sum += var.sqrt();
        }
        out.push(ServeResult {
            id: r as u64,
            argmax,
            entropy,
            mc_std: std_sum / proba.len() as f64,
            samples_used: samples as u32,
            proba,
        });
    }
    out
}

/// Predictive entropy of a probability row, in nats.
fn entropy_nats(proba: &[f32]) -> f64 {
    -proba
        .iter()
        .map(|&p| {
            let p = f64::from(p);
            if p > 0.0 {
                p * p.ln()
            } else {
                0.0
            }
        })
        .sum::<f64>()
}

/// The quantized-host datapath — the serving engine's historical (and
/// default) backend. Bit-identical to the pre-backend engine: members
/// via [`QuantizedBnn::predict_proba_mc_members_parallel`], mean via
/// the shared [`reduce_mean`].
#[derive(Debug, Clone)]
pub struct QuantizedBackend {
    qbnn: QuantizedBnn,
}

impl QuantizedBackend {
    /// Wraps a deployed quantized network.
    pub fn new(qbnn: QuantizedBnn) -> Self {
        Self { qbnn }
    }
}

impl<S: StreamFork + Sync> InferenceBackend<S> for QuantizedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Quantized
    }

    fn serve_microbatch(
        &mut self,
        chunk: &Matrix,
        samples: usize,
        eps: &S,
        workers: usize,
    ) -> (Vec<ServeResult>, BackendCost) {
        let members = self
            .qbnn
            .predict_proba_mc_members_parallel(chunk, samples, eps, workers);
        let results = results_from_members(&members, samples);
        let cost = BackendCost {
            cycles: 0,
            energy_nj: 0.0,
            samples: (chunk.rows() * samples) as u64,
        };
        (results, cost)
    }

    fn serve_adaptive(
        &mut self,
        chunk: &Matrix,
        policy: &dyn SamplingPolicy,
        max_samples: usize,
        eps: &S,
        _workers: usize,
    ) -> (Vec<RowOutcome>, BackendCost) {
        // Samples are evaluated one at a time (the exit decision gates
        // the next draw), so the sample-parallel worker pool does not
        // apply here; sample `s` still draws from `eps.fork(s)` with
        // the weights sampled once per member for every active row.
        let mut scratch: Vec<f64> = Vec::new();
        let (out, drawn) = drive_adaptive_rows(chunk, policy, max_samples, |s, active| {
            let mut src = eps.fork(s as u64);
            let weights = self.qbnn.sample_weights_with(&mut src, &mut scratch);
            let mut probs = self.qbnn.forward_with_weights(active, &weights);
            softmax_rows(&mut probs);
            probs
        });
        let cost = BackendCost {
            cycles: 0,
            energy_nj: 0.0,
            samples: drawn,
        };
        (out, cost)
    }
}

/// The float-precision software datapath: sample `s` forks its own ε
/// substream, draws every layer's weights as `µ + σ·ε` in f32 (weights
/// row-major, then biases — the weight generator's table order), runs
/// the dense forward with ReLU between layers, and softmaxes. Members
/// reduce through the shared [`reduce_mean`], so results are
/// bit-identical at every worker count and batch composition.
#[derive(Debug, Clone)]
pub struct SoftwareBackend {
    params: BnnParams,
}

impl SoftwareBackend {
    /// Wraps the deployment's float parameters.
    pub fn new(params: BnnParams) -> Self {
        Self { params }
    }

    /// One sampled forward pass ending in softmax.
    fn sample_member(
        &self,
        x: &Matrix,
        src: &mut impl GaussianSource,
        eps: &mut Vec<f32>,
    ) -> Matrix {
        let last = self.params.layers() - 1;
        let mut h: Option<Matrix> = None;
        for l in 0..self.params.layers() {
            let mu = &self.params.weight_mu[l];
            let sigma = &self.params.weight_sigma[l];
            let d_out = mu.cols();
            let n_w = mu.rows() * d_out;
            eps.resize(n_w + d_out, 0.0);
            src.fill_f32(eps);
            let mut w = mu.clone();
            for ((wv, &sv), &ev) in w
                .data_mut()
                .iter_mut()
                .zip(sigma.data())
                .zip(eps.iter())
            {
                *wv += sv * ev;
            }
            let bias_eps = &eps[n_w..];
            let input = h.as_ref().unwrap_or(x);
            let mut out = input.matmul(&w);
            let bias_mu = &self.params.bias_mu[l];
            let bias_sigma = &self.params.bias_sigma[l];
            for r in 0..out.rows() {
                for (c, v) in out.row_mut(r).iter_mut().enumerate() {
                    *v += bias_mu[c] + bias_sigma[c] * bias_eps[c];
                }
            }
            if l < last {
                relu(&mut out);
            }
            h = Some(out);
        }
        let mut probs = h.expect("at least one layer");
        softmax_rows(&mut probs);
        probs
    }
}

impl<S: StreamFork + Sync> InferenceBackend<S> for SoftwareBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Software
    }

    fn serve_microbatch(
        &mut self,
        chunk: &Matrix,
        samples: usize,
        eps: &S,
        workers: usize,
    ) -> (Vec<ServeResult>, BackendCost) {
        assert!(samples > 0, "need at least one Monte Carlo sample");
        let members = vibnn_bnn::parallel_fork_map(
            samples,
            workers,
            eps,
            |_, src, scratch: &mut Vec<f32>| self.sample_member(chunk, src, scratch),
        );
        let results = results_from_members(&members, samples);
        let cost = BackendCost {
            cycles: 0,
            energy_nj: 0.0,
            samples: (chunk.rows() * samples) as u64,
        };
        (results, cost)
    }

    fn serve_adaptive(
        &mut self,
        chunk: &Matrix,
        policy: &dyn SamplingPolicy,
        max_samples: usize,
        eps: &S,
        _workers: usize,
    ) -> (Vec<RowOutcome>, BackendCost) {
        // Sequential per-sample evaluation (see the quantized backend's
        // note); sample `s` forks `eps.fork(s)` exactly as
        // `parallel_fork_map` does on the batched path.
        let mut scratch: Vec<f32> = Vec::new();
        let (out, drawn) = drive_adaptive_rows(chunk, policy, max_samples, |s, active| {
            let mut src = eps.fork(s as u64);
            self.sample_member(active, &mut src, &mut scratch)
        });
        let cost = BackendCost {
            cycles: 0,
            energy_nj: 0.0,
            samples: drawn,
        };
        (out, cost)
    }
}

/// Hardware in the loop: every request runs through the cycle-ticked
/// [`CycleAccelerator`] ([`CycleAccelerator::infer_forked`], so sample
/// `s` of any request draws from `eps.fork(s)` exactly like the host
/// backends), and the batch cost carries the exact simulated cycles
/// plus the energy they dissipate under the [`vibnn_hw::power`] model.
///
/// Rows run sequentially on the single modeled accelerator — `workers`
/// is ignored — but results remain independent of batch composition
/// because each row re-derives its substreams from scratch.
#[derive(Debug, Clone)]
pub struct CycleBackend {
    sim: CycleAccelerator,
}

impl CycleBackend {
    /// Wraps a ticking accelerator model.
    pub fn new(sim: CycleAccelerator) -> Self {
        Self { sim }
    }

    /// The wrapped simulator (cumulative [`vibnn_hw::SimStats`]).
    pub fn simulator(&self) -> &CycleAccelerator {
        &self.sim
    }
}

impl<S: StreamFork + Sync> InferenceBackend<S> for CycleBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Cycle
    }

    fn serve_microbatch(
        &mut self,
        chunk: &Matrix,
        samples: usize,
        eps: &S,
        _workers: usize,
    ) -> (Vec<ServeResult>, BackendCost) {
        let mut out = Vec::with_capacity(chunk.rows());
        let mut cost = BackendCost::default();
        for r in 0..chunk.rows() {
            let (proba, members, row_cost) = self.sim.infer_forked(chunk.row(r), eps);
            let mut argmax = 0;
            for (c, &p) in proba.iter().enumerate() {
                if p > proba[argmax] {
                    argmax = c;
                }
            }
            let entropy = entropy_nats(&proba);
            let mut std_sum = 0.0f64;
            for (c, &m) in proba.iter().enumerate() {
                let mean_c = f64::from(m);
                let var = members
                    .iter()
                    .map(|s| (s[c] - mean_c).powi(2))
                    .sum::<f64>()
                    / members.len() as f64;
                std_sum += var.sqrt();
            }
            cost.accumulate(BackendCost {
                cycles: row_cost.cycles,
                energy_nj: row_cost.energy_nj,
                samples: members.len() as u64,
            });
            out.push(ServeResult {
                id: r as u64,
                argmax,
                entropy,
                mc_std: std_sum / proba.len() as f64,
                samples_used: members.len() as u32,
                proba,
            });
        }
        let _ = samples; // the simulator's configured MC count governs
        (out, cost)
    }

    fn serve_adaptive(
        &mut self,
        chunk: &Matrix,
        policy: &dyn SamplingPolicy,
        max_samples: usize,
        eps: &S,
        _workers: usize,
    ) -> (Vec<RowOutcome>, BackendCost) {
        assert!(max_samples > 0, "need at least one Monte Carlo sample");
        let mut out = Vec::with_capacity(chunk.rows());
        let mut cost = BackendCost::default();
        for r in 0..chunk.rows() {
            let before = self.sim.stats().cycles;
            let mut tracker: Option<RowTracker> = None;
            let mut acc: Vec<f64> = Vec::new();
            let mut members: Vec<Vec<f64>> = Vec::new();
            let mut abstained = false;
            loop {
                let s = members.len() as u64;
                let probs = self.sim.infer_sample_forked(chunk.row(r), s, eps);
                let t = tracker
                    .get_or_insert_with(|| RowTracker::new(probs.len(), max_samples));
                let obs = t.observe(&probs);
                if acc.is_empty() {
                    acc = vec![0.0f64; probs.len()];
                }
                for (a, &p) in acc.iter_mut().zip(&probs) {
                    *a += p;
                }
                members.push(probs);
                match policy.decide(&obs) {
                    SampleDecision::Continue | SampleDecision::Escalate => {
                        if members.len() >= max_samples {
                            break; // clamp a policy that never stops
                        }
                    }
                    SampleDecision::Stop => break,
                    SampleDecision::Abstain => {
                        abstained = true;
                        break;
                    }
                }
            }
            let n = members.len();
            let cycles = self.sim.stats().cycles - before;
            cost.accumulate(BackendCost {
                cycles,
                energy_nj: self.sim.energy_nj(cycles),
                samples: n as u64,
            });
            let tracker = tracker.expect("at least one sample");
            if abstained {
                out.push(RowOutcome::Abstained {
                    id: r as u64,
                    samples_used: n as u32,
                    entropy_milli: tracker.entropy_milli(),
                });
                continue;
            }
            // The mean is the simulator's own arithmetic: a single f64
            // accumulation chain over members, truncated to f32 — what
            // `infer_forked` computes for a deployment with `n` samples.
            let proba: Vec<f32> = acc.iter().map(|&v| (v / n as f64) as f32).collect();
            let mut argmax = 0;
            for (c, &p) in proba.iter().enumerate() {
                if p > proba[argmax] {
                    argmax = c;
                }
            }
            let entropy = entropy_nats(&proba);
            let mut std_sum = 0.0f64;
            for (c, &m) in proba.iter().enumerate() {
                let mean_c = f64::from(m);
                let var = members
                    .iter()
                    .map(|s| (s[c] - mean_c).powi(2))
                    .sum::<f64>()
                    / n as f64;
                std_sum += var.sqrt();
            }
            out.push(RowOutcome::Served(ServeResult {
                id: r as u64,
                argmax,
                entropy,
                mc_std: std_sum / proba.len() as f64,
                samples_used: n as u32,
                proba,
            }));
        }
        (out, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VibnnBuilder;
    use vibnn_bnn::{Bnn, BnnConfig};
    use vibnn_grng::ZigguratGrng;

    fn tiny_vibnn() -> Vibnn {
        let bnn = Bnn::new(BnnConfig::new(&[3, 6, 2]).with_sigma_init(0.1), 11);
        VibnnBuilder::new(bnn.params())
            .mc_samples(3)
            .calibration(Matrix::zeros(2, 3))
            .build()
            .unwrap()
    }

    fn rows() -> Matrix {
        let mut x = Matrix::zeros(4, 3);
        for (i, v) in x.data_mut().iter_mut().enumerate() {
            *v = (i as f32 * 0.31).sin();
        }
        x
    }

    #[test]
    fn kinds_round_trip_codes_and_default_is_quantized() {
        assert_eq!(BackendKind::default(), BackendKind::Quantized);
        for kind in [
            BackendKind::Software,
            BackendKind::Quantized,
            BackendKind::Cycle,
        ] {
            assert_eq!(BackendKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(BackendKind::from_code(0xFF), None);
    }

    #[test]
    fn every_backend_is_worker_count_invariant() {
        let vibnn = tiny_vibnn();
        let x = rows();
        let eps = ZigguratGrng::new(0xABCD);
        for kind in [
            BackendKind::Software,
            BackendKind::Quantized,
            BackendKind::Cycle,
        ] {
            let mut reference = kind.instantiate::<ZigguratGrng>(&vibnn);
            let (base, _) = reference.serve_microbatch(&x, 3, &eps, 1);
            for workers in [2usize, 4] {
                let mut b = kind.instantiate::<ZigguratGrng>(&vibnn);
                let (got, _) = b.serve_microbatch(&x, 3, &eps, workers);
                for (a, g) in base.iter().zip(&got) {
                    assert_eq!(a.proba, g.proba, "{kind} diverged at {workers} workers");
                }
            }
        }
    }

    #[test]
    fn every_backend_is_batch_composition_invariant() {
        let vibnn = tiny_vibnn();
        let x = rows();
        let eps = ZigguratGrng::new(0x1234);
        for kind in [
            BackendKind::Software,
            BackendKind::Quantized,
            BackendKind::Cycle,
        ] {
            let mut whole = kind.instantiate::<ZigguratGrng>(&vibnn);
            let (base, _) = whole.serve_microbatch(&x, 3, &eps, 1);
            let mut split = kind.instantiate::<ZigguratGrng>(&vibnn);
            let (head, _) = split.serve_microbatch(&x.rows_slice(0, 2), 3, &eps, 1);
            let (tail, _) = split.serve_microbatch(&x.rows_slice(2, 4), 3, &eps, 1);
            let stitched: Vec<&ServeResult> = head.iter().chain(&tail).collect();
            for (a, g) in base.iter().zip(stitched) {
                assert_eq!(a.proba, g.proba, "{kind} depends on batch composition");
            }
        }
    }

    #[test]
    fn only_the_cycle_backend_charges_hardware_cost() {
        let vibnn = tiny_vibnn();
        let x = rows();
        let eps = ZigguratGrng::new(0x77);
        for (kind, metered) in [
            (BackendKind::Software, false),
            (BackendKind::Quantized, false),
            (BackendKind::Cycle, true),
        ] {
            let mut b = kind.instantiate::<ZigguratGrng>(&vibnn);
            let (_, cost) = b.serve_microbatch(&x, 3, &eps, 1);
            assert_eq!(cost.samples, (x.rows() * 3) as u64, "{kind}");
            assert_eq!(cost.cycles > 0, metered, "{kind} cycles");
            assert_eq!(cost.energy_nj > 0.0, metered, "{kind} energy");
        }
    }

    #[test]
    fn adaptive_exact_n_matches_the_batched_path_bit_for_bit() {
        let vibnn = tiny_vibnn();
        let x = rows();
        let eps = ZigguratGrng::new(0x5151);
        let policy = crate::sampler::PolicySpec::ExactN.instantiate();
        for kind in [
            BackendKind::Software,
            BackendKind::Quantized,
            BackendKind::Cycle,
        ] {
            let mut reference = kind.instantiate::<ZigguratGrng>(&vibnn);
            let (base, base_cost) = reference.serve_microbatch(&x, 3, &eps, 1);
            let mut adaptive = kind.instantiate::<ZigguratGrng>(&vibnn);
            let (got, cost) = adaptive.serve_adaptive(&x, policy.as_ref(), 3, &eps, 1);
            assert_eq!(got.len(), base.len());
            for (b, g) in base.iter().zip(&got) {
                let RowOutcome::Served(g) = g else {
                    panic!("{kind}: ExactN must never abstain")
                };
                assert_eq!(b.proba, g.proba, "{kind} proba diverged");
                assert_eq!(b.argmax, g.argmax, "{kind} argmax diverged");
                assert_eq!(b.entropy.to_bits(), g.entropy.to_bits(), "{kind} entropy");
                assert_eq!(b.mc_std.to_bits(), g.mc_std.to_bits(), "{kind} mc_std");
                assert_eq!(g.samples_used, 3, "{kind} samples_used");
            }
            assert_eq!(cost.samples, base_cost.samples, "{kind} sample count");
        }
    }

    #[test]
    fn an_early_exit_row_matches_a_smaller_static_budget() {
        let vibnn = tiny_vibnn();
        let x = rows();
        let eps = ZigguratGrng::new(0x2323);
        for kind in [
            BackendKind::Software,
            BackendKind::Quantized,
            BackendKind::Cycle,
        ] {
            let policy = crate::sampler::PolicySpec::EarlyExit { k: 1, min_samples: 1 }
                .instantiate();
            let mut adaptive = kind.instantiate::<ZigguratGrng>(&vibnn);
            let (out, _) = adaptive.serve_adaptive(&x, policy.as_ref(), 3, &eps, 1);
            for (r, o) in out.iter().enumerate() {
                let RowOutcome::Served(res) = o else {
                    panic!("{kind}: EarlyExit must never abstain")
                };
                let n = res.samples_used as usize;
                assert!(n >= 1 && n <= 3, "{kind} row {r} samples_used {n}");
                // A row stopped at n samples must carry exactly the bits
                // a static-n deployment would have served it.
                let reference: Vec<f32> = if kind == BackendKind::Cycle {
                    let mut cfg = vibnn.config().clone();
                    cfg.mc_samples = n;
                    let mut sim = CycleAccelerator::new(cfg, vibnn.network().clone());
                    sim.infer_forked(x.row(r), &eps).0
                } else {
                    let mut fresh = kind.instantiate::<ZigguratGrng>(&vibnn);
                    let (base, _) = fresh.serve_microbatch(&x.rows_slice(r, r + 1), n, &eps, 1);
                    base[0].proba.clone()
                };
                assert_eq!(res.proba, reference, "{kind} row {r} at {n} samples");
            }
        }
    }

    #[test]
    fn risk_tiered_abstentions_are_typed_at_the_full_budget() {
        let vibnn = tiny_vibnn();
        let x = rows();
        let eps = ZigguratGrng::new(0x4242);
        // Threshold 0: every request counts as high-entropy, so every
        // row escalates to the full budget and then abstains.
        let policy = crate::sampler::PolicySpec::RiskTiered {
            k: 1,
            min_samples: 1,
            escalate_milli: 0,
            abstain: true,
        }
        .instantiate();
        for kind in [
            BackendKind::Software,
            BackendKind::Quantized,
            BackendKind::Cycle,
        ] {
            let mut adaptive = kind.instantiate::<ZigguratGrng>(&vibnn);
            let (out, cost) = adaptive.serve_adaptive(&x, policy.as_ref(), 3, &eps, 1);
            assert_eq!(cost.samples, (x.rows() * 3) as u64, "{kind} burns the budget");
            for o in &out {
                let RowOutcome::Abstained { samples_used, .. } = o else {
                    panic!("{kind}: expected an abstention, got {o:?}")
                };
                assert_eq!(*samples_used, 3, "{kind} abstains only at the budget");
                assert!(o.clone().into_result().is_err());
            }
        }
    }

    #[test]
    fn cycle_backend_matches_the_ticked_model() {
        let vibnn = tiny_vibnn();
        let x = rows();
        let eps = ZigguratGrng::new(0x99);
        let mut backend = BackendKind::Cycle.instantiate::<ZigguratGrng>(&vibnn);
        let (served, _) = backend.serve_microbatch(&x, 3, &eps, 1);
        let mut sim = CycleAccelerator::new(vibnn.config().clone(), vibnn.network().clone());
        for (r, res) in served.iter().enumerate() {
            let (probs, _, cost) = sim.infer_forked(x.row(r), &eps);
            assert_eq!(res.proba, probs, "row {r} diverged from the ticked model");
            assert!(cost.cycles > 0);
        }
    }
}
