//! Pluggable inference backends: one serving contract, three datapaths.
//!
//! The paper's deployment story is an accelerator serving Bayesian
//! inference, yet a serving stack usually grows around whichever
//! datapath existed first. This module makes the datapath a *plug*:
//! [`InferenceBackend`] is the micro-batch contract the serving engine
//! dispatches through, and three implementations cover the repo's
//! datapaths end to end:
//!
//! - [`SoftwareBackend`] — the parallel float path (weights sampled as
//!   `µ + σ·ε` in f32, dense forward, softmax), the precision reference.
//! - [`QuantizedBackend`] — the quantized-host path the engine has
//!   always used ([`QuantizedBnn::predict_proba_mc_members_parallel`]).
//!   This is the **default**; its results are bit-identical to the
//!   pre-backend serving engine.
//! - [`CycleBackend`] — hardware in the loop: every request runs
//!   through the cycle-ticked [`CycleAccelerator`], and the batch comes
//!   back with exact cycle counts and energy (nJ) charged under the
//!   [`vibnn_hw::power`] system model.
//!
//! # Determinism
//!
//! All three backends fork the engine's ε source per Monte Carlo
//! sample (`eps.fork(s)`), never consume a shared stream, and process
//! rows independently — so a request's answer depends only on its
//! feature row, the deployment, the backend kind, and the ε seed;
//! never on batch composition, arrival order, or worker count. The
//! cluster router exploits this: spill is restricted to replicas with
//! the same checkpoint fingerprint *and* the same backend kind, so
//! rerouting can never change a result.
//!
//! # Cost accounting
//!
//! Every micro-batch returns a [`BackendCost`]. The software and
//! quantized hosts charge zero cycles/energy (they are host code, not
//! modeled hardware); the cycle backend charges the exact simulated
//! cycles and the energy those cycles dissipate at the configured
//! clock. Costs accumulate per engine and per cluster replica, surface
//! in `ClusterMetrics`, and travel over the ingest wire.

use vibnn_bnn::{reduce_mean, BnnParams};
use vibnn_grng::{GaussianSource, StreamFork};
use vibnn_hw::{CycleAccelerator, QuantizedBnn};
use vibnn_nn::{relu, softmax_rows, Matrix};

use crate::serve::ServeResult;
use crate::Vibnn;

/// Which datapath a serving slot runs inference through.
///
/// The default is [`BackendKind::Quantized`] — the quantized-host path
/// the serving engine has always used — so existing deployments are
/// unchanged unless a backend is selected explicitly (via
/// `VibnnBuilder::backend`, `ServeConfig::backend`, or a cluster's
/// per-replica kinds).
///
/// ```
/// use vibnn::backend::BackendKind;
///
/// assert_eq!(BackendKind::default(), BackendKind::Quantized);
/// // Kinds travel over the ingest wire as one byte.
/// for kind in [BackendKind::Software, BackendKind::Quantized, BackendKind::Cycle] {
///     assert_eq!(BackendKind::from_code(kind.code()), Some(kind));
/// }
/// assert_eq!(BackendKind::from_code(9), None);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Float-precision software path (µ + σ·ε in f32, dense forward).
    Software,
    /// Quantized host path — the historical serving datapath.
    #[default]
    Quantized,
    /// Cycle-ticked accelerator model with cycle/energy accounting.
    Cycle,
}

impl BackendKind {
    /// Stable one-byte wire code (ingest metrics, checkpoint-free).
    pub fn code(self) -> u8 {
        match self {
            BackendKind::Software => 0,
            BackendKind::Quantized => 1,
            BackendKind::Cycle => 2,
        }
    }

    /// Inverse of [`Self::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(BackendKind::Software),
            1 => Some(BackendKind::Quantized),
            2 => Some(BackendKind::Cycle),
            _ => None,
        }
    }

    /// Instantiates this backend for a deployment. The returned object
    /// is what a [`crate::serve::ServeEngine`] dispatches micro-batches
    /// through.
    pub fn instantiate<S: StreamFork + Sync>(
        self,
        vibnn: &Vibnn,
    ) -> Box<dyn InferenceBackend<S>> {
        match self {
            BackendKind::Software => Box::new(SoftwareBackend::new(vibnn.params().clone())),
            BackendKind::Quantized => Box::new(QuantizedBackend::new(vibnn.network().clone())),
            BackendKind::Cycle => Box::new(CycleBackend::new(CycleAccelerator::new(
                vibnn.config().clone(),
                vibnn.network().clone(),
            ))),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::Software => write!(f, "software"),
            BackendKind::Quantized => write!(f, "quantized"),
            BackendKind::Cycle => write!(f, "cycle"),
        }
    }
}

/// Hardware cost charged for served work: simulated clock cycles, the
/// energy those cycles dissipate (nanojoules, from the
/// [`vibnn_hw::power`] system model), and the Monte Carlo samples
/// drawn. Host backends (software/quantized) charge zero cycles and
/// energy; only the cycle backend meters modeled hardware.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BackendCost {
    /// Simulated accelerator clock cycles.
    pub cycles: u64,
    /// Energy in nanojoules for those cycles at the configured clock.
    pub energy_nj: f64,
    /// Monte Carlo samples executed (rows × MC samples per request).
    pub samples: u64,
}

impl BackendCost {
    /// Folds another cost into this one (cumulative accounting).
    pub fn accumulate(&mut self, other: BackendCost) {
        self.cycles += other.cycles;
        self.energy_nj += other.energy_nj;
        self.samples += other.samples;
    }
}

/// The micro-batch contract a serving slot dispatches through: run one
/// validated chunk of feature rows through `samples` Monte Carlo draws
/// and return one [`ServeResult`] per row (ids = row index within the
/// chunk; the engine rewrites them) plus the batch's [`BackendCost`].
///
/// Implementations must keep the serving determinism contract: sample
/// `s` draws from `eps.fork(s)`, rows are processed independently, and
/// `workers` never affects results.
///
/// ```
/// use vibnn::backend::{BackendKind, InferenceBackend};
/// use vibnn::bnn::{Bnn, BnnConfig};
/// use vibnn::grng::ZigguratGrng;
/// use vibnn::nn::Matrix;
/// use vibnn::VibnnBuilder;
///
/// let bnn = Bnn::new(BnnConfig::new(&[4, 8, 2]), 7);
/// let vibnn = VibnnBuilder::new(bnn.params())
///     .mc_samples(3)
///     .calibration(Matrix::zeros(2, 4))
///     .build()?;
/// let mut backend = BackendKind::Cycle.instantiate::<ZigguratGrng>(&vibnn);
/// let eps = ZigguratGrng::new(0x5EED);
/// let (results, cost) = backend.serve_microbatch(&Matrix::zeros(2, 4), 3, &eps, 1);
/// assert_eq!(results.len(), 2);
/// assert!(cost.cycles > 0 && cost.energy_nj > 0.0);
/// assert_eq!(cost.samples, 2 * 3);
/// # Ok::<(), vibnn::VibnnError>(())
/// ```
pub trait InferenceBackend<S: StreamFork + Sync>: Send {
    /// Which datapath this backend runs.
    fn kind(&self) -> BackendKind;

    /// Serves one micro-batch; see the trait docs for the contract.
    fn serve_microbatch(
        &mut self,
        chunk: &Matrix,
        samples: usize,
        eps: &S,
        workers: usize,
    ) -> (Vec<ServeResult>, BackendCost);
}

/// Builds per-row [`ServeResult`]s from f32 Monte Carlo member
/// matrices, with the mean derived through the shared fixed-lane
/// [`reduce_mean`] — the exact arithmetic the pre-backend serving
/// engine used, kept in one place so the quantized and software
/// backends stay bit-compatible with it.
fn results_from_members(members: &[Matrix], samples: usize) -> Vec<ServeResult> {
    let mean = reduce_mean(members);
    let mut out = Vec::with_capacity(mean.rows());
    for r in 0..mean.rows() {
        let proba = mean.row(r).to_vec();
        let mut argmax = 0;
        for (c, &p) in proba.iter().enumerate() {
            if p > proba[argmax] {
                argmax = c;
            }
        }
        let entropy = entropy_nats(&proba);
        let mut std_sum = 0.0f64;
        for (c, &m) in proba.iter().enumerate() {
            let mean_c = f64::from(m);
            let var = members
                .iter()
                .map(|s| (f64::from(s[(r, c)]) - mean_c).powi(2))
                .sum::<f64>()
                / samples as f64;
            std_sum += var.sqrt();
        }
        out.push(ServeResult {
            id: r as u64,
            argmax,
            entropy,
            mc_std: std_sum / proba.len() as f64,
            proba,
        });
    }
    out
}

/// Predictive entropy of a probability row, in nats.
fn entropy_nats(proba: &[f32]) -> f64 {
    -proba
        .iter()
        .map(|&p| {
            let p = f64::from(p);
            if p > 0.0 {
                p * p.ln()
            } else {
                0.0
            }
        })
        .sum::<f64>()
}

/// The quantized-host datapath — the serving engine's historical (and
/// default) backend. Bit-identical to the pre-backend engine: members
/// via [`QuantizedBnn::predict_proba_mc_members_parallel`], mean via
/// the shared [`reduce_mean`].
#[derive(Debug, Clone)]
pub struct QuantizedBackend {
    qbnn: QuantizedBnn,
}

impl QuantizedBackend {
    /// Wraps a deployed quantized network.
    pub fn new(qbnn: QuantizedBnn) -> Self {
        Self { qbnn }
    }
}

impl<S: StreamFork + Sync> InferenceBackend<S> for QuantizedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Quantized
    }

    fn serve_microbatch(
        &mut self,
        chunk: &Matrix,
        samples: usize,
        eps: &S,
        workers: usize,
    ) -> (Vec<ServeResult>, BackendCost) {
        let members = self
            .qbnn
            .predict_proba_mc_members_parallel(chunk, samples, eps, workers);
        let results = results_from_members(&members, samples);
        let cost = BackendCost {
            cycles: 0,
            energy_nj: 0.0,
            samples: (chunk.rows() * samples) as u64,
        };
        (results, cost)
    }
}

/// The float-precision software datapath: sample `s` forks its own ε
/// substream, draws every layer's weights as `µ + σ·ε` in f32 (weights
/// row-major, then biases — the weight generator's table order), runs
/// the dense forward with ReLU between layers, and softmaxes. Members
/// reduce through the shared [`reduce_mean`], so results are
/// bit-identical at every worker count and batch composition.
#[derive(Debug, Clone)]
pub struct SoftwareBackend {
    params: BnnParams,
}

impl SoftwareBackend {
    /// Wraps the deployment's float parameters.
    pub fn new(params: BnnParams) -> Self {
        Self { params }
    }

    /// One sampled forward pass ending in softmax.
    fn sample_member(
        &self,
        x: &Matrix,
        src: &mut impl GaussianSource,
        eps: &mut Vec<f32>,
    ) -> Matrix {
        let last = self.params.layers() - 1;
        let mut h: Option<Matrix> = None;
        for l in 0..self.params.layers() {
            let mu = &self.params.weight_mu[l];
            let sigma = &self.params.weight_sigma[l];
            let d_out = mu.cols();
            let n_w = mu.rows() * d_out;
            eps.resize(n_w + d_out, 0.0);
            src.fill_f32(eps);
            let mut w = mu.clone();
            for ((wv, &sv), &ev) in w
                .data_mut()
                .iter_mut()
                .zip(sigma.data())
                .zip(eps.iter())
            {
                *wv += sv * ev;
            }
            let bias_eps = &eps[n_w..];
            let input = h.as_ref().unwrap_or(x);
            let mut out = input.matmul(&w);
            let bias_mu = &self.params.bias_mu[l];
            let bias_sigma = &self.params.bias_sigma[l];
            for r in 0..out.rows() {
                for (c, v) in out.row_mut(r).iter_mut().enumerate() {
                    *v += bias_mu[c] + bias_sigma[c] * bias_eps[c];
                }
            }
            if l < last {
                relu(&mut out);
            }
            h = Some(out);
        }
        let mut probs = h.expect("at least one layer");
        softmax_rows(&mut probs);
        probs
    }
}

impl<S: StreamFork + Sync> InferenceBackend<S> for SoftwareBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Software
    }

    fn serve_microbatch(
        &mut self,
        chunk: &Matrix,
        samples: usize,
        eps: &S,
        workers: usize,
    ) -> (Vec<ServeResult>, BackendCost) {
        assert!(samples > 0, "need at least one Monte Carlo sample");
        let members = vibnn_bnn::parallel_fork_map(
            samples,
            workers,
            eps,
            |_, src, scratch: &mut Vec<f32>| self.sample_member(chunk, src, scratch),
        );
        let results = results_from_members(&members, samples);
        let cost = BackendCost {
            cycles: 0,
            energy_nj: 0.0,
            samples: (chunk.rows() * samples) as u64,
        };
        (results, cost)
    }
}

/// Hardware in the loop: every request runs through the cycle-ticked
/// [`CycleAccelerator`] ([`CycleAccelerator::infer_forked`], so sample
/// `s` of any request draws from `eps.fork(s)` exactly like the host
/// backends), and the batch cost carries the exact simulated cycles
/// plus the energy they dissipate under the [`vibnn_hw::power`] model.
///
/// Rows run sequentially on the single modeled accelerator — `workers`
/// is ignored — but results remain independent of batch composition
/// because each row re-derives its substreams from scratch.
#[derive(Debug, Clone)]
pub struct CycleBackend {
    sim: CycleAccelerator,
}

impl CycleBackend {
    /// Wraps a ticking accelerator model.
    pub fn new(sim: CycleAccelerator) -> Self {
        Self { sim }
    }

    /// The wrapped simulator (cumulative [`vibnn_hw::SimStats`]).
    pub fn simulator(&self) -> &CycleAccelerator {
        &self.sim
    }
}

impl<S: StreamFork + Sync> InferenceBackend<S> for CycleBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Cycle
    }

    fn serve_microbatch(
        &mut self,
        chunk: &Matrix,
        samples: usize,
        eps: &S,
        _workers: usize,
    ) -> (Vec<ServeResult>, BackendCost) {
        let mut out = Vec::with_capacity(chunk.rows());
        let mut cost = BackendCost::default();
        for r in 0..chunk.rows() {
            let (proba, members, row_cost) = self.sim.infer_forked(chunk.row(r), eps);
            let mut argmax = 0;
            for (c, &p) in proba.iter().enumerate() {
                if p > proba[argmax] {
                    argmax = c;
                }
            }
            let entropy = entropy_nats(&proba);
            let mut std_sum = 0.0f64;
            for (c, &m) in proba.iter().enumerate() {
                let mean_c = f64::from(m);
                let var = members
                    .iter()
                    .map(|s| (s[c] - mean_c).powi(2))
                    .sum::<f64>()
                    / members.len() as f64;
                std_sum += var.sqrt();
            }
            cost.accumulate(BackendCost {
                cycles: row_cost.cycles,
                energy_nj: row_cost.energy_nj,
                samples: members.len() as u64,
            });
            out.push(ServeResult {
                id: r as u64,
                argmax,
                entropy,
                mc_std: std_sum / proba.len() as f64,
                proba,
            });
        }
        let _ = samples; // the simulator's configured MC count governs
        (out, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VibnnBuilder;
    use vibnn_bnn::{Bnn, BnnConfig};
    use vibnn_grng::ZigguratGrng;

    fn tiny_vibnn() -> Vibnn {
        let bnn = Bnn::new(BnnConfig::new(&[3, 6, 2]).with_sigma_init(0.1), 11);
        VibnnBuilder::new(bnn.params())
            .mc_samples(3)
            .calibration(Matrix::zeros(2, 3))
            .build()
            .unwrap()
    }

    fn rows() -> Matrix {
        let mut x = Matrix::zeros(4, 3);
        for (i, v) in x.data_mut().iter_mut().enumerate() {
            *v = (i as f32 * 0.31).sin();
        }
        x
    }

    #[test]
    fn kinds_round_trip_codes_and_default_is_quantized() {
        assert_eq!(BackendKind::default(), BackendKind::Quantized);
        for kind in [
            BackendKind::Software,
            BackendKind::Quantized,
            BackendKind::Cycle,
        ] {
            assert_eq!(BackendKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(BackendKind::from_code(0xFF), None);
    }

    #[test]
    fn every_backend_is_worker_count_invariant() {
        let vibnn = tiny_vibnn();
        let x = rows();
        let eps = ZigguratGrng::new(0xABCD);
        for kind in [
            BackendKind::Software,
            BackendKind::Quantized,
            BackendKind::Cycle,
        ] {
            let mut reference = kind.instantiate::<ZigguratGrng>(&vibnn);
            let (base, _) = reference.serve_microbatch(&x, 3, &eps, 1);
            for workers in [2usize, 4] {
                let mut b = kind.instantiate::<ZigguratGrng>(&vibnn);
                let (got, _) = b.serve_microbatch(&x, 3, &eps, workers);
                for (a, g) in base.iter().zip(&got) {
                    assert_eq!(a.proba, g.proba, "{kind} diverged at {workers} workers");
                }
            }
        }
    }

    #[test]
    fn every_backend_is_batch_composition_invariant() {
        let vibnn = tiny_vibnn();
        let x = rows();
        let eps = ZigguratGrng::new(0x1234);
        for kind in [
            BackendKind::Software,
            BackendKind::Quantized,
            BackendKind::Cycle,
        ] {
            let mut whole = kind.instantiate::<ZigguratGrng>(&vibnn);
            let (base, _) = whole.serve_microbatch(&x, 3, &eps, 1);
            let mut split = kind.instantiate::<ZigguratGrng>(&vibnn);
            let (head, _) = split.serve_microbatch(&x.rows_slice(0, 2), 3, &eps, 1);
            let (tail, _) = split.serve_microbatch(&x.rows_slice(2, 4), 3, &eps, 1);
            let stitched: Vec<&ServeResult> = head.iter().chain(&tail).collect();
            for (a, g) in base.iter().zip(stitched) {
                assert_eq!(a.proba, g.proba, "{kind} depends on batch composition");
            }
        }
    }

    #[test]
    fn only_the_cycle_backend_charges_hardware_cost() {
        let vibnn = tiny_vibnn();
        let x = rows();
        let eps = ZigguratGrng::new(0x77);
        for (kind, metered) in [
            (BackendKind::Software, false),
            (BackendKind::Quantized, false),
            (BackendKind::Cycle, true),
        ] {
            let mut b = kind.instantiate::<ZigguratGrng>(&vibnn);
            let (_, cost) = b.serve_microbatch(&x, 3, &eps, 1);
            assert_eq!(cost.samples, (x.rows() * 3) as u64, "{kind}");
            assert_eq!(cost.cycles > 0, metered, "{kind} cycles");
            assert_eq!(cost.energy_nj > 0.0, metered, "{kind} energy");
        }
    }

    #[test]
    fn cycle_backend_matches_the_ticked_model() {
        let vibnn = tiny_vibnn();
        let x = rows();
        let eps = ZigguratGrng::new(0x99);
        let mut backend = BackendKind::Cycle.instantiate::<ZigguratGrng>(&vibnn);
        let (served, _) = backend.serve_microbatch(&x, 3, &eps, 1);
        let mut sim = CycleAccelerator::new(vibnn.config().clone(), vibnn.network().clone());
        for (r, res) in served.iter().enumerate() {
            let (probs, _, cost) = sim.infer_forked(x.row(r), &eps);
            assert_eq!(res.proba, probs, "row {r} diverged from the ticked model");
            assert!(cost.cycles > 0);
        }
    }
}
