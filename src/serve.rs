//! The serving engine: many concurrent single-row inference requests on
//! one deployed accelerator, coalesced into micro-batches.
//!
//! VIBNN's deployment story (paper Section 1) is an accelerator serving
//! large volumes of small Bayesian-inference queries. [`ServeEngine`]
//! is the software front-end for that: callers submit single feature
//! rows, the engine queues them, coalesces up to
//! [`ServeConfig::max_batch`] rows into one micro-batch, runs the batch
//! through the parallel Monte Carlo datapath
//! ([`QuantizedBnn::predict_proba_mc_members_parallel`]), and returns
//! per-request probabilities plus predictive-uncertainty estimates.
//!
//! # Determinism
//!
//! The engine owns its ε stream and forks it per Monte Carlo sample:
//! sample `s` of **every** micro-batch draws from `eps.fork(s)` — the
//! identical substream assignment `Vibnn::predict_proba_parallel` uses.
//! Because the fixed-point datapath processes rows independently, a
//! request's result depends only on its feature row and the engine's ε
//! seed, **never** on arrival order, queue state, batch composition, or
//! worker count. Stacking the results of N single-row requests
//! reproduces the one-shot batched `predict_proba_parallel` call bit for
//! bit — the serve-determinism integration suite pins this at 1/2/4
//! workers for permuted arrival orders.
//!
//! [`QuantizedBnn`]: vibnn_hw::QuantizedBnn
//! [`QuantizedBnn::predict_proba_mc_members_parallel`]: vibnn_hw::QuantizedBnn::predict_proba_mc_members_parallel

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use vibnn_grng::{StreamFork, ZigguratGrng};
use vibnn_nn::Matrix;

use crate::backend::{BackendCost, BackendKind, InferenceBackend, RowOutcome};
use crate::sampler::{PolicySpec, SamplingPolicy};
use crate::{Vibnn, VibnnError};

/// Sizing knobs for a [`ServeEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum requests coalesced into one micro-batch (default 32).
    pub max_batch: usize,
    /// Queue capacity; submissions beyond it get
    /// [`VibnnError::QueueFull`] (default 1024).
    pub max_queue: usize,
    /// Worker threads for the Monte Carlo ensemble of each micro-batch
    /// (`0` honours `VIBNN_THREADS`; default 0). Never affects results.
    pub workers: usize,
    /// Which [`BackendKind`] to dispatch micro-batches through. `None`
    /// (the default) honours the deployment's default backend
    /// (`VibnnBuilder::backend`, itself defaulting to
    /// [`BackendKind::Quantized`] — the historical path).
    pub backend: Option<BackendKind>,
    /// Which sampling [`PolicySpec`] governs per-request Monte Carlo
    /// budgets. `None` (the default) honours the deployment's default
    /// policy (`VibnnBuilder::sampling_policy`, itself defaulting to
    /// [`PolicySpec::ExactN`] — the pinned full-budget reference).
    pub policy: Option<PolicySpec>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_queue: 1024,
            workers: 0,
            backend: None,
            policy: None,
        }
    }
}

/// One served prediction: the Monte Carlo mean probabilities plus two
/// predictive-uncertainty summaries derived from the MC members.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResult {
    /// Request id ([`ServeHandle::submit`] order; for the synchronous
    /// [`ServeEngine::submit_batch`], the row index within the call).
    pub id: u64,
    /// Mean class probabilities — bit-identical to the corresponding row
    /// of `Vibnn::predict_proba_parallel` under the engine's ε source.
    pub proba: Vec<f32>,
    /// Most probable class (lowest index wins ties).
    pub argmax: usize,
    /// Predictive entropy of the mean probabilities, in nats (total
    /// uncertainty; `ln(classes)` is maximal).
    pub entropy: f64,
    /// Mean over classes of the standard deviation across the Monte Carlo
    /// member probabilities (the ensemble-spread / model-uncertainty
    /// signal that motivates BNNs).
    pub mc_std: f64,
    /// Monte Carlo samples actually drawn for this request. Equal to the
    /// deployment's `mc_samples` under [`PolicySpec::ExactN`]; an
    /// adaptive policy may stop earlier (the per-request speedup
    /// metric, aggregated in `ClusterMetrics` and carried per reply on
    /// the ingest wire).
    pub samples_used: u32,
}

/// A deployed [`Vibnn`] wrapped for request serving, with an internally
/// owned ε stream (see the [module docs](self) for the determinism
/// contract).
///
/// Use it synchronously via [`submit_batch`](Self::submit_batch), or call
/// [`spawn`](Self::spawn) for a thread-backed queue with backpressure.
///
/// # Example
///
/// ```
/// use vibnn::bnn::{Bnn, BnnConfig};
/// use vibnn::nn::Matrix;
/// use vibnn::serve::{ServeConfig, ServeEngine};
/// use vibnn::VibnnBuilder;
///
/// let bnn = Bnn::new(BnnConfig::new(&[4, 8, 3]), 7);
/// let vibnn = VibnnBuilder::new(bnn.params())
///     .mc_samples(4)
///     .calibration(Matrix::zeros(2, 4))
///     .build()?;
/// let engine = ServeEngine::new(vibnn, ServeConfig::default())?;
/// let results = engine.submit_batch(&Matrix::zeros(5, 4))?;
/// assert_eq!(results.len(), 5);
/// let sum: f32 = results[0].proba.iter().sum();
/// assert!((sum - 1.0).abs() < 1e-5);
/// # Ok::<(), vibnn::VibnnError>(())
/// ```
pub struct ServeEngine<S: StreamFork + Sync = ZigguratGrng> {
    vibnn: Vibnn,
    cfg: ServeConfig,
    eps: S,
    /// The dispatch slot: the selected backend plus its cumulative
    /// cost, behind one uncontended per-micro-batch lock so the
    /// engine's `&self` submission API survives backends that mutate
    /// (the cycle simulator's counters).
    backend: Mutex<BackendSlot<S>>,
    /// The resolved sampling policy ([`ServeConfig::policy`], falling
    /// back to the deployment default). `ExactN` dispatches through the
    /// historical batched path; anything else through the backend's
    /// incremental [`InferenceBackend::serve_adaptive`] seam.
    policy: PolicySpec,
    policy_exec: Box<dyn SamplingPolicy>,
}

struct BackendSlot<S: StreamFork + Sync> {
    exec: Box<dyn InferenceBackend<S>>,
    cost: BackendCost,
}

impl<S: StreamFork + Sync> std::fmt::Debug for ServeEngine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("cfg", &self.cfg)
            .field("backend", &self.backend_kind())
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl ServeEngine<ZigguratGrng> {
    /// Wraps a deployment with a default software ε source
    /// (`ZigguratGrng` seeded from a fixed engine constant). Use
    /// [`with_eps`](Self::with_eps) to serve from a specific generator —
    /// e.g. one of the hardware GRNGs, or a known seed for reproducible
    /// comparisons.
    ///
    /// # Errors
    ///
    /// [`VibnnError::BadServeConfig`] if `max_batch` or `max_queue` is 0.
    pub fn new(vibnn: Vibnn, cfg: ServeConfig) -> Result<Self, VibnnError> {
        Self::with_eps(vibnn, cfg, ZigguratGrng::new(0x5EED))
    }
}

impl<S: StreamFork + Sync> ServeEngine<S> {
    /// Wraps a deployment with an explicit ε source.
    ///
    /// # Errors
    ///
    /// [`VibnnError::BadServeConfig`] if `max_batch` or `max_queue` is 0.
    pub fn with_eps(vibnn: Vibnn, cfg: ServeConfig, eps: S) -> Result<Self, VibnnError> {
        if cfg.max_batch == 0 {
            return Err(VibnnError::BadServeConfig("max_batch must be positive"));
        }
        if cfg.max_queue == 0 {
            return Err(VibnnError::BadServeConfig("max_queue must be positive"));
        }
        let kind = cfg.backend.unwrap_or_else(|| vibnn.default_backend());
        let exec = kind.instantiate::<S>(&vibnn);
        let policy = cfg.policy.unwrap_or_else(|| vibnn.default_policy());
        policy.validate().map_err(VibnnError::BadServeConfig)?;
        let policy_exec = policy.instantiate();
        Ok(Self {
            vibnn,
            cfg,
            eps,
            backend: Mutex::new(BackendSlot {
                exec,
                cost: BackendCost::default(),
            }),
            policy,
            policy_exec,
        })
    }

    /// The wrapped deployment.
    pub fn vibnn(&self) -> &Vibnn {
        &self.vibnn
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Which backend this engine dispatches micro-batches through.
    pub fn backend_kind(&self) -> BackendKind {
        self.lock_backend().exec.kind()
    }

    /// Which sampling policy governs per-request Monte Carlo budgets.
    pub fn sampling_policy(&self) -> PolicySpec {
        self.policy
    }

    /// Cumulative [`BackendCost`] charged by every micro-batch served
    /// so far (host backends charge zero cycles/energy).
    pub fn cost(&self) -> BackendCost {
        self.lock_backend().cost
    }

    fn lock_backend(&self) -> MutexGuard<'_, BackendSlot<S>> {
        self.backend.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Synchronously serves a batch of requests (one per row of `x`):
    /// rows are coalesced into micro-batches of at most
    /// [`ServeConfig::max_batch`] and run through the parallel Monte
    /// Carlo datapath on [`ServeConfig::workers`] threads. Results come
    /// back in row order with `id` = row index.
    ///
    /// # Errors
    ///
    /// - [`VibnnError::ShapeMismatch`] — `x` is not
    ///   [`Vibnn::input_dim`] columns wide.
    /// - [`VibnnError::Abstained`] — a risk-tiered policy declined one
    ///   of the rows (use
    ///   [`Self::submit_batch_outcomes_costed`] to attribute
    ///   abstentions per row instead of failing the batch).
    pub fn submit_batch(&self, x: &Matrix) -> Result<Vec<ServeResult>, VibnnError> {
        self.submit_batch_costed(x).map(|(results, _)| results)
    }

    /// [`Self::submit_batch`] plus the [`BackendCost`] this call charged
    /// (also folded into the engine's cumulative [`Self::cost`]). Host
    /// backends charge zero cycles/energy; the cycle backend reports
    /// the exact simulated cycles and nanojoules for these rows.
    ///
    /// # Errors
    ///
    /// [`VibnnError::ShapeMismatch`] if `x` is not
    /// [`Vibnn::input_dim`] columns wide.
    pub fn submit_batch_costed(
        &self,
        x: &Matrix,
    ) -> Result<(Vec<ServeResult>, BackendCost), VibnnError> {
        let (outcomes, cost) = self.submit_batch_outcomes_costed(x)?;
        let mut out = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            out.push(outcome.into_result()?);
        }
        Ok((out, cost))
    }

    /// The outcome-level batch API: like
    /// [`Self::submit_batch_costed`], but an abstaining row comes back
    /// as its own [`RowOutcome::Abstained`] instead of failing the
    /// whole call — the entry point for callers (the cluster router)
    /// that must attribute abstentions per request.
    ///
    /// # Errors
    ///
    /// [`VibnnError::ShapeMismatch`] if `x` is not
    /// [`Vibnn::input_dim`] columns wide.
    pub fn submit_batch_outcomes_costed(
        &self,
        x: &Matrix,
    ) -> Result<(Vec<RowOutcome>, BackendCost), VibnnError> {
        if x.rows() > 0 && x.cols() != self.vibnn.input_dim() {
            return Err(VibnnError::ShapeMismatch {
                context: "request width",
                expected: self.vibnn.input_dim(),
                got: x.cols(),
            });
        }
        let mut out = Vec::with_capacity(x.rows());
        let mut cost = BackendCost::default();
        let mut start = 0;
        while start < x.rows() {
            let end = (start + self.cfg.max_batch).min(x.rows());
            let chunk = x.rows_slice(start, end);
            cost.accumulate(self.run_microbatch(&chunk, start as u64, &mut out));
            start = end;
        }
        Ok((out, cost))
    }

    /// Runs one micro-batch (rows already validated) through the
    /// selected backend and appends one outcome per row, ids starting
    /// at `id_base`. `ExactN` takes the historical batched path —
    /// bit-identical to the pre-adaptive engine — while adaptive
    /// policies go through the backend's incremental seam. Returns the
    /// batch's cost (already accumulated into the engine total).
    fn run_microbatch(&self, chunk: &Matrix, id_base: u64, out: &mut Vec<RowOutcome>) -> BackendCost {
        let samples = self.vibnn.mc_samples();
        let mut slot = self.lock_backend();
        let (rows, cost) = if self.policy == PolicySpec::ExactN {
            let (results, cost) =
                slot.exec
                    .serve_microbatch(chunk, samples, &self.eps, self.cfg.workers);
            (results.into_iter().map(RowOutcome::Served).collect(), cost)
        } else {
            slot.exec.serve_adaptive(
                chunk,
                self.policy_exec.as_ref(),
                samples,
                &self.eps,
                self.cfg.workers,
            )
        };
        slot.cost.accumulate(cost);
        drop(slot);
        for (r, mut row) in rows.into_iter().enumerate() {
            row.set_id(id_base + r as u64);
            out.push(row);
        }
        cost
    }

    /// Moves the engine onto a background dispatcher thread and returns a
    /// submission handle with backpressure: requests queue up to
    /// [`ServeConfig::max_queue`] deep, the dispatcher drains up to
    /// [`ServeConfig::max_batch`] of them per micro-batch, and results are
    /// collected by request id.
    pub fn spawn(self) -> ServeHandle
    where
        S: Send + 'static,
    {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                results: HashMap::new(),
                next_id: 0,
                stop: false,
                worker_alive: true,
            }),
            work_ready: Condvar::new(),
            result_ready: Condvar::new(),
            max_queue: self.cfg.max_queue,
            input_dim: self.vibnn.input_dim(),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::spawn(move || {
            // Liveness guard: whether the loop returns normally or
            // unwinds (a panic anywhere in the compute path), waiting
            // callers must observe `worker_alive == false` instead of
            // blocking forever.
            let _alive = AliveGuard(&worker_shared);
            dispatcher_loop(&self, &worker_shared);
        });
        ServeHandle {
            shared,
            worker: Some(worker),
        }
    }
}

/// Clears `worker_alive` and wakes every waiter when the dispatcher
/// thread exits — by any path, including unwinding.
struct AliveGuard<'a>(&'a Shared);

impl Drop for AliveGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.0.lock();
        st.worker_alive = false;
        drop(st);
        self.0.result_ready.notify_all();
    }
}

struct QueueState {
    queue: VecDeque<(u64, Vec<f32>)>,
    results: HashMap<u64, RowOutcome>,
    next_id: u64,
    stop: bool,
    worker_alive: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    work_ready: Condvar,
    result_ready: Condvar,
    max_queue: usize,
    input_dim: usize,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The backpressure gate: enqueues one request or reports why not.
    /// Width is validated here, before the row can reach the dispatcher.
    fn try_submit(&self, features: Vec<f32>) -> Result<u64, VibnnError> {
        if features.len() != self.input_dim {
            return Err(VibnnError::ShapeMismatch {
                context: "request width",
                expected: self.input_dim,
                got: features.len(),
            });
        }
        let mut st = self.lock();
        if st.stop || !st.worker_alive {
            return Err(VibnnError::EngineStopped);
        }
        if st.queue.len() >= self.max_queue {
            return Err(VibnnError::QueueFull {
                depth: st.queue.len(),
                capacity: self.max_queue,
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        st.queue.push_back((id, features));
        drop(st);
        self.work_ready.notify_one();
        Ok(id)
    }
}

/// The dispatcher: drain → micro-batch → publish, until asked to stop
/// (and then finish whatever is still queued).
fn dispatcher_loop<S: StreamFork + Sync>(engine: &ServeEngine<S>, shared: &Shared) {
    let input_dim = engine.vibnn.input_dim();
    loop {
        let batch: Vec<(u64, Vec<f32>)> = {
            let mut st = shared.lock();
            loop {
                if !st.queue.is_empty() {
                    break;
                }
                if st.stop {
                    // `AliveGuard` clears `worker_alive` and wakes the
                    // waiters on the way out.
                    return;
                }
                st = shared
                    .work_ready
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            let n = st.queue.len().min(engine.cfg.max_batch);
            st.queue.drain(..n).collect()
        };
        let mut x = Matrix::zeros(batch.len(), input_dim);
        for (r, (_, features)) in batch.iter().enumerate() {
            x.row_mut(r).copy_from_slice(features);
        }
        let mut fresh = Vec::with_capacity(batch.len());
        engine.run_microbatch(&x, 0, &mut fresh);
        let mut st = shared.lock();
        for ((id, _), mut outcome) in batch.into_iter().zip(fresh) {
            outcome.set_id(id);
            st.results.insert(id, outcome);
        }
        drop(st);
        shared.result_ready.notify_all();
    }
}

/// Handle to a spawned [`ServeEngine`]: submit single-row requests, then
/// collect results by id. Dropping the handle shuts the dispatcher down
/// (draining the queue first).
#[derive(Debug)]
pub struct ServeHandle {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("max_queue", &self.max_queue)
            .finish_non_exhaustive()
    }
}

impl ServeHandle {
    /// Submits one request (a single feature row) and returns its id.
    ///
    /// # Errors
    ///
    /// - [`VibnnError::ShapeMismatch`] — the row is not
    ///   [`Vibnn::input_dim`] values wide (checked before enqueueing, so
    ///   a bad row can never reach the dispatcher).
    /// - [`VibnnError::QueueFull`] — backpressure; retry after results
    ///   drain.
    /// - [`VibnnError::EngineStopped`] — the dispatcher has shut down.
    pub fn submit(&self, features: Vec<f32>) -> Result<u64, VibnnError> {
        self.shared.try_submit(features)
    }

    /// Takes a finished result without blocking, if it is ready. An
    /// abstained request surfaces as `Some(Err(VibnnError::Abstained))`.
    pub fn try_take(&self, id: u64) -> Option<Result<ServeResult, VibnnError>> {
        self.shared
            .lock()
            .results
            .remove(&id)
            .map(RowOutcome::into_result)
    }

    /// Blocks until the result for `id` is ready and takes it.
    ///
    /// # Errors
    ///
    /// - [`VibnnError::UnknownRequest`] — `id` was never issued (waiting
    ///   would block forever).
    /// - [`VibnnError::EngineStopped`] — the dispatcher shut down before
    ///   producing the result.
    /// - [`VibnnError::Abstained`] — a risk-tiered sampling policy
    ///   declined this request at its full sample budget.
    pub fn wait(&self, id: u64) -> Result<ServeResult, VibnnError> {
        let mut st = self.shared.lock();
        if id >= st.next_id {
            return Err(VibnnError::UnknownRequest(id));
        }
        loop {
            if let Some(outcome) = st.results.remove(&id) {
                return outcome.into_result();
            }
            if !st.worker_alive {
                return Err(VibnnError::EngineStopped);
            }
            st = self
                .shared
                .result_ready
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Requests currently queued (not yet dispatched).
    pub fn queued(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Stops the dispatcher after it drains the queue, joins it, and
    /// returns every unclaimed *served* result sorted by request id
    /// (abstained requests, claimable per id via
    /// [`Self::try_take`]/[`Self::wait`] while the handle lives, are
    /// dropped here — they carry no prediction).
    pub fn shutdown(mut self) -> Vec<ServeResult> {
        self.stop_and_join();
        let mut leftover: Vec<ServeResult> = self
            .shared
            .lock()
            .results
            .drain()
            .filter_map(|(_, outcome)| match outcome {
                RowOutcome::Served(r) => Some(r),
                RowOutcome::Abstained { .. } => None,
            })
            .collect();
        leftover.sort_by_key(|r| r.id);
        leftover
    }

    fn stop_and_join(&mut self) {
        {
            let mut st = self.shared.lock();
            st.stop = true;
        }
        self.shared.work_ready.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VibnnBuilder;
    use vibnn_bnn::{Bnn, BnnConfig};

    fn tiny_vibnn() -> Vibnn {
        let bnn = Bnn::new(BnnConfig::new(&[3, 6, 2]).with_sigma_init(0.1), 11);
        VibnnBuilder::new(bnn.params())
            .mc_samples(3)
            .calibration(Matrix::zeros(2, 3))
            .build()
            .unwrap()
    }

    #[test]
    fn zero_sized_configs_are_rejected() {
        let cfg = ServeConfig {
            max_batch: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            ServeEngine::new(tiny_vibnn(), cfg),
            Err(VibnnError::BadServeConfig(_))
        ));
        let cfg = ServeConfig {
            max_queue: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            ServeEngine::new(tiny_vibnn(), cfg),
            Err(VibnnError::BadServeConfig(_))
        ));
    }

    #[test]
    fn queue_backpressure_is_deterministic() {
        // Exercise the capacity gate directly — no dispatcher racing to
        // drain the queue.
        let shared = Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                results: HashMap::new(),
                next_id: 0,
                stop: false,
                worker_alive: true,
            }),
            work_ready: Condvar::new(),
            result_ready: Condvar::new(),
            max_queue: 2,
            input_dim: 3,
        };
        // Width is validated at the gate, before capacity.
        assert!(matches!(
            shared.try_submit(vec![0.0; 2]),
            Err(VibnnError::ShapeMismatch { expected: 3, got: 2, .. })
        ));
        assert_eq!(shared.try_submit(vec![0.0; 3]).unwrap(), 0);
        assert_eq!(shared.try_submit(vec![0.0; 3]).unwrap(), 1);
        assert!(matches!(
            shared.try_submit(vec![0.0; 3]),
            Err(VibnnError::QueueFull {
                depth: 2,
                capacity: 2
            })
        ));
        // Draining one slot re-opens the gate; ids keep increasing.
        shared.lock().queue.pop_front();
        assert_eq!(shared.try_submit(vec![0.0; 3]).unwrap(), 2);
        // A stopped engine refuses instead of queueing.
        shared.lock().stop = true;
        assert!(matches!(
            shared.try_submit(vec![0.0; 3]),
            Err(VibnnError::EngineStopped)
        ));
    }

    #[test]
    fn submit_batch_rejects_bad_width() {
        let engine = ServeEngine::new(tiny_vibnn(), ServeConfig::default()).unwrap();
        assert!(matches!(
            engine.submit_batch(&Matrix::zeros(2, 5)),
            Err(VibnnError::ShapeMismatch { .. })
        ));
        assert!(engine.submit_batch(&Matrix::zeros(0, 5)).unwrap().is_empty());
    }

    #[test]
    fn uncertainty_fields_are_sane() {
        let engine = ServeEngine::new(tiny_vibnn(), ServeConfig::default()).unwrap();
        let results = engine.submit_batch(&Matrix::zeros(3, 3)).unwrap();
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert_eq!(r.proba.len(), 2);
            assert!(r.argmax < 2);
            assert!((0.0..=2.0f64.ln() + 1e-9).contains(&r.entropy), "{}", r.entropy);
            assert!(r.mc_std >= 0.0);
        }
    }

    #[test]
    fn spawned_handle_serves_and_shuts_down() {
        let engine = ServeEngine::new(tiny_vibnn(), ServeConfig::default()).unwrap();
        let direct = engine.submit_batch(&Matrix::zeros(1, 3)).unwrap();
        let handle = ServeEngine::new(tiny_vibnn(), ServeConfig::default())
            .unwrap()
            .spawn();
        let id = handle.submit(vec![0.0; 3]).unwrap();
        let got = handle.wait(id).unwrap();
        assert_eq!(got.proba, direct[0].proba);
        // Mis-sized rows are rejected at the gate, never dispatched.
        assert!(matches!(
            handle.submit(vec![0.0; 7]),
            Err(VibnnError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            handle.wait(999),
            Err(VibnnError::UnknownRequest(999))
        ));
        // Unclaimed results come back from shutdown.
        let id2 = handle.submit(vec![0.5; 3]).unwrap();
        let leftover = handle.shutdown();
        assert!(leftover.iter().any(|r| r.id == id2));
    }
}
