//! High-level API: train → quantize → deploy → infer.

use vibnn_bnn::{Bnn, BnnParams, TrainSchedule};
use vibnn_grng::{GaussianSource, GrngKind, StreamFork};
use vibnn_hw::{AcceleratorConfig, CycleAccelerator, QuantizedBnn, ResourceModel, Schedule};
use vibnn_nn::Matrix;

use crate::backend::BackendKind;
use crate::sampler::PolicySpec;
use crate::VibnnError;

/// Builder for a deployed [`Vibnn`] accelerator instance.
///
/// Construction is **fallible**: [`build`](Self::build) returns
/// `Result<Vibnn, VibnnError>` and reports missing calibration data, bad
/// topologies, shape mismatches, and invalid accelerator configurations
/// as typed variants instead of panicking
/// ([`build_unchecked`](Self::build_unchecked) keeps the old panicking
/// behaviour for scripts).
///
/// # Example
///
/// ```
/// use vibnn::VibnnBuilder;
/// use vibnn::bnn::{Bnn, BnnConfig};
/// use vibnn::nn::Matrix;
///
/// let bnn = Bnn::new(BnnConfig::new(&[8, 16, 2]), 1);
/// let calib = Matrix::zeros(4, 8);
/// let accel = VibnnBuilder::new(bnn.params())
///     .bit_len(8)
///     .calibration(calib)
///     .build()
///     .expect("valid deployment");
/// assert_eq!(accel.classes(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct VibnnBuilder {
    params: BnnParams,
    bit_len: u32,
    config: AcceleratorConfig,
    calibration: Option<Matrix>,
    mc_samples: usize,
    backend: BackendKind,
    policy: PolicySpec,
}

/// Checks that a parameter snapshot describes a deployable network:
/// at least one layer, no zero-sized dimension, per-layer tensors with
/// mutually consistent shapes, and consecutive layers that chain.
pub(crate) fn validate_topology(params: &BnnParams) -> Result<(), VibnnError> {
    let layers = params.layers();
    if layers == 0 {
        return Err(VibnnError::BadTopology(
            "parameter snapshot has no layers (empty layer list)".into(),
        ));
    }
    if params.weight_sigma.len() != layers
        || params.bias_mu.len() != layers
        || params.bias_sigma.len() != layers
    {
        return Err(VibnnError::BadTopology(format!(
            "per-layer tensor counts disagree: {} mu, {} sigma, {} bias mu, {} bias sigma",
            layers,
            params.weight_sigma.len(),
            params.bias_mu.len(),
            params.bias_sigma.len()
        )));
    }
    for l in 0..layers {
        let mu = &params.weight_mu[l];
        if mu.rows() == 0 || mu.cols() == 0 {
            return Err(VibnnError::BadTopology(format!(
                "layer {l} has a zero dimension ({}x{})",
                mu.rows(),
                mu.cols()
            )));
        }
        let sg = &params.weight_sigma[l];
        if (sg.rows(), sg.cols()) != (mu.rows(), mu.cols()) {
            return Err(VibnnError::BadTopology(format!(
                "layer {l}: sigma shape {}x{} != mu shape {}x{}",
                sg.rows(),
                sg.cols(),
                mu.rows(),
                mu.cols()
            )));
        }
        if params.bias_mu[l].len() != mu.cols() || params.bias_sigma[l].len() != mu.cols() {
            return Err(VibnnError::BadTopology(format!(
                "layer {l}: bias lengths ({}, {}) != output width {}",
                params.bias_mu[l].len(),
                params.bias_sigma[l].len(),
                mu.cols()
            )));
        }
        if l + 1 < layers && params.weight_mu[l + 1].rows() != mu.cols() {
            return Err(VibnnError::BadTopology(format!(
                "layer {l} output width {} does not chain into layer {} input width {}",
                mu.cols(),
                l + 1,
                params.weight_mu[l + 1].rows()
            )));
        }
    }
    Ok(())
}

impl VibnnBuilder {
    /// Starts from trained variational parameters.
    pub fn new(params: BnnParams) -> Self {
        Self {
            params,
            bit_len: 8,
            config: AcceleratorConfig::paper(),
            calibration: None,
            mc_samples: 8,
            backend: BackendKind::default(),
            policy: PolicySpec::default(),
        }
    }

    /// Sets the datapath bit length (default 8, per Figure 18).
    pub fn bit_len(mut self, bits: u32) -> Self {
        self.bit_len = bits;
        self
    }

    /// Selects the GRNG design (default RLF).
    pub fn grng(mut self, kind: GrngKind) -> Self {
        self.config.grng = kind;
        self
    }

    /// Overrides the full accelerator configuration.
    pub fn config(mut self, config: AcceleratorConfig) -> Self {
        self.config = config;
        self
    }

    /// Provides calibration inputs for activation-range selection.
    pub fn calibration(mut self, x: Matrix) -> Self {
        self.calibration = Some(x);
        self
    }

    /// Sets Monte Carlo samples per prediction (default 8).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn mc_samples(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one Monte Carlo sample");
        self.mc_samples = n;
        self
    }

    /// Selects the deployment's default serving backend (default
    /// [`BackendKind::Quantized`] — the historical path). Serving
    /// engines honour this unless their own `ServeConfig::backend`
    /// overrides it. Runtime-only: checkpoints do not persist it, so a
    /// loaded deployment serves quantized unless re-selected.
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.backend = kind;
        self
    }

    /// Selects the deployment's default sampling policy (default
    /// [`PolicySpec::ExactN`] — the full-budget reference, bit-identical
    /// to the historical serve path). Serving engines honour this
    /// unless their own `ServeConfig::policy` overrides it.
    /// Runtime-only: checkpoints do not persist it, so a loaded
    /// deployment serves exact-N unless re-selected.
    pub fn sampling_policy(mut self, policy: PolicySpec) -> Self {
        self.policy = policy;
        self
    }

    /// Quantizes the network and constructs the accelerator.
    ///
    /// # Errors
    ///
    /// - [`VibnnError::BadTopology`] — empty layer list, zero-sized
    ///   dimension, or inconsistent per-layer shapes.
    /// - [`VibnnError::MissingCalibration`] — no calibration inputs (or an
    ///   empty calibration matrix).
    /// - [`VibnnError::ShapeMismatch`] — calibration width differs from
    ///   the network's input width.
    /// - [`VibnnError::Config`] — the accelerator configuration (or the
    ///   datapath bit length) violates an architectural constraint.
    pub fn build(self) -> Result<Vibnn, VibnnError> {
        validate_topology(&self.params)?;
        if !(2..=32).contains(&self.bit_len) {
            return Err(VibnnError::Config(
                vibnn_hw::ConfigError::BadBitLength(self.bit_len),
            ));
        }
        let calib = self.calibration.ok_or(VibnnError::MissingCalibration)?;
        if calib.rows() == 0 {
            return Err(VibnnError::MissingCalibration);
        }
        let input_dim = self.params.weight_mu[0].rows();
        if calib.cols() != input_dim {
            return Err(VibnnError::ShapeMismatch {
                context: "calibration width",
                expected: input_dim,
                got: calib.cols(),
            });
        }
        let mut config = self.config;
        config.mc_samples = self.mc_samples;
        config.validate()?;
        let qbnn = QuantizedBnn::from_params(&self.params, self.bit_len, &calib);
        let sim = CycleAccelerator::new(config.clone(), qbnn.clone());
        let classes = self.params.weight_mu[self.params.layers() - 1].cols();
        Ok(Vibnn {
            qbnn,
            sim,
            config,
            mc_samples: self.mc_samples,
            params: self.params,
            bit_len: self.bit_len,
            classes,
            default_backend: self.backend,
            default_policy: self.policy,
        })
    }

    /// [`build`](Self::build) for contexts where failure is a bug.
    ///
    /// # Panics
    ///
    /// Panics with the [`VibnnError`] display message on any build error.
    pub fn build_unchecked(self) -> Vibnn {
        match self.build() {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }
}

/// A deployed VIBNN accelerator: quantized network + cycle simulator +
/// performance models.
#[derive(Debug, Clone)]
pub struct Vibnn {
    pub(crate) qbnn: QuantizedBnn,
    pub(crate) sim: CycleAccelerator,
    pub(crate) config: AcceleratorConfig,
    pub(crate) mc_samples: usize,
    /// The float parameter snapshot the deployment was quantized from —
    /// retained so [`Vibnn::save`](crate::Vibnn::save) can ship an exact,
    /// re-quantizable checkpoint.
    pub(crate) params: BnnParams,
    pub(crate) bit_len: u32,
    pub(crate) classes: usize,
    /// Which backend serving engines dispatch through when their
    /// `ServeConfig` does not override it. Runtime-only — kind-3
    /// checkpoints do not persist it (loads default to quantized).
    pub(crate) default_backend: BackendKind,
    /// Which sampling policy serving engines apply when their
    /// `ServeConfig` does not override it. Runtime-only — checkpoints
    /// do not persist it (loads default to exact-N).
    pub(crate) default_policy: PolicySpec,
}

impl Vibnn {
    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Width of the input feature vector.
    pub fn input_dim(&self) -> usize {
        self.params.weight_mu[0].rows()
    }

    /// Monte Carlo samples per prediction.
    pub fn mc_samples(&self) -> usize {
        self.mc_samples
    }

    /// The datapath bit length the network was quantized to.
    pub fn bit_len(&self) -> u32 {
        self.bit_len
    }

    /// The float parameters the deployment was quantized from.
    pub fn params(&self) -> &BnnParams {
        &self.params
    }

    /// The deployed quantized network (fast functional datapath).
    pub fn network(&self) -> &QuantizedBnn {
        &self.qbnn
    }

    /// The accelerator configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The deployment's default serving backend (see
    /// [`VibnnBuilder::backend`]).
    pub fn default_backend(&self) -> BackendKind {
        self.default_backend
    }

    /// The deployment's default sampling policy (see
    /// [`VibnnBuilder::sampling_policy`]).
    pub fn default_policy(&self) -> PolicySpec {
        self.default_policy
    }

    /// Batch prediction on the functional fixed-point datapath
    /// (bit-identical to the cycle simulator, but vectorized).
    pub fn predict_proba(&self, x: &Matrix, eps: &mut impl GaussianSource) -> Matrix {
        self.qbnn.predict_proba_mc(x, self.mc_samples, eps)
    }

    /// Accuracy on a labelled set.
    pub fn evaluate(&self, x: &Matrix, y: &[usize], eps: &mut impl GaussianSource) -> f64 {
        self.qbnn.evaluate_mc(x, y, self.mc_samples, eps)
    }

    /// Batch prediction with the Monte Carlo ensemble spread across
    /// worker threads (`threads == 0` honours `VIBNN_THREADS`). Sample `s`
    /// draws from `eps.fork(s)`, so results are bit-identical for every
    /// thread count.
    pub fn predict_proba_parallel<S: StreamFork + Sync>(
        &self,
        x: &Matrix,
        eps: &S,
        threads: usize,
    ) -> Matrix {
        self.qbnn
            .predict_proba_mc_parallel(x, self.mc_samples, eps, threads)
    }

    /// Accuracy on a labelled set under parallel MC inference.
    pub fn evaluate_parallel<S: StreamFork + Sync>(
        &self,
        x: &Matrix,
        y: &[usize],
        eps: &S,
        threads: usize,
    ) -> f64 {
        self.qbnn
            .evaluate_mc_parallel(x, y, self.mc_samples, eps, threads)
    }

    /// Cycle-accurate batch inference (see
    /// [`vibnn_hw::CycleAccelerator::infer_batch`]).
    pub fn infer_batch_cycle_accurate(
        &mut self,
        inputs: &Matrix,
        eps: &mut impl GaussianSource,
    ) -> Matrix {
        self.sim.infer_batch(inputs, eps)
    }

    /// Cycle-accurate single-image inference (slower; counts cycles and
    /// memory traffic in [`CycleAccelerator::stats`]).
    pub fn infer_cycle_accurate(
        &mut self,
        input: &[f32],
        eps: &mut impl GaussianSource,
    ) -> Vec<f32> {
        self.sim.infer(input, eps)
    }

    /// The cycle simulator.
    pub fn simulator(&mut self) -> &mut CycleAccelerator {
        &mut self.sim
    }

    /// Modelled throughput in images/s.
    pub fn images_per_second(&self) -> f64 {
        Schedule::new(&self.config, &self.qbnn.layer_sizes()).images_per_second()
    }

    /// Modelled power in watts.
    pub fn power_w(&self) -> f64 {
        let sizes = self.qbnn.layer_sizes();
        let max_width = sizes.iter().copied().max().unwrap_or(1);
        vibnn_hw::power::system_power_w(&self.config, self.qbnn.total_weights(), max_width)
    }

    /// Modelled energy efficiency in images/J.
    pub fn images_per_joule(&self) -> f64 {
        self.images_per_second() / self.power_w()
    }

    /// Modelled FPGA resource usage.
    pub fn resources(&self) -> vibnn_hw::SystemResources {
        let sizes = self.qbnn.layer_sizes();
        let max_width = sizes.iter().copied().max().unwrap_or(1);
        ResourceModel.system(&self.config, self.qbnn.total_weights(), max_width)
    }
}

/// Convenience: train a BNN and deploy it in one call.
///
/// Training runs through the deterministic data-parallel engine
/// ([`Bnn::train_epoch_mc`] with a single MC gradient sample): minibatches
/// are sharded across `VIBNN_THREADS` workers on forked ε substreams with
/// an ordered gradient reduction, so the deployed parameters are
/// bit-identical at every thread count.
///
/// For LR schedules, early stopping, checkpointing, and deployment
/// customization, use the [`Pipeline`](crate::Pipeline) builder this
/// wraps.
///
/// # Errors
///
/// [`VibnnError::ShapeMismatch`] when the dataset does not match the
/// network, plus every [`VibnnBuilder::build`] error.
///
/// # Panics
///
/// Panics if `batch == 0`.
pub fn train_and_deploy(
    mut bnn: Bnn,
    train_x: &Matrix,
    train_y: &[usize],
    epochs: usize,
    batch: usize,
) -> Result<(Bnn, Vibnn), VibnnError> {
    if train_x.rows() != train_y.len() {
        return Err(VibnnError::ShapeMismatch {
            context: "label count",
            expected: train_x.rows(),
            got: train_y.len(),
        });
    }
    let input_dim = bnn.config().layer_sizes()[0];
    if train_x.cols() != input_dim {
        return Err(VibnnError::ShapeMismatch {
            context: "feature width",
            expected: input_dim,
            got: train_x.cols(),
        });
    }
    bnn.train_mc_scheduled(
        train_x,
        train_y,
        batch,
        1,
        0,
        &TrainSchedule::constant(epochs),
    );
    let calib = train_x.rows_slice(0, train_x.rows().min(128));
    let accel = VibnnBuilder::new(bnn.params()).calibration(calib).build()?;
    Ok((bnn, accel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibnn_bnn::BnnConfig;
    use vibnn_grng::BoxMullerGrng;

    #[test]
    fn builder_end_to_end() {
        let bnn = Bnn::new(BnnConfig::new(&[8, 16, 3]), 1);
        let calib = Matrix::zeros(4, 8);
        let accel = VibnnBuilder::new(bnn.params())
            .bit_len(8)
            .mc_samples(4)
            .calibration(calib.clone())
            .build()
            .expect("valid deployment");
        assert_eq!(accel.classes(), 3);
        assert_eq!(accel.input_dim(), 8);
        assert_eq!(accel.mc_samples(), 4);
        let mut eps = BoxMullerGrng::new(2);
        let probs = accel.predict_proba(&calib, &mut eps);
        assert_eq!((probs.rows(), probs.cols()), (4, 3));
        assert!(accel.images_per_second() > 0.0);
        assert!(accel.power_w() > 0.0);
        assert!(accel.images_per_joule() > 0.0);
        assert!(accel.resources().fits_device());
    }

    #[test]
    fn cycle_accurate_matches_functional_probabilities() {
        let bnn = Bnn::new(BnnConfig::new(&[6, 8, 2]), 3);
        let calib = Matrix::zeros(2, 6);
        let mut accel = VibnnBuilder::new(bnn.params())
            .mc_samples(2)
            .calibration(calib.clone())
            .build()
            .expect("valid deployment");
        let mut eps_a = BoxMullerGrng::new(5);
        let mut eps_b = BoxMullerGrng::new(5);
        let functional = accel.predict_proba(&calib.rows_slice(0, 1), &mut eps_a);
        let ticked = accel.infer_cycle_accurate(calib.row(0), &mut eps_b);
        for (c, &p) in functional.row(0).iter().enumerate() {
            assert!((ticked[c] - p).abs() < 1e-5, "class {c}: {} vs {p}", ticked[c]);
        }
    }

    #[test]
    fn missing_calibration_is_a_typed_error() {
        let bnn = Bnn::new(BnnConfig::new(&[4, 2]), 1);
        assert!(matches!(
            VibnnBuilder::new(bnn.params()).build(),
            Err(VibnnError::MissingCalibration)
        ));
    }

    #[test]
    #[should_panic(expected = "calibration inputs required")]
    fn build_unchecked_keeps_the_panicking_path() {
        let bnn = Bnn::new(BnnConfig::new(&[4, 2]), 1);
        let _ = VibnnBuilder::new(bnn.params()).build_unchecked();
    }

    #[test]
    fn empty_layer_list_is_bad_topology_at_build_time() {
        // Regression: `Vibnn::classes()` used to `expect` on the layer
        // list; an empty snapshot now fails in `build` with a typed error.
        let empty = BnnParams {
            weight_mu: vec![],
            weight_sigma: vec![],
            bias_mu: vec![],
            bias_sigma: vec![],
        };
        assert!(matches!(
            VibnnBuilder::new(empty)
                .calibration(Matrix::zeros(1, 1))
                .build(),
            Err(VibnnError::BadTopology(_))
        ));
    }

    #[test]
    fn inconsistent_layer_shapes_are_bad_topology() {
        let bnn = Bnn::new(BnnConfig::new(&[4, 3, 2]), 1);
        let mut params = bnn.params();
        // Break the chain: layer 1 no longer accepts layer 0's output.
        params.weight_mu[1] = Matrix::zeros(5, 2);
        params.weight_sigma[1] = Matrix::zeros(5, 2);
        assert!(matches!(
            VibnnBuilder::new(params)
                .calibration(Matrix::zeros(2, 4))
                .build(),
            Err(VibnnError::BadTopology(_))
        ));
    }

    #[test]
    fn calibration_width_mismatch_is_typed() {
        let bnn = Bnn::new(BnnConfig::new(&[4, 2]), 1);
        assert!(matches!(
            VibnnBuilder::new(bnn.params())
                .calibration(Matrix::zeros(2, 7))
                .build(),
            Err(VibnnError::ShapeMismatch {
                context: "calibration width",
                expected: 4,
                got: 7,
            })
        ));
    }

    #[test]
    fn invalid_accelerator_config_is_typed() {
        let bnn = Bnn::new(BnnConfig::new(&[4, 2]), 1);
        let cfg = AcceleratorConfig {
            pes_per_set: 4, // != pe_inputs: violates eq. 15c
            ..AcceleratorConfig::paper()
        };
        assert!(matches!(
            VibnnBuilder::new(bnn.params())
                .config(cfg)
                .calibration(Matrix::zeros(2, 4))
                .build(),
            Err(VibnnError::Config(_))
        ));
        let bnn = Bnn::new(BnnConfig::new(&[4, 2]), 1);
        assert!(matches!(
            VibnnBuilder::new(bnn.params())
                .bit_len(64)
                .calibration(Matrix::zeros(2, 4))
                .build(),
            Err(VibnnError::Config(vibnn_hw::ConfigError::BadBitLength(64)))
        ));
    }

    #[test]
    fn train_and_deploy_reports_shape_errors() {
        let bnn = Bnn::new(BnnConfig::new(&[6, 3, 2]), 7);
        let x = Matrix::zeros(8, 6);
        let y = vec![0usize; 5]; // wrong length
        assert!(matches!(
            train_and_deploy(bnn, &x, &y, 1, 4),
            Err(VibnnError::ShapeMismatch { .. })
        ));
    }
}
