//! High-level API: train → quantize → deploy → infer.

use vibnn_bnn::{Bnn, BnnParams};
use vibnn_grng::{GaussianSource, GrngKind, StreamFork};
use vibnn_hw::{AcceleratorConfig, CycleAccelerator, QuantizedBnn, ResourceModel, Schedule};
use vibnn_nn::Matrix;

/// Builder for a deployed [`Vibnn`] accelerator instance.
///
/// # Example
///
/// ```
/// use vibnn::VibnnBuilder;
/// use vibnn::bnn::{Bnn, BnnConfig};
/// use vibnn::nn::Matrix;
///
/// let bnn = Bnn::new(BnnConfig::new(&[8, 16, 2]), 1);
/// let calib = Matrix::zeros(4, 8);
/// let accel = VibnnBuilder::new(bnn.params())
///     .bit_len(8)
///     .calibration(calib)
///     .build();
/// assert_eq!(accel.classes(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct VibnnBuilder {
    params: BnnParams,
    bit_len: u32,
    config: AcceleratorConfig,
    calibration: Option<Matrix>,
    mc_samples: usize,
}

impl VibnnBuilder {
    /// Starts from trained variational parameters.
    pub fn new(params: BnnParams) -> Self {
        Self {
            params,
            bit_len: 8,
            config: AcceleratorConfig::paper(),
            calibration: None,
            mc_samples: 8,
        }
    }

    /// Sets the datapath bit length (default 8, per Figure 18).
    pub fn bit_len(mut self, bits: u32) -> Self {
        self.bit_len = bits;
        self
    }

    /// Selects the GRNG design (default RLF).
    pub fn grng(mut self, kind: GrngKind) -> Self {
        self.config.grng = kind;
        self
    }

    /// Overrides the full accelerator configuration.
    pub fn config(mut self, config: AcceleratorConfig) -> Self {
        self.config = config;
        self
    }

    /// Provides calibration inputs for activation-range selection.
    pub fn calibration(mut self, x: Matrix) -> Self {
        self.calibration = Some(x);
        self
    }

    /// Sets Monte Carlo samples per prediction (default 8).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn mc_samples(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one Monte Carlo sample");
        self.mc_samples = n;
        self
    }

    /// Quantizes the network and constructs the accelerator.
    ///
    /// # Panics
    ///
    /// Panics if no calibration inputs were provided or the configuration
    /// is invalid.
    pub fn build(self) -> Vibnn {
        let calib = self
            .calibration
            .expect("calibration inputs required: call .calibration(x)");
        let qbnn = QuantizedBnn::from_params(&self.params, self.bit_len, &calib);
        let mut config = self.config;
        config.mc_samples = self.mc_samples;
        config.validate().expect("invalid accelerator configuration");
        let sim = CycleAccelerator::new(config.clone(), qbnn.clone());
        Vibnn {
            qbnn,
            sim,
            config,
            mc_samples: self.mc_samples,
        }
    }
}

/// A deployed VIBNN accelerator: quantized network + cycle simulator +
/// performance models.
#[derive(Debug, Clone)]
pub struct Vibnn {
    qbnn: QuantizedBnn,
    sim: CycleAccelerator,
    config: AcceleratorConfig,
    mc_samples: usize,
}

impl Vibnn {
    /// Number of output classes.
    pub fn classes(&self) -> usize {
        *self.qbnn.layer_sizes().last().expect("layer sizes")
    }

    /// The deployed quantized network (fast functional datapath).
    pub fn network(&self) -> &QuantizedBnn {
        &self.qbnn
    }

    /// The accelerator configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Batch prediction on the functional fixed-point datapath
    /// (bit-identical to the cycle simulator, but vectorized).
    pub fn predict_proba(&self, x: &Matrix, eps: &mut impl GaussianSource) -> Matrix {
        self.qbnn.predict_proba_mc(x, self.mc_samples, eps)
    }

    /// Accuracy on a labelled set.
    pub fn evaluate(&self, x: &Matrix, y: &[usize], eps: &mut impl GaussianSource) -> f64 {
        self.qbnn.evaluate_mc(x, y, self.mc_samples, eps)
    }

    /// Batch prediction with the Monte Carlo ensemble spread across
    /// worker threads (`threads == 0` honours `VIBNN_THREADS`). Sample `s`
    /// draws from `eps.fork(s)`, so results are bit-identical for every
    /// thread count.
    pub fn predict_proba_parallel<S: StreamFork + Sync>(
        &self,
        x: &Matrix,
        eps: &S,
        threads: usize,
    ) -> Matrix {
        self.qbnn
            .predict_proba_mc_parallel(x, self.mc_samples, eps, threads)
    }

    /// Accuracy on a labelled set under parallel MC inference.
    pub fn evaluate_parallel<S: StreamFork + Sync>(
        &self,
        x: &Matrix,
        y: &[usize],
        eps: &S,
        threads: usize,
    ) -> f64 {
        self.qbnn
            .evaluate_mc_parallel(x, y, self.mc_samples, eps, threads)
    }

    /// Cycle-accurate batch inference (see
    /// [`vibnn_hw::CycleAccelerator::infer_batch`]).
    pub fn infer_batch_cycle_accurate(
        &mut self,
        inputs: &Matrix,
        eps: &mut impl GaussianSource,
    ) -> Matrix {
        self.sim.infer_batch(inputs, eps)
    }

    /// Cycle-accurate single-image inference (slower; counts cycles and
    /// memory traffic in [`CycleAccelerator::stats`]).
    pub fn infer_cycle_accurate(
        &mut self,
        input: &[f32],
        eps: &mut impl GaussianSource,
    ) -> Vec<f32> {
        self.sim.infer(input, eps)
    }

    /// The cycle simulator.
    pub fn simulator(&mut self) -> &mut CycleAccelerator {
        &mut self.sim
    }

    /// Modelled throughput in images/s.
    pub fn images_per_second(&self) -> f64 {
        Schedule::new(&self.config, &self.qbnn.layer_sizes()).images_per_second()
    }

    /// Modelled power in watts.
    pub fn power_w(&self) -> f64 {
        let sizes = self.qbnn.layer_sizes();
        let max_width = *sizes.iter().max().expect("sizes");
        vibnn_hw::power::system_power_w(&self.config, self.qbnn.total_weights(), max_width)
    }

    /// Modelled energy efficiency in images/J.
    pub fn images_per_joule(&self) -> f64 {
        self.images_per_second() / self.power_w()
    }

    /// Modelled FPGA resource usage.
    pub fn resources(&self) -> vibnn_hw::SystemResources {
        let sizes = self.qbnn.layer_sizes();
        let max_width = *sizes.iter().max().expect("sizes");
        ResourceModel.system(&self.config, self.qbnn.total_weights(), max_width)
    }
}

/// Convenience: train a BNN and deploy it in one call (used by examples).
///
/// Training runs through the deterministic data-parallel engine
/// ([`Bnn::train_epoch_mc`] with a single MC gradient sample): minibatches
/// are sharded across `VIBNN_THREADS` workers on forked ε substreams with
/// an ordered gradient reduction, so the deployed parameters are
/// bit-identical at every thread count.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn train_and_deploy(
    mut bnn: Bnn,
    train_x: &Matrix,
    train_y: &[usize],
    epochs: usize,
    batch: usize,
) -> (Bnn, Vibnn) {
    for _ in 0..epochs {
        bnn.train_epoch_mc(train_x, train_y, batch, 1);
    }
    let calib = train_x.rows_slice(0, train_x.rows().min(128));
    let accel = VibnnBuilder::new(bnn.params())
        .calibration(calib)
        .build();
    (bnn, accel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibnn_bnn::BnnConfig;
    use vibnn_grng::BoxMullerGrng;

    #[test]
    fn builder_end_to_end() {
        let bnn = Bnn::new(BnnConfig::new(&[8, 16, 3]), 1);
        let calib = Matrix::zeros(4, 8);
        let accel = VibnnBuilder::new(bnn.params())
            .bit_len(8)
            .mc_samples(4)
            .calibration(calib.clone())
            .build();
        assert_eq!(accel.classes(), 3);
        let mut eps = BoxMullerGrng::new(2);
        let probs = accel.predict_proba(&calib, &mut eps);
        assert_eq!((probs.rows(), probs.cols()), (4, 3));
        assert!(accel.images_per_second() > 0.0);
        assert!(accel.power_w() > 0.0);
        assert!(accel.images_per_joule() > 0.0);
        assert!(accel.resources().fits_device());
    }

    #[test]
    fn cycle_accurate_matches_functional_probabilities() {
        let bnn = Bnn::new(BnnConfig::new(&[6, 8, 2]), 3);
        let calib = Matrix::zeros(2, 6);
        let mut accel = VibnnBuilder::new(bnn.params())
            .mc_samples(2)
            .calibration(calib.clone())
            .build();
        let mut eps_a = BoxMullerGrng::new(5);
        let mut eps_b = BoxMullerGrng::new(5);
        let functional = accel.predict_proba(&calib.rows_slice(0, 1), &mut eps_a);
        let ticked = accel.infer_cycle_accurate(calib.row(0), &mut eps_b);
        for (c, &p) in functional.row(0).iter().enumerate() {
            assert!((ticked[c] - p).abs() < 1e-5, "class {c}: {} vs {p}", ticked[c]);
        }
    }

    #[test]
    #[should_panic(expected = "calibration inputs required")]
    fn missing_calibration_panics() {
        let bnn = Bnn::new(BnnConfig::new(&[4, 2]), 1);
        let _ = VibnnBuilder::new(bnn.params()).build();
    }
}
