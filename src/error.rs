//! The deployment API's typed error, [`VibnnError`].

use vibnn_bnn::CheckpointError;
use vibnn_hw::ConfigError;

/// Everything that can go wrong across the deployment API: building a
/// [`Vibnn`](crate::Vibnn), training a [`Pipeline`](crate::Pipeline),
/// reading or writing checkpoints, and serving requests.
///
/// # Example
///
/// ```
/// use vibnn::bnn::{Bnn, BnnConfig};
/// use vibnn::{VibnnBuilder, VibnnError};
///
/// let bnn = Bnn::new(BnnConfig::new(&[4, 2]), 1);
/// // No calibration inputs: `build` reports the problem instead of
/// // panicking.
/// match VibnnBuilder::new(bnn.params()).build() {
///     Err(VibnnError::MissingCalibration) => {}
///     other => panic!("expected MissingCalibration, got {other:?}"),
/// }
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum VibnnError {
    /// No calibration inputs were provided (or the calibration matrix has
    /// zero rows); activation-range selection needs at least one row.
    MissingCalibration,
    /// The parameter snapshot does not describe a usable network (no
    /// layers, a zero-sized dimension, or inconsistent layer chaining).
    BadTopology(String),
    /// Two shapes that must agree do not.
    ShapeMismatch {
        /// What was being checked (e.g. `"calibration width"`).
        context: &'static str,
        /// The required extent.
        expected: usize,
        /// The extent actually found.
        got: usize,
    },
    /// A label is outside `0..classes`.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// The number of output classes.
        classes: usize,
    },
    /// The accelerator configuration violates an architectural constraint.
    Config(ConfigError),
    /// A checkpoint could not be written or read back.
    Checkpoint(CheckpointError),
    /// The serving configuration is unusable (zero batch or queue size).
    BadServeConfig(&'static str),
    /// The serving queue is at capacity — backpressure. Carries the
    /// observed depth and the configured limit so callers can implement
    /// informed backoff (e.g. wait proportionally to `depth / capacity`)
    /// instead of blind spinning.
    QueueFull {
        /// Requests queued at the moment the submission was refused.
        depth: usize,
        /// The configured `max_queue`.
        capacity: usize,
    },
    /// The request's deadline passed before a replica computed it — at
    /// admission, or while it sat in the queue. The request never
    /// touches a replica once it is known to be late, so an expired
    /// request costs no Monte Carlo work.
    DeadlineExceeded,
    /// A wire-protocol violation: a malformed, unexpected, or oversized
    /// message on the ingestion socket. Carries a human-readable reason.
    Protocol(String),
    /// The serving engine has shut down and can no longer accept or
    /// answer requests.
    EngineStopped,
    /// A result was requested for a request id that was never issued.
    UnknownRequest(u64),
    /// A cluster operation named a replica index outside the pool.
    UnknownReplica(usize),
    /// A risk-tiered sampling policy declined to answer: after
    /// `samples_used` Monte Carlo draws the prediction's normalized
    /// entropy was still at or above the policy's escalation threshold.
    /// `entropy_milli` is that final entropy in thousandths of the
    /// maximum `ln(classes)`, so the abstention is exactly attributable.
    Abstained {
        /// Monte Carlo samples drawn before abstaining (the full budget).
        samples_used: u32,
        /// Final normalized predictive entropy, in thousandths.
        entropy_milli: u32,
    },
    /// Admission predicted the request cannot finish before its
    /// deadline: the target replica's observed per-sample cycle cost
    /// times the configured sample budget exceeds the deadline's
    /// remaining time, so the request is shed before costing any Monte
    /// Carlo work.
    BudgetExceeded {
        /// Predicted time to serve the request, in microseconds.
        predicted_micros: u64,
        /// Time remaining until the deadline at admission, in microseconds.
        remaining_micros: u64,
    },
}

impl std::fmt::Display for VibnnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VibnnError::MissingCalibration => {
                write!(f, "calibration inputs required: call .calibration(x)")
            }
            VibnnError::BadTopology(why) => write!(f, "bad network topology: {why}"),
            VibnnError::ShapeMismatch {
                context,
                expected,
                got,
            } => write!(f, "{context}: expected {expected}, got {got}"),
            VibnnError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            VibnnError::Config(e) => write!(f, "invalid accelerator configuration: {e}"),
            VibnnError::Checkpoint(e) => write!(f, "{e}"),
            VibnnError::BadServeConfig(why) => write!(f, "invalid serving configuration: {why}"),
            VibnnError::QueueFull { depth, capacity } => {
                write!(f, "serving queue full ({depth} queued, capacity {capacity})")
            }
            VibnnError::DeadlineExceeded => {
                write!(f, "request deadline expired before it was served")
            }
            VibnnError::Protocol(why) => write!(f, "wire protocol violation: {why}"),
            VibnnError::EngineStopped => write!(f, "serving engine has stopped"),
            VibnnError::UnknownRequest(id) => write!(f, "unknown request id {id}"),
            VibnnError::UnknownReplica(i) => write!(f, "unknown replica index {i}"),
            VibnnError::Abstained {
                samples_used,
                entropy_milli,
            } => write!(
                f,
                "abstained: entropy {}.{:03} of max after {samples_used} samples",
                entropy_milli / 1000,
                entropy_milli % 1000
            ),
            VibnnError::BudgetExceeded {
                predicted_micros,
                remaining_micros,
            } => write!(
                f,
                "budget exceeded: predicted {predicted_micros}us of work, \
                 {remaining_micros}us until the deadline"
            ),
        }
    }
}

impl std::error::Error for VibnnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VibnnError::Config(e) => Some(e),
            VibnnError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for VibnnError {
    fn from(e: ConfigError) -> Self {
        VibnnError::Config(e)
    }
}

impl From<CheckpointError> for VibnnError {
    fn from(e: CheckpointError) -> Self {
        VibnnError::Checkpoint(e)
    }
}

impl From<std::io::Error> for VibnnError {
    fn from(e: std::io::Error) -> Self {
        VibnnError::Checkpoint(CheckpointError::Io(e))
    }
}
