//! Network ingestion: a blocking TCP front-end for the
//! [`ClusterEngine`] speaking a length-prefixed binary protocol.
//!
//! The paper's accelerator serves one caller in one process; the
//! ROADMAP's scale target is external traffic. This module is the wire
//! between them: an [`IngestServer`] accepts TCP connections, decodes
//! requests, admits them into the cluster (lane and deadline included),
//! and streams typed replies back — including typed errors such as
//! [`VibnnError::QueueFull`] with its depth/capacity payload, so remote
//! clients can do informed backoff exactly like in-process callers.
//!
//! # Frame format
//!
//! Every message — request or reply — is one *frame*:
//!
//! ```text
//! ┌────────────┬──────────────────────────────────────────────┐
//! │ u32 LE len │ envelope: "VIBN" magic, u16 version, u8 kind, │
//! │            │ kind-specific payload (all little-endian)     │
//! └────────────┴──────────────────────────────────────────────┘
//! ```
//!
//! The envelope is the same `WireWriter`/`WireReader` format the
//! checkpoint files use ([`vibnn_bnn::checkpoint`]); the frame layer
//! ([`vibnn_bnn::checkpoint::write_frame`] /
//! [`vibnn_bnn::checkpoint::read_frame`]) adds the length prefix,
//! validated against a cap before any allocation. Request kinds are
//! `0x10..=0x13`, reply kinds `0x20..=0x23` plus `0x2F` for typed
//! errors — see the `KIND_*` constants.
//!
//! # Deadlines and lanes
//!
//! A request carries a [`Priority`] lane byte and a deadline in
//! microseconds **relative to server receipt** (`0` = no deadline); the
//! server converts it to an absolute instant and the cluster enforces it
//! at admission and at dequeue, always before any Monte Carlo work
//! ([`VibnnError::DeadlineExceeded`]). Lane scheduling is the cluster's
//! deterministic bounded-skip rule — see [`crate::cluster`].
//!
//! # Determinism
//!
//! The wire changes *transport*, never *answers*: `f32`/`f64` fields
//! travel as exact little-endian bytes, so a prediction served over TCP
//! is bit-identical to [`ClusterEngine::submit`] in-process
//! (`tests/ingest_determinism.rs` and `bench_ingest` both assert this).
//!
//! # Robustness
//!
//! A malformed frame (bad magic, zero or oversized length prefix,
//! truncation, unknown kind) gets a typed error reply where the stream
//! is still synchronized, or a clean disconnect where it is not; a
//! stalled client is dropped after the configured read timeout. One
//! misbehaving connection never affects another —
//! `tests/ingest_protocol.rs` is the fault-injection suite pinning this.

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vibnn_bnn::checkpoint::{read_frame, write_frame, WireReader, WireWriter, MAX_FRAME_LEN};
use vibnn_bnn::CheckpointError;
use vibnn_grng::{StreamFork, ZigguratGrng};

use crate::backend::{BackendCost, BackendKind};
use crate::cluster::{ClusterEngine, Priority, SubmitOptions};
use crate::serve::ServeResult;
use crate::VibnnError;

/// Request kind: one feature row ([`Request::Predict`]).
pub const KIND_PREDICT: u8 = 0x10;
/// Request kind: several feature rows ([`Request::PredictBatch`]).
pub const KIND_PREDICT_BATCH: u8 = 0x11;
/// Request kind: server + cluster metrics snapshot ([`Request::Metrics`]).
pub const KIND_METRICS: u8 = 0x12;
/// Request kind: stop accepting and wind the server down
/// ([`Request::Shutdown`]).
pub const KIND_SHUTDOWN: u8 = 0x13;
/// Reply kind: one served prediction ([`Reply::Predict`]).
pub const KIND_PREDICT_REPLY: u8 = 0x20;
/// Reply kind: per-row outcomes for a batch ([`Reply::PredictBatch`]).
pub const KIND_PREDICT_BATCH_REPLY: u8 = 0x21;
/// Reply kind: metrics snapshot ([`Reply::Metrics`]).
pub const KIND_METRICS_REPLY: u8 = 0x22;
/// Reply kind: shutdown acknowledged ([`Reply::Shutdown`]).
pub const KIND_SHUTDOWN_REPLY: u8 = 0x23;
/// Reply kind: typed failure for the whole request ([`Reply::Error`]).
pub const KIND_ERROR_REPLY: u8 = 0x2F;

const LANE_INTERACTIVE: u8 = 0;
const LANE_BATCH: u8 = 1;

fn lane_code(p: Priority) -> u8 {
    match p {
        Priority::Interactive => LANE_INTERACTIVE,
        Priority::Batch => LANE_BATCH,
    }
}

fn lane_from_code(code: u8) -> Result<Priority, VibnnError> {
    match code {
        LANE_INTERACTIVE => Ok(Priority::Interactive),
        LANE_BATCH => Ok(Priority::Batch),
        other => Err(VibnnError::Protocol(format!("unknown lane byte {other}"))),
    }
}

fn protocol(e: CheckpointError) -> VibnnError {
    VibnnError::Protocol(e.to_string())
}

/// One decoded client request. `tag` is an opaque client-chosen
/// correlation value echoed verbatim in the matching reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Predict one feature row.
    Predict {
        /// Client correlation tag, echoed in the reply.
        tag: u64,
        /// Scheduling lane.
        priority: Priority,
        /// Deadline in microseconds after server receipt; `0` = none.
        deadline_micros: u64,
        /// The feature row.
        features: Vec<f32>,
    },
    /// Predict several rows in one request; the server pipelines the
    /// submissions so the cluster can micro-batch them.
    PredictBatch {
        /// Client correlation tag, echoed in the reply.
        tag: u64,
        /// Scheduling lane shared by every row.
        priority: Priority,
        /// Deadline in microseconds after server receipt; `0` = none.
        deadline_micros: u64,
        /// Row width; `features.len()` is a multiple of it.
        dim: usize,
        /// Row-major feature rows.
        features: Vec<f32>,
    },
    /// Fetch an [`IngestMetrics`] snapshot.
    Metrics {
        /// Client correlation tag, echoed in the reply.
        tag: u64,
    },
    /// Ask the server to stop accepting connections and wind down.
    Shutdown {
        /// Client correlation tag, echoed in the reply.
        tag: u64,
    },
}

impl Request {
    /// The client correlation tag.
    pub fn tag(&self) -> u64 {
        match self {
            Request::Predict { tag, .. }
            | Request::PredictBatch { tag, .. }
            | Request::Metrics { tag }
            | Request::Shutdown { tag } => *tag,
        }
    }
}

/// One server reply, correlated to its request by `tag`.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The served prediction for a [`Request::Predict`].
    Predict {
        /// Echo of the request tag.
        tag: u64,
        /// The prediction, bit-identical to the in-process path.
        result: ServeResult,
    },
    /// Per-row outcomes for a [`Request::PredictBatch`]: rows fail
    /// individually (e.g. [`WireError::QueueFull`] under backpressure)
    /// without failing the whole batch.
    PredictBatch {
        /// Echo of the request tag.
        tag: u64,
        /// One outcome per submitted row, in row order.
        rows: Vec<Result<ServeResult, WireError>>,
    },
    /// Snapshot for a [`Request::Metrics`].
    Metrics {
        /// Echo of the request tag.
        tag: u64,
        /// The snapshot.
        metrics: IngestMetrics,
    },
    /// Acknowledgement of a [`Request::Shutdown`]; the server stops
    /// accepting once this is sent.
    Shutdown {
        /// Echo of the request tag.
        tag: u64,
    },
    /// The whole request failed with a typed error.
    Error {
        /// Echo of the request tag (`0` when the request was too
        /// malformed to recover it).
        tag: u64,
        /// What went wrong.
        error: WireError,
    },
}

impl Reply {
    /// The echoed correlation tag.
    pub fn tag(&self) -> u64 {
        match self {
            Reply::Predict { tag, .. }
            | Reply::PredictBatch { tag, .. }
            | Reply::Metrics { tag, .. }
            | Reply::Shutdown { tag }
            | Reply::Error { tag, .. } => *tag,
        }
    }
}

/// A [`VibnnError`] as it travels over the wire — the variants a remote
/// client can act on, each with its payload intact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Cluster backpressure; carries depth and capacity for informed
    /// backoff, exactly like [`VibnnError::QueueFull`].
    QueueFull {
        /// Requests queued when the submission was refused.
        depth: u64,
        /// The configured cluster queue capacity.
        capacity: u64,
    },
    /// The deadline expired before the request was served.
    DeadlineExceeded,
    /// The cluster (or server) has stopped serving.
    EngineStopped,
    /// The feature row has the wrong width.
    ShapeMismatch {
        /// The width the deployment requires.
        expected: u64,
        /// The width the request carried.
        got: u64,
    },
    /// A risk-tiered sampling policy refused to answer, exactly like
    /// [`VibnnError::Abstained`].
    Abstained {
        /// Monte Carlo samples spent before abstaining.
        samples_used: u64,
        /// Normalized entropy at refusal, in thousandths of the maximum.
        entropy_milli: u64,
    },
    /// The admission budget gate shed the request, exactly like
    /// [`VibnnError::BudgetExceeded`].
    BudgetExceeded {
        /// Predicted full-budget service time, microseconds.
        predicted_micros: u64,
        /// Time left until the deadline at admission, microseconds.
        remaining_micros: u64,
    },
    /// The peer violated the wire protocol.
    Protocol(String),
    /// Any other server-side failure, as display text.
    Other(String),
}

impl From<&VibnnError> for WireError {
    fn from(e: &VibnnError) -> Self {
        match e {
            VibnnError::QueueFull { depth, capacity } => WireError::QueueFull {
                depth: *depth as u64,
                capacity: *capacity as u64,
            },
            VibnnError::DeadlineExceeded => WireError::DeadlineExceeded,
            VibnnError::EngineStopped => WireError::EngineStopped,
            VibnnError::ShapeMismatch { expected, got, .. } => WireError::ShapeMismatch {
                expected: *expected as u64,
                got: *got as u64,
            },
            VibnnError::Abstained {
                samples_used,
                entropy_milli,
            } => WireError::Abstained {
                samples_used: u64::from(*samples_used),
                entropy_milli: u64::from(*entropy_milli),
            },
            VibnnError::BudgetExceeded {
                predicted_micros,
                remaining_micros,
            } => WireError::BudgetExceeded {
                predicted_micros: *predicted_micros,
                remaining_micros: *remaining_micros,
            },
            VibnnError::Protocol(why) => WireError::Protocol(why.clone()),
            other => WireError::Other(other.to_string()),
        }
    }
}

impl WireError {
    /// Converts back to the in-process error type on the client side.
    /// [`WireError::Other`] has no structured counterpart and maps to
    /// [`VibnnError::Protocol`] carrying the server's display text.
    pub fn into_vibnn(self) -> VibnnError {
        match self {
            WireError::QueueFull { depth, capacity } => VibnnError::QueueFull {
                depth: depth as usize,
                capacity: capacity as usize,
            },
            WireError::DeadlineExceeded => VibnnError::DeadlineExceeded,
            WireError::EngineStopped => VibnnError::EngineStopped,
            WireError::ShapeMismatch { expected, got } => VibnnError::ShapeMismatch {
                context: "request width",
                expected: expected as usize,
                got: got as usize,
            },
            WireError::Abstained {
                samples_used,
                entropy_milli,
            } => VibnnError::Abstained {
                samples_used: samples_used as u32,
                entropy_milli: entropy_milli as u32,
            },
            WireError::BudgetExceeded {
                predicted_micros,
                remaining_micros,
            } => VibnnError::BudgetExceeded {
                predicted_micros,
                remaining_micros,
            },
            WireError::Protocol(why) => VibnnError::Protocol(why),
            WireError::Other(why) => VibnnError::Protocol(format!("server-side error: {why}")),
        }
    }
}

/// A point-in-time server + cluster counters snapshot, served over the
/// wire by [`Request::Metrics`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IngestMetrics {
    /// Requests queued cluster-wide right now.
    pub queued: u64,
    /// The cluster queue capacity.
    pub capacity: u64,
    /// Requests the cluster accepted since start.
    pub submitted: u64,
    /// Requests served since start.
    pub served: u64,
    /// Served requests admitted on the interactive lane.
    pub served_interactive: u64,
    /// Served requests admitted on the batch lane.
    pub served_batch: u64,
    /// Submissions refused with queue-full backpressure.
    pub rejected: u64,
    /// Requests failed by an expired deadline.
    pub deadline_expired: u64,
    /// Requests cancelled at shutdown.
    pub cancelled: u64,
    /// Replicas with a live dispatcher.
    pub replicas_alive: u64,
    /// Client connections open right now.
    pub connections_open: u64,
    /// Client connections accepted since start.
    pub connections_total: u64,
    /// Frames decoded into well-formed requests since start.
    pub requests_decoded: u64,
    /// Malformed frames or envelopes seen since start.
    pub protocol_errors: u64,
    /// Served requests inside the cluster's uncertainty window right now
    /// (see [`crate::cluster::UncertaintyStats`]).
    pub uncertainty_count: u64,
    /// Windowed mean predictive entropy (nats) of served requests.
    pub entropy_mean: f64,
    /// Windowed mean Monte-Carlo spread of served requests.
    pub mc_std_mean: f64,
    /// Cumulative normalized-entropy histogram,
    /// [`crate::cluster::ENTROPY_BUCKETS`] buckets.
    pub entropy_histogram: Vec<u64>,
    /// Cumulative [`BackendCost`] across every replica — zero
    /// cycles/energy while only host backends serve.
    pub cost: BackendCost,
    /// Per-replica `(backend kind, cumulative cost)` pairs, in replica
    /// order.
    pub replica_costs: Vec<(BackendKind, BackendCost)>,
    /// Total Monte Carlo samples across served requests (see
    /// [`crate::cluster::SamplingStats`]).
    pub samples_used_total: u64,
    /// Mean `samples_used` per served request.
    pub mean_samples: f64,
    /// `samples_used` histogram over served requests (bucket `s - 1`
    /// counts requests answered with exactly `s` samples).
    pub samples_histogram: Vec<u64>,
    /// Requests refused with a typed abstention.
    pub abstained: u64,
    /// Requests shed at admission by the deadline/cost budget gate.
    pub budget_shed: u64,
}

fn write_lane_deadline(w: &mut WireWriter, tag: u64, priority: Priority, deadline_micros: u64) {
    w.u64(tag);
    w.u8(lane_code(priority));
    w.u64(deadline_micros);
}

fn write_result(w: &mut WireWriter, r: &ServeResult) {
    w.u64(r.id);
    w.dim(r.proba.len());
    w.f32s(&r.proba);
    w.u64(r.argmax as u64);
    w.f64(r.entropy);
    w.f64(r.mc_std);
    w.u64(u64::from(r.samples_used));
}

fn read_result(r: &mut WireReader<'_>) -> Result<ServeResult, VibnnError> {
    let id = r.u64().map_err(protocol)?;
    let classes = r.dim().map_err(protocol)?;
    let proba = r.f32_vec(classes).map_err(protocol)?;
    let argmax = r.u64().map_err(protocol)? as usize;
    let entropy = r.f64().map_err(protocol)?;
    let mc_std = r.f64().map_err(protocol)?;
    let samples_used = u32::try_from(r.u64().map_err(protocol)?)
        .map_err(|_| VibnnError::Protocol("samples_used overflows u32".into()))?;
    Ok(ServeResult {
        id,
        proba,
        argmax,
        entropy,
        mc_std,
        samples_used,
    })
}

fn write_string(w: &mut WireWriter, s: &str) {
    w.dim(s.len());
    w.raw(s.as_bytes());
}

fn read_string(r: &mut WireReader<'_>) -> Result<String, VibnnError> {
    let len = r.dim().map_err(protocol)?;
    let bytes = r.raw(len).map_err(protocol)?;
    Ok(String::from_utf8_lossy(bytes).into_owned())
}

fn write_wire_error(w: &mut WireWriter, e: &WireError) {
    match e {
        WireError::QueueFull { depth, capacity } => {
            w.u8(1);
            w.u64(*depth);
            w.u64(*capacity);
        }
        WireError::DeadlineExceeded => w.u8(2),
        WireError::EngineStopped => w.u8(3),
        WireError::ShapeMismatch { expected, got } => {
            w.u8(4);
            w.u64(*expected);
            w.u64(*got);
        }
        WireError::Protocol(why) => {
            w.u8(5);
            write_string(w, why);
        }
        WireError::Other(why) => {
            w.u8(6);
            write_string(w, why);
        }
        WireError::Abstained {
            samples_used,
            entropy_milli,
        } => {
            w.u8(7);
            w.u64(*samples_used);
            w.u64(*entropy_milli);
        }
        WireError::BudgetExceeded {
            predicted_micros,
            remaining_micros,
        } => {
            w.u8(8);
            w.u64(*predicted_micros);
            w.u64(*remaining_micros);
        }
    }
}

fn read_wire_error(r: &mut WireReader<'_>) -> Result<WireError, VibnnError> {
    Ok(match r.u8().map_err(protocol)? {
        1 => WireError::QueueFull {
            depth: r.u64().map_err(protocol)?,
            capacity: r.u64().map_err(protocol)?,
        },
        2 => WireError::DeadlineExceeded,
        3 => WireError::EngineStopped,
        4 => WireError::ShapeMismatch {
            expected: r.u64().map_err(protocol)?,
            got: r.u64().map_err(protocol)?,
        },
        5 => WireError::Protocol(read_string(r)?),
        6 => WireError::Other(read_string(r)?),
        7 => WireError::Abstained {
            samples_used: r.u64().map_err(protocol)?,
            entropy_milli: r.u64().map_err(protocol)?,
        },
        8 => WireError::BudgetExceeded {
            predicted_micros: r.u64().map_err(protocol)?,
            remaining_micros: r.u64().map_err(protocol)?,
        },
        code => return Err(VibnnError::Protocol(format!("unknown error code {code}"))),
    })
}

/// Serializes a request into one wire envelope (without the frame
/// length prefix — [`vibnn_bnn::checkpoint::write_frame`] adds it).
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Predict {
            tag,
            priority,
            deadline_micros,
            features,
        } => {
            let mut w = WireWriter::new(KIND_PREDICT);
            write_lane_deadline(&mut w, *tag, *priority, *deadline_micros);
            w.dim(features.len());
            w.f32s(features);
            w.into_bytes()
        }
        Request::PredictBatch {
            tag,
            priority,
            deadline_micros,
            dim,
            features,
        } => {
            let mut w = WireWriter::new(KIND_PREDICT_BATCH);
            write_lane_deadline(&mut w, *tag, *priority, *deadline_micros);
            w.dim(*dim);
            let rows = if *dim == 0 { 0 } else { features.len() / dim };
            w.dim(rows);
            w.f32s(&features[..rows * *dim]);
            w.into_bytes()
        }
        Request::Metrics { tag } => {
            let mut w = WireWriter::new(KIND_METRICS);
            w.u64(*tag);
            w.into_bytes()
        }
        Request::Shutdown { tag } => {
            let mut w = WireWriter::new(KIND_SHUTDOWN);
            w.u64(*tag);
            w.into_bytes()
        }
    }
}

/// Parses one wire envelope into a [`Request`]. Never panics on
/// arbitrary input: every malformation is a typed
/// [`VibnnError::Protocol`] (`tests/property.rs` fuzzes this).
pub fn decode_request(bytes: &[u8]) -> Result<Request, VibnnError> {
    let (kind, mut r) = WireReader::open_any(bytes).map_err(protocol)?;
    let req = match kind {
        KIND_PREDICT => {
            let tag = r.u64().map_err(protocol)?;
            let priority = lane_from_code(r.u8().map_err(protocol)?)?;
            let deadline_micros = r.u64().map_err(protocol)?;
            let dim = r.dim().map_err(protocol)?;
            let features = r.f32_vec(dim).map_err(protocol)?;
            Request::Predict {
                tag,
                priority,
                deadline_micros,
                features,
            }
        }
        KIND_PREDICT_BATCH => {
            let tag = r.u64().map_err(protocol)?;
            let priority = lane_from_code(r.u8().map_err(protocol)?)?;
            let deadline_micros = r.u64().map_err(protocol)?;
            let dim = r.dim().map_err(protocol)?;
            let rows = r.dim().map_err(protocol)?;
            if dim == 0 && rows > 0 {
                return Err(VibnnError::Protocol("zero-width batch rows".into()));
            }
            let count = rows
                .checked_mul(dim)
                .ok_or_else(|| VibnnError::Protocol("batch size overflows".into()))?;
            let features = r.f32_vec(count).map_err(protocol)?;
            Request::PredictBatch {
                tag,
                priority,
                deadline_micros,
                dim,
                features,
            }
        }
        KIND_METRICS => Request::Metrics {
            tag: r.u64().map_err(protocol)?,
        },
        KIND_SHUTDOWN => Request::Shutdown {
            tag: r.u64().map_err(protocol)?,
        },
        other => {
            return Err(VibnnError::Protocol(format!(
                "unknown request kind {other:#04x}"
            )))
        }
    };
    r.finish().map_err(protocol)?;
    Ok(req)
}

/// Serializes a reply into one wire envelope (no frame prefix).
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    match reply {
        Reply::Predict { tag, result } => {
            let mut w = WireWriter::new(KIND_PREDICT_REPLY);
            w.u64(*tag);
            write_result(&mut w, result);
            w.into_bytes()
        }
        Reply::PredictBatch { tag, rows } => {
            let mut w = WireWriter::new(KIND_PREDICT_BATCH_REPLY);
            w.u64(*tag);
            w.dim(rows.len());
            for row in rows {
                match row {
                    Ok(result) => {
                        w.u8(1);
                        write_result(&mut w, result);
                    }
                    Err(e) => {
                        w.u8(0);
                        write_wire_error(&mut w, e);
                    }
                }
            }
            w.into_bytes()
        }
        Reply::Metrics { tag, metrics } => {
            let mut w = WireWriter::new(KIND_METRICS_REPLY);
            w.u64(*tag);
            for v in [
                metrics.queued,
                metrics.capacity,
                metrics.submitted,
                metrics.served,
                metrics.served_interactive,
                metrics.served_batch,
                metrics.rejected,
                metrics.deadline_expired,
                metrics.cancelled,
                metrics.replicas_alive,
                metrics.connections_open,
                metrics.connections_total,
                metrics.requests_decoded,
                metrics.protocol_errors,
            ] {
                w.u64(v);
            }
            w.u64(metrics.uncertainty_count);
            w.f64(metrics.entropy_mean);
            w.f64(metrics.mc_std_mean);
            // Fixed bucket count: no length prefix on the wire.
            for b in 0..crate::cluster::ENTROPY_BUCKETS {
                w.u64(metrics.entropy_histogram.get(b).copied().unwrap_or(0));
            }
            // Backend cost accounting: cluster total, then per-replica
            // (backend code, cycles, energy, samples). Energy rides as
            // raw f64 LE bits like every float on this wire.
            w.u64(metrics.cost.cycles);
            w.f64(metrics.cost.energy_nj);
            w.u64(metrics.cost.samples);
            w.dim(metrics.replica_costs.len());
            for (kind, cost) in &metrics.replica_costs {
                w.u8(kind.code());
                w.u64(cost.cycles);
                w.f64(cost.energy_nj);
                w.u64(cost.samples);
            }
            // Adaptive sampling aggregates: the histogram length is the
            // deployment's `mc_samples`, so it travels dim-prefixed.
            w.u64(metrics.samples_used_total);
            w.f64(metrics.mean_samples);
            w.dim(metrics.samples_histogram.len());
            for &b in &metrics.samples_histogram {
                w.u64(b);
            }
            w.u64(metrics.abstained);
            w.u64(metrics.budget_shed);
            w.into_bytes()
        }
        Reply::Shutdown { tag } => {
            let mut w = WireWriter::new(KIND_SHUTDOWN_REPLY);
            w.u64(*tag);
            w.into_bytes()
        }
        Reply::Error { tag, error } => {
            let mut w = WireWriter::new(KIND_ERROR_REPLY);
            w.u64(*tag);
            write_wire_error(&mut w, error);
            w.into_bytes()
        }
    }
}

/// Parses one wire envelope into a [`Reply`]. Never panics on
/// arbitrary input.
pub fn decode_reply(bytes: &[u8]) -> Result<Reply, VibnnError> {
    let (kind, mut r) = WireReader::open_any(bytes).map_err(protocol)?;
    let reply = match kind {
        KIND_PREDICT_REPLY => Reply::Predict {
            tag: r.u64().map_err(protocol)?,
            result: read_result(&mut r)?,
        },
        KIND_PREDICT_BATCH_REPLY => {
            let tag = r.u64().map_err(protocol)?;
            let count = r.dim().map_err(protocol)?;
            // Each row is ≥ 2 bytes on the wire; reject impossible
            // counts before reserving anything.
            if count > bytes.len() {
                return Err(VibnnError::Protocol(format!("{count} rows cannot fit")));
            }
            let mut rows = Vec::with_capacity(count);
            for _ in 0..count {
                rows.push(match r.u8().map_err(protocol)? {
                    1 => Ok(read_result(&mut r)?),
                    0 => Err(read_wire_error(&mut r)?),
                    flag => {
                        return Err(VibnnError::Protocol(format!("bad row flag {flag}")));
                    }
                });
            }
            Reply::PredictBatch { tag, rows }
        }
        KIND_METRICS_REPLY => {
            let tag = r.u64().map_err(protocol)?;
            let mut vals = [0u64; 14];
            for v in &mut vals {
                *v = r.u64().map_err(protocol)?;
            }
            let uncertainty_count = r.u64().map_err(protocol)?;
            let entropy_mean = r.f64().map_err(protocol)?;
            let mc_std_mean = r.f64().map_err(protocol)?;
            let mut entropy_histogram = vec![0u64; crate::cluster::ENTROPY_BUCKETS];
            for b in &mut entropy_histogram {
                *b = r.u64().map_err(protocol)?;
            }
            let cost = BackendCost {
                cycles: r.u64().map_err(protocol)?,
                energy_nj: r.f64().map_err(protocol)?,
                samples: r.u64().map_err(protocol)?,
            };
            let replica_count = r.dim().map_err(protocol)?;
            // Each entry is ≥ 25 bytes on the wire; reject impossible
            // counts before reserving anything.
            if replica_count > bytes.len() {
                return Err(VibnnError::Protocol(format!(
                    "{replica_count} replica costs cannot fit"
                )));
            }
            let mut replica_costs = Vec::with_capacity(replica_count);
            for _ in 0..replica_count {
                let code = r.u8().map_err(protocol)?;
                let kind = BackendKind::from_code(code).ok_or_else(|| {
                    VibnnError::Protocol(format!("unknown backend code {code}"))
                })?;
                replica_costs.push((
                    kind,
                    BackendCost {
                        cycles: r.u64().map_err(protocol)?,
                        energy_nj: r.f64().map_err(protocol)?,
                        samples: r.u64().map_err(protocol)?,
                    },
                ));
            }
            let samples_used_total = r.u64().map_err(protocol)?;
            let mean_samples = r.f64().map_err(protocol)?;
            let hist_len = r.dim().map_err(protocol)?;
            // Each bucket is 8 bytes on the wire; reject impossible
            // counts before reserving anything.
            if hist_len > bytes.len() {
                return Err(VibnnError::Protocol(format!(
                    "{hist_len} sample buckets cannot fit"
                )));
            }
            let mut samples_histogram = vec![0u64; hist_len];
            for b in &mut samples_histogram {
                *b = r.u64().map_err(protocol)?;
            }
            let abstained = r.u64().map_err(protocol)?;
            let budget_shed = r.u64().map_err(protocol)?;
            Reply::Metrics {
                tag,
                metrics: IngestMetrics {
                    queued: vals[0],
                    capacity: vals[1],
                    submitted: vals[2],
                    served: vals[3],
                    served_interactive: vals[4],
                    served_batch: vals[5],
                    rejected: vals[6],
                    deadline_expired: vals[7],
                    cancelled: vals[8],
                    replicas_alive: vals[9],
                    connections_open: vals[10],
                    connections_total: vals[11],
                    requests_decoded: vals[12],
                    protocol_errors: vals[13],
                    uncertainty_count,
                    entropy_mean,
                    mc_std_mean,
                    entropy_histogram,
                    cost,
                    replica_costs,
                    samples_used_total,
                    mean_samples,
                    samples_histogram,
                    abstained,
                    budget_shed,
                },
            }
        }
        KIND_SHUTDOWN_REPLY => Reply::Shutdown {
            tag: r.u64().map_err(protocol)?,
        },
        KIND_ERROR_REPLY => Reply::Error {
            tag: r.u64().map_err(protocol)?,
            error: read_wire_error(&mut r)?,
        },
        other => {
            return Err(VibnnError::Protocol(format!(
                "unknown reply kind {other:#04x}"
            )))
        }
    };
    r.finish().map_err(protocol)?;
    Ok(reply)
}

/// Sizing and defense knobs for an [`IngestServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    /// Largest accepted frame payload in bytes; hostile length prefixes
    /// beyond it are rejected before allocation (default
    /// [`MAX_FRAME_LEN`], 1 MiB).
    pub max_frame_len: u32,
    /// A connection that goes this long without completing a frame read
    /// is dropped — the slow-loris defense (default 5 s).
    pub read_timeout: Duration,
    /// Connections beyond this are refused at accept (default 64).
    pub max_connections: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            max_frame_len: MAX_FRAME_LEN,
            read_timeout: Duration::from_secs(5),
            max_connections: 64,
        }
    }
}

struct ServerShared<S: StreamFork + Sync + Send + 'static> {
    cluster: ClusterEngine<S>,
    cfg: IngestConfig,
    stop: AtomicBool,
    /// `try_clone`s of every live connection, so shutdown can unblock
    /// handlers stuck in a read.
    conns: Mutex<HashMap<u64, TcpStream>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    connections_open: AtomicU64,
    connections_total: AtomicU64,
    requests_decoded: AtomicU64,
    protocol_errors: AtomicU64,
}

impl<S: StreamFork + Sync + Send> ServerShared<S> {
    fn snapshot(&self) -> IngestMetrics {
        let m = self.cluster.metrics();
        IngestMetrics {
            queued: m.queued as u64,
            capacity: m.capacity as u64,
            submitted: m.submitted,
            served: m.served,
            served_interactive: m.served_interactive,
            served_batch: m.served_batch,
            rejected: m.rejected,
            deadline_expired: m.deadline_expired,
            cancelled: m.cancelled,
            replicas_alive: m.replicas.iter().filter(|r| r.alive).count() as u64,
            connections_open: self.connections_open.load(Ordering::Relaxed),
            connections_total: self.connections_total.load(Ordering::Relaxed),
            requests_decoded: self.requests_decoded.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            uncertainty_count: m.uncertainty.count,
            entropy_mean: m.uncertainty.entropy_mean,
            mc_std_mean: m.uncertainty.mc_std_mean,
            entropy_histogram: m.uncertainty.entropy_histogram,
            cost: m.cost,
            replica_costs: m.replicas.iter().map(|r| (r.backend, r.cost)).collect(),
            samples_used_total: m.sampling.samples_used_total,
            mean_samples: m.sampling.mean_samples,
            samples_histogram: m.sampling.histogram,
            abstained: m.sampling.abstained,
            budget_shed: m.sampling.budget_shed,
        }
    }
}

/// Removes the connection from the registry when its handler exits, by
/// any path.
struct ConnGuard<'a, S: StreamFork + Sync + Send + 'static> {
    shared: &'a ServerShared<S>,
    id: u64,
}

impl<S: StreamFork + Sync + Send> Drop for ConnGuard<'_, S> {
    fn drop(&mut self) {
        self.shared
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&self.id);
        self.shared.connections_open.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A blocking TCP server exposing a [`ClusterEngine`] over the ingest
/// wire protocol (see the [module docs](self) for the frame format,
/// deadline and lane semantics, and the robustness contract).
///
/// The server owns the cluster: requests decoded off the wire are
/// admitted with [`ClusterEngine::submit_with`] and answered with
/// bit-identical results. Each connection gets a handler thread; the
/// accept loop and all handlers wind down on
/// [`shutdown`](Self::shutdown), on drop, or after a client sends
/// [`Request::Shutdown`].
///
/// # Example
///
/// ```
/// use vibnn::bnn::{Bnn, BnnConfig};
/// use vibnn::nn::Matrix;
/// use vibnn::{
///     ClusterConfig, ClusterEngine, IngestClient, IngestConfig, IngestServer, VibnnBuilder,
/// };
///
/// let bnn = Bnn::new(BnnConfig::new(&[4, 8, 3]), 7);
/// let vibnn = VibnnBuilder::new(bnn.params())
///     .mc_samples(4)
///     .calibration(Matrix::zeros(2, 4))
///     .build()?;
/// let cluster = ClusterEngine::new(vibnn, ClusterConfig::default())?;
/// // Port 0 lets the OS pick a free loopback port.
/// let server = match IngestServer::bind(cluster, "127.0.0.1:0", IngestConfig::default()) {
///     Ok(server) => server,
///     Err(_) => return Ok(()), // sandboxes may forbid sockets; skip
/// };
/// let mut client = IngestClient::connect(server.local_addr())?;
/// let result = client.predict(&[0.0; 4])?;
/// assert_eq!(result.proba.len(), 3);
/// client.shutdown_server()?;
/// server.shutdown();
/// # Ok::<(), vibnn::VibnnError>(())
/// ```
pub struct IngestServer<S: StreamFork + Sync + Send + 'static = ZigguratGrng> {
    shared: Arc<ServerShared<S>>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl<S: StreamFork + Sync + Send> std::fmt::Debug for IngestServer<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestServer")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl<S: StreamFork + Sync + Send + 'static> IngestServer<S> {
    /// Binds the listener and starts the accept loop. Bind to port `0`
    /// to let the OS choose ([`local_addr`](Self::local_addr) reports
    /// the choice).
    ///
    /// # Errors
    ///
    /// [`VibnnError::Checkpoint`] wrapping the I/O error when the
    /// address cannot be bound (e.g. sockets unavailable in a sandbox),
    /// or [`VibnnError::BadServeConfig`] for a zero
    /// [`IngestConfig::max_frame_len`] / `max_connections`.
    pub fn bind(
        cluster: ClusterEngine<S>,
        addr: impl ToSocketAddrs,
        cfg: IngestConfig,
    ) -> Result<Self, VibnnError> {
        if cfg.max_frame_len == 0 {
            return Err(VibnnError::BadServeConfig("max_frame_len must be positive"));
        }
        if cfg.max_connections == 0 {
            return Err(VibnnError::BadServeConfig(
                "max_connections must be positive",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(ServerShared {
            cluster,
            cfg,
            stop: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            handles: Mutex::new(Vec::new()),
            connections_open: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            requests_decoded: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(listener, &accept_shared));
        Ok(Self {
            shared,
            local_addr,
            accept: Some(accept),
        })
    }

    /// The bound address — connect [`IngestClient`]s here.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A metrics snapshot, same contents as the wire
    /// [`Request::Metrics`] reply.
    pub fn metrics(&self) -> IngestMetrics {
        self.shared.snapshot()
    }

    /// Whether the server has begun winding down (a client sent
    /// [`Request::Shutdown`], or shutdown/drop started).
    pub fn is_stopping(&self) -> bool {
        self.shared.stop.load(Ordering::Relaxed)
    }

    /// Stops accepting, unblocks and joins every connection handler,
    /// and returns the cluster (still running — callers can keep
    /// serving in-process or shut it down for leftovers).
    pub fn shutdown(mut self) -> ClusterEngine<S> {
        self.stop_and_join();
        let shared = Arc::clone(&self.shared);
        drop(self);
        match Arc::try_unwrap(shared) {
            Ok(s) => s.cluster,
            Err(_) => unreachable!("all server threads joined"),
        }
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl<S: StreamFork + Sync + Send> Drop for IngestServer<S> {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop<S: StreamFork + Sync + Send + 'static>(
    listener: TcpListener,
    shared: &Arc<ServerShared<S>>,
) {
    let mut next_conn = 0u64;
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.connections_open.load(Ordering::Relaxed)
                    >= shared.cfg.max_connections as u64
                {
                    drop(stream); // refuse by closing
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
                let conn_id = next_conn;
                next_conn += 1;
                if let Ok(clone) = stream.try_clone() {
                    shared
                        .conns
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .insert(conn_id, clone);
                }
                shared.connections_open.fetch_add(1, Ordering::Relaxed);
                shared.connections_total.fetch_add(1, Ordering::Relaxed);
                let handler_shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || {
                    let guard = ConnGuard {
                        shared: &handler_shared,
                        id: conn_id,
                    };
                    handle_connection(stream, guard.shared);
                });
                shared
                    .handles
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(handle);
            }
            // Nonblocking accept: poll the stop flag between attempts.
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    // Unblock every handler still waiting in a read, then join them.
    for (_, conn) in shared
        .conns
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .drain()
    {
        let _ = conn.shutdown(Shutdown::Both);
    }
    let handles: Vec<_> = shared
        .handles
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .drain(..)
        .collect();
    for handle in handles {
        let _ = handle.join();
    }
}

/// Best-effort tag recovery from an envelope that failed to decode, so
/// the error reply can still correlate (every request kind leads with
/// the tag).
fn peek_tag(envelope: &[u8]) -> u64 {
    WireReader::open_any(envelope)
        .ok()
        .and_then(|(_, mut r)| r.u64().ok())
        .unwrap_or(0)
}

fn handle_connection<S: StreamFork + Sync + Send + 'static>(
    mut stream: TcpStream,
    shared: &ServerShared<S>,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        match read_frame(&mut reader, shared.cfg.max_frame_len) {
            Ok(None) => break, // clean disconnect
            Ok(Some(envelope)) => {
                let received = Instant::now();
                let reply = match decode_request(&envelope) {
                    Ok(request) => {
                        shared.requests_decoded.fetch_add(1, Ordering::Relaxed);
                        serve_request(request, received, shared)
                    }
                    Err(e) => {
                        // The frame layer was intact, so the stream is
                        // still synchronized: answer the typed error and
                        // keep serving this connection.
                        shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        Reply::Error {
                            tag: peek_tag(&envelope),
                            error: WireError::from(&e),
                        }
                    }
                };
                let stopping = matches!(reply, Reply::Shutdown { .. });
                if write_frame(&mut stream, &encode_reply(&reply)).is_err() {
                    break;
                }
                if stopping {
                    break;
                }
            }
            Err(CheckpointError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Read timeout: an idle or slow-loris connection. Drop it.
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(e) => {
                // Framing is broken (truncated prefix, zero/oversized
                // length, hard I/O error): best-effort typed error, then
                // a clean close — resynchronizing is impossible.
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let reply = Reply::Error {
                    tag: 0,
                    error: WireError::Protocol(e.to_string()),
                };
                let _ = write_frame(&mut stream, &encode_reply(&reply));
                break;
            }
        }
    }
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

fn serve_request<S: StreamFork + Sync + Send + 'static>(
    request: Request,
    received: Instant,
    shared: &ServerShared<S>,
) -> Reply {
    let deadline_of = |micros: u64| {
        (micros > 0).then(|| received + Duration::from_micros(micros))
    };
    match request {
        Request::Predict {
            tag,
            priority,
            deadline_micros,
            features,
        } => {
            let opts = SubmitOptions {
                priority,
                deadline: deadline_of(deadline_micros),
            };
            match shared
                .cluster
                .submit_with(features, opts)
                .and_then(|id| shared.cluster.wait(id))
            {
                Ok(result) => Reply::Predict { tag, result },
                Err(e) => Reply::Error {
                    tag,
                    error: WireError::from(&e),
                },
            }
        }
        Request::PredictBatch {
            tag,
            priority,
            deadline_micros,
            dim,
            features,
        } => {
            if dim == 0 {
                return Reply::PredictBatch {
                    tag,
                    rows: Vec::new(),
                };
            }
            let opts = SubmitOptions {
                priority,
                deadline: deadline_of(deadline_micros),
            };
            // Submit every row before waiting on any, so the cluster
            // sees the whole batch at once and can micro-batch it.
            let submissions: Vec<Result<u64, VibnnError>> = features
                .chunks_exact(dim)
                .map(|row| shared.cluster.submit_with(row.to_vec(), opts))
                .collect();
            let rows = submissions
                .into_iter()
                .map(|submitted| {
                    submitted
                        .and_then(|id| shared.cluster.wait(id))
                        .map_err(|e| WireError::from(&e))
                })
                .collect();
            Reply::PredictBatch { tag, rows }
        }
        Request::Metrics { tag } => Reply::Metrics {
            tag,
            metrics: shared.snapshot(),
        },
        Request::Shutdown { tag } => {
            shared.stop.store(true, Ordering::SeqCst);
            Reply::Shutdown { tag }
        }
    }
}

/// A blocking client for the ingest protocol: one TCP connection, one
/// in-flight request at a time, replies correlated by tag.
///
/// Prediction errors the *server* answered (backpressure, deadline,
/// shape) come back as their in-process [`VibnnError`] counterparts via
/// [`WireError::into_vibnn`], so remote and local callers handle
/// failures with the same match arms.
#[derive(Debug)]
pub struct IngestClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    next_tag: u64,
}

impl IngestClient {
    /// Connects to an [`IngestServer`].
    ///
    /// # Errors
    ///
    /// [`VibnnError::Checkpoint`] wrapping the connect I/O error.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, VibnnError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            stream,
            reader,
            next_tag: 1,
        })
    }

    fn tag(&mut self) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        tag
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Reply, VibnnError> {
        write_frame(&mut self.stream, &encode_request(request))?;
        let Some(envelope) = read_frame(&mut self.reader, MAX_FRAME_LEN)? else {
            return Err(VibnnError::Protocol(
                "server closed the connection".into(),
            ));
        };
        let reply = decode_reply(&envelope)?;
        if reply.tag() != request.tag() && reply.tag() != 0 {
            return Err(VibnnError::Protocol(format!(
                "reply tag {} for request tag {}",
                reply.tag(),
                request.tag()
            )));
        }
        Ok(reply)
    }

    /// Predicts one feature row on the interactive lane with no
    /// deadline.
    ///
    /// # Errors
    ///
    /// Transport failures as [`VibnnError::Checkpoint`] /
    /// [`VibnnError::Protocol`]; server-side refusals as their typed
    /// counterparts (e.g. [`VibnnError::QueueFull`],
    /// [`VibnnError::DeadlineExceeded`]).
    pub fn predict(&mut self, features: &[f32]) -> Result<ServeResult, VibnnError> {
        self.predict_with(features, Priority::Interactive, 0)
    }

    /// [`predict`](Self::predict) with an explicit lane and deadline
    /// (microseconds after server receipt; `0` = none).
    ///
    /// # Errors
    ///
    /// Same as [`predict`](Self::predict).
    pub fn predict_with(
        &mut self,
        features: &[f32],
        priority: Priority,
        deadline_micros: u64,
    ) -> Result<ServeResult, VibnnError> {
        let request = Request::Predict {
            tag: self.tag(),
            priority,
            deadline_micros,
            features: features.to_vec(),
        };
        match self.roundtrip(&request)? {
            Reply::Predict { result, .. } => Ok(result),
            Reply::Error { error, .. } => Err(error.into_vibnn()),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Predicts many equal-width rows in one request; each row succeeds
    /// or fails independently (`Err` rows carry the typed refusal).
    ///
    /// # Errors
    ///
    /// [`VibnnError::ShapeMismatch`] for ragged input rows, transport
    /// failures, or a whole-request server error; per-row refusals come
    /// back inside the `Ok` vector instead.
    pub fn predict_batch_with(
        &mut self,
        rows: &[Vec<f32>],
        priority: Priority,
        deadline_micros: u64,
    ) -> Result<Vec<Result<ServeResult, VibnnError>>, VibnnError> {
        let dim = rows.first().map_or(0, Vec::len);
        let mut features = Vec::with_capacity(rows.len() * dim);
        for row in rows {
            if row.len() != dim {
                return Err(VibnnError::ShapeMismatch {
                    context: "batch row width",
                    expected: dim,
                    got: row.len(),
                });
            }
            features.extend_from_slice(row);
        }
        let request = Request::PredictBatch {
            tag: self.tag(),
            priority,
            deadline_micros,
            dim,
            features,
        };
        match self.roundtrip(&request)? {
            Reply::PredictBatch { rows, .. } => Ok(rows
                .into_iter()
                .map(|row| row.map_err(WireError::into_vibnn))
                .collect()),
            Reply::Error { error, .. } => Err(error.into_vibnn()),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Fetches the server's metrics snapshot.
    ///
    /// # Errors
    ///
    /// Transport failures, or the server's typed error reply.
    pub fn metrics(&mut self) -> Result<IngestMetrics, VibnnError> {
        let request = Request::Metrics { tag: self.tag() };
        match self.roundtrip(&request)? {
            Reply::Metrics { metrics, .. } => Ok(metrics),
            Reply::Error { error, .. } => Err(error.into_vibnn()),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Asks the server to wind down; returns once it acknowledges.
    ///
    /// # Errors
    ///
    /// Transport failures, or the server's typed error reply.
    pub fn shutdown_server(&mut self) -> Result<(), VibnnError> {
        let request = Request::Shutdown { tag: self.tag() };
        match self.roundtrip(&request)? {
            Reply::Shutdown { .. } => Ok(()),
            Reply::Error { error, .. } => Err(error.into_vibnn()),
            other => Err(unexpected_reply(&other)),
        }
    }
}

fn unexpected_reply(reply: &Reply) -> VibnnError {
    VibnnError::Protocol(format!("unexpected reply kind for request: {reply:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_fixture(id: u64) -> ServeResult {
        ServeResult {
            id,
            proba: vec![0.25, 0.5, 0.25],
            argmax: 1,
            entropy: 1.04,
            mc_std: 0.007,
            samples_used: 4,
        }
    }

    #[test]
    fn request_codec_round_trips() {
        let requests = [
            Request::Predict {
                tag: 7,
                priority: Priority::Interactive,
                deadline_micros: 0,
                features: vec![0.5, -1.0, 3.25],
            },
            Request::Predict {
                tag: u64::MAX,
                priority: Priority::Batch,
                deadline_micros: 125_000,
                features: vec![],
            },
            Request::PredictBatch {
                tag: 8,
                priority: Priority::Batch,
                deadline_micros: 42,
                dim: 2,
                features: vec![1.0, 2.0, 3.0, 4.0],
            },
            Request::Metrics { tag: 9 },
            Request::Shutdown { tag: 10 },
        ];
        for request in requests {
            let bytes = encode_request(&request);
            assert_eq!(decode_request(&bytes).unwrap(), request);
        }
    }

    #[test]
    fn reply_codec_round_trips() {
        let replies = [
            Reply::Predict {
                tag: 1,
                result: result_fixture(3),
            },
            Reply::PredictBatch {
                tag: 2,
                rows: vec![
                    Ok(result_fixture(0)),
                    Err(WireError::QueueFull {
                        depth: 9,
                        capacity: 8,
                    }),
                    Err(WireError::DeadlineExceeded),
                ],
            },
            Reply::Metrics {
                tag: 3,
                metrics: IngestMetrics {
                    queued: 1,
                    capacity: 1024,
                    submitted: 500,
                    served: 499,
                    served_interactive: 400,
                    served_batch: 99,
                    rejected: 1,
                    deadline_expired: 2,
                    cancelled: 0,
                    replicas_alive: 2,
                    connections_open: 3,
                    connections_total: 11,
                    requests_decoded: 510,
                    protocol_errors: 4,
                    uncertainty_count: 256,
                    entropy_mean: 0.41,
                    mc_std_mean: 0.07,
                    entropy_histogram: vec![10, 20, 30, 40, 50, 60, 70, 19],
                    cost: BackendCost {
                        cycles: 123_456,
                        energy_nj: 7_890.25,
                        samples: 2_048,
                    },
                    replica_costs: vec![
                        (
                            BackendKind::Quantized,
                            BackendCost {
                                cycles: 0,
                                energy_nj: 0.0,
                                samples: 1_024,
                            },
                        ),
                        (
                            BackendKind::Cycle,
                            BackendCost {
                                cycles: 123_456,
                                energy_nj: 7_890.25,
                                samples: 1_024,
                            },
                        ),
                    ],
                    samples_used_total: 1_620,
                    mean_samples: 3.25,
                    samples_histogram: vec![12, 34, 56, 397],
                    abstained: 5,
                    budget_shed: 2,
                },
            },
            Reply::Shutdown { tag: 4 },
            Reply::Error {
                tag: 5,
                error: WireError::Protocol("bad frame".into()),
            },
            Reply::Error {
                tag: 6,
                error: WireError::ShapeMismatch {
                    expected: 4,
                    got: 7,
                },
            },
            Reply::Error {
                tag: 7,
                error: WireError::Other("poisoned lock".into()),
            },
            Reply::Error {
                tag: 8,
                error: WireError::Abstained {
                    samples_used: 8,
                    entropy_milli: 912,
                },
            },
            Reply::Error {
                tag: 9,
                error: WireError::BudgetExceeded {
                    predicted_micros: 1_500,
                    remaining_micros: 250,
                },
            },
        ];
        for reply in replies {
            let bytes = encode_reply(&reply);
            assert_eq!(decode_reply(&bytes).unwrap(), reply);
        }
    }

    #[test]
    fn wire_errors_round_trip_through_vibnn_error() {
        let e = VibnnError::QueueFull {
            depth: 12,
            capacity: 8,
        };
        let back = WireError::from(&e).into_vibnn();
        assert!(matches!(
            back,
            VibnnError::QueueFull {
                depth: 12,
                capacity: 8
            }
        ));
        assert!(matches!(
            WireError::from(&VibnnError::DeadlineExceeded).into_vibnn(),
            VibnnError::DeadlineExceeded
        ));
        assert!(matches!(
            WireError::from(&VibnnError::Abstained {
                samples_used: 6,
                entropy_milli: 873,
            })
            .into_vibnn(),
            VibnnError::Abstained {
                samples_used: 6,
                entropy_milli: 873,
            }
        ));
        assert!(matches!(
            WireError::from(&VibnnError::BudgetExceeded {
                predicted_micros: 900,
                remaining_micros: 10,
            })
            .into_vibnn(),
            VibnnError::BudgetExceeded {
                predicted_micros: 900,
                remaining_micros: 10,
            }
        ));
        // Unstructured variants degrade to display text, not a panic.
        let other = WireError::from(&VibnnError::MissingCalibration);
        assert!(matches!(other, WireError::Other(_)));
    }

    #[test]
    fn decoders_reject_garbage_with_typed_errors() {
        assert!(matches!(
            decode_request(b"not a frame at all"),
            Err(VibnnError::Protocol(_))
        ));
        // A valid envelope of the wrong kind family.
        let mut w = WireWriter::new(KIND_PREDICT_REPLY);
        w.u64(1);
        assert!(matches!(
            decode_request(&w.into_bytes()),
            Err(VibnnError::Protocol(_))
        ));
        // Trailing garbage after a well-formed request is rejected.
        let mut bytes = encode_request(&Request::Metrics { tag: 1 });
        bytes.push(0xFF);
        assert!(matches!(
            decode_request(&bytes),
            Err(VibnnError::Protocol(_))
        ));
        // A lane byte outside {0, 1}.
        let mut w = WireWriter::new(KIND_PREDICT);
        w.u64(1);
        w.u8(9);
        w.u64(0);
        w.dim(0);
        assert!(matches!(
            decode_request(&w.into_bytes()),
            Err(VibnnError::Protocol(_))
        ));
        // A batch claiming zero-width rows.
        let mut w = WireWriter::new(KIND_PREDICT_BATCH);
        w.u64(1);
        w.u8(0);
        w.u64(0);
        w.dim(0);
        w.dim(5);
        assert!(matches!(
            decode_request(&w.into_bytes()),
            Err(VibnnError::Protocol(_))
        ));
    }

    #[test]
    fn peek_tag_recovers_when_possible() {
        let bytes = encode_request(&Request::Metrics { tag: 77 });
        assert_eq!(peek_tag(&bytes), 77);
        assert_eq!(peek_tag(b"garbage"), 0);
    }
}
