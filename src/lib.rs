//! # VIBNN — Hardware Acceleration of Bayesian Neural Networks
//!
//! A full-system reproduction of *VIBNN* (Cai, Ren, et al., ASPLOS 2018):
//! an FPGA accelerator for variational inference on Bayesian neural
//! networks, rebuilt as a cycle-level simulator plus a complete software
//! stack (GRNGs, BNN training, fixed-point datapath, datasets, and the
//! paper's experiment suite).
//!
//! The subsystem crates are re-exported here:
//!
//! - [`rng`] — LFSRs, RAM-based linear feedback, parallel counters.
//! - [`grng`] — the paper's RLF-GRNG and BNNWallace-GRNG plus reference
//!   Gaussian generators.
//! - [`stats`] — runs/KS/χ²/AD tests, moments (Table 1, Figure 15).
//! - [`nn`] / [`bnn`] — plain MLPs and Bayes-by-Backprop BNNs.
//! - [`fixed`] — Qm.n fixed-point arithmetic (the 8-bit datapath).
//! - [`datasets`] — deterministic synthetic stand-ins for MNIST and the
//!   disease-diagnosis datasets.
//! - [`hw`] — the cycle-level accelerator simulator and FPGA resource,
//!   power, and timing models.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accelerator;
pub mod backend;
mod checkpoint;
pub mod cluster;
mod error;
pub mod experiments;
pub mod ingest;
pub mod online;
mod pipeline;
pub mod sampler;
pub mod serve;

pub use accelerator::{train_and_deploy, Vibnn, VibnnBuilder};
pub use backend::{BackendCost, BackendKind, InferenceBackend};
pub use cluster::{
    ClusterConfig, ClusterEngine, ClusterMetrics, Priority, ReplicaMetrics, SubmitOptions,
    SwapReport, UncertaintyStats,
};
pub use error::VibnnError;
pub use ingest::{IngestClient, IngestConfig, IngestServer};
pub use online::{OnlineConfig, OnlineEvent, OnlineEventKind, OnlineReport, OnlineRuntime, RoundReport};
pub use pipeline::{Deployed, Pipeline, TrainedPipeline};
pub use sampler::{PolicySpec, SampleDecision, SampleObservation, SamplingPolicy};
pub use serve::{ServeConfig, ServeEngine, ServeHandle, ServeResult};

pub use vibnn_bnn as bnn;
pub use vibnn_datasets as datasets;
pub use vibnn_fixed as fixed;
pub use vibnn_grng as grng;
pub use vibnn_hw as hw;
pub use vibnn_nn as nn;
pub use vibnn_rng as rng;
pub use vibnn_stats as stats;
