//! Table 1 (GRNG stability) and Figure 15 (runs-test pass rates).

use vibnn_grng::{
    BnnWallaceGrng, GaussianSource, ParallelRlfGrng, SoftwareWallace, WallaceNss,
};
use vibnn_stats::{runs_test, Moments};

/// One row of Table 1: stability errors to N(0, 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// GRNG design label (matches the paper's rows).
    pub design: String,
    /// |mean - 0| of the generated stream.
    pub mu_error: f64,
    /// |std - 1| of the generated stream.
    pub sigma_error: f64,
}

/// The paper's Table 1 values `(design, µ error, σ error)` for reference
/// printing.
pub const PAPER_TABLE1: [(&str, f64, f64); 6] = [
    ("Software 256 Pool Size", 0.0012, 0.3050),
    ("Software 1024 Pool Size", 0.0010, 0.0850),
    ("Software 4096 Pool Size", 0.0004, 0.0145),
    ("Hardware Wallace NSS", 0.0013, 0.4660),
    ("BNNWallace-GRNG", 0.0006, 0.0038),
    ("RLF-GRNG", 0.0006, 0.0074),
];

fn stability(source: &mut impl GaussianSource, samples: usize) -> (f64, f64) {
    // Stream the measurement through fixed-size blocks: the generator runs
    // its batched kernel and the working set stays cache-resident instead
    // of materializing a `samples`-long vector.
    let mut buf = vec![0.0f64; 8192];
    let mut m = Moments::new();
    let mut left = samples;
    while left > 0 {
        let n = left.min(buf.len());
        source.fill(&mut buf[..n]);
        for &v in &buf[..n] {
            m.push(v);
        }
        left -= n;
    }
    m.stability_errors()
}

/// Reproduces Table 1: µ/σ stability errors for the six designs.
///
/// `samples` is the stream length measured per design (the paper uses
/// ≥100k); `seed` controls all initial pools and seeds.
pub fn table1(samples: usize, seed: u64) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for pool in [256usize, 1024, 4096] {
        let mut g = SoftwareWallace::new(pool, 1, seed ^ pool as u64);
        let (mu, sigma) = stability(&mut g, samples);
        rows.push(Table1Row {
            design: format!("Software {pool} Pool Size"),
            mu_error: mu,
            sigma_error: sigma,
        });
    }
    {
        let mut g = WallaceNss::new(256, seed ^ 0xA55);
        let (mu, sigma) = stability(&mut g, samples);
        rows.push(Table1Row {
            design: "Hardware Wallace NSS".to_owned(),
            mu_error: mu,
            sigma_error: sigma,
        });
    }
    {
        // The paper's configuration: 8 units, 256-number pools.
        let mut g = BnnWallaceGrng::new(8, 256, seed ^ 0xB77);
        let (mu, sigma) = stability(&mut g, samples);
        rows.push(Table1Row {
            design: "BNNWallace-GRNG".to_owned(),
            mu_error: mu,
            sigma_error: sigma,
        });
    }
    {
        // 255-bit SeMem RLF-GRNG (64 parallel lanes as in Table 2).
        let mut g = ParallelRlfGrng::new(64, seed ^ 0x61F);
        let (mu, sigma) = stability(&mut g, samples);
        rows.push(Table1Row {
            design: "RLF-GRNG".to_owned(),
            mu_error: mu,
            sigma_error: sigma,
        });
    }
    rows
}

/// Pool sizes swept in Figure 15.
pub const FIG15_POOL_SIZES: [usize; 4] = [256, 1024, 4096, 8192];

/// One bar of Figure 15: runs-test pass rate for a design.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig15Row {
    /// Design label.
    pub design: String,
    /// Fraction of trials passing Matlab-style `runstest` at α = 0.05.
    pub pass_rate: f64,
}

fn pass_rate(mut make: impl FnMut(u64) -> Box<dyn GaussianSource>, trials: usize, samples: usize) -> f64 {
    let mut passed = 0usize;
    for t in 0..trials {
        let mut g = make(t as u64);
        let stream = g.take_vec(samples);
        if runs_test(&stream).passes(0.05) {
            passed += 1;
        }
    }
    passed as f64 / trials.max(1) as f64
}

/// Reproduces Figure 15: randomness (runs test) pass rates.
///
/// The paper runs 1000 trials of 100,000 samples; pass `trials` and
/// `samples` accordingly (tests use smaller values). The RLF-GRNG row is
/// included for completeness even though the paper's figure only plots
/// Wallace variants; see `EXPERIMENTS.md` for the discussion.
pub fn fig15(trials: usize, samples: usize, seed: u64) -> Vec<Fig15Row> {
    let mut rows = Vec::new();
    for pool in FIG15_POOL_SIZES {
        let rate = pass_rate(
            |t| Box::new(SoftwareWallace::new(pool, 1, seed ^ (t * 7919) ^ pool as u64)),
            trials,
            samples,
        );
        rows.push(Fig15Row {
            design: format!("Software Wallace {pool}"),
            pass_rate: rate,
        });
    }
    rows.push(Fig15Row {
        design: "Hardware Wallace NSS".to_owned(),
        pass_rate: pass_rate(
            |t| Box::new(WallaceNss::new(256, seed ^ (t * 104_729))),
            trials,
            samples,
        ),
    });
    rows.push(Fig15Row {
        design: "BNNWallace-GRNG".to_owned(),
        pass_rate: pass_rate(
            |t| {
                let mut g = BnnWallaceGrng::new(8, 256, seed ^ (t * 65_537));
                // Warm up so the sharing/shifting scheme mixes the pools.
                let _ = g.take_vec(8192);
                Box::new(g)
            },
            trials,
            samples,
        ),
    });
    rows.push(Fig15Row {
        design: "RLF-GRNG (64 lanes)".to_owned(),
        pass_rate: pass_rate(
            |t| Box::new(ParallelRlfGrng::new(64, seed ^ (t * 2_654_435_761))),
            trials,
            samples,
        ),
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_paper_ordering() {
        let rows = table1(60_000, 42);
        assert_eq!(rows.len(), 6);
        let err = |name: &str| {
            rows.iter()
                .find(|r| r.design.contains(name))
                .map(|r| r.sigma_error)
                .expect("row present")
        };
        // The paper's qualitative result: σ error shrinks with software
        // pool size, and the proposed designs beat/equal the 4096 pool
        // while NSS is the worst Wallace variant.
        assert!(err("256 Pool") >= err("4096 Pool"));
        assert!(err("RLF") < err("256 Pool") + 0.05);
        assert!(err("BNNWallace") < 0.1);
    }

    #[test]
    fn fig15_nss_fails_all_trials() {
        // Full-length streams as in the paper: short streams lack the
        // power to reject NSS reliably.
        let rows = fig15(3, 100_000, 7);
        let nss = rows
            .iter()
            .find(|r| r.design.contains("NSS"))
            .expect("NSS row");
        assert_eq!(nss.pass_rate, 0.0, "NSS must fail every randomness test");
        let sw = rows
            .iter()
            .find(|r| r.design.contains("Software Wallace 4096"))
            .expect("sw row");
        assert!(sw.pass_rate > 0.5, "software Wallace rate {}", sw.pass_rate);
    }
}
