//! Experiment drivers that regenerate every table and figure in the
//! paper's evaluation (Section 6). Each function returns structured rows;
//! the `vibnn-bench` binaries render them next to the paper's published
//! values, and `EXPERIMENTS.md` records the comparison.
//!
//! All drivers take explicit size parameters so the integration tests can
//! run scaled-down versions; the bench binaries use paper-scale defaults.

mod grng_eval;
mod hardware;
mod learning;

pub use grng_eval::{
    fig15, table1, Fig15Row, Table1Row, FIG15_POOL_SIZES, PAPER_TABLE1,
};
pub use hardware::{table2, table3, table4, table5, Table2Row, Table4Row, Table5Row};
pub use learning::{
    fig16, fig17, fig18, table6, table7, Fig16Point, Fig17Point, Fig18Point, LearnScale,
    Table6Row, Table7Row,
};
