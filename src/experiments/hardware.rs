//! Tables 2–5: GRNG hardware comparison, qualitative summary, full-system
//! utilization, and the throughput/energy comparison.

use vibnn_grng::GrngKind;
use vibnn_hw::{
    baselines, power, timing, AcceleratorConfig, ResourceModel, Schedule,
};

/// The paper's MNIST network.
pub const MNIST_LAYERS: [usize; 4] = [784, 200, 200, 10];

fn mnist_weights() -> usize {
    MNIST_LAYERS.windows(2).map(|w| w[0] * w[1]).sum()
}

/// One column of Table 2: hardware figures for a 64-lane GRNG.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// GRNG design.
    pub design: String,
    /// Adaptive logic modules.
    pub alms: u64,
    /// Registers.
    pub registers: u64,
    /// Block memory bits.
    pub block_bits: u64,
    /// M10K RAM blocks.
    pub ram_blocks: u64,
    /// Power in mW at the design's Fmax.
    pub power_mw: f64,
    /// Maximum clock frequency (MHz).
    pub fmax_mhz: f64,
}

/// Reproduces Table 2: both GRNGs at 64 parallel lanes.
pub fn table2() -> Vec<Table2Row> {
    [GrngKind::Rlf, GrngKind::BnnWallace]
        .into_iter()
        .map(|kind| {
            let r = ResourceModel.grng(kind, 64);
            let f = timing::grng_fmax_mhz(kind);
            Table2Row {
                design: kind.to_string(),
                alms: r.alms,
                registers: r.registers,
                block_bits: r.block_bits,
                ram_blocks: r.ram_blocks,
                power_mw: power::grng_power_w(kind, 64, f) * 1000.0,
                fmax_mhz: f,
            }
        })
        .collect()
}

/// Reproduces Table 3: the qualitative comparison, *derived from the
/// measured Table 2 data* rather than hard-coded.
pub fn table3() -> String {
    let rows = table2();
    let (rlf, wal) = (&rows[0], &rows[1]);
    let mut s = String::new();
    s.push_str("RLF-GRNG advantages:\n");
    if rlf.block_bits < wal.block_bits {
        s.push_str("  - low memory usage\n");
    }
    if rlf.fmax_mhz > wal.fmax_mhz {
        s.push_str("  - high frequency\n");
    }
    if rlf.power_mw / rlf.fmax_mhz < wal.power_mw / wal.fmax_mhz {
        s.push_str("  - high power efficiency (per MHz)\n");
    }
    s.push_str("RLF-GRNG disadvantages:\n");
    s.push_str("  - low scalability: RAM width is exponential in the output bit length\n");
    s.push_str("BNNWallace-GRNG advantages:\n");
    s.push_str("  - adjustable distribution and high scalability (pool-based)\n");
    if wal.alms < rlf.alms && wal.registers < rlf.registers {
        s.push_str("  - low ALM and register usage\n");
    }
    s.push_str("BNNWallace-GRNG disadvantages:\n");
    if wal.fmax_mhz < rlf.fmax_mhz {
        s.push_str("  - high latency (lower Fmax)\n");
    }
    s
}

/// One column of Table 4: full-network FPGA utilization.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Network variant.
    pub design: String,
    /// ALMs used (and device fraction).
    pub alms: u64,
    /// ALM utilization fraction.
    pub alm_frac: f64,
    /// DSP blocks used.
    pub dsps: u64,
    /// Registers.
    pub registers: u64,
    /// Block memory bits.
    pub block_bits: u64,
    /// Block-bit utilization fraction.
    pub block_frac: f64,
}

/// Reproduces Table 4: both full accelerator variants on the paper's
/// MNIST network.
pub fn table4() -> Vec<Table4Row> {
    [
        ("RLF-based Network", AcceleratorConfig::paper()),
        ("BNNWallace-based Network", AcceleratorConfig::paper_wallace()),
    ]
    .into_iter()
    .map(|(name, cfg)| {
        let r = ResourceModel.system(&cfg, mnist_weights(), 784);
        Table4Row {
            design: name.to_owned(),
            alms: r.alms,
            alm_frac: r.alm_utilization(),
            dsps: r.dsps,
            registers: r.registers,
            block_bits: r.block_bits,
            block_frac: r.block_bit_utilization(),
        }
    })
    .collect()
}

/// One row of Table 5: throughput and energy efficiency.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Row {
    /// Platform.
    pub configuration: String,
    /// Images per second.
    pub throughput: f64,
    /// Images per joule.
    pub energy_eff: f64,
}

/// Reproduces Table 5: CPU and GPU anchors plus both simulated FPGA
/// variants (MNIST network, single MC sample per image, common clock).
pub fn table5() -> Vec<Table5Row> {
    let mut rows = vec![
        {
            let p = baselines::paper_cpu();
            Table5Row {
                configuration: p.name,
                throughput: p.images_per_second,
                energy_eff: p.images_per_joule,
            }
        },
        {
            let p = baselines::paper_gpu();
            Table5Row {
                configuration: p.name,
                throughput: p.images_per_second,
                energy_eff: p.images_per_joule,
            }
        },
    ];
    for (name, cfg) in [
        ("RLF-based FPGA Implementation", AcceleratorConfig::paper()),
        (
            "BNNWallace-based FPGA Implementation",
            AcceleratorConfig::paper_wallace(),
        ),
    ] {
        let sched = Schedule::new(&cfg, &MNIST_LAYERS);
        let tput = sched.images_per_second();
        let p = power::system_power_w(&cfg, mnist_weights(), 784);
        rows.push(Table5Row {
            configuration: name.to_owned(),
            throughput: tput,
            energy_eff: tput / p,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_matches_paper() {
        let rows = table2();
        let (rlf, wal) = (&rows[0], &rows[1]);
        assert!(rlf.block_bits < wal.block_bits);
        assert!(wal.alms < rlf.alms);
        assert!(rlf.fmax_mhz > wal.fmax_mhz);
    }

    #[test]
    fn table3_mentions_the_key_tradeoffs() {
        let t = table3();
        assert!(t.contains("low memory usage"));
        assert!(t.contains("high frequency"));
        assert!(t.contains("low ALM and register usage"));
    }

    #[test]
    fn table4_fits_device_with_full_dsps() {
        for row in table4() {
            assert_eq!(row.dsps, 342);
            assert!(row.alm_frac < 1.0 && row.alm_frac > 0.5, "{row:?}");
            assert!(row.block_frac < 0.6, "{row:?}");
        }
    }

    #[test]
    fn table5_fpga_dominates_and_rlf_is_most_efficient() {
        let rows = table5();
        let by = |name: &str| {
            rows.iter()
                .find(|r| r.configuration.contains(name))
                .expect("row")
        };
        let cpu = by("i7");
        let gpu = by("GTX");
        let rlf = by("RLF");
        let wal = by("BNNWallace");
        // Who wins, by roughly what factor (paper: 283x GPU, 458x CPU on
        // energy; ~10-30x on throughput).
        assert!(rlf.throughput > 8.0 * gpu.throughput);
        assert!(rlf.throughput > 20.0 * cpu.throughput);
        assert!(rlf.energy_eff > 100.0 * gpu.energy_eff);
        assert!(rlf.energy_eff > 200.0 * cpu.energy_eff);
        // Both FPGA variants share the clock/throughput; RLF wins energy.
        assert!((rlf.throughput - wal.throughput).abs() < 1e-6);
        assert!(rlf.energy_eff > wal.energy_eff);
    }
}
