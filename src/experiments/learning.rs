//! Figures 16–18 and Tables 6–7: the learning-side experiments.

use vibnn_bnn::{Bnn, BnnConfig};
use vibnn_datasets::{all_disease_datasets, mnist_like_with, train_fractions, Dataset, MnistLikeSpec};
use vibnn_grng::{BnnWallaceGrng, BoxMullerGrng};
use vibnn_hw::QuantizedBnn;
use vibnn_nn::{Mlp, MlpConfig};

/// Sizing knobs shared by the learning experiments, so integration tests
/// can run scaled-down versions of the paper-scale defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LearnScale {
    /// MNIST-like training set size.
    pub mnist_train: usize,
    /// MNIST-like test set size.
    pub mnist_test: usize,
    /// Training epochs per model.
    pub epochs: usize,
    /// Monte Carlo samples for BNN/hardware inference.
    pub mc_samples: usize,
    /// Monte Carlo weight draws per training *gradient* step (the
    /// reparameterization-trick estimator; 1 reproduces the paper's
    /// single-sample Bayes-by-Backprop).
    pub train_mc: usize,
    /// Hidden layer width (the paper uses 200).
    pub hidden: usize,
}

impl LearnScale {
    /// Paper-scale defaults (training set scaled from 60k to 8k for CPU
    /// tractability; documented in DESIGN.md).
    pub fn paper() -> Self {
        Self {
            mnist_train: 8_000,
            mnist_test: 2_000,
            epochs: 12,
            mc_samples: 8,
            train_mc: 1,
            hidden: 200,
        }
    }

    /// Small configuration for smoke tests.
    pub fn smoke() -> Self {
        Self {
            mnist_train: 600,
            mnist_test: 200,
            epochs: 6,
            mc_samples: 2,
            train_mc: 1,
            hidden: 32,
        }
    }
}

fn mnist(scale: LearnScale, seed: u64) -> Dataset {
    mnist_like_with(
        MnistLikeSpec {
            train_size: scale.mnist_train,
            test_size: scale.mnist_test,
            ..MnistLikeSpec::default()
        },
        seed,
    )
}

fn train_fnn(ds: &Dataset, scale: LearnScale, dropout: f32, seed: u64) -> Mlp {
    let arch = [ds.features(), scale.hidden, scale.hidden, ds.classes];
    let mut cfg = MlpConfig::new(&arch);
    if dropout > 0.0 {
        cfg = cfg.with_dropout(dropout);
    }
    let mut mlp = Mlp::new(cfg, seed);
    let batch = 64.min(ds.train_len()).max(1);
    for _ in 0..scale.epochs {
        mlp.train_epoch(&ds.train_x, &ds.train_y, batch);
    }
    mlp
}

fn train_bnn(ds: &Dataset, scale: LearnScale, seed: u64) -> Bnn {
    let arch = [ds.features(), scale.hidden, scale.hidden, ds.classes];
    let batch = 64.min(ds.train_len()).max(1);
    let batches = ds.train_len().div_ceil(batch).max(1);
    let cfg = BnnConfig::new(&arch)
        .with_lr(2e-3)
        .with_kl_weight((1.0 / batches as f32).min(5e-4))
        .with_sigma_init(0.02)
        .with_prior_std(0.1);
    let mut bnn = Bnn::new(cfg, seed);
    for _ in 0..scale.epochs {
        // The deterministic data-parallel engine: microbatch shards across
        // VIBNN_THREADS workers, `scale.train_mc` MC gradient samples per
        // step, results bit-identical at any thread count.
        bnn.train_epoch_mc(&ds.train_x, &ds.train_y, batch, scale.train_mc);
    }
    bnn
}

fn bnn_test_accuracy(bnn: &Bnn, ds: &Dataset, mc: usize, seed: u64) -> f64 {
    // Parallel MC ensemble on forked substreams: thread count (the
    // VIBNN_THREADS knob) never changes the result.
    bnn.evaluate_mc_parallel(&ds.test_x, &ds.test_y, mc, &BoxMullerGrng::new(seed), 0)
}

fn hardware_accuracy(bnn: &Bnn, ds: &Dataset, bits: u32, mc: usize, seed: u64) -> f64 {
    let calib = ds.train_x.rows_slice(0, ds.train_len().min(128));
    let q = QuantizedBnn::from_params(&bnn.params(), bits, &calib);
    // The hardware's unit Gaussians come from the BNNWallace-GRNG (the
    // paper's 8-unit, 256-number-pool configuration). The RLF-GRNG, while
    // superior on marginal stability/resources (Tables 1/2), produces a
    // popcount random walk whose *within-sample* correlation collapses
    // deployment accuracy — see the eps-source ablation bench and
    // EXPERIMENTS.md for the measured data behind this choice.
    let eps = BnnWallaceGrng::new(8, 256, seed);
    q.evaluate_mc_parallel(&ds.test_x, &ds.test_y, mc, &eps, 0)
}

/// One point of Figure 16: test accuracy at a training-set fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig16Point {
    /// Fraction denominator (training set is `1/denominator`).
    pub denominator: usize,
    /// Training samples actually used.
    pub train_samples: usize,
    /// FNN test accuracy.
    pub fnn_accuracy: f64,
    /// BNN test accuracy (MC inference).
    pub bnn_accuracy: f64,
}

/// Reproduces Figure 16: FNN vs BNN as the training set shrinks from the
/// full set to 1/256 of it.
pub fn fig16(scale: LearnScale, seed: u64) -> Vec<Fig16Point> {
    let ds = mnist(scale, seed);
    train_fractions()
        .into_iter()
        .map(|denom| {
            let sub = ds.with_train_fraction(denom, seed ^ denom as u64);
            // Small subsets are cheap: train to convergence by scaling the
            // epoch count with the fraction (the paper trains each point
            // fully rather than for a fixed epoch budget).
            let mut frac_scale = scale;
            frac_scale.epochs = (scale.epochs * denom.min(16)).min(80);
            let fnn = train_fnn(&sub, frac_scale, 0.0, seed ^ 0xF);
            let bnn = train_bnn(&sub, frac_scale, seed ^ 0xB);
            Fig16Point {
                denominator: denom,
                train_samples: sub.train_len(),
                fnn_accuracy: fnn.evaluate(&sub.test_x, &sub.test_y),
                bnn_accuracy: bnn_test_accuracy(&bnn, &sub, scale.mc_samples, seed),
            }
        })
        .collect()
}

/// One point of Figure 17: per-epoch accuracy during small-data training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig17Point {
    /// Epoch index (1-based).
    pub epoch: usize,
    /// FNN test accuracy after this epoch.
    pub fnn_accuracy: f64,
    /// BNN test accuracy after this epoch.
    pub bnn_accuracy: f64,
}

/// Reproduces Figure 17: convergence of FNN vs BNN when trained on 1/64
/// of the data.
pub fn fig17(scale: LearnScale, seed: u64) -> Vec<Fig17Point> {
    let ds = mnist(scale, seed).with_train_fraction(64, seed ^ 64);
    let arch = [ds.features(), scale.hidden, scale.hidden, ds.classes];
    let mut fnn = Mlp::new(MlpConfig::new(&arch), seed ^ 0xF);
    let batch = 32.min(ds.train_len()).max(1);
    let batches = ds.train_len().div_ceil(batch).max(1);
    let mut bnn = Bnn::new(
        BnnConfig::new(&arch)
            .with_lr(2e-3)
            .with_kl_weight((1.0 / batches as f32).min(5e-4))
            .with_sigma_init(0.02)
            .with_prior_std(0.1),
        seed ^ 0xB,
    );
    (1..=scale.epochs.max(6))
        .map(|epoch| {
            fnn.train_epoch(&ds.train_x, &ds.train_y, batch);
            bnn.train_epoch_mc(&ds.train_x, &ds.train_y, batch, scale.train_mc);
            Fig17Point {
                epoch,
                fnn_accuracy: fnn.evaluate(&ds.test_x, &ds.test_y),
                bnn_accuracy: bnn_test_accuracy(&bnn, &ds, scale.mc_samples, seed + epoch as u64),
            }
        })
        .collect()
}

/// One point of Figure 18: hardware test accuracy at a bit length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig18Point {
    /// Datapath bit length.
    pub bits: u32,
    /// Hardware (quantized) test accuracy.
    pub accuracy: f64,
}

/// Bit lengths swept in Figure 18.
pub const FIG18_BITS: [u32; 9] = [3, 4, 5, 6, 7, 8, 10, 12, 16];

/// Reproduces Figure 18: test accuracy vs datapath bit length. Returns
/// the per-bit points plus the float (software) BNN accuracy for the
/// threshold line.
pub fn fig18(scale: LearnScale, seed: u64) -> (Vec<Fig18Point>, f64) {
    let ds = mnist(scale, seed);
    let bnn = train_bnn(&ds, scale, seed ^ 0xB);
    let float_acc = bnn_test_accuracy(&bnn, &ds, scale.mc_samples, seed);
    let points = FIG18_BITS
        .into_iter()
        .map(|bits| Fig18Point {
            bits,
            accuracy: hardware_accuracy(&bnn, &ds, bits, scale.mc_samples, seed + u64::from(bits)),
        })
        .collect();
    (points, float_acc)
}

/// One row of Table 6: MNIST accuracy for a model class.
#[derive(Debug, Clone, PartialEq)]
pub struct Table6Row {
    /// Model label.
    pub model: String,
    /// Test accuracy.
    pub accuracy: f64,
}

/// Reproduces Table 6: FNN+dropout (software), BNN (software), VIBNN
/// (8-bit hardware with the RLF-GRNG).
pub fn table6(scale: LearnScale, seed: u64) -> Vec<Table6Row> {
    let ds = mnist(scale, seed);
    let fnn = train_fnn(&ds, scale, 0.3, seed ^ 0xF);
    let bnn = train_bnn(&ds, scale, seed ^ 0xB);
    vec![
        Table6Row {
            model: "FNN+Dropout (Software)".to_owned(),
            accuracy: fnn.evaluate(&ds.test_x, &ds.test_y),
        },
        Table6Row {
            model: "BNN (Software)".to_owned(),
            accuracy: bnn_test_accuracy(&bnn, &ds, scale.mc_samples, seed),
        },
        Table6Row {
            model: "VIBNN (Hardware)".to_owned(),
            accuracy: hardware_accuracy(&bnn, &ds, 8, scale.mc_samples, seed),
        },
    ]
}

/// One row of Table 7: accuracy on a disease dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Table7Row {
    /// Dataset name.
    pub dataset: String,
    /// FNN (software) accuracy.
    pub fnn: f64,
    /// BNN (software) accuracy.
    pub bnn: f64,
    /// VIBNN (hardware) accuracy.
    pub vibnn: f64,
}

/// Reproduces Table 7: FNN / BNN / VIBNN across the nine disease
/// datasets.
pub fn table7(scale: LearnScale, seed: u64) -> Vec<Table7Row> {
    all_disease_datasets(seed)
        .into_iter()
        .map(|ds| {
            let fnn = train_fnn(&ds, scale, 0.0, seed ^ 0xF);
            let bnn = train_bnn(&ds, scale, seed ^ 0xB);
            Table7Row {
                dataset: ds.name.clone(),
                fnn: fnn.evaluate(&ds.test_x, &ds.test_y),
                bnn: bnn_test_accuracy(&bnn, &ds, scale.mc_samples, seed),
                vibnn: hardware_accuracy(&bnn, &ds, 8, scale.mc_samples, seed),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig16_smoke_produces_all_fractions() {
        let pts = fig16(LearnScale::smoke(), 3);
        assert_eq!(pts.len(), train_fractions().len());
        for w in pts.windows(2) {
            assert!(w[0].train_samples <= w[1].train_samples);
        }
        // On the full training set both models should beat chance (10%).
        let full = pts.last().unwrap();
        assert!(full.fnn_accuracy > 0.3, "fnn {}", full.fnn_accuracy);
        assert!(full.bnn_accuracy > 0.3, "bnn {}", full.bnn_accuracy);
    }

    #[test]
    fn table6_smoke_hardware_close_to_software() {
        let rows = table6(LearnScale::smoke(), 5);
        assert_eq!(rows.len(), 3);
        let bnn = rows[1].accuracy;
        let hw = rows[2].accuracy;
        // At smoke scale the barely-trained posterior is very wide, which
        // amplifies eps-structure sensitivity; the paper-scale run (table6
        // binary / integration tests) shows tight parity (see
        // EXPERIMENTS.md). Here we only gate against collapse.
        assert!(
            hw > bnn - 0.3,
            "hardware {hw} collapsed relative to software {bnn}"
        );
    }
}
