//! Sharded multi-replica serving: a [`ClusterEngine`] scales the
//! [`ServeEngine`] from one dispatcher to a pool of replicas with
//! deterministic routing, shared admission control, live metrics, and hot
//! checkpoint swap.
//!
//! The paper's accelerator is a single inference unit; the scale target is
//! serving heavy traffic from many users. This module treats each deployed
//! accelerator instance as a schedulable unit behind a cluster-level
//! queue: N replicas (each a [`Vibnn`] plus its own dispatcher thread and
//! micro-batching [`ServeEngine`]) drain a sharded request queue in
//! parallel.
//!
//! # Determinism
//!
//! Per-request determinism holds **by construction**, not by careful
//! scheduling:
//!
//! - Every replica serves with the *same* ε substream, derived from the
//!   cluster source by [`vibnn_bnn::replica_source`] (deliberately not
//!   keyed by replica id — see that function's docs). A replica's answer
//!   for a feature row therefore depends only on the row, the parameters
//!   it was loaded from, and the cluster seed.
//! - The router maps request id → home replica with a stable function
//!   (`id mod replicas`), and least-loaded spill is restricted to
//!   *equivalent* replicas — ones whose next-to-serve engine came from the
//!   same checkpoint (judged by a fingerprint of the full kind-3
//!   serialization, so independently loaded copies of one checkpoint
//!   count as equivalent) — so placement can never change a result.
//! - Each replica's micro-batches run through the serving engine's
//!   synchronous path, which is bit-identical to the one-shot batched
//!   `Vibnn::predict_proba_parallel` call row for row.
//!
//! Consequently a cluster of any size produces, for every request,
//! **bit-identical** results to a single `ServeEngine` (and to the batched
//! path) under the derived source — `tests/cluster_determinism.rs` pins
//! this for replicas {1, 2, 4} × workers {1, 2} × permuted arrival orders.
//!
//! # Hot checkpoint swap
//!
//! [`ClusterEngine::hot_swap`] loads a new deployment (typically a kind-3
//! checkpoint via [`ClusterEngine::hot_swap_from`]) into a **standby**
//! engine while traffic keeps flowing, then enqueues a swap marker on the
//! target replica's queue. The dispatcher drains every request queued
//! ahead of the marker with the old engine, then atomically switches to
//! the standby — no queued request is ever dropped or served twice, and
//! requests submitted after the swap are answered by the new version.
//! [`ClusterEngine::rollout`] walks the swap across every replica for a
//! versioned, no-downtime deployment.

use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use vibnn_bnn::replica_source;
use vibnn_grng::{StreamFork, ZigguratGrng};
use vibnn_nn::Matrix;

use crate::serve::{ServeConfig, ServeEngine, ServeResult};
use crate::{Vibnn, VibnnError};

/// Sizing and policy knobs for a [`ClusterEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of serving replicas (default 2).
    pub replicas: usize,
    /// Maximum requests coalesced into one micro-batch per replica
    /// (default 32).
    pub max_batch: usize,
    /// **Cluster-level** queue capacity across all replicas; submissions
    /// beyond it get [`VibnnError::QueueFull`] backpressure (default 1024).
    pub max_queue: usize,
    /// Worker threads for each replica's Monte Carlo micro-batch
    /// (`0` honours `VIBNN_THREADS`; default 0). Never affects results.
    pub workers: usize,
    /// Allow least-loaded spill: when the home replica is busier than an
    /// *equivalent* replica (same checkpoint fingerprint), route the
    /// request there instead (default `true`). Spill never crosses a
    /// checkpoint boundary, so it can never change a result.
    pub spill: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            replicas: 2,
            max_batch: 32,
            max_queue: 1024,
            workers: 0,
            spill: true,
        }
    }
}

/// The outcome of one completed [`ClusterEngine::hot_swap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapReport {
    /// The replica that was swapped.
    pub replica: usize,
    /// The checkpoint version now serving on that replica.
    pub version: u64,
    /// Requests that were queued ahead of the swap marker and drained
    /// through the old engine before the switch.
    pub drained: u64,
}

/// A live snapshot of one replica's state, from
/// [`ClusterEngine::metrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaMetrics {
    /// Requests queued on this replica, not yet dispatched.
    pub queue_depth: usize,
    /// Requests this replica has served since the cluster started.
    pub served: u64,
    /// Checkpoint version the replica is currently serving with (starts
    /// at 0; each hot swap increments it — a per-replica rollout
    /// counter, not a checkpoint identity).
    pub version: u64,
    /// Fingerprint of the checkpoint the replica is currently serving
    /// with (FNV-1a over the kind-3 serialization). Replicas with equal
    /// fingerprints answer identically, which is the equivalence spill
    /// routing is restricted to.
    pub checkpoint_fingerprint: u64,
    /// Whether a swap marker is queued but not yet applied (the replica
    /// is draining the old version's requests).
    pub swap_pending: bool,
    /// Whether the dispatcher thread is running (`false` after shutdown,
    /// or if the replica panicked).
    pub alive: bool,
    /// Micro-batch size histogram: entry `b - 1` counts dispatched
    /// micro-batches of exactly `b` requests (length = `max_batch`).
    pub batch_histogram: Vec<u64>,
}

/// A live snapshot of the whole cluster, from [`ClusterEngine::metrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMetrics {
    /// Per-replica snapshots, indexed by replica id.
    pub replicas: Vec<ReplicaMetrics>,
    /// Requests queued cluster-wide, not yet dispatched.
    pub queued: usize,
    /// The configured cluster-level queue capacity.
    pub capacity: usize,
    /// Requests accepted since the cluster started.
    pub submitted: u64,
    /// Requests served since the cluster started.
    pub served: u64,
    /// Accepted requests that were routed away from their home replica to
    /// a less-loaded equivalent one.
    pub spilled: u64,
    /// Submissions refused with [`VibnnError::QueueFull`].
    pub rejected: u64,
    /// Hot swaps applied since the cluster started.
    pub swaps_completed: u64,
    /// Whether any replica is draining: a swap marker is pending behind
    /// queued requests, or shutdown was requested while queues still
    /// hold work.
    pub draining: bool,
}

/// FNV-1a over the deployment's kind-3 serialization: two deployments
/// share a fingerprint exactly when they were loaded from the same
/// checkpoint bytes — the cluster's criterion for replicas that answer
/// identically (and may therefore absorb each other's spill).
fn checkpoint_fingerprint(vibnn: &Vibnn) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in &vibnn.to_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One queued unit of work for a replica dispatcher: a request, or a
/// swap marker carrying the standby engine that takes over once
/// everything ahead of it has drained.
enum Work<S: StreamFork + Sync> {
    Request {
        id: u64,
        features: Vec<f32>,
    },
    /// Boxed: a standby engine (deployment clone + simulator) dwarfs a
    /// request, and markers are rare.
    Swap {
        engine: Box<ServeEngine<S>>,
        version: u64,
        fingerprint: u64,
    },
}

struct ReplicaState<S: StreamFork + Sync> {
    queue: VecDeque<Work<S>>,
    /// `Request` items currently in `queue` (markers excluded).
    pending: usize,
    served: u64,
    /// Version the dispatcher is currently serving with.
    version: u64,
    /// Version a request submitted *now* would be served by (`> version`
    /// while a swap marker is queued).
    queued_version: u64,
    /// Fingerprint of the checkpoint the dispatcher is serving with.
    fingerprint: u64,
    /// Fingerprint a request submitted *now* would be answered under.
    /// Spill equivalence is judged on this, since routing decides the
    /// fate of future requests.
    queued_fingerprint: u64,
    batch_hist: Vec<u64>,
    alive: bool,
}

struct ClusterState<S: StreamFork + Sync> {
    replicas: Vec<ReplicaState<S>>,
    results: HashMap<u64, ServeResult>,
    next_id: u64,
    /// Requests queued cluster-wide (the admission-control gauge).
    queued_total: usize,
    submitted: u64,
    served_total: u64,
    spilled: u64,
    rejected: u64,
    swaps_completed: u64,
    stop: bool,
}

struct ClusterShared<S: StreamFork + Sync> {
    state: Mutex<ClusterState<S>>,
    /// Signalled on new work (and on stop); all dispatchers re-check
    /// their own queue.
    work_ready: Condvar,
    /// Signalled when results are published or a dispatcher exits.
    result_ready: Condvar,
    /// Signalled when a dispatcher applies a swap marker.
    swap_applied: Condvar,
    max_queue: usize,
    max_batch: usize,
    spill: bool,
    input_dim: usize,
}

impl<S: StreamFork + Sync> ClusterShared<S> {
    fn lock(&self) -> MutexGuard<'_, ClusterState<S>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Clears the replica's `alive` flag and wakes every waiter when its
/// dispatcher exits — by any path, including unwinding.
struct AliveGuard<'a, S: StreamFork + Sync> {
    shared: &'a ClusterShared<S>,
    replica: usize,
}

impl<S: StreamFork + Sync> Drop for AliveGuard<'_, S> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.replicas[self.replica].alive = false;
        drop(st);
        self.shared.result_ready.notify_all();
        self.shared.swap_applied.notify_all();
    }
}

/// A pool of serving replicas behind one deterministic router.
///
/// Construction clones the deployment into `cfg.replicas` replicas, each
/// with its own dispatcher thread and micro-batching [`ServeEngine`]
/// whose ε source is derived from the cluster source by
/// [`vibnn_bnn::replica_source`]. Submit single-row requests with
/// [`submit`](Self::submit), collect by id with [`wait`](Self::wait) /
/// [`try_take`](Self::try_take), observe with
/// [`metrics`](Self::metrics), and roll out new checkpoints with
/// [`hot_swap`](Self::hot_swap) — see the [module docs](self) for the
/// determinism and swap contracts.
///
/// # Example
///
/// ```
/// use vibnn::bnn::{Bnn, BnnConfig};
/// use vibnn::cluster::{ClusterConfig, ClusterEngine};
/// use vibnn::nn::Matrix;
/// use vibnn::VibnnBuilder;
///
/// let bnn = Bnn::new(BnnConfig::new(&[4, 8, 3]), 7);
/// let vibnn = VibnnBuilder::new(bnn.params())
///     .mc_samples(4)
///     .calibration(Matrix::zeros(2, 4))
///     .build()?;
/// let cluster = ClusterEngine::new(
///     vibnn,
///     ClusterConfig {
///         replicas: 2,
///         ..ClusterConfig::default()
///     },
/// )?;
/// let id = cluster.submit(vec![0.0; 4])?;
/// let result = cluster.wait(id)?;
/// assert_eq!(result.proba.len(), 3);
/// let metrics = cluster.metrics();
/// assert_eq!(metrics.replicas.len(), 2);
/// assert_eq!(metrics.served, 1);
/// cluster.shutdown();
/// # Ok::<(), vibnn::VibnnError>(())
/// ```
pub struct ClusterEngine<S: StreamFork + Sync + Send + 'static = ZigguratGrng> {
    shared: Arc<ClusterShared<S>>,
    /// The cluster ε source; standby engines for hot swaps derive their
    /// substream from it exactly like the founding replicas did.
    eps: S,
    serve_cfg: ServeConfig,
    dispatchers: Vec<JoinHandle<()>>,
}

impl<S: StreamFork + Sync + Send> std::fmt::Debug for ClusterEngine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterEngine")
            .field("replicas", &self.dispatchers.len())
            .field("max_queue", &self.shared.max_queue)
            .finish_non_exhaustive()
    }
}

impl ClusterEngine<ZigguratGrng> {
    /// Builds a cluster over `cfg.replicas` clones of the deployment with
    /// a default software cluster source (`ZigguratGrng` seeded from a
    /// fixed cluster constant). Use [`with_eps`](Self::with_eps) for a
    /// specific generator.
    ///
    /// # Errors
    ///
    /// [`VibnnError::BadServeConfig`] if `replicas`, `max_batch`, or
    /// `max_queue` is 0.
    pub fn new(vibnn: Vibnn, cfg: ClusterConfig) -> Result<Self, VibnnError> {
        Self::with_eps(vibnn, cfg, ZigguratGrng::new(0xC1D5_5EED))
    }
}

impl<S: StreamFork + Sync + Send + 'static> ClusterEngine<S> {
    /// Builds a cluster with an explicit cluster ε source. Every replica
    /// serves with [`vibnn_bnn::replica_source`]`(&eps)` — identical
    /// streams, independently owned instances (see the
    /// [module docs](self)).
    ///
    /// # Errors
    ///
    /// [`VibnnError::BadServeConfig`] if `replicas`, `max_batch`, or
    /// `max_queue` is 0.
    pub fn with_eps(vibnn: Vibnn, cfg: ClusterConfig, eps: S) -> Result<Self, VibnnError> {
        if cfg.replicas == 0 {
            return Err(VibnnError::BadServeConfig("replicas must be positive"));
        }
        let serve_cfg = ServeConfig {
            max_batch: cfg.max_batch,
            max_queue: cfg.max_queue,
            workers: cfg.workers,
        };
        let input_dim = vibnn.input_dim();
        let fingerprint = checkpoint_fingerprint(&vibnn);
        // Build every replica engine up front so a bad config fails before
        // any thread spawns.
        let mut engines = Vec::with_capacity(cfg.replicas);
        for _ in 0..cfg.replicas {
            engines.push(ServeEngine::with_eps(
                vibnn.clone(),
                serve_cfg,
                replica_source(&eps),
            )?);
        }
        let shared = Arc::new(ClusterShared {
            state: Mutex::new(ClusterState {
                replicas: (0..cfg.replicas)
                    .map(|_| ReplicaState {
                        queue: VecDeque::new(),
                        pending: 0,
                        served: 0,
                        version: 0,
                        queued_version: 0,
                        fingerprint,
                        queued_fingerprint: fingerprint,
                        batch_hist: vec![0; cfg.max_batch],
                        alive: true,
                    })
                    .collect(),
                results: HashMap::new(),
                next_id: 0,
                queued_total: 0,
                submitted: 0,
                served_total: 0,
                spilled: 0,
                rejected: 0,
                swaps_completed: 0,
                stop: false,
            }),
            work_ready: Condvar::new(),
            result_ready: Condvar::new(),
            swap_applied: Condvar::new(),
            max_queue: cfg.max_queue,
            max_batch: cfg.max_batch,
            spill: cfg.spill,
            input_dim,
        });
        let dispatchers = engines
            .into_iter()
            .enumerate()
            .map(|(r, engine)| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let _alive = AliveGuard {
                        shared: &shared,
                        replica: r,
                    };
                    dispatcher_loop(r, engine, &shared);
                })
            })
            .collect();
        Ok(Self {
            shared,
            eps,
            serve_cfg,
            dispatchers,
        })
    }

    /// Number of replicas in the pool.
    pub fn replicas(&self) -> usize {
        self.dispatchers.len()
    }

    /// The ε source every replica serves with — the substream
    /// [`vibnn_bnn::replica_source`] derives from the cluster source.
    /// Feed this to a single [`ServeEngine`] or to
    /// [`Vibnn::predict_proba_parallel`] to reproduce the cluster's
    /// results bit for bit.
    pub fn replica_eps(&self) -> S {
        replica_source(&self.eps)
    }

    /// Submits one request (a single feature row) and returns its cluster
    /// request id. The id also determines the home replica
    /// (`id mod replicas`); with [`ClusterConfig::spill`] the request may
    /// be placed on a less-loaded replica of the same checkpoint
    /// fingerprint — which, by the determinism contract, serves it
    /// identically.
    ///
    /// # Errors
    ///
    /// - [`VibnnError::ShapeMismatch`] — the row is not
    ///   [`Vibnn::input_dim`] values wide.
    /// - [`VibnnError::QueueFull`] — cluster-level backpressure; carries
    ///   the observed depth and configured capacity for informed backoff.
    /// - [`VibnnError::EngineStopped`] — the cluster is shut down, or no
    ///   replica equivalent to the home replica is alive.
    pub fn submit(&self, features: Vec<f32>) -> Result<u64, VibnnError> {
        if features.len() != self.shared.input_dim {
            return Err(VibnnError::ShapeMismatch {
                context: "request width",
                expected: self.shared.input_dim,
                got: features.len(),
            });
        }
        let mut st = self.shared.lock();
        if st.stop {
            return Err(VibnnError::EngineStopped);
        }
        if st.queued_total >= self.shared.max_queue {
            st.rejected += 1;
            return Err(VibnnError::QueueFull {
                depth: st.queued_total,
                capacity: self.shared.max_queue,
            });
        }
        let id = st.next_id;
        let home = (id % st.replicas.len() as u64) as usize;
        // Route: home replica, unless spill finds a strictly less-loaded
        // *equivalent* replica (same queued checkpoint fingerprint —
        // never across a checkpoint boundary).
        let home_fp = st.replicas[home].queued_fingerprint;
        let mut target = if st.replicas[home].alive {
            Some((home, st.replicas[home].pending))
        } else {
            None
        };
        if self.shared.spill || target.is_none() {
            for (i, rep) in st.replicas.iter().enumerate() {
                if i == home || !rep.alive || rep.queued_fingerprint != home_fp {
                    continue;
                }
                if target.map_or(true, |(_, pending)| rep.pending < pending) {
                    target = Some((i, rep.pending));
                }
            }
        }
        let Some((target, _)) = target else {
            // Nothing equivalent to the home replica is alive; serving
            // elsewhere could change the result, so refuse instead.
            return Err(VibnnError::EngineStopped);
        };
        st.next_id += 1;
        st.submitted += 1;
        st.queued_total += 1;
        st.spilled += u64::from(target != home);
        let rep = &mut st.replicas[target];
        rep.pending += 1;
        rep.queue.push_back(Work::Request { id, features });
        drop(st);
        self.shared.work_ready.notify_all();
        Ok(id)
    }

    /// Takes a finished result without blocking, if it is ready.
    pub fn try_take(&self, id: u64) -> Option<ServeResult> {
        self.shared.lock().results.remove(&id)
    }

    /// Blocks until the result for `id` is ready and takes it.
    ///
    /// # Errors
    ///
    /// - [`VibnnError::UnknownRequest`] — `id` was never issued.
    /// - [`VibnnError::EngineStopped`] — a dispatcher exited before the
    ///   result was produced.
    pub fn wait(&self, id: u64) -> Result<ServeResult, VibnnError> {
        let mut st = self.shared.lock();
        if id >= st.next_id {
            return Err(VibnnError::UnknownRequest(id));
        }
        loop {
            if let Some(r) = st.results.remove(&id) {
                return Ok(r);
            }
            // Any dead replica may hold this request forever; error out
            // instead of risking a hang. (Replicas die only on panic or
            // shutdown.)
            if st.replicas.iter().any(|r| !r.alive) {
                return Err(VibnnError::EngineStopped);
            }
            st = self
                .shared
                .result_ready
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A consistent snapshot of cluster and per-replica state.
    pub fn metrics(&self) -> ClusterMetrics {
        let st = self.shared.lock();
        ClusterMetrics {
            replicas: st
                .replicas
                .iter()
                .map(|r| ReplicaMetrics {
                    queue_depth: r.pending,
                    served: r.served,
                    version: r.version,
                    checkpoint_fingerprint: r.fingerprint,
                    swap_pending: r.queued_version > r.version,
                    alive: r.alive,
                    batch_histogram: r.batch_hist.clone(),
                })
                .collect(),
            queued: st.queued_total,
            capacity: self.shared.max_queue,
            submitted: st.submitted,
            served: st.served_total,
            spilled: st.spilled,
            rejected: st.rejected,
            swaps_completed: st.swaps_completed,
            draining: st
                .replicas
                .iter()
                .any(|r| r.queued_version > r.version)
                || (st.stop && st.queued_total > 0),
        }
    }

    /// Hot-swaps `replica` to a new deployment: builds a **standby**
    /// engine around `vibnn` (with the cluster's replica ε substream),
    /// enqueues a swap marker, and blocks until the dispatcher has
    /// drained every request queued ahead of the marker through the old
    /// engine and switched to the standby. Requests keep flowing the
    /// whole time — none are dropped, none are served twice; submissions
    /// after this call returns are answered by the new version.
    ///
    /// # Errors
    ///
    /// - [`VibnnError::UnknownReplica`] — `replica` is out of range.
    /// - [`VibnnError::ShapeMismatch`] — the new deployment's input width
    ///   differs from the cluster's.
    /// - [`VibnnError::BadServeConfig`] — never for a cluster-validated
    ///   config (propagated from standby construction).
    /// - [`VibnnError::EngineStopped`] — the cluster is shut down or the
    ///   replica's dispatcher has exited.
    pub fn hot_swap(&self, replica: usize, vibnn: Vibnn) -> Result<SwapReport, VibnnError> {
        if replica >= self.dispatchers.len() {
            return Err(VibnnError::UnknownReplica(replica));
        }
        if vibnn.input_dim() != self.shared.input_dim {
            return Err(VibnnError::ShapeMismatch {
                context: "replica input width",
                expected: self.shared.input_dim,
                got: vibnn.input_dim(),
            });
        }
        // Standby construction (quantization, simulator setup) happens
        // before any queue mutation, so it never stalls the dispatcher.
        let fingerprint = checkpoint_fingerprint(&vibnn);
        let engine = ServeEngine::with_eps(vibnn, self.serve_cfg, replica_source(&self.eps))?;
        let mut st = self.shared.lock();
        if st.stop || !st.replicas[replica].alive {
            return Err(VibnnError::EngineStopped);
        }
        let version = st.replicas[replica].queued_version + 1;
        let drained = st.replicas[replica].pending as u64;
        let rep = &mut st.replicas[replica];
        rep.queued_version = version;
        rep.queued_fingerprint = fingerprint;
        rep.queue.push_back(Work::Swap {
            engine: Box::new(engine),
            version,
            fingerprint,
        });
        drop(st);
        self.shared.work_ready.notify_all();
        let mut st = self.shared.lock();
        while st.replicas[replica].version < version {
            if !st.replicas[replica].alive {
                return Err(VibnnError::EngineStopped);
            }
            st = self
                .shared
                .swap_applied
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        Ok(SwapReport {
            replica,
            version,
            drained,
        })
    }

    /// [`hot_swap`](Self::hot_swap) from a kind-3 deployment checkpoint
    /// file (see [`Vibnn::load`]).
    ///
    /// # Errors
    ///
    /// Any [`Vibnn::load`] error, plus every [`hot_swap`](Self::hot_swap)
    /// error.
    pub fn hot_swap_from(
        &self,
        replica: usize,
        path: impl AsRef<Path>,
    ) -> Result<SwapReport, VibnnError> {
        self.hot_swap(replica, Vibnn::load(path)?)
    }

    /// Rolls a new deployment across every replica, one hot swap at a
    /// time (replica 0 first). Traffic keeps flowing throughout; once
    /// this returns, every replica serves the new checkpoint — and since
    /// spill equivalence is judged on the checkpoint fingerprint (not
    /// the per-replica version counters, which may differ), spill is
    /// fully re-enabled across the pool.
    ///
    /// # Errors
    ///
    /// The first [`hot_swap`](Self::hot_swap) error; earlier replicas
    /// stay swapped.
    pub fn rollout(&self, vibnn: Vibnn) -> Result<Vec<SwapReport>, VibnnError> {
        (0..self.dispatchers.len())
            .map(|r| self.hot_swap(r, vibnn.clone()))
            .collect()
    }

    /// Stops every dispatcher after it drains its queue, joins them, and
    /// returns every unclaimed result sorted by request id.
    pub fn shutdown(mut self) -> Vec<ServeResult> {
        self.stop_and_join();
        let mut leftover: Vec<ServeResult> =
            self.shared.lock().results.drain().map(|(_, r)| r).collect();
        leftover.sort_by_key(|r| r.id);
        leftover
    }

    fn stop_and_join(&mut self) {
        {
            let mut st = self.shared.lock();
            st.stop = true;
        }
        self.shared.work_ready.notify_all();
        for worker in self.dispatchers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl<S: StreamFork + Sync + Send> Drop for ClusterEngine<S> {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// One replica's dispatcher: drain own queue → micro-batch through the
/// serving engine → publish into the shared result map; apply swap
/// markers in queue order; exit once asked to stop *and* the queue is
/// fully drained.
fn dispatcher_loop<S: StreamFork + Sync + Send>(
    r: usize,
    mut engine: ServeEngine<S>,
    shared: &ClusterShared<S>,
) {
    loop {
        let mut batch: Vec<(u64, Vec<f32>)> = Vec::new();
        let mut swap: Option<Box<ServeEngine<S>>> = None;
        {
            let mut st = shared.lock();
            loop {
                if !st.replicas[r].queue.is_empty() {
                    break;
                }
                if st.stop {
                    // Queue fully drained (markers included): exit. The
                    // `AliveGuard` clears `alive` and wakes waiters.
                    return;
                }
                st = shared
                    .work_ready
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            let rep = &mut st.replicas[r];
            if matches!(rep.queue.front(), Some(Work::Swap { .. })) {
                if let Some(Work::Swap {
                    engine,
                    version,
                    fingerprint,
                }) = rep.queue.pop_front()
                {
                    rep.version = version;
                    rep.fingerprint = fingerprint;
                    swap = Some(engine);
                }
                st.swaps_completed += 1;
            } else {
                // Drain up to max_batch requests; never across a swap
                // marker, so a micro-batch is always served by one
                // checkpoint version.
                while batch.len() < shared.max_batch
                    && matches!(rep.queue.front(), Some(Work::Request { .. }))
                {
                    if let Some(Work::Request { id, features }) = rep.queue.pop_front() {
                        batch.push((id, features));
                    }
                }
                rep.pending -= batch.len();
                st.queued_total -= batch.len();
            }
        }
        if let Some(standby) = swap {
            engine = *standby;
            shared.swap_applied.notify_all();
            continue;
        }
        let mut x = Matrix::zeros(batch.len(), shared.input_dim);
        for (row, (_, features)) in batch.iter().enumerate() {
            x.row_mut(row).copy_from_slice(features);
        }
        // The synchronous serve path: one micro-batch, bit-identical to
        // the one-shot batched inference call (row widths were validated
        // at the cluster gate, so this cannot fail).
        let results = engine.submit_batch(&x).expect("validated request width");
        {
            let mut st = shared.lock();
            let n = batch.len();
            for ((id, _), mut result) in batch.into_iter().zip(results) {
                result.id = id;
                st.results.insert(id, result);
            }
            st.served_total += n as u64;
            let rep = &mut st.replicas[r];
            rep.served += n as u64;
            rep.batch_hist[n - 1] += 1;
        }
        shared.result_ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VibnnBuilder;
    use vibnn_bnn::{Bnn, BnnConfig};

    fn tiny_vibnn(seed: u64) -> Vibnn {
        let bnn = Bnn::new(BnnConfig::new(&[3, 6, 2]).with_sigma_init(0.1), seed);
        VibnnBuilder::new(bnn.params())
            .mc_samples(3)
            .calibration(Matrix::zeros(2, 3))
            .build()
            .unwrap()
    }

    #[test]
    fn zero_sized_configs_are_rejected() {
        for cfg in [
            ClusterConfig {
                replicas: 0,
                ..ClusterConfig::default()
            },
            ClusterConfig {
                max_batch: 0,
                ..ClusterConfig::default()
            },
            ClusterConfig {
                max_queue: 0,
                ..ClusterConfig::default()
            },
        ] {
            assert!(matches!(
                ClusterEngine::new(tiny_vibnn(1), cfg),
                Err(VibnnError::BadServeConfig(_))
            ));
        }
    }

    #[test]
    fn submit_validates_and_routes() {
        let cluster = ClusterEngine::new(
            tiny_vibnn(1),
            ClusterConfig {
                replicas: 2,
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(
            cluster.submit(vec![0.0; 5]),
            Err(VibnnError::ShapeMismatch {
                expected: 3,
                got: 5,
                ..
            })
        ));
        let a = cluster.submit(vec![0.0; 3]).unwrap();
        let b = cluster.submit(vec![0.5; 3]).unwrap();
        assert_eq!((a, b), (0, 1));
        assert!(cluster.wait(a).is_ok());
        assert!(cluster.wait(b).is_ok());
        assert!(matches!(
            cluster.wait(99),
            Err(VibnnError::UnknownRequest(99))
        ));
        let metrics = cluster.metrics();
        assert_eq!(metrics.submitted, 2);
        assert_eq!(metrics.served, 2);
        assert_eq!(metrics.queued, 0);
        let leftovers = cluster.shutdown();
        assert!(leftovers.is_empty());
    }

    #[test]
    fn cluster_queue_full_carries_depth_and_capacity() {
        // One replica, a 2-deep cluster queue, and a fast submit loop:
        // the mutex push is far cheaper than a dispatched micro-batch, so
        // the admission gate trips almost immediately.
        let cluster = ClusterEngine::new(
            tiny_vibnn(1),
            ClusterConfig {
                replicas: 1,
                max_batch: 1,
                max_queue: 2,
                workers: 1,
                spill: false,
            },
        )
        .unwrap();
        let mut accepted = Vec::new();
        let mut saw_full = false;
        for _ in 0..2000 {
            match cluster.submit(vec![0.1; 3]) {
                Ok(id) => accepted.push(id),
                Err(VibnnError::QueueFull { depth, capacity }) => {
                    assert_eq!(capacity, 2);
                    assert!(depth >= capacity, "{depth} < {capacity}");
                    saw_full = true;
                    break;
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!(saw_full, "queue never filled");
        for id in accepted {
            cluster.wait(id).unwrap();
        }
        assert_eq!(cluster.metrics().rejected, 1);
        cluster.shutdown();
    }

    #[test]
    fn hot_swap_rejects_bad_targets() {
        let cluster = ClusterEngine::new(
            tiny_vibnn(1),
            ClusterConfig {
                replicas: 2,
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(
            cluster.hot_swap(7, tiny_vibnn(2)),
            Err(VibnnError::UnknownReplica(7))
        ));
        // A deployment with a different input width cannot join the pool.
        let wide = Bnn::new(BnnConfig::new(&[5, 4, 2]), 3);
        let wide = VibnnBuilder::new(wide.params())
            .calibration(Matrix::zeros(2, 5))
            .build()
            .unwrap();
        assert!(matches!(
            cluster.hot_swap(0, wide),
            Err(VibnnError::ShapeMismatch {
                context: "replica input width",
                ..
            })
        ));
        cluster.shutdown();
    }

    #[test]
    fn hot_swap_tracks_versions_and_fingerprint_equivalence() {
        let cluster = ClusterEngine::new(
            tiny_vibnn(1),
            ClusterConfig {
                replicas: 2,
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        let m = cluster.metrics();
        assert_eq!(
            m.replicas[0].checkpoint_fingerprint,
            m.replicas[1].checkpoint_fingerprint,
            "founding replicas share one checkpoint"
        );
        let report = cluster.hot_swap(1, tiny_vibnn(9)).unwrap();
        assert_eq!(report.replica, 1);
        assert_eq!(report.version, 1);
        let m = cluster.metrics();
        assert_eq!(m.swaps_completed, 1);
        assert_eq!(m.replicas[0].version, 0);
        assert_eq!(m.replicas[1].version, 1);
        assert!(!m.replicas[1].swap_pending);
        // A different deployment breaks equivalence: spill between the
        // two replicas is now forbidden.
        assert_ne!(
            m.replicas[0].checkpoint_fingerprint,
            m.replicas[1].checkpoint_fingerprint
        );
        // Rolling one deployment across the pool restores equivalence
        // even though the per-replica swap counters diverge — spill is
        // judged on the fingerprint, not the version.
        let reports = cluster.rollout(tiny_vibnn(9)).unwrap();
        assert_eq!(reports.len(), 2);
        let m = cluster.metrics();
        assert_eq!(m.replicas[0].version, 1);
        assert_eq!(m.replicas[1].version, 2);
        assert_eq!(
            m.replicas[0].checkpoint_fingerprint,
            m.replicas[1].checkpoint_fingerprint,
            "same checkpoint => equivalent, whatever the swap history"
        );
        cluster.shutdown();
    }

    #[test]
    fn shutdown_returns_unclaimed_results_in_id_order() {
        let cluster = ClusterEngine::new(
            tiny_vibnn(1),
            ClusterConfig {
                replicas: 2,
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        let ids: Vec<u64> = (0..6)
            .map(|i| cluster.submit(vec![i as f32 * 0.1; 3]).unwrap())
            .collect();
        let leftover = cluster.shutdown();
        assert_eq!(
            leftover.iter().map(|r| r.id).collect::<Vec<_>>(),
            ids,
            "graceful shutdown drains every queued request"
        );
    }

    #[test]
    fn submit_after_shutdown_is_engine_stopped() {
        let mut cluster = ClusterEngine::new(tiny_vibnn(1), ClusterConfig::default()).unwrap();
        cluster.stop_and_join();
        assert!(matches!(
            cluster.submit(vec![0.0; 3]),
            Err(VibnnError::EngineStopped)
        ));
    }
}
