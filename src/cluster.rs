//! Sharded multi-replica serving: a [`ClusterEngine`] scales the
//! [`ServeEngine`] from one dispatcher to a pool of replicas with
//! deterministic routing, shared admission control, live metrics, and hot
//! checkpoint swap.
//!
//! The paper's accelerator is a single inference unit; the scale target is
//! serving heavy traffic from many users. This module treats each deployed
//! accelerator instance as a schedulable unit behind a cluster-level
//! queue: N replicas (each a [`Vibnn`] plus its own dispatcher thread and
//! micro-batching [`ServeEngine`]) drain a sharded request queue in
//! parallel.
//!
//! # Determinism
//!
//! Per-request determinism holds **by construction**, not by careful
//! scheduling:
//!
//! - Every replica serves with the *same* ε substream, derived from the
//!   cluster source by [`vibnn_bnn::replica_source`] (deliberately not
//!   keyed by replica id — see that function's docs). A replica's answer
//!   for a feature row therefore depends only on the row, the parameters
//!   it was loaded from, and the cluster seed.
//! - The router maps request id → home replica with a stable function
//!   (`id mod replicas`), and least-loaded spill is restricted to
//!   *equivalent* replicas — ones whose next-to-serve engine came from the
//!   same checkpoint (judged by a fingerprint of the full kind-3
//!   serialization, so independently loaded copies of one checkpoint
//!   count as equivalent) — so placement can never change a result.
//! - Each replica's micro-batches run through the serving engine's
//!   synchronous path, which is bit-identical to the one-shot batched
//!   `Vibnn::predict_proba_parallel` call row for row.
//!
//! Consequently a cluster of any size produces, for every request,
//! **bit-identical** results to a single `ServeEngine` (and to the batched
//! path) under the derived source — `tests/cluster_determinism.rs` pins
//! this for replicas {1, 2, 4} × workers {1, 2} × permuted arrival orders.
//!
//! # Lanes and deadlines
//!
//! Admission accepts a [`Priority`] lane and an optional deadline per
//! request ([`ClusterEngine::submit_with`]). Interactive traffic is
//! dequeued ahead of batch traffic, but a batch request passed over
//! [`ClusterConfig::batch_skip_bound`] times is promoted first — so
//! neither lane starves, and the selection rule is a pure function of
//! queue state (no timing dependence). Deadlines are enforced twice,
//! both times **before** any replica work: an already-expired request is
//! refused at admission, and one that expires while queued is failed
//! with [`VibnnError::DeadlineExceeded`] at dequeue. Scheduling affects
//! only *when* a request is served — never *what* it answers.
//!
//! # Hot checkpoint swap
//!
//! [`ClusterEngine::hot_swap`] loads a new deployment (typically a kind-3
//! checkpoint via [`ClusterEngine::hot_swap_from`]) into a **standby**
//! engine while traffic keeps flowing, then enqueues a swap marker on the
//! target replica's queue. The dispatcher drains every request queued
//! ahead of the marker with the old engine, then atomically switches to
//! the standby — no queued request is ever dropped or served twice, and
//! requests submitted after the swap are answered by the new version.
//! [`ClusterEngine::rollout`] walks the swap across every replica for a
//! versioned, no-downtime deployment.

use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use vibnn_bnn::replica_source;
use vibnn_grng::{StreamFork, ZigguratGrng};
use vibnn_nn::Matrix;

use crate::backend::{BackendCost, BackendKind, RowOutcome};
use crate::sampler::PolicySpec;
use crate::serve::{ServeConfig, ServeEngine, ServeResult};
use crate::{Vibnn, VibnnError};

/// Sizing and policy knobs for a [`ClusterEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of serving replicas (default 2).
    pub replicas: usize,
    /// Maximum requests coalesced into one micro-batch per replica
    /// (default 32).
    pub max_batch: usize,
    /// **Cluster-level** queue capacity across all replicas; submissions
    /// beyond it get [`VibnnError::QueueFull`] backpressure (default 1024).
    pub max_queue: usize,
    /// Worker threads for each replica's Monte Carlo micro-batch
    /// (`0` honours `VIBNN_THREADS`; default 0). Never affects results.
    pub workers: usize,
    /// Allow least-loaded spill: when the home replica is busier than an
    /// *equivalent* replica (same checkpoint fingerprint), route the
    /// request there instead (default `true`). Spill never crosses a
    /// checkpoint boundary, so it can never change a result.
    pub spill: bool,
    /// Starvation bound for the batch lane: a queued
    /// [`Priority::Batch`] request passed over by `batch_skip_bound`
    /// micro-batch selections is promoted ahead of the interactive lane
    /// on the next one (default 4). `0` disables lane priority — every
    /// batch request counts as overdue immediately, degenerating to
    /// queue-order dequeue.
    pub batch_skip_bound: u32,
    /// The [`BackendKind`] every replica dispatches through. `None`
    /// (the default) honours the deployment's default backend. For a
    /// *mixed* pool — different backends per replica — use
    /// [`ClusterEngine::with_backends`].
    pub backend: Option<BackendKind>,
    /// The [`PolicySpec`] every replica samples under. `None` (the
    /// default) honours the deployment's default policy. For a *mixed*
    /// pool — different policies per replica — use
    /// [`ClusterEngine::with_policies`]. Spill never crosses a policy
    /// boundary, so every answer is attributable to exactly one
    /// `(version, backend, policy)` triple.
    pub policy: Option<PolicySpec>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            replicas: 2,
            max_batch: 32,
            max_queue: 1024,
            workers: 0,
            spill: true,
            batch_skip_bound: 4,
            backend: None,
            policy: None,
        }
    }
}

/// The scheduling lane a request is admitted into.
///
/// Interactive requests are dequeued ahead of batch requests; a batch
/// request skipped [`ClusterConfig::batch_skip_bound`] times is promoted
/// ahead of the interactive lane, so neither lane can starve the other.
/// Lane choice affects **when** a request is served, never **what** it
/// answers — the determinism contract is lane-blind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive traffic; dequeued first (default).
    #[default]
    Interactive,
    /// Throughput traffic; yields to the interactive lane until its
    /// skip bound is reached.
    Batch,
}

/// Per-request admission options for
/// [`ClusterEngine::submit_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// Scheduling lane (default [`Priority::Interactive`]).
    pub priority: Priority,
    /// Latest useful service time. An already-expired deadline is
    /// refused at admission with [`VibnnError::DeadlineExceeded`]; a
    /// deadline that expires while queued is detected at dequeue and
    /// the request is failed with the same error **before** it touches
    /// a replica. `None` (the default) never expires.
    pub deadline: Option<std::time::Instant>,
}

/// The outcome of one completed [`ClusterEngine::hot_swap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapReport {
    /// The replica that was swapped.
    pub replica: usize,
    /// The checkpoint version now serving on that replica.
    pub version: u64,
    /// Requests that were queued ahead of the swap marker and drained
    /// through the old engine before the switch.
    pub drained: u64,
}

/// A live snapshot of one replica's state, from
/// [`ClusterEngine::metrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaMetrics {
    /// Requests queued on this replica, not yet dispatched.
    pub queue_depth: usize,
    /// Requests this replica has served since the cluster started.
    pub served: u64,
    /// Checkpoint version the replica is currently serving with (starts
    /// at 0; each hot swap increments it — a per-replica rollout
    /// counter, not a checkpoint identity).
    pub version: u64,
    /// Fingerprint of the checkpoint the replica is currently serving
    /// with (FNV-1a over the kind-3 serialization). Replicas with equal
    /// fingerprints answer identically, which is the equivalence spill
    /// routing is restricted to.
    pub checkpoint_fingerprint: u64,
    /// Whether a swap marker is queued but not yet applied (the replica
    /// is draining the old version's requests).
    pub swap_pending: bool,
    /// Whether the dispatcher thread is running (`false` after shutdown,
    /// or if the replica panicked).
    pub alive: bool,
    /// Micro-batch size histogram: entry `b - 1` counts dispatched
    /// micro-batches of exactly `b` requests (length = `max_batch`).
    pub batch_histogram: Vec<u64>,
    /// Which [`BackendKind`] this replica's serving slot dispatches
    /// through. Fixed for the replica's lifetime — hot swaps replace
    /// the checkpoint, never the backend.
    pub backend: BackendKind,
    /// Cumulative [`BackendCost`] this replica has charged (across hot
    /// swaps). Zero cycles/energy for host backends; nonzero cycle and
    /// energy totals for [`BackendKind::Cycle`] replicas.
    pub cost: BackendCost,
    /// Which [`PolicySpec`] this replica's serving slot samples under.
    /// Fixed for the replica's lifetime, like the backend — hot swaps
    /// replace the checkpoint, never the policy.
    pub policy: PolicySpec,
}

/// Served requests the windowed uncertainty aggregates in
/// [`UncertaintyStats`] cover (the most recent completions, cluster-wide).
pub const UNCERTAINTY_WINDOW: usize = 256;

/// Bucket count of the cumulative normalized-entropy histogram in
/// [`UncertaintyStats`].
pub const ENTROPY_BUCKETS: usize = 8;

/// Uncertainty aggregates over served requests, from
/// [`ClusterEngine::metrics`].
///
/// The windowed means cover the last [`UNCERTAINTY_WINDOW`] completions
/// in **completion order** — an observability gauge whose exact value
/// may vary with scheduling, unlike per-request results, which stay
/// bit-identical. The histogram counts every served request since the
/// cluster started, bucketed by entropy normalized to `ln(classes)` of
/// the founding deployment; cumulative counts commute, so the histogram
/// is deterministic in aggregate at any worker/replica count.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UncertaintyStats {
    /// Configured window length ([`UNCERTAINTY_WINDOW`]).
    pub window: u64,
    /// Served requests currently inside the window (saturates at
    /// `window` once warm).
    pub count: u64,
    /// Mean predictive entropy (nats) over the window; `0` when empty.
    pub entropy_mean: f64,
    /// Mean Monte-Carlo spread (`mc_std`) over the window; `0` when
    /// empty.
    pub mc_std_mean: f64,
    /// Cumulative histogram over normalized entropy
    /// (`entropy / ln(classes)`), [`ENTROPY_BUCKETS`] equal buckets with
    /// the last bucket absorbing the top edge and anything above it.
    pub entropy_histogram: Vec<u64>,
}

/// Adaptive-sampling aggregates over served requests, from
/// [`ClusterEngine::metrics`].
///
/// All counts are cumulative since the cluster started. Cumulative
/// counts commute, so like the entropy histogram these are
/// deterministic in aggregate at any worker/replica count.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SamplingStats {
    /// Total Monte Carlo samples drawn across every **served** request
    /// (abstentions' work is visible in [`BackendCost::samples`]
    /// instead).
    pub samples_used_total: u64,
    /// Mean `samples_used` per served request; `0` before the first
    /// completion. Under [`PolicySpec::ExactN`] this equals the
    /// deployment's `mc_samples`; adaptive policies pull it down.
    pub mean_samples: f64,
    /// Histogram of `samples_used` over served requests: bucket `s - 1`
    /// counts requests answered with exactly `s` samples (length = the
    /// founding deployment's `mc_samples`; the last bucket absorbs
    /// anything above it, as after a swap to a larger budget).
    pub histogram: Vec<u64>,
    /// Requests a [`PolicySpec::RiskTiered`] policy refused to answer
    /// ([`VibnnError::Abstained`]); they cost their full sample budget
    /// but are **not** counted as served.
    pub abstained: u64,
    /// Requests shed at admission with [`VibnnError::BudgetExceeded`]
    /// because their remaining deadline could not cover the predicted
    /// per-sample cycle cost on a [`BackendKind::Cycle`] replica; none
    /// of them cost any Monte Carlo work.
    pub budget_shed: u64,
}

/// A live snapshot of the whole cluster, from [`ClusterEngine::metrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterMetrics {
    /// Per-replica snapshots, indexed by replica id.
    pub replicas: Vec<ReplicaMetrics>,
    /// Requests queued cluster-wide, not yet dispatched.
    pub queued: usize,
    /// The configured cluster-level queue capacity.
    pub capacity: usize,
    /// Requests accepted since the cluster started.
    pub submitted: u64,
    /// Requests served since the cluster started.
    pub served: u64,
    /// Accepted requests that were routed away from their home replica to
    /// a less-loaded equivalent one.
    pub spilled: u64,
    /// Submissions refused with [`VibnnError::QueueFull`].
    pub rejected: u64,
    /// Requests failed with [`VibnnError::DeadlineExceeded`] — refused
    /// at admission or expired in the queue; none of them cost any
    /// Monte Carlo work.
    pub deadline_expired: u64,
    /// Accepted requests failed with [`VibnnError::EngineStopped`]
    /// because shutdown found them queued behind a swap marker.
    pub cancelled: u64,
    /// Served requests admitted on the [`Priority::Interactive`] lane.
    pub served_interactive: u64,
    /// Served requests admitted on the [`Priority::Batch`] lane.
    pub served_batch: u64,
    /// Hot swaps applied since the cluster started.
    pub swaps_completed: u64,
    /// Whether any replica is draining: a swap marker is pending behind
    /// queued requests, or shutdown was requested while queues still
    /// hold work.
    pub draining: bool,
    /// Windowed + cumulative uncertainty aggregates over served
    /// requests.
    pub uncertainty: UncertaintyStats,
    /// Cumulative [`BackendCost`] across every replica — the cluster's
    /// hardware bill (cycles, nanojoules, MC samples) since start.
    pub cost: BackendCost,
    /// Cumulative adaptive-sampling aggregates: `samples_used`
    /// distribution over served requests, abstentions, and budget sheds.
    pub sampling: SamplingStats,
}

/// FNV-1a over the deployment's kind-3 serialization: two deployments
/// share a fingerprint exactly when they were loaded from the same
/// checkpoint bytes — the cluster's criterion for replicas that answer
/// identically (and may therefore absorb each other's spill).
fn checkpoint_fingerprint(vibnn: &Vibnn) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in &vibnn.to_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One queued unit of work for a replica dispatcher: a request, or a
/// swap marker carrying the standby engine that takes over once
/// everything ahead of it has drained.
enum Work<S: StreamFork + Sync> {
    Request {
        id: u64,
        features: Vec<f32>,
        lane: Priority,
        deadline: Option<std::time::Instant>,
        /// Micro-batch selections that passed this request over while it
        /// was eligible; at `batch_skip_bound` the batch lane outranks
        /// interactive traffic.
        skips: u32,
    },
    /// Boxed: a standby engine (deployment clone + simulator) dwarfs a
    /// request, and markers are rare.
    Swap {
        engine: Box<ServeEngine<S>>,
        version: u64,
        fingerprint: u64,
    },
}

/// What became of an accepted request, held in the shared result map
/// until the submitter collects it.
enum Outcome {
    Served(ServeResult),
    /// A [`PolicySpec::RiskTiered`] replica refused to answer ⇒
    /// [`VibnnError::Abstained`] (typed, exactly attributable: the
    /// caller learns the sample spend and the entropy that triggered
    /// the refusal).
    Abstained { samples_used: u32, entropy_milli: u32 },
    /// Deadline expired in the queue ⇒ [`VibnnError::DeadlineExceeded`].
    Expired,
    /// Stranded behind a swap marker at shutdown ⇒
    /// [`VibnnError::EngineStopped`].
    Cancelled,
}

impl Outcome {
    fn into_result(self) -> Result<ServeResult, VibnnError> {
        match self {
            Outcome::Served(r) => Ok(r),
            Outcome::Abstained {
                samples_used,
                entropy_milli,
            } => Err(VibnnError::Abstained {
                samples_used,
                entropy_milli,
            }),
            Outcome::Expired => Err(VibnnError::DeadlineExceeded),
            Outcome::Cancelled => Err(VibnnError::EngineStopped),
        }
    }
}

/// The deterministic lane-aware micro-batch selection rule, as a pure
/// function so the policy is testable without threads. `lanes` is the
/// (lane, skip count) of each dequeueable request in queue order;
/// returns which ones the next micro-batch takes (at most `max_batch`).
///
/// Three passes, each in queue order: overdue batch requests
/// (`skips >= skip_bound`) first — the anti-starvation promise — then
/// interactive, then fresh batch.
fn select_microbatch(lanes: &[(Priority, u32)], max_batch: usize, skip_bound: u32) -> Vec<bool> {
    let mut take = vec![false; lanes.len()];
    let mut taken = 0usize;
    let passes: [&dyn Fn(Priority, u32) -> bool; 3] = [
        &|lane, skips| lane == Priority::Batch && skips >= skip_bound,
        &|lane, _| lane == Priority::Interactive,
        &|lane, _| lane == Priority::Batch,
    ];
    for pass in passes {
        for (i, &(lane, skips)) in lanes.iter().enumerate() {
            if taken == max_batch {
                return take;
            }
            if !take[i] && pass(lane, skips) {
                take[i] = true;
                taken += 1;
            }
        }
    }
    take
}

struct ReplicaState<S: StreamFork + Sync> {
    queue: VecDeque<Work<S>>,
    /// `Request` items currently in `queue` (markers excluded).
    pending: usize,
    served: u64,
    /// Version the dispatcher is currently serving with.
    version: u64,
    /// Version a request submitted *now* would be served by (`> version`
    /// while a swap marker is queued).
    queued_version: u64,
    /// Fingerprint of the checkpoint the dispatcher is serving with.
    fingerprint: u64,
    /// Fingerprint a request submitted *now* would be answered under.
    /// Spill equivalence is judged on this, since routing decides the
    /// fate of future requests.
    queued_fingerprint: u64,
    batch_hist: Vec<u64>,
    alive: bool,
    /// Backend kind of this replica's serving slot. Fixed at
    /// construction; hot swaps replace the checkpoint, never the
    /// backend, so spill equivalence can gate on it directly.
    backend: BackendKind,
    /// Cumulative backend cost charged by this replica (survives hot
    /// swaps — it is the slot's bill, not the engine's).
    cost: BackendCost,
    /// Sampling policy of this replica's serving slot. Fixed at
    /// construction like the backend; spill equivalence gates on it so
    /// a request admitted under one policy is never answered under
    /// another.
    policy: PolicySpec,
}

struct ClusterState<S: StreamFork + Sync> {
    replicas: Vec<ReplicaState<S>>,
    results: HashMap<u64, Outcome>,
    next_id: u64,
    /// Requests queued cluster-wide (the admission-control gauge).
    queued_total: usize,
    submitted: u64,
    served_total: u64,
    served_interactive: u64,
    served_batch: u64,
    spilled: u64,
    rejected: u64,
    deadline_expired: u64,
    cancelled: u64,
    swaps_completed: u64,
    /// `(entropy, mc_std)` of the last [`UNCERTAINTY_WINDOW`] served
    /// requests, in completion order (the windowed-mean source).
    uncertainty_recent: VecDeque<(f64, f64)>,
    /// Cumulative normalized-entropy histogram over every served
    /// request ([`ENTROPY_BUCKETS`] buckets).
    entropy_hist: Vec<u64>,
    /// Total `samples_used` across served requests (the
    /// [`SamplingStats`] numerator).
    samples_used_total: u64,
    /// `samples_used` histogram over served requests (bucket `s - 1`
    /// counts requests answered with exactly `s` samples; length = the
    /// founding `mc_samples`, last bucket absorbing).
    samples_hist: Vec<u64>,
    /// Requests that ended in a typed abstention.
    abstained: u64,
    /// Requests shed at admission by the deadline/cost budget gate.
    budget_shed: u64,
    stop: bool,
}

/// Shutdown promises nothing to requests queued **behind** a swap
/// marker (they were promised the *new* version, which will never
/// serve), so fail them cleanly now instead of relying on dispatcher
/// timing to drain them. Markers themselves stay queued, in order, so
/// in-flight [`ClusterEngine::hot_swap`] waiters still resolve. Call
/// with `stop` already set; the caller wakes the condvars.
fn cancel_stranded_requests<S: StreamFork + Sync>(st: &mut ClusterState<S>) {
    debug_assert!(st.stop);
    for r in 0..st.replicas.len() {
        let Some(marker) = st.replicas[r]
            .queue
            .iter()
            .position(|w| matches!(w, Work::Swap { .. }))
        else {
            continue;
        };
        let mut i = marker + 1;
        while i < st.replicas[r].queue.len() {
            if matches!(st.replicas[r].queue[i], Work::Request { .. }) {
                if let Some(Work::Request { id, .. }) = st.replicas[r].queue.remove(i) {
                    st.results.insert(id, Outcome::Cancelled);
                    st.replicas[r].pending -= 1;
                    st.queued_total -= 1;
                    st.cancelled += 1;
                }
            } else {
                i += 1;
            }
        }
    }
}

struct ClusterShared<S: StreamFork + Sync> {
    state: Mutex<ClusterState<S>>,
    /// Signalled on new work (and on stop); all dispatchers re-check
    /// their own queue.
    work_ready: Condvar,
    /// Signalled when results are published or a dispatcher exits.
    result_ready: Condvar,
    /// Signalled when a dispatcher applies a swap marker.
    swap_applied: Condvar,
    max_queue: usize,
    max_batch: usize,
    skip_bound: u32,
    spill: bool,
    input_dim: usize,
    /// `ln(classes)` of the founding deployment — the normalizer for the
    /// entropy histogram (hot swaps keep the founding scale so buckets
    /// stay comparable across versions).
    max_entropy: f64,
    /// Founding deployment's full Monte Carlo budget — the predicted
    /// work multiplier for the admission budget gate and the
    /// `samples_used` histogram length.
    mc_samples: usize,
    /// Founding deployment's accelerator clock, for converting a
    /// predicted cycle count into wall time at admission.
    clock_mhz: f64,
}

impl<S: StreamFork + Sync> ClusterShared<S> {
    fn lock(&self) -> MutexGuard<'_, ClusterState<S>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Clears the replica's `alive` flag and wakes every waiter when its
/// dispatcher exits — by any path, including unwinding.
struct AliveGuard<'a, S: StreamFork + Sync> {
    shared: &'a ClusterShared<S>,
    replica: usize,
}

impl<S: StreamFork + Sync> Drop for AliveGuard<'_, S> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.replicas[self.replica].alive = false;
        drop(st);
        self.shared.result_ready.notify_all();
        self.shared.swap_applied.notify_all();
    }
}

/// A pool of serving replicas behind one deterministic router.
///
/// Construction clones the deployment into `cfg.replicas` replicas, each
/// with its own dispatcher thread and micro-batching [`ServeEngine`]
/// whose ε source is derived from the cluster source by
/// [`vibnn_bnn::replica_source`]. Submit single-row requests with
/// [`submit`](Self::submit), collect by id with [`wait`](Self::wait) /
/// [`try_take`](Self::try_take), observe with
/// [`metrics`](Self::metrics), and roll out new checkpoints with
/// [`hot_swap`](Self::hot_swap) — see the [module docs](self) for the
/// determinism and swap contracts.
///
/// # Example
///
/// ```
/// use vibnn::bnn::{Bnn, BnnConfig};
/// use vibnn::cluster::{ClusterConfig, ClusterEngine};
/// use vibnn::nn::Matrix;
/// use vibnn::VibnnBuilder;
///
/// let bnn = Bnn::new(BnnConfig::new(&[4, 8, 3]), 7);
/// let vibnn = VibnnBuilder::new(bnn.params())
///     .mc_samples(4)
///     .calibration(Matrix::zeros(2, 4))
///     .build()?;
/// let cluster = ClusterEngine::new(
///     vibnn,
///     ClusterConfig {
///         replicas: 2,
///         ..ClusterConfig::default()
///     },
/// )?;
/// let id = cluster.submit(vec![0.0; 4])?;
/// let result = cluster.wait(id)?;
/// assert_eq!(result.proba.len(), 3);
/// let metrics = cluster.metrics();
/// assert_eq!(metrics.replicas.len(), 2);
/// assert_eq!(metrics.served, 1);
/// cluster.shutdown();
/// # Ok::<(), vibnn::VibnnError>(())
/// ```
pub struct ClusterEngine<S: StreamFork + Sync + Send + 'static = ZigguratGrng> {
    shared: Arc<ClusterShared<S>>,
    /// The cluster ε source; standby engines for hot swaps derive their
    /// substream from it exactly like the founding replicas did.
    eps: S,
    serve_cfg: ServeConfig,
    dispatchers: Vec<JoinHandle<()>>,
}

impl<S: StreamFork + Sync + Send> std::fmt::Debug for ClusterEngine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterEngine")
            .field("replicas", &self.dispatchers.len())
            .field("max_queue", &self.shared.max_queue)
            .finish_non_exhaustive()
    }
}

impl ClusterEngine<ZigguratGrng> {
    /// Builds a cluster over `cfg.replicas` clones of the deployment with
    /// a default software cluster source (`ZigguratGrng` seeded from a
    /// fixed cluster constant). Use [`with_eps`](Self::with_eps) for a
    /// specific generator.
    ///
    /// # Errors
    ///
    /// [`VibnnError::BadServeConfig`] if `replicas`, `max_batch`, or
    /// `max_queue` is 0.
    pub fn new(vibnn: Vibnn, cfg: ClusterConfig) -> Result<Self, VibnnError> {
        Self::with_eps(vibnn, cfg, ZigguratGrng::new(0xC1D5_5EED))
    }
}

impl<S: StreamFork + Sync + Send + 'static> ClusterEngine<S> {
    /// Builds a cluster with an explicit cluster ε source. Every replica
    /// serves with [`vibnn_bnn::replica_source`]`(&eps)` — identical
    /// streams, independently owned instances (see the
    /// [module docs](self)).
    ///
    /// # Errors
    ///
    /// [`VibnnError::BadServeConfig`] if `replicas`, `max_batch`, or
    /// `max_queue` is 0.
    pub fn with_eps(vibnn: Vibnn, cfg: ClusterConfig, eps: S) -> Result<Self, VibnnError> {
        let kind = cfg.backend.unwrap_or_else(|| vibnn.default_backend());
        let policy = cfg.policy.unwrap_or_else(|| vibnn.default_policy());
        let slots = vec![(kind, policy); cfg.replicas];
        Self::with_slots(vibnn, cfg, eps, slots)
    }

    /// Builds a **mixed pool**: replica `i` dispatches through
    /// `backends[i]`. The router is unchanged (home replica is still
    /// `id mod replicas`), but spill is restricted to replicas of the
    /// same checkpoint fingerprint, backend kind, *and* sampling
    /// policy, so every answer is attributable to exactly one
    /// `(version, backend, policy)` triple. `backends` must have
    /// exactly `cfg.replicas` entries; `cfg.backend` is ignored (every
    /// replica samples under `cfg.policy` / the deployment default).
    ///
    /// # Errors
    ///
    /// [`VibnnError::BadServeConfig`] if `replicas`, `max_batch`, or
    /// `max_queue` is 0, or `backends.len() != cfg.replicas`.
    pub fn with_backends(
        vibnn: Vibnn,
        cfg: ClusterConfig,
        eps: S,
        backends: &[BackendKind],
    ) -> Result<Self, VibnnError> {
        if backends.len() != cfg.replicas {
            return Err(VibnnError::BadServeConfig(
                "one backend kind per replica required",
            ));
        }
        let policy = cfg.policy.unwrap_or_else(|| vibnn.default_policy());
        let slots = backends.iter().map(|&k| (k, policy)).collect();
        Self::with_slots(vibnn, cfg, eps, slots)
    }

    /// Builds a **mixed-policy pool**: replica `i` samples under
    /// `policies[i]` (all through the same backend, `cfg.backend` / the
    /// deployment default). Useful for canarying an adaptive policy on
    /// part of the pool while the rest stays on the pinned
    /// [`PolicySpec::ExactN`] reference. Spill never crosses a policy
    /// boundary, so the two halves stay exactly attributable.
    /// `policies` must have exactly `cfg.replicas` entries;
    /// `cfg.policy` is ignored.
    ///
    /// # Errors
    ///
    /// [`VibnnError::BadServeConfig`] if `replicas`, `max_batch`, or
    /// `max_queue` is 0, `policies.len() != cfg.replicas`, or any
    /// policy fails [`PolicySpec::validate`].
    pub fn with_policies(
        vibnn: Vibnn,
        cfg: ClusterConfig,
        eps: S,
        policies: &[PolicySpec],
    ) -> Result<Self, VibnnError> {
        if policies.len() != cfg.replicas {
            return Err(VibnnError::BadServeConfig(
                "one sampling policy per replica required",
            ));
        }
        let kind = cfg.backend.unwrap_or_else(|| vibnn.default_backend());
        let slots = policies.iter().map(|&p| (kind, p)).collect();
        Self::with_slots(vibnn, cfg, eps, slots)
    }

    fn with_slots(
        vibnn: Vibnn,
        cfg: ClusterConfig,
        eps: S,
        slots: Vec<(BackendKind, PolicySpec)>,
    ) -> Result<Self, VibnnError> {
        if cfg.replicas == 0 {
            return Err(VibnnError::BadServeConfig("replicas must be positive"));
        }
        let serve_cfg = ServeConfig {
            max_batch: cfg.max_batch,
            max_queue: cfg.max_queue,
            workers: cfg.workers,
            backend: None,
            policy: None,
        };
        let input_dim = vibnn.input_dim();
        let max_entropy = (vibnn.classes() as f64).ln();
        let mc_samples = vibnn.mc_samples();
        let clock_mhz = vibnn.config().clock_mhz;
        let fingerprint = checkpoint_fingerprint(&vibnn);
        // Build every replica engine up front so a bad config fails before
        // any thread spawns.
        let mut engines = Vec::with_capacity(cfg.replicas);
        for &(kind, policy) in &slots {
            engines.push(ServeEngine::with_eps(
                vibnn.clone(),
                ServeConfig {
                    backend: Some(kind),
                    policy: Some(policy),
                    ..serve_cfg
                },
                replica_source(&eps),
            )?);
        }
        let shared = Arc::new(ClusterShared {
            state: Mutex::new(ClusterState {
                replicas: slots
                    .iter()
                    .map(|&(kind, policy)| ReplicaState {
                        queue: VecDeque::new(),
                        pending: 0,
                        served: 0,
                        version: 0,
                        queued_version: 0,
                        fingerprint,
                        queued_fingerprint: fingerprint,
                        batch_hist: vec![0; cfg.max_batch],
                        alive: true,
                        backend: kind,
                        cost: BackendCost::default(),
                        policy,
                    })
                    .collect(),
                results: HashMap::new(),
                next_id: 0,
                queued_total: 0,
                submitted: 0,
                served_total: 0,
                served_interactive: 0,
                served_batch: 0,
                spilled: 0,
                rejected: 0,
                deadline_expired: 0,
                cancelled: 0,
                swaps_completed: 0,
                uncertainty_recent: VecDeque::with_capacity(UNCERTAINTY_WINDOW),
                entropy_hist: vec![0; ENTROPY_BUCKETS],
                samples_used_total: 0,
                samples_hist: vec![0; mc_samples],
                abstained: 0,
                budget_shed: 0,
                stop: false,
            }),
            work_ready: Condvar::new(),
            result_ready: Condvar::new(),
            swap_applied: Condvar::new(),
            max_queue: cfg.max_queue,
            max_batch: cfg.max_batch,
            skip_bound: cfg.batch_skip_bound,
            spill: cfg.spill,
            input_dim,
            max_entropy,
            mc_samples,
            clock_mhz,
        });
        let dispatchers = engines
            .into_iter()
            .enumerate()
            .map(|(r, engine)| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let _alive = AliveGuard {
                        shared: &shared,
                        replica: r,
                    };
                    dispatcher_loop(r, engine, &shared);
                })
            })
            .collect();
        Ok(Self {
            shared,
            eps,
            serve_cfg,
            dispatchers,
        })
    }

    /// Number of replicas in the pool.
    pub fn replicas(&self) -> usize {
        self.dispatchers.len()
    }

    /// The ε source every replica serves with — the substream
    /// [`vibnn_bnn::replica_source`] derives from the cluster source.
    /// Feed this to a single [`ServeEngine`] or to
    /// [`Vibnn::predict_proba_parallel`] to reproduce the cluster's
    /// results bit for bit.
    pub fn replica_eps(&self) -> S {
        replica_source(&self.eps)
    }

    /// Submits one request (a single feature row) and returns its cluster
    /// request id. The id also determines the home replica
    /// (`id mod replicas`); with [`ClusterConfig::spill`] the request may
    /// be placed on a less-loaded replica of the same checkpoint
    /// fingerprint — which, by the determinism contract, serves it
    /// identically.
    ///
    /// # Errors
    ///
    /// - [`VibnnError::ShapeMismatch`] — the row is not
    ///   [`Vibnn::input_dim`] values wide.
    /// - [`VibnnError::QueueFull`] — cluster-level backpressure; carries
    ///   the observed depth and configured capacity for informed backoff.
    /// - [`VibnnError::EngineStopped`] — the cluster is shut down, or no
    ///   replica equivalent to the home replica is alive.
    pub fn submit(&self, features: Vec<f32>) -> Result<u64, VibnnError> {
        self.submit_with(features, SubmitOptions::default())
    }

    /// [`submit`](Self::submit) with an explicit lane and deadline.
    ///
    /// # Errors
    ///
    /// Everything [`submit`](Self::submit) can return, plus
    /// [`VibnnError::DeadlineExceeded`] when `opts.deadline` has already
    /// passed — the request is refused at the admission gate, before an
    /// id is issued or a replica touched — and
    /// [`VibnnError::BudgetExceeded`] when the target replica is a
    /// [`BackendKind::Cycle`] slot whose cost ledger predicts a
    /// full-budget pass longer than the time left until `opts.deadline`
    /// (also refused before an id is issued; counted in
    /// [`SamplingStats::budget_shed`]).
    pub fn submit_with(&self, features: Vec<f32>, opts: SubmitOptions) -> Result<u64, VibnnError> {
        if features.len() != self.shared.input_dim {
            return Err(VibnnError::ShapeMismatch {
                context: "request width",
                expected: self.shared.input_dim,
                got: features.len(),
            });
        }
        let mut st = self.shared.lock();
        if st.stop {
            return Err(VibnnError::EngineStopped);
        }
        if opts
            .deadline
            .is_some_and(|d| d <= std::time::Instant::now())
        {
            st.deadline_expired += 1;
            return Err(VibnnError::DeadlineExceeded);
        }
        if st.queued_total >= self.shared.max_queue {
            st.rejected += 1;
            return Err(VibnnError::QueueFull {
                depth: st.queued_total,
                capacity: self.shared.max_queue,
            });
        }
        let id = st.next_id;
        let home = (id % st.replicas.len() as u64) as usize;
        // Route: home replica, unless spill finds a strictly less-loaded
        // *equivalent* replica (same queued checkpoint fingerprint AND
        // same backend kind AND same sampling policy — never across a
        // checkpoint, backend, or policy boundary, so every answer stays
        // attributable to one `(version, backend, policy)` triple).
        let home_fp = st.replicas[home].queued_fingerprint;
        let home_backend = st.replicas[home].backend;
        let home_policy = st.replicas[home].policy;
        let mut target = if st.replicas[home].alive {
            Some((home, st.replicas[home].pending))
        } else {
            None
        };
        if self.shared.spill || target.is_none() {
            for (i, rep) in st.replicas.iter().enumerate() {
                if i == home
                    || !rep.alive
                    || rep.queued_fingerprint != home_fp
                    || rep.backend != home_backend
                    || rep.policy != home_policy
                {
                    continue;
                }
                if target.map_or(true, |(_, pending)| rep.pending < pending) {
                    target = Some((i, rep.pending));
                }
            }
        }
        let Some((target, _)) = target else {
            // Nothing equivalent to the home replica is alive; serving
            // elsewhere could change the result, so refuse instead.
            return Err(VibnnError::EngineStopped);
        };
        // Cost budget gate: on a cycle-accurate replica whose ledger
        // already prices a sample, a deadlined request whose remaining
        // time cannot cover a worst-case full-budget pass is shed now —
        // typed, counted, and free of Monte Carlo work — instead of
        // expiring in the queue after burning a dispatch slot. The
        // prediction uses the slot's observed mean cycles per sample and
        // the *full* `mc_samples` budget (adaptive policies may finish
        // earlier, but admission must not bet on it).
        if let Some(deadline) = opts.deadline {
            let rep = &st.replicas[target];
            if rep.backend == BackendKind::Cycle
                && rep.cost.samples > 0
                && self.shared.clock_mhz > 0.0
            {
                let per_sample = rep.cost.cycles as f64 / rep.cost.samples as f64;
                let predicted_secs = per_sample * self.shared.mc_samples as f64
                    / (self.shared.clock_mhz * 1e6);
                let remaining = deadline
                    .saturating_duration_since(std::time::Instant::now())
                    .as_secs_f64();
                if predicted_secs > remaining {
                    st.budget_shed += 1;
                    return Err(VibnnError::BudgetExceeded {
                        predicted_micros: (predicted_secs * 1e6) as u64,
                        remaining_micros: (remaining * 1e6) as u64,
                    });
                }
            }
        }
        st.next_id += 1;
        st.submitted += 1;
        st.queued_total += 1;
        st.spilled += u64::from(target != home);
        let rep = &mut st.replicas[target];
        rep.pending += 1;
        rep.queue.push_back(Work::Request {
            id,
            features,
            lane: opts.priority,
            deadline: opts.deadline,
            skips: 0,
        });
        drop(st);
        self.shared.work_ready.notify_all();
        Ok(id)
    }

    /// Takes a finished outcome without blocking, if it is ready:
    /// `Ok` with the result, or the typed failure that consumed the
    /// request ([`VibnnError::DeadlineExceeded`] for in-queue expiry,
    /// [`VibnnError::EngineStopped`] for shutdown cancellation).
    pub fn try_take(&self, id: u64) -> Option<Result<ServeResult, VibnnError>> {
        self.shared
            .lock()
            .results
            .remove(&id)
            .map(Outcome::into_result)
    }

    /// Blocks until the outcome for `id` is ready and takes it.
    ///
    /// # Errors
    ///
    /// - [`VibnnError::UnknownRequest`] — `id` was never issued.
    /// - [`VibnnError::DeadlineExceeded`] — the deadline expired while
    ///   the request was queued.
    /// - [`VibnnError::EngineStopped`] — the request was cancelled at
    ///   shutdown, or a dispatcher exited before the result was
    ///   produced.
    pub fn wait(&self, id: u64) -> Result<ServeResult, VibnnError> {
        let mut st = self.shared.lock();
        if id >= st.next_id {
            return Err(VibnnError::UnknownRequest(id));
        }
        loop {
            if let Some(out) = st.results.remove(&id) {
                return out.into_result();
            }
            // Any dead replica may hold this request forever; error out
            // instead of risking a hang. (Replicas die only on panic or
            // shutdown.)
            if st.replicas.iter().any(|r| !r.alive) {
                return Err(VibnnError::EngineStopped);
            }
            st = self
                .shared
                .result_ready
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A consistent snapshot of cluster and per-replica state.
    pub fn metrics(&self) -> ClusterMetrics {
        let st = self.shared.lock();
        ClusterMetrics {
            replicas: st
                .replicas
                .iter()
                .map(|r| ReplicaMetrics {
                    queue_depth: r.pending,
                    served: r.served,
                    version: r.version,
                    checkpoint_fingerprint: r.fingerprint,
                    swap_pending: r.queued_version > r.version,
                    alive: r.alive,
                    batch_histogram: r.batch_hist.clone(),
                    backend: r.backend,
                    cost: r.cost,
                    policy: r.policy,
                })
                .collect(),
            cost: st.replicas.iter().fold(BackendCost::default(), |mut acc, r| {
                acc.accumulate(r.cost);
                acc
            }),
            sampling: SamplingStats {
                samples_used_total: st.samples_used_total,
                mean_samples: if st.served_total == 0 {
                    0.0
                } else {
                    st.samples_used_total as f64 / st.served_total as f64
                },
                histogram: st.samples_hist.clone(),
                abstained: st.abstained,
                budget_shed: st.budget_shed,
            },
            queued: st.queued_total,
            capacity: self.shared.max_queue,
            submitted: st.submitted,
            served: st.served_total,
            spilled: st.spilled,
            rejected: st.rejected,
            deadline_expired: st.deadline_expired,
            cancelled: st.cancelled,
            served_interactive: st.served_interactive,
            served_batch: st.served_batch,
            swaps_completed: st.swaps_completed,
            draining: st
                .replicas
                .iter()
                .any(|r| r.queued_version > r.version)
                || (st.stop && st.queued_total > 0),
            uncertainty: {
                let count = st.uncertainty_recent.len();
                let (se, ss) = st
                    .uncertainty_recent
                    .iter()
                    .fold((0.0f64, 0.0f64), |(ae, astd), (e, s)| (ae + e, astd + s));
                UncertaintyStats {
                    window: UNCERTAINTY_WINDOW as u64,
                    count: count as u64,
                    entropy_mean: if count == 0 { 0.0 } else { se / count as f64 },
                    mc_std_mean: if count == 0 { 0.0 } else { ss / count as f64 },
                    entropy_histogram: st.entropy_hist.clone(),
                }
            },
        }
    }

    /// Hot-swaps `replica` to a new deployment: builds a **standby**
    /// engine around `vibnn` (with the cluster's replica ε substream),
    /// enqueues a swap marker, and blocks until the dispatcher has
    /// drained every request queued ahead of the marker through the old
    /// engine and switched to the standby. Requests keep flowing the
    /// whole time — none are dropped, none are served twice; submissions
    /// after this call returns are answered by the new version.
    ///
    /// # Errors
    ///
    /// - [`VibnnError::UnknownReplica`] — `replica` is out of range.
    /// - [`VibnnError::ShapeMismatch`] — the new deployment's input width
    ///   differs from the cluster's.
    /// - [`VibnnError::BadServeConfig`] — never for a cluster-validated
    ///   config (propagated from standby construction).
    /// - [`VibnnError::EngineStopped`] — the cluster is shut down or the
    ///   replica's dispatcher has exited.
    pub fn hot_swap(&self, replica: usize, vibnn: Vibnn) -> Result<SwapReport, VibnnError> {
        if replica >= self.dispatchers.len() {
            return Err(VibnnError::UnknownReplica(replica));
        }
        if vibnn.input_dim() != self.shared.input_dim {
            return Err(VibnnError::ShapeMismatch {
                context: "replica input width",
                expected: self.shared.input_dim,
                got: vibnn.input_dim(),
            });
        }
        // Standby construction (quantization, simulator setup) happens
        // before any queue mutation, so it never stalls the dispatcher.
        // The standby keeps the replica's backend kind and sampling
        // policy: both are properties of the serving slot, not of the
        // checkpoint.
        let (kind, policy) = {
            let st = self.shared.lock();
            (st.replicas[replica].backend, st.replicas[replica].policy)
        };
        let fingerprint = checkpoint_fingerprint(&vibnn);
        let engine = ServeEngine::with_eps(
            vibnn,
            ServeConfig {
                backend: Some(kind),
                policy: Some(policy),
                ..self.serve_cfg
            },
            replica_source(&self.eps),
        )?;
        let mut st = self.shared.lock();
        if st.stop || !st.replicas[replica].alive {
            return Err(VibnnError::EngineStopped);
        }
        let version = st.replicas[replica].queued_version + 1;
        let drained = st.replicas[replica].pending as u64;
        let rep = &mut st.replicas[replica];
        rep.queued_version = version;
        rep.queued_fingerprint = fingerprint;
        rep.queue.push_back(Work::Swap {
            engine: Box::new(engine),
            version,
            fingerprint,
        });
        drop(st);
        self.shared.work_ready.notify_all();
        let mut st = self.shared.lock();
        while st.replicas[replica].version < version {
            if !st.replicas[replica].alive {
                return Err(VibnnError::EngineStopped);
            }
            st = self
                .shared
                .swap_applied
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        Ok(SwapReport {
            replica,
            version,
            drained,
        })
    }

    /// [`hot_swap`](Self::hot_swap) from a kind-3 deployment checkpoint
    /// file (see [`Vibnn::load`]).
    ///
    /// # Errors
    ///
    /// Any [`Vibnn::load`] error, plus every [`hot_swap`](Self::hot_swap)
    /// error.
    pub fn hot_swap_from(
        &self,
        replica: usize,
        path: impl AsRef<Path>,
    ) -> Result<SwapReport, VibnnError> {
        self.hot_swap(replica, Vibnn::load(path)?)
    }

    /// Rolls a new deployment across every replica, one hot swap at a
    /// time (replica 0 first). Traffic keeps flowing throughout; once
    /// this returns, every replica serves the new checkpoint — and since
    /// spill equivalence is judged on the checkpoint fingerprint (not
    /// the per-replica version counters, which may differ), spill is
    /// fully re-enabled across the pool.
    ///
    /// # Errors
    ///
    /// The first [`hot_swap`](Self::hot_swap) error; earlier replicas
    /// stay swapped.
    pub fn rollout(&self, vibnn: Vibnn) -> Result<Vec<SwapReport>, VibnnError> {
        (0..self.dispatchers.len())
            .map(|r| self.hot_swap(r, vibnn.clone()))
            .collect()
    }

    /// Stops every dispatcher after it drains its queue, joins them, and
    /// returns every unclaimed **served** result sorted by request id.
    /// Requests stranded behind a queued swap marker are failed with
    /// [`VibnnError::EngineStopped`] rather than drained (their
    /// submitters learn this from [`wait`](Self::wait) /
    /// [`try_take`](Self::try_take) — or did already, before this call).
    pub fn shutdown(mut self) -> Vec<ServeResult> {
        self.stop_and_join();
        let mut leftover: Vec<ServeResult> = self
            .shared
            .lock()
            .results
            .drain()
            .filter_map(|(_, o)| match o {
                Outcome::Served(r) => Some(r),
                Outcome::Abstained { .. } | Outcome::Expired | Outcome::Cancelled => None,
            })
            .collect();
        leftover.sort_by_key(|r| r.id);
        leftover
    }

    /// Begins a graceful stop **without** consuming the engine: refuses
    /// new submissions, cancels requests stranded behind queued swap
    /// markers, and blocks until every live dispatcher has drained its
    /// queue. Safe to call concurrently with submitters, waiters, and
    /// in-flight [`hot_swap`](Self::hot_swap)s (whose markers still
    /// apply, in order) — this is what makes shutdown-under-rollout
    /// hang-free by construction instead of by dispatcher timing.
    /// Idempotent; [`shutdown`](Self::shutdown) or drop still joins the
    /// dispatcher threads afterwards.
    pub fn drain(&self) {
        self.request_stop();
        let mut st = self.shared.lock();
        while st.replicas.iter().any(|r| r.alive && !r.queue.is_empty()) {
            st = self
                .shared
                .result_ready
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Sets `stop`, fails stranded requests, and wakes everyone.
    fn request_stop(&self) {
        {
            let mut st = self.shared.lock();
            st.stop = true;
            cancel_stranded_requests(&mut st);
        }
        self.shared.work_ready.notify_all();
        self.shared.result_ready.notify_all();
    }

    fn stop_and_join(&mut self) {
        self.request_stop();
        for worker in self.dispatchers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl<S: StreamFork + Sync + Send> Drop for ClusterEngine<S> {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// One replica's dispatcher: drain own queue → micro-batch through the
/// serving engine → publish into the shared result map; apply swap
/// markers in queue order; exit once asked to stop *and* the queue is
/// fully drained.
fn dispatcher_loop<S: StreamFork + Sync + Send>(
    r: usize,
    mut engine: ServeEngine<S>,
    shared: &ClusterShared<S>,
) {
    loop {
        let mut batch: Vec<(u64, Vec<f32>, Priority)> = Vec::new();
        let mut swap: Option<Box<ServeEngine<S>>> = None;
        let mut expired_any = false;
        {
            let mut st = shared.lock();
            loop {
                if !st.replicas[r].queue.is_empty() {
                    break;
                }
                if st.stop {
                    // Queue fully drained (markers included): exit. The
                    // `AliveGuard` clears `alive` and wakes waiters.
                    return;
                }
                st = shared
                    .work_ready
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            if matches!(st.replicas[r].queue.front(), Some(Work::Swap { .. })) {
                let rep = &mut st.replicas[r];
                if let Some(Work::Swap {
                    engine,
                    version,
                    fingerprint,
                }) = rep.queue.pop_front()
                {
                    rep.version = version;
                    rep.fingerprint = fingerprint;
                    swap = Some(engine);
                }
                st.swaps_completed += 1;
            } else {
                // Expiry and selection are both restricted to the
                // contiguous run of requests ahead of any swap marker, so
                // a micro-batch is always served by one checkpoint
                // version. Expiry first: a late request must never cost
                // Monte Carlo work or a micro-batch slot.
                let now = std::time::Instant::now();
                let stm = &mut *st;
                let rep = &mut stm.replicas[r];
                let mut i = 0;
                while i < rep.queue.len() {
                    let late = match &rep.queue[i] {
                        Work::Swap { .. } => break,
                        Work::Request { deadline, .. } => {
                            (*deadline).is_some_and(|d| d <= now)
                        }
                    };
                    if late {
                        if let Some(Work::Request { id, .. }) = rep.queue.remove(i) {
                            stm.results.insert(id, Outcome::Expired);
                            rep.pending -= 1;
                            stm.queued_total -= 1;
                            stm.deadline_expired += 1;
                            expired_any = true;
                        }
                    } else {
                        i += 1;
                    }
                }
                let lanes: Vec<(Priority, u32)> = rep
                    .queue
                    .iter()
                    .take_while(|w| matches!(w, Work::Request { .. }))
                    .map(|w| match w {
                        Work::Request { lane, skips, .. } => (*lane, *skips),
                        Work::Swap { .. } => unreachable!("take_while excludes markers"),
                    })
                    .collect();
                let take = select_microbatch(&lanes, shared.max_batch, shared.skip_bound);
                // Remove selected entries back-to-front so earlier
                // indices stay valid; every passed-over request in the
                // scan window accrues a skip.
                for i in (0..take.len()).rev() {
                    if take[i] {
                        if let Some(Work::Request {
                            id, features, lane, ..
                        }) = rep.queue.remove(i)
                        {
                            batch.push((id, features, lane));
                        }
                    } else if let Some(Work::Request { skips, .. }) = rep.queue.get_mut(i) {
                        *skips += 1;
                    }
                }
                batch.reverse();
                rep.pending -= batch.len();
                stm.queued_total -= batch.len();
            }
        }
        if expired_any {
            // Waiters on an expired id must learn its fate now, even if
            // this round dispatches nothing else.
            shared.result_ready.notify_all();
        }
        if let Some(standby) = swap {
            engine = *standby;
            shared.swap_applied.notify_all();
            // `drain` watches queue emptiness on `result_ready`.
            shared.result_ready.notify_all();
            continue;
        }
        if batch.is_empty() {
            // Everything eligible this round expired.
            continue;
        }
        let mut x = Matrix::zeros(batch.len(), shared.input_dim);
        for (row, (_, features, _)) in batch.iter().enumerate() {
            x.row_mut(row).copy_from_slice(features);
        }
        // The synchronous serve path: one micro-batch, bit-identical to
        // the one-shot batched inference call under `ExactN` and to the
        // pure per-row adaptive drivers otherwise (row widths were
        // validated at the cluster gate, so this cannot fail).
        let (outcomes, cost) = engine
            .submit_batch_outcomes_costed(&x)
            .expect("validated request width");
        {
            let mut st = shared.lock();
            let n = batch.len();
            let mut served = 0u64;
            for ((id, _, lane), mut outcome) in batch.into_iter().zip(outcomes) {
                outcome.set_id(id);
                match outcome {
                    RowOutcome::Served(result) => {
                        // Uncertainty tap: a deque push + histogram
                        // increments per request under the lock already
                        // held for publishing — no extra synchronization
                        // on the serve path. Early-exit entropies flow
                        // through here unchanged, so the uncertainty
                        // trigger sees whatever the policy computed.
                        if st.uncertainty_recent.len() == UNCERTAINTY_WINDOW {
                            st.uncertainty_recent.pop_front();
                        }
                        st.uncertainty_recent.push_back((result.entropy, result.mc_std));
                        let bucket = if shared.max_entropy > 0.0 {
                            ((result.entropy / shared.max_entropy * ENTROPY_BUCKETS as f64)
                                as usize)
                                .min(ENTROPY_BUCKETS - 1)
                        } else {
                            0
                        };
                        st.entropy_hist[bucket] += 1;
                        st.samples_used_total += u64::from(result.samples_used);
                        let hist_len = st.samples_hist.len();
                        let sb = (result.samples_used as usize)
                            .saturating_sub(1)
                            .min(hist_len - 1);
                        st.samples_hist[sb] += 1;
                        st.results.insert(id, Outcome::Served(result));
                        match lane {
                            Priority::Interactive => st.served_interactive += 1,
                            Priority::Batch => st.served_batch += 1,
                        }
                        served += 1;
                    }
                    RowOutcome::Abstained {
                        samples_used,
                        entropy_milli,
                        ..
                    } => {
                        st.abstained += 1;
                        st.results.insert(
                            id,
                            Outcome::Abstained {
                                samples_used,
                                entropy_milli,
                            },
                        );
                    }
                }
            }
            st.served_total += served;
            let rep = &mut st.replicas[r];
            rep.served += served;
            rep.batch_hist[n - 1] += 1;
            rep.cost.accumulate(cost);
        }
        shared.result_ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VibnnBuilder;
    use vibnn_bnn::{Bnn, BnnConfig};

    fn tiny_vibnn(seed: u64) -> Vibnn {
        let bnn = Bnn::new(BnnConfig::new(&[3, 6, 2]).with_sigma_init(0.1), seed);
        VibnnBuilder::new(bnn.params())
            .mc_samples(3)
            .calibration(Matrix::zeros(2, 3))
            .build()
            .unwrap()
    }

    #[test]
    fn zero_sized_configs_are_rejected() {
        for cfg in [
            ClusterConfig {
                replicas: 0,
                ..ClusterConfig::default()
            },
            ClusterConfig {
                max_batch: 0,
                ..ClusterConfig::default()
            },
            ClusterConfig {
                max_queue: 0,
                ..ClusterConfig::default()
            },
        ] {
            assert!(matches!(
                ClusterEngine::new(tiny_vibnn(1), cfg),
                Err(VibnnError::BadServeConfig(_))
            ));
        }
    }

    #[test]
    fn submit_validates_and_routes() {
        let cluster = ClusterEngine::new(
            tiny_vibnn(1),
            ClusterConfig {
                replicas: 2,
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(
            cluster.submit(vec![0.0; 5]),
            Err(VibnnError::ShapeMismatch {
                expected: 3,
                got: 5,
                ..
            })
        ));
        let a = cluster.submit(vec![0.0; 3]).unwrap();
        let b = cluster.submit(vec![0.5; 3]).unwrap();
        assert_eq!((a, b), (0, 1));
        assert!(cluster.wait(a).is_ok());
        assert!(cluster.wait(b).is_ok());
        assert!(matches!(
            cluster.wait(99),
            Err(VibnnError::UnknownRequest(99))
        ));
        let metrics = cluster.metrics();
        assert_eq!(metrics.submitted, 2);
        assert_eq!(metrics.served, 2);
        assert_eq!(metrics.queued, 0);
        let leftovers = cluster.shutdown();
        assert!(leftovers.is_empty());
    }

    #[test]
    fn uncertainty_tap_aggregates_served_requests() {
        let cluster = ClusterEngine::new(
            tiny_vibnn(1),
            ClusterConfig {
                replicas: 2,
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        let before = cluster.metrics().uncertainty;
        assert_eq!(before.count, 0);
        assert_eq!(before.entropy_mean, 0.0);
        assert_eq!(before.entropy_histogram, vec![0; ENTROPY_BUCKETS]);
        let n = 12usize;
        let ids: Vec<u64> = (0..n)
            .map(|i| cluster.submit(vec![0.1 * i as f32; 3]).unwrap())
            .collect();
        let results: Vec<ServeResult> =
            ids.iter().map(|&id| cluster.wait(id).unwrap()).collect();
        let u = cluster.metrics().uncertainty;
        assert_eq!(u.window, UNCERTAINTY_WINDOW as u64);
        assert_eq!(u.count, n as u64);
        assert_eq!(u.entropy_histogram.len(), ENTROPY_BUCKETS);
        assert_eq!(u.entropy_histogram.iter().sum::<u64>(), n as u64);
        // The window holds exactly these n results, so the means match
        // a direct aggregate (same f64 summation length, loose compare
        // to stay order-agnostic).
        let entropy_mean = results.iter().map(|r| r.entropy).sum::<f64>() / n as f64;
        let mc_std_mean = results.iter().map(|r| r.mc_std).sum::<f64>() / n as f64;
        assert!((u.entropy_mean - entropy_mean).abs() < 1e-12);
        assert!((u.mc_std_mean - mc_std_mean).abs() < 1e-12);
        // Entropies are bounded by ln(classes): the histogram never
        // overflows its top bucket's edge case.
        for r in &results {
            assert!(r.entropy <= (2f64).ln() + 1e-9);
        }
        cluster.shutdown();
    }

    #[test]
    fn cluster_queue_full_carries_depth_and_capacity() {
        // One replica, a 2-deep cluster queue, and a fast submit loop:
        // the mutex push is far cheaper than a dispatched micro-batch, so
        // the admission gate trips almost immediately.
        let cluster = ClusterEngine::new(
            tiny_vibnn(1),
            ClusterConfig {
                replicas: 1,
                max_batch: 1,
                max_queue: 2,
                workers: 1,
                spill: false,
                batch_skip_bound: 4,
                backend: None,
                policy: None,
            },
        )
        .unwrap();
        let mut accepted = Vec::new();
        let mut saw_full = false;
        for _ in 0..2000 {
            match cluster.submit(vec![0.1; 3]) {
                Ok(id) => accepted.push(id),
                Err(VibnnError::QueueFull { depth, capacity }) => {
                    assert_eq!(capacity, 2);
                    assert!(depth >= capacity, "{depth} < {capacity}");
                    saw_full = true;
                    break;
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!(saw_full, "queue never filled");
        for id in accepted {
            cluster.wait(id).unwrap();
        }
        assert_eq!(cluster.metrics().rejected, 1);
        cluster.shutdown();
    }

    #[test]
    fn hot_swap_rejects_bad_targets() {
        let cluster = ClusterEngine::new(
            tiny_vibnn(1),
            ClusterConfig {
                replicas: 2,
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(
            cluster.hot_swap(7, tiny_vibnn(2)),
            Err(VibnnError::UnknownReplica(7))
        ));
        // A deployment with a different input width cannot join the pool.
        let wide = Bnn::new(BnnConfig::new(&[5, 4, 2]), 3);
        let wide = VibnnBuilder::new(wide.params())
            .calibration(Matrix::zeros(2, 5))
            .build()
            .unwrap();
        assert!(matches!(
            cluster.hot_swap(0, wide),
            Err(VibnnError::ShapeMismatch {
                context: "replica input width",
                ..
            })
        ));
        cluster.shutdown();
    }

    #[test]
    fn hot_swap_tracks_versions_and_fingerprint_equivalence() {
        let cluster = ClusterEngine::new(
            tiny_vibnn(1),
            ClusterConfig {
                replicas: 2,
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        let m = cluster.metrics();
        assert_eq!(
            m.replicas[0].checkpoint_fingerprint,
            m.replicas[1].checkpoint_fingerprint,
            "founding replicas share one checkpoint"
        );
        let report = cluster.hot_swap(1, tiny_vibnn(9)).unwrap();
        assert_eq!(report.replica, 1);
        assert_eq!(report.version, 1);
        let m = cluster.metrics();
        assert_eq!(m.swaps_completed, 1);
        assert_eq!(m.replicas[0].version, 0);
        assert_eq!(m.replicas[1].version, 1);
        assert!(!m.replicas[1].swap_pending);
        // A different deployment breaks equivalence: spill between the
        // two replicas is now forbidden.
        assert_ne!(
            m.replicas[0].checkpoint_fingerprint,
            m.replicas[1].checkpoint_fingerprint
        );
        // Rolling one deployment across the pool restores equivalence
        // even though the per-replica swap counters diverge — spill is
        // judged on the fingerprint, not the version.
        let reports = cluster.rollout(tiny_vibnn(9)).unwrap();
        assert_eq!(reports.len(), 2);
        let m = cluster.metrics();
        assert_eq!(m.replicas[0].version, 1);
        assert_eq!(m.replicas[1].version, 2);
        assert_eq!(
            m.replicas[0].checkpoint_fingerprint,
            m.replicas[1].checkpoint_fingerprint,
            "same checkpoint => equivalent, whatever the swap history"
        );
        cluster.shutdown();
    }

    #[test]
    fn shutdown_returns_unclaimed_results_in_id_order() {
        let cluster = ClusterEngine::new(
            tiny_vibnn(1),
            ClusterConfig {
                replicas: 2,
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        let ids: Vec<u64> = (0..6)
            .map(|i| cluster.submit(vec![i as f32 * 0.1; 3]).unwrap())
            .collect();
        let leftover = cluster.shutdown();
        assert_eq!(
            leftover.iter().map(|r| r.id).collect::<Vec<_>>(),
            ids,
            "graceful shutdown drains every queued request"
        );
    }

    #[test]
    fn submit_after_shutdown_is_engine_stopped() {
        let mut cluster = ClusterEngine::new(tiny_vibnn(1), ClusterConfig::default()).unwrap();
        cluster.stop_and_join();
        assert!(matches!(
            cluster.submit(vec![0.0; 3]),
            Err(VibnnError::EngineStopped)
        ));
    }

    const I: Priority = Priority::Interactive;
    const B: Priority = Priority::Batch;

    #[test]
    fn microbatch_selection_prefers_interactive() {
        // Interactive requests jump fresh batch traffic, in queue order.
        let lanes = [(B, 0), (I, 0), (B, 0), (I, 0)];
        assert_eq!(select_microbatch(&lanes, 2, 4), [false, true, false, true]);
        // Capacity left over goes to fresh batch, earliest first.
        assert_eq!(select_microbatch(&lanes, 3, 4), [true, true, false, true]);
        // Plenty of room: everything goes.
        assert_eq!(select_microbatch(&lanes, 8, 4), [true; 4]);
    }

    #[test]
    fn microbatch_selection_promotes_overdue_batch() {
        // A batch request at the skip bound outranks interactive traffic.
        let lanes = [(I, 0), (B, 4), (I, 0), (B, 3)];
        assert_eq!(select_microbatch(&lanes, 1, 4), [false, true, false, false]);
        assert_eq!(select_microbatch(&lanes, 2, 4), [true, true, false, false]);
        // Bound 0 makes every batch request overdue: queue-position order
        // within the overdue pass, so batch can even outrank interactive.
        assert_eq!(select_microbatch(&lanes, 2, 0), [false, true, false, true]);
        // Empty window selects nothing.
        assert_eq!(select_microbatch(&[], 4, 4), Vec::<bool>::new());
    }

    #[test]
    fn batch_lane_cannot_starve() {
        // However long the interactive backlog, a batch request waits at
        // most `skip_bound` selection rounds: simulate rounds with one
        // slot and a fresh interactive arrival each time.
        let bound = 3u32;
        let mut batch_skips = 0u32;
        let mut rounds_waited = 0;
        loop {
            let lanes = [(B, batch_skips), (I, 0)];
            let take = select_microbatch(&lanes, 1, bound);
            if take[0] {
                break;
            }
            batch_skips += 1; // what the dispatcher does on pass-over
            rounds_waited += 1;
            assert!(rounds_waited <= bound, "batch request starved");
        }
        assert_eq!(rounds_waited, bound);
    }

    #[test]
    fn expired_deadline_is_refused_at_admission() {
        let cluster = ClusterEngine::new(
            tiny_vibnn(1),
            ClusterConfig {
                replicas: 1,
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        let past = std::time::Instant::now() - std::time::Duration::from_millis(1);
        assert!(matches!(
            cluster.submit_with(
                vec![0.0; 3],
                SubmitOptions {
                    priority: Priority::Interactive,
                    deadline: Some(past),
                },
            ),
            Err(VibnnError::DeadlineExceeded)
        ));
        let m = cluster.metrics();
        assert_eq!(m.deadline_expired, 1);
        assert_eq!(m.submitted, 0, "no id issued for a dead-on-arrival request");
        // A generous deadline sails through and is served normally.
        let far = std::time::Instant::now() + std::time::Duration::from_secs(3600);
        let id = cluster
            .submit_with(
                vec![0.2; 3],
                SubmitOptions {
                    priority: Priority::Batch,
                    deadline: Some(far),
                },
            )
            .unwrap();
        assert!(cluster.wait(id).is_ok());
        let m = cluster.metrics();
        assert_eq!((m.served_interactive, m.served_batch), (0, 1));
        cluster.shutdown();
    }

    #[test]
    fn in_queue_expiry_fails_request_before_any_replica_work() {
        // Inject an already-expired request directly into the queue while
        // holding the lock — deterministic, no timing dependence: the
        // dispatcher cannot run until we release, and must then expire
        // the request instead of serving it.
        let cluster = ClusterEngine::new(
            tiny_vibnn(1),
            ClusterConfig {
                replicas: 1,
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        {
            let mut st = cluster.shared.lock();
            let id = st.next_id;
            st.next_id += 1;
            st.submitted += 1;
            st.queued_total += 1;
            st.replicas[0].pending += 1;
            st.replicas[0].queue.push_back(Work::Request {
                id,
                features: vec![0.0; 3],
                lane: Priority::Interactive,
                deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
                skips: 0,
            });
        }
        cluster.shared.work_ready.notify_all();
        assert!(matches!(cluster.wait(0), Err(VibnnError::DeadlineExceeded)));
        let m = cluster.metrics();
        assert_eq!(m.deadline_expired, 1);
        assert_eq!(m.served, 0, "an expired request must cost no MC work");
        cluster.shutdown();
    }

    #[test]
    fn shutdown_cancels_requests_stranded_behind_swap_marker() {
        // Regression: requests queued *behind* a swap marker used to be
        // drained only by dispatcher timing at shutdown. Build the exact
        // queue shape [A, marker, B, C] and stop — all under one lock, so
        // no interleaving can perturb it — then check A is served by the
        // old engine, the marker still applies (hot_swap waiters resolve),
        // and B, C fail cleanly instead of hanging or being served.
        let mut cluster = ClusterEngine::new(
            tiny_vibnn(1),
            ClusterConfig {
                replicas: 1,
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        let standby_vibnn = tiny_vibnn(9);
        let fingerprint = checkpoint_fingerprint(&standby_vibnn);
        let standby = ServeEngine::with_eps(
            standby_vibnn,
            cluster.serve_cfg,
            replica_source(&cluster.eps),
        )
        .unwrap();
        {
            let mut st = cluster.shared.lock();
            let stm = &mut *st;
            let rep = &mut stm.replicas[0];
            let request = |id| Work::Request {
                id,
                features: vec![0.1; 3],
                lane: Priority::Interactive,
                deadline: None,
                skips: 0,
            };
            rep.queue.push_back(request(0));
            rep.queue.push_back(Work::Swap {
                engine: Box::new(standby),
                version: 1,
                fingerprint,
            });
            rep.queue.push_back(request(1));
            rep.queue.push_back(request(2));
            rep.pending = 3;
            rep.queued_version = 1;
            rep.queued_fingerprint = fingerprint;
            stm.queued_total = 3;
            stm.submitted = 3;
            stm.next_id = 3;
            stm.stop = true;
            cancel_stranded_requests(stm);
            assert_eq!(stm.cancelled, 2, "B and C cancelled, A untouched");
            assert_eq!(stm.queued_total, 1);
        }
        cluster.shared.work_ready.notify_all();
        cluster.shared.result_ready.notify_all();
        cluster.stop_and_join();
        // A drained through the old engine; the marker applied; B and C
        // failed cleanly.
        assert!(cluster.wait(0).is_ok());
        assert!(matches!(cluster.wait(1), Err(VibnnError::EngineStopped)));
        assert!(matches!(cluster.wait(2), Err(VibnnError::EngineStopped)));
        let m = cluster.metrics();
        assert_eq!(m.swaps_completed, 1);
        assert_eq!(m.replicas[0].version, 1);
        assert_eq!(m.served, 1);
        assert_eq!(m.cancelled, 2);
    }
}
