//! Cycle-accurate hardware walk-through: deploy the paper's 784-200-200-10
//! network, run one image tick by tick, and print the schedule, memory
//! traffic, and performance model.
//!
//! Run with: `cargo run --release --example hardware_sim`

use vibnn::bnn::{Bnn, BnnConfig};
use vibnn::grng::BnnWallaceGrng;
use vibnn::hw::{power, AcceleratorConfig, CycleAccelerator, QuantizedBnn, ResourceModel, Schedule};
use vibnn::nn::Matrix;

fn main() {
    let cfg = AcceleratorConfig::paper();
    println!("configuration: T={} PE-sets x S={} PEs x N={} inputs, B={} bits, {} MHz",
        cfg.pe_sets, cfg.pes_per_set, cfg.pe_inputs, cfg.bit_len, cfg.clock_mhz);

    // An (untrained) paper-sized network is enough to exercise the datapath.
    let bnn = Bnn::new(BnnConfig::paper_mnist(), 3);
    let mut calib = Matrix::zeros(4, 784);
    for (i, v) in calib.data_mut().iter_mut().enumerate() {
        *v = ((i % 29) as f32) / 29.0;
    }
    let q = QuantizedBnn::from_params(&bnn.params(), 8, &calib);

    let sched = Schedule::new(&cfg, &[784, 200, 200, 10]);
    println!("\nschedule (per MC sample):");
    for (i, l) in sched.layers().iter().enumerate() {
        println!("  layer {i}: {} rounds x {} iterations = {} cycles total",
            l.rounds, l.iterations, l.total);
    }
    println!("  cycles/sample: {} (ideal bound {})",
        sched.cycles_per_sample(), sched.ideal_cycles_per_sample());
    println!("  PE utilization: {:.1}%", 100.0 * sched.utilization());

    let mut sim = CycleAccelerator::new(cfg.clone(), q);
    let mut eps = BnnWallaceGrng::new(8, 256, 5);
    let probs = sim.infer(calib.row(0), &mut eps);
    let s = sim.stats();
    println!("\none image, cycle-accurate:");
    println!("  cycles {}  MACs {}  eps consumed {}", s.cycles, s.macs, s.eps_consumed);
    println!("  IFMem reads {}  writes {}  WPMem reads {}", s.ifmem_reads, s.ifmem_writes, s.wpmem_reads);
    println!("  output probabilities: {probs:?}");

    let weights = 784 * 200 + 200 * 200 + 200 * 10;
    let res = ResourceModel.system(&cfg, weights, 784);
    println!("\nperformance model (paper Tables 4/5 analogue):");
    println!("  throughput {:.0} images/s", sched.images_per_second());
    let p = power::system_power_w(&cfg, weights, 784);
    println!("  power {:.2} W -> {:.0} images/J", p, sched.images_per_second() / p);
    println!("  ALMs {} ({:.1}%)  DSPs {}  block bits {} ({:.1}%)",
        res.alms, 100.0 * res.alm_utilization(), res.dsps,
        res.block_bits, 100.0 * res.block_bit_utilization());
}
