//! Scaling out: serve one deployment from a pool of replicas with
//! deterministic routing, cluster-level backpressure, live metrics, and a
//! hot checkpoint swap mid-traffic.
//!
//! Run with: `cargo run --release --example cluster`

use vibnn::bnn::BnnConfig;
use vibnn::cluster::{ClusterConfig, ClusterEngine};
use vibnn::datasets::parkinson_original;
use vibnn::{Pipeline, VibnnError};

fn main() -> Result<(), VibnnError> {
    let ds = parkinson_original(42);
    let calib = ds.train_x.rows_slice(0, 128);

    // Train two checkpoint generations of the same topology: v0 goes live
    // first, v1 rolls out mid-traffic.
    let train = |epochs: usize| {
        Pipeline::new(BnnConfig::new(&[ds.features(), 32, ds.classes]).with_lr(2e-3))
            .seed(7)
            .epochs(epochs)
            .batch(32)
            .train(&ds.train_x, &ds.train_y)?
            .deploy(calib.clone())
    };
    let v0 = train(2)?.vibnn;
    let v1 = train(6)?.vibnn;

    // A 2-replica cluster: each replica is a full deployment with its own
    // dispatcher and micro-batching engine; requests are routed by id and
    // may spill to a less-loaded replica of the same version (which, by
    // the determinism contract, answers identically).
    let cluster = ClusterEngine::new(
        v0,
        ClusterConfig {
            replicas: 2,
            max_batch: 16,
            max_queue: 256,
            workers: 0,
            spill: true,
            batch_skip_bound: 4,
            backend: None,
            policy: None,
        },
    )?;

    let n = ds.test_len().min(96);
    let submit = |range: std::ops::Range<usize>| -> Result<Vec<u64>, VibnnError> {
        let mut ids = Vec::new();
        for r in range {
            let id = loop {
                match cluster.submit(ds.test_x.row(r).to_vec()) {
                    Ok(id) => break id,
                    Err(VibnnError::QueueFull { depth, capacity }) => {
                        // Informed backoff: wait proportionally to the
                        // backlog the error reports.
                        let backlog = depth as f64 / capacity.max(1) as f64;
                        std::thread::sleep(std::time::Duration::from_micros(
                            (50.0 * backlog) as u64 + 1,
                        ));
                    }
                    Err(e) => return Err(e),
                }
            };
            ids.push(id);
        }
        Ok(ids)
    };

    // First half of the traffic lands on checkpoint v0 …
    let pre = submit(0..n / 2)?;
    // … then v1 rolls across both replicas while requests are in flight:
    // everything queued before each swap marker drains through v0, nothing
    // is dropped, and later submissions are answered by v1.
    for report in cluster.rollout(v1)? {
        println!(
            "replica {} now serving version {} (drained {} request(s) first)",
            report.replica, report.version, report.drained
        );
    }
    let post = submit(n / 2..n)?;

    let mut correct = 0usize;
    for (r, id) in pre.iter().chain(&post).enumerate() {
        let res = cluster.wait(*id)?;
        correct += usize::from(res.argmax == ds.test_y[r]);
    }

    let m = cluster.metrics();
    println!(
        "served {} requests on {} replicas: accuracy {:.3}, {} spilled, {} rejected",
        m.served,
        m.replicas.len(),
        correct as f64 / n as f64,
        m.spilled,
        m.rejected
    );
    for (i, rep) in m.replicas.iter().enumerate() {
        let batches: u64 = rep.batch_histogram.iter().sum();
        println!(
            "  replica {i}: version {}, {} served in {} micro-batches",
            rep.version, rep.served, batches
        );
    }
    cluster.shutdown();
    Ok(())
}
