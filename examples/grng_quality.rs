//! GRNG quality tour: stability and randomness of every generator in the
//! crate (the live version of paper Table 1 / Figure 15).
//!
//! Run with: `cargo run --release --example grng_quality`

use vibnn::grng::{
    BnnWallaceGrng, BoxMullerGrng, CdfInversionGrng, CltGrng, GaussianSource, ParallelRlfGrng,
    RlfGrng, SoftwareWallace, WallaceNss, ZigguratGrng,
};
use vibnn::stats::{anderson_darling_normal, autocorrelation, ks_test_normal, runs_test, Moments};

fn report(name: &str, src: &mut dyn GaussianSource) {
    let xs = src.take_vec(100_000);
    let m = Moments::from_slice(&xs);
    let (mu_err, sigma_err) = m.stability_errors();
    let runs = runs_test(&xs);
    let ks = ks_test_normal(&xs);
    let ad = anderson_darling_normal(&xs);
    let r1 = autocorrelation(&xs, 1);
    println!(
        "{name:<28} mu_err {mu_err:.4}  sigma_err {sigma_err:.4}  lag1 {r1:+.3}  runs {}  KS {}  A2 {ad:8.2}",
        if runs.passes(0.05) { "pass" } else { "FAIL" },
        if ks.passes(0.05) { "pass" } else { "FAIL" },
    );
}

fn main() {
    println!("100k samples per design; target N(0, 1)\n");
    report("Box-Muller (reference)", &mut BoxMullerGrng::new(1));
    report("Ziggurat", &mut ZigguratGrng::new(2));
    report("CDF inversion (BSM)", &mut CdfInversionGrng::new(3));
    report("CLT (LFSR+PC, decim 8)", &mut CltGrng::new(255, 8, 4));
    report("RLF-GRNG single lane", &mut RlfGrng::from_seed(5));
    report("RLF-GRNG 64 lanes", &mut ParallelRlfGrng::new(64, 6));
    report("Software Wallace 256", &mut SoftwareWallace::new(256, 1, 7));
    report("Software Wallace 4096", &mut SoftwareWallace::new(4096, 1, 8));
    report("Wallace-NSS 256", &mut WallaceNss::new(256, 9));
    report("BNNWallace 8x256", &mut BnnWallaceGrng::new(8, 256, 10));
    println!("\nNote the single-lane RLF: perfect marginal stability, terrible");
    println!("serial correlation — the motivation for lane parallelism and the");
    println!("eps-source ablation discussed in EXPERIMENTS.md.");
}
