//! Uncertainty estimation: the motivating BNN capability. Compares the
//! predictive entropy of the deployed accelerator on in-distribution and
//! out-of-distribution inputs.
//!
//! Run with: `cargo run --release --example uncertainty`

use vibnn::bnn::{Bnn, BnnConfig};
use vibnn::datasets::{mnist_like_with, MnistLikeSpec};
use vibnn::grng::BnnWallaceGrng;
use vibnn::nn::Matrix;
use vibnn::VibnnBuilder;

fn entropy(probs: &[f32]) -> f64 {
    -probs
        .iter()
        .map(|&p| {
            let p = f64::from(p).max(1e-12);
            p * p.ln()
        })
        .sum::<f64>()
}

fn main() {
    let ds = mnist_like_with(
        MnistLikeSpec { train_size: 3000, test_size: 500, ..Default::default() },
        3,
    );
    let mut bnn = Bnn::new(
        BnnConfig::new(&[784, 128, 128, 10]).with_lr(2e-3),
        5,
    );
    for _ in 0..8 {
        bnn.train_epoch(&ds.train_x, &ds.train_y, 64);
    }
    let accel = VibnnBuilder::new(bnn.params())
        .mc_samples(16)
        .calibration(ds.train_x.rows_slice(0, 128))
        .build()
        .expect("valid deployment");

    let mut eps = BnnWallaceGrng::new(8, 256, 9);
    // In-distribution: test images.
    let in_probs = accel.predict_proba(&ds.test_x.rows_slice(0, 50), &mut eps);
    let in_entropy: f64 =
        (0..50).map(|r| entropy(in_probs.row(r))).sum::<f64>() / 50.0;

    // Out-of-distribution: uniform noise images.
    let mut noise = Matrix::zeros(50, 784);
    for (i, v) in noise.data_mut().iter_mut().enumerate() {
        *v = ((i * 2_654_435_761) % 1000) as f32 / 1000.0;
    }
    let ood_probs = accel.predict_proba(&noise, &mut eps);
    let ood_entropy: f64 =
        (0..50).map(|r| entropy(ood_probs.row(r))).sum::<f64>() / 50.0;

    println!("mean predictive entropy, in-distribution:  {in_entropy:.3} nats");
    println!("mean predictive entropy, out-of-distribution: {ood_entropy:.3} nats");
    println!("(max possible for 10 classes: {:.3})", (10.0f64).ln());
    println!("\nThe BNN is less confident on inputs it has never seen — the");
    println!("model-uncertainty property that motivates VIBNN (paper Section 1).");
}
