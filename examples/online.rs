//! The continuous train→serve loop under injected concept drift.
//!
//! Builds a seeded drift stream (covariate shift ramping in mid-run),
//! runs the online runtime over it, and prints the per-round record:
//! accuracy, entropy aggregates, trigger firings, and hot swaps — all
//! deterministic, so this output is bit-identical on every run.
//!
//! ```sh
//! cargo run --release --example online
//! ```

use vibnn::datasets::{Drift, DriftStream, SynthSpec};
use vibnn::online::{OnlineConfig, OnlineRuntime};
use vibnn::VibnnError;

fn main() -> Result<(), VibnnError> {
    let dir = std::env::temp_dir().join(format!("vibnn_online_example_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(vibnn::bnn::checkpoint::CheckpointError::Io)?;

    // A 6-feature binary stream; a 1.4-radian feature-pair rotation
    // ramps in over stream steps 10..16 (rounds 4..7), shearing the
    // class geometry the initial model was fitted on.
    let stream = DriftStream::new(
        SynthSpec::new("live", 6, 2, 10, 10).with_separability(1.5),
        0xD21F7,
    )
    .with(Drift::Rotation { radians: 1.4 }, 10, 6)
    .with(Drift::CovariateShift { magnitude: 0.8 }, 14, 4);

    let mut cfg = OnlineConfig::new(&dir);
    cfg.rounds = 12;
    cfg.serve_rows = 48;
    cfg.train_rows = 64;
    cfg.initial_epochs = 6;
    cfg.epochs_per_round = 3;
    cfg.trigger_window = 96;
    cfg.entropy_threshold = 0.15;
    cfg.periodic_fallback = 0; // pure uncertainty triggering

    println!("online loop: {} rounds, entropy threshold {:.2} nats", cfg.rounds, cfg.entropy_threshold);
    println!("round  version  accuracy  entropy  window   trig  swap");
    let report = OnlineRuntime::new(cfg, stream)?.run()?;
    for r in &report.rounds {
        println!(
            "{:>5}  {:>7}  {:>7.1}%  {:>7.4}  {:>6.4}  {:>4}  {:>4}",
            r.round,
            r.serving_version,
            100.0 * r.accuracy,
            r.entropy_mean,
            r.window_mean,
            if r.triggered { "yes" } else { "-" },
            if r.swapped { "yes" } else { "-" },
        );
    }
    println!("\nevents:");
    for e in &report.events {
        println!(
            "  round {:>2}: {:?} (window mean {:.4}, version {})",
            e.round, e.kind, e.entropy_window_mean, e.version
        );
    }
    println!("\n{} rollouts completed", report.swaps);
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
