//! Quickstart: train a small Bayesian neural network, deploy it on the
//! simulated VIBNN accelerator, and classify with uncertainty.
//!
//! Run with: `cargo run --release --example quickstart`

use vibnn::bnn::{Bnn, BnnConfig};
use vibnn::datasets::parkinson_original;
use vibnn::grng::BnnWallaceGrng;
use vibnn::VibnnBuilder;

fn main() {
    // 1. A synthetic stand-in for the Parkinson Speech dataset.
    let ds = parkinson_original(42);
    println!("dataset: {} ({} train / {} test, {} features)",
        ds.name, ds.train_len(), ds.test_len(), ds.features());

    // 2. Train a BNN with Bayes-by-Backprop.
    let mut bnn = Bnn::new(
        BnnConfig::new(&[ds.features(), 64, 64, ds.classes]).with_lr(2e-3),
        7,
    );
    for epoch in 0..15 {
        let r = bnn.train_epoch(&ds.train_x, &ds.train_y, 32);
        if epoch % 5 == 4 {
            println!("epoch {:2}: loss {:.3} train acc {:.3}", epoch + 1, r.loss, r.accuracy);
        }
    }

    // 3. Deploy: quantize to the 8-bit datapath and build the accelerator.
    let accel = VibnnBuilder::new(bnn.params())
        .bit_len(8)
        .mc_samples(8)
        .calibration(ds.train_x.rows_slice(0, 128))
        .build()
        .expect("valid deployment");

    // 4. Classify the test set on the hardware datapath, eps from the
    //    BNNWallace-GRNG exactly as the weight generator would.
    let mut eps = BnnWallaceGrng::new(8, 256, 11);
    let sw_acc = bnn.evaluate_mean(&ds.test_x, &ds.test_y);
    let hw_acc = accel.evaluate(&ds.test_x, &ds.test_y, &mut eps);
    println!("\nsoftware BNN accuracy: {sw_acc:.4}");
    println!("VIBNN hardware accuracy: {hw_acc:.4}");

    // 5. Performance model (paper Table 5 analogue for this network).
    println!("\nmodelled throughput: {:.0} images/s", accel.images_per_second());
    println!("modelled power:      {:.2} W", accel.power_w());
    println!("modelled efficiency: {:.0} images/J", accel.images_per_joule());
    let r = accel.resources();
    println!("resources: {} ALMs, {} DSPs, {} block bits", r.alms, r.dsps, r.block_bits);
}
