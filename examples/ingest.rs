//! Network ingestion: put a TCP front door on a replica cluster and
//! drive it with interactive and batch lanes, per-request deadlines, and
//! a live metrics probe — all over real loopback sockets, with every
//! wire prediction bit-identical to the in-process path.
//!
//! Run with: `cargo run --release --example ingest`

use vibnn::bnn::BnnConfig;
use vibnn::cluster::{ClusterConfig, ClusterEngine};
use vibnn::datasets::parkinson_original;
use vibnn::{IngestClient, IngestConfig, IngestServer, Pipeline, Priority, VibnnError};

fn main() -> Result<(), VibnnError> {
    let ds = parkinson_original(42);
    let calib = ds.train_x.rows_slice(0, 128);
    let deployed = Pipeline::new(BnnConfig::new(&[ds.features(), 32, ds.classes]).with_lr(2e-3))
        .seed(7)
        .epochs(3)
        .batch(32)
        .train(&ds.train_x, &ds.train_y)?
        .deploy(calib)?;

    let cluster = ClusterEngine::new(
        deployed.vibnn,
        ClusterConfig {
            replicas: 2,
            max_batch: 16,
            max_queue: 256,
            workers: 0,
            spill: true,
            batch_skip_bound: 4,
            backend: None,
            policy: None,
        },
    )?;

    // The front door: an ephemeral loopback port. Sandboxes without
    // socket access skip the demo instead of failing it.
    let server = match IngestServer::bind(cluster, "127.0.0.1:0", IngestConfig::default()) {
        Ok(server) => server,
        Err(e) => {
            println!("sockets unavailable here ({e}); skipping the ingest demo");
            return Ok(());
        }
    };
    let addr = server.local_addr();
    println!("ingest server listening on {addr}");

    let n = ds.test_len().min(64);

    // An interactive client: one row per request, tight 50 ms deadline.
    // A batch client: all rows in one pipelined request, no deadline.
    // The batch lane never starves the interactive lane, and a deadline
    // that expires in the queue comes back as a typed error instead of
    // costing Monte Carlo work.
    let mut correct = 0usize;
    let mut expired = 0usize;
    let interactive = std::thread::spawn({
        let rows: Vec<Vec<f32>> = (0..n / 2).map(|r| ds.test_x.row(r).to_vec()).collect();
        move || -> Result<Vec<Option<usize>>, VibnnError> {
            let mut client = IngestClient::connect(addr)?;
            let mut answers = Vec::new();
            for row in &rows {
                match client.predict_with(row, Priority::Interactive, 50_000) {
                    Ok(res) => answers.push(Some(res.argmax)),
                    Err(VibnnError::DeadlineExceeded) => answers.push(None),
                    Err(e) => return Err(e),
                }
            }
            Ok(answers)
        }
    });
    let mut batch_client = IngestClient::connect(addr)?;
    let batch_rows: Vec<Vec<f32>> = (n / 2..n).map(|r| ds.test_x.row(r).to_vec()).collect();
    let batch_answers = batch_client.predict_batch_with(&batch_rows, Priority::Batch, 0)?;
    for (i, outcome) in batch_answers.into_iter().enumerate() {
        let res = outcome?;
        correct += usize::from(res.argmax == ds.test_y[n / 2 + i]);
    }
    for (r, answer) in interactive.join().expect("client thread")?.iter().enumerate() {
        match answer {
            Some(argmax) => correct += usize::from(*argmax == ds.test_y[r]),
            None => expired += 1,
        }
    }

    let metrics = batch_client.metrics()?;
    println!(
        "served {} requests over TCP ({} interactive / {} batch): accuracy {:.3}, \
         {} deadline-expired, {} protocol errors, {} connections total",
        metrics.served,
        metrics.served_interactive,
        metrics.served_batch,
        correct as f64 / (n - expired) as f64,
        metrics.deadline_expired,
        metrics.protocol_errors,
        metrics.connections_total
    );

    // Wind down: the server hands the intact cluster back.
    batch_client.shutdown_server()?;
    let cluster = server.shutdown();
    cluster.shutdown();
    Ok(())
}
