//! Serving and checkpoints: train through the `Pipeline` builder, persist
//! a resumable checkpoint and an exact deployment snapshot, then serve
//! concurrent single-row requests through the micro-batching engine.
//!
//! Run with: `cargo run --release --example serving`

use vibnn::bnn::{BnnConfig, LrSchedule};
use vibnn::datasets::parkinson_original;
use vibnn::serve::{ServeConfig, ServeEngine};
use vibnn::{Pipeline, Vibnn, VibnnError};

fn main() -> Result<(), VibnnError> {
    let ds = parkinson_original(42);
    let ckpt_dir = std::env::temp_dir();
    let trainer_ckpt = ckpt_dir.join("vibnn_serving_example_trainer.ckpt");
    let deploy_ckpt = ckpt_dir.join("vibnn_serving_example_deploy.ckpt");

    // 1. Train with a cosine LR schedule and early stopping, checkpoint
    //    the full training state, and deploy — one fallible chain.
    let deployed = Pipeline::new(
        BnnConfig::new(&[ds.features(), 48, 48, ds.classes]).with_lr(2e-3),
    )
    .seed(7)
    .epochs(12)
    .batch(32)
    .lr_schedule(LrSchedule::Cosine {
        total_epochs: 12,
        min_lr: 2e-4,
    })
    .early_stop(4, 0.0)
    .train(&ds.train_x, &ds.train_y)?
    .checkpoint(&trainer_ckpt)?
    .deploy(ds.train_x.rows_slice(0, 128))?;
    println!(
        "trained {} epochs{} (final loss {:.3}), deployed {} classes",
        deployed.reports.len(),
        if deployed.reports.len() < 12 { " (early stop)" } else { "" },
        deployed.reports.last().map_or(f64::NAN, |r| r.loss),
        deployed.vibnn.classes()
    );

    // 2. Ship an exact deployment snapshot and reload it — predictions
    //    from the loaded instance are bit-identical.
    deployed.vibnn.save(&deploy_ckpt)?;
    let vibnn = Vibnn::load(&deploy_ckpt)?;
    println!("deployment checkpoint round-trip: {} bytes", std::fs::metadata(&deploy_ckpt)?.len());

    // 3. Serve the test set as single-row requests through the
    //    thread-backed micro-batching queue.
    let engine = ServeEngine::new(
        vibnn,
        ServeConfig {
            max_batch: 16,
            max_queue: 256,
            workers: 0,
            backend: None,
            policy: None,
        },
    )?;
    let handle = engine.spawn();
    let n = ds.test_len().min(64);
    let mut ids = Vec::with_capacity(n);
    for r in 0..n {
        // Informed backoff: `QueueFull` reports how deep the queue is, so
        // the retry wait scales with the backlog instead of blind-spinning.
        let id = loop {
            match handle.submit(ds.test_x.row(r).to_vec()) {
                Ok(id) => break id,
                Err(VibnnError::QueueFull { depth, capacity }) => {
                    let backlog = depth as f64 / capacity.max(1) as f64;
                    std::thread::sleep(std::time::Duration::from_micros(
                        (50.0 * backlog) as u64 + 1,
                    ));
                }
                Err(e) => return Err(e),
            }
        };
        ids.push(id);
    }
    let mut correct = 0usize;
    let mut mean_entropy = 0.0;
    for (r, id) in ids.into_iter().enumerate() {
        let res = handle.wait(id)?;
        correct += usize::from(res.argmax == ds.test_y[r]);
        mean_entropy += res.entropy;
    }
    handle.shutdown();
    println!(
        "served {n} requests: accuracy {:.3}, mean predictive entropy {:.3} nats",
        correct as f64 / n as f64,
        mean_entropy / n as f64
    );

    std::fs::remove_file(&trainer_ckpt).ok();
    std::fs::remove_file(&deploy_ckpt).ok();
    Ok(())
}
