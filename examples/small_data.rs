//! The small-data story (paper Figures 16/17 and the modified Parkinson
//! dataset): a BNN keeps generalizing where an FNN of the same size
//! overfits.
//!
//! Run with: `cargo run --release --example small_data`

use vibnn::bnn::{Bnn, BnnConfig};
use vibnn::datasets::parkinson_modified;
use vibnn::grng::BoxMullerGrng;
use vibnn::nn::{Mlp, MlpConfig};

fn main() {
    // 120 training samples, 920 test samples: the paper's "modified"
    // small-data split.
    let ds = parkinson_modified(21);
    println!("{}: {} train / {} test", ds.name, ds.train_len(), ds.test_len());

    let arch = [ds.features(), 64, 64, ds.classes];
    let mut fnn = Mlp::new(MlpConfig::new(&arch), 1);
    let mut bnn = Bnn::new(BnnConfig::new(&arch).with_lr(2e-3).with_kl_weight(1e-3), 2);

    println!("\nepoch | FNN train | FNN test | BNN train | BNN test");
    for epoch in 1..=30 {
        let fr = fnn.train_epoch(&ds.train_x, &ds.train_y, 16);
        let br = bnn.train_epoch(&ds.train_x, &ds.train_y, 16);
        if epoch % 5 == 0 {
            let mut eps = BoxMullerGrng::new(epoch as u64);
            let f_test = fnn.evaluate(&ds.test_x, &ds.test_y);
            let b_test = bnn.evaluate_mc(&ds.test_x, &ds.test_y, 8, &mut eps);
            println!(
                "{epoch:5} | {:9.3} | {f_test:8.3} | {:9.3} | {b_test:8.3}",
                fr.accuracy, br.accuracy
            );
        }
    }
    println!("\nShape to expect (paper Fig. 16/17, Table 7): the FNN reaches");
    println!("perfect training accuracy but generalizes worse; the BNN's");
    println!("weight uncertainty regularizes it toward better test accuracy.");
}
