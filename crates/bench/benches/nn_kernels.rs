//! NN kernel microbenchmarks: blocked matrix multiplies, BNN training
//! step, and serial vs parallel Monte Carlo inference.
use criterion::{criterion_group, criterion_main, Criterion};
use vibnn_bnn::{Bnn, BnnConfig};
use vibnn_grng::BoxMullerGrng;
use vibnn_nn::Matrix;

fn benches(c: &mut Criterion) {
    let a = Matrix::from_vec(64, 200, (0..64 * 200).map(|i| (i % 13) as f32 * 0.1).collect());
    let b = Matrix::from_vec(200, 200, (0..200 * 200).map(|i| (i % 7) as f32 * 0.1).collect());
    c.bench_function("matmul_64x200x200", |bch| {
        bch.iter(|| std::hint::black_box(a.matmul(&b)))
    });

    // Paper-scale first layer: 64-image batch × 784 features × 200 units,
    // crossing both tile boundaries of the blocked kernels.
    let xa = Matrix::from_vec(64, 784, (0..64 * 784).map(|i| (i % 11) as f32 * 0.05).collect());
    let wb = Matrix::from_vec(784, 200, (0..784 * 200).map(|i| (i % 17) as f32 * 0.02).collect());
    c.bench_function("matmul_64x784x200", |bch| {
        bch.iter(|| std::hint::black_box(xa.matmul(&wb)))
    });
    let g = Matrix::from_vec(64, 200, vec![0.01; 64 * 200]);
    c.bench_function("matmul_t_64x200_784x200", |bch| {
        // dL/dx shape: grad(64×200) · W(784×200)ᵀ → 64×784.
        bch.iter(|| std::hint::black_box(g.matmul_t(&wb)))
    });

    let x = Matrix::from_vec(32, 784, vec![0.5; 32 * 784]);
    let y: Vec<usize> = (0..32).map(|i| i % 10).collect();
    c.bench_function("bnn_train_batch_784_200_200_10", |bch| {
        let mut bnn = Bnn::new(BnnConfig::paper_mnist(), 1);
        bch.iter(|| std::hint::black_box(bnn.train_batch(&x, &y)))
    });

    // Monte Carlo ensemble: one continuous stream (serial) vs forked
    // substreams on 1 and 4 workers. On a multi-core host the 4-thread row
    // should approach a 4× speedup; outputs are identical across the
    // parallel rows regardless of core count.
    let bnn = Bnn::new(BnnConfig::new(&[64, 128, 128, 10]), 3);
    let mx = Matrix::from_vec(16, 64, (0..16 * 64).map(|i| (i % 9) as f32 * 0.1).collect());
    c.bench_function("bnn_mc16_serial", |bch| {
        let mut eps = BoxMullerGrng::new(5);
        bch.iter(|| std::hint::black_box(bnn.predict_proba_mc(&mx, 16, &mut eps)))
    });
    for threads in [1usize, 2, 4] {
        c.bench_function(&format!("bnn_mc16_parallel_{threads}t"), |bch| {
            let eps = BoxMullerGrng::new(5);
            bch.iter(|| {
                std::hint::black_box(bnn.predict_proba_mc_parallel(&mx, 16, &eps, threads))
            })
        });
    }
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = kernels_target
}
fn kernels_target(c: &mut Criterion) { benches(c) }
criterion_main!(kernels);
