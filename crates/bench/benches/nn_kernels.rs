//! NN kernel microbenchmarks: matrix multiply and BNN training step.
use criterion::{criterion_group, criterion_main, Criterion};
use vibnn_bnn::{Bnn, BnnConfig};
use vibnn_nn::Matrix;

fn benches(c: &mut Criterion) {
    let a = Matrix::from_vec(64, 200, (0..64 * 200).map(|i| (i % 13) as f32 * 0.1).collect());
    let b = Matrix::from_vec(200, 200, (0..200 * 200).map(|i| (i % 7) as f32 * 0.1).collect());
    c.bench_function("matmul_64x200x200", |bch| {
        bch.iter(|| std::hint::black_box(a.matmul(&b)))
    });

    let x = Matrix::from_vec(32, 784, vec![0.5; 32 * 784]);
    let y: Vec<usize> = (0..32).map(|i| i % 10).collect();
    c.bench_function("bnn_train_batch_784_200_200_10", |bch| {
        let mut bnn = Bnn::new(BnnConfig::paper_mnist(), 1);
        bch.iter(|| std::hint::black_box(bnn.train_batch(&x, &y)))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = kernels_target
}
fn kernels_target(c: &mut Criterion) { benches(c) }
criterion_main!(kernels);
