//! End-to-end accelerator microbenchmarks: cycle-accurate single-image
//! inference and the vectorized functional datapath (underlies Table 5).
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vibnn_bnn::{Bnn, BnnConfig};
use vibnn_grng::BnnWallaceGrng;
use vibnn_hw::{AcceleratorConfig, CycleAccelerator, QuantizedBnn};
use vibnn_nn::Matrix;

fn setup() -> (QuantizedBnn, Matrix) {
    let bnn = Bnn::new(BnnConfig::paper_mnist(), 1);
    let mut calib = Matrix::zeros(8, 784);
    for (i, v) in calib.data_mut().iter_mut().enumerate() {
        *v = ((i % 97) as f32) / 97.0;
    }
    (QuantizedBnn::from_params(&bnn.params(), 8, &calib), calib)
}

fn benches(c: &mut Criterion) {
    let (q, calib) = setup();
    let mut group = c.benchmark_group("accelerator");
    group.sample_size(10);

    group.bench_function("cycle_accurate_image_mnist", |b| {
        let mut sim = CycleAccelerator::new(AcceleratorConfig::paper(), q.clone());
        let mut eps = BnnWallaceGrng::new(8, 256, 3);
        b.iter(|| std::hint::black_box(sim.infer(calib.row(0), &mut eps)))
    });

    group.throughput(Throughput::Elements(8));
    group.bench_function("functional_batch8_mc1", |b| {
        let mut eps = BnnWallaceGrng::new(8, 256, 5);
        b.iter(|| std::hint::black_box(q.predict_proba_mc(&calib, 1, &mut eps)))
    });
    group.finish();
}

criterion_group! {
    name = accel;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(accel);
