//! GRNG sample-rate microbenchmarks (the software analogue of Table 2's
//! per-design performance comparison, plus the taxonomy baselines).
//!
//! Every design is measured twice over the same 4096-sample batch:
//!
//! - `scalar`: one `next_gaussian()` virtual call per sample — the
//!   pre-block-engine consumption pattern;
//! - `block`: one `fill()` call for the whole batch — the block kernels
//!   (popcount lanes, whole Wallace transform rounds, batched Box–Muller).
//!
//! Expect ≥ 2× block speedup where the per-sample kernel is cheap enough
//! for call overhead to dominate (BNNWallace measures ~3×: whole
//! transform rounds per `fill`). The RLF design sits near 1.1× by
//! construction — its scalar path is already block-amortized by the
//! interleaver buffer, so only dispatch overhead separates the two.
//! `vibnn_bench`'s `bench_grng` binary records the same comparison
//! machine-readably in `BENCH_grng.json`.
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vibnn_grng::{
    BnnWallaceGrng, BoxMullerGrng, Buffered, CdfInversionGrng, CltGrng, GaussianSource,
    ParallelRlfGrng, SoftwareWallace, WallaceNss, ZigguratGrng,
};

const BATCH: usize = 4096;

fn bench_source(c: &mut Criterion, name: &str, mut src: Box<dyn GaussianSource>) {
    let mut group = c.benchmark_group("grng");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function(&format!("{name}/scalar"), |b| {
        let mut buf = vec![0.0; BATCH];
        b.iter(|| {
            for slot in &mut buf {
                *slot = src.next_gaussian();
            }
            std::hint::black_box(buf[BATCH - 1])
        })
    });
    group.bench_function(&format!("{name}/block"), |b| {
        let mut buf = vec![0.0; BATCH];
        b.iter(|| {
            src.fill(&mut buf);
            std::hint::black_box(buf[BATCH - 1])
        })
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_source(c, "rlf_64_lanes", Box::new(ParallelRlfGrng::new(64, 1)));
    bench_source(c, "bnnwallace_8x256", Box::new(BnnWallaceGrng::new(8, 256, 2)));
    bench_source(c, "software_wallace_4096", Box::new(SoftwareWallace::new(4096, 1, 3)));
    bench_source(c, "wallace_nss_256", Box::new(WallaceNss::new(256, 4)));
    bench_source(c, "clt_lfsr_pc", Box::new(CltGrng::new(255, 8, 5)));
    bench_source(c, "box_muller", Box::new(BoxMullerGrng::new(6)));
    bench_source(c, "ziggurat", Box::new(ZigguratGrng::new(7)));
    bench_source(c, "cdf_inversion", Box::new(CdfInversionGrng::new(8)));
    // The adapter's amortized scalar path, for comparison with the raw
    // scalar rows above.
    bench_source(
        c,
        "rlf_64_lanes_buffered",
        Box::new(Buffered::new(ParallelRlfGrng::new(64, 9))),
    );
}

criterion_group! {
    name = grng;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(grng);
