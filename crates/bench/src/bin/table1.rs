//! Table 1: µ/σ stability errors of the GRNG designs vs N(0, 1).
use vibnn::experiments::{table1, PAPER_TABLE1};
use vibnn_bench::{f4, print_table, RunScale};

fn main() {
    let scale = RunScale::from_env();
    let rows = table1(scale.grng_samples(), 2024);
    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(PAPER_TABLE1)
        .map(|(r, (_, pm, ps))| {
            vec![r.design.clone(), f4(r.mu_error), f4(r.sigma_error), f4(pm), f4(ps)]
        })
        .collect();
    print_table(
        "Table 1: Stability errors to (mu, sigma) = (0, 1)",
        &["GRNG Design", "mu err (ours)", "sigma err (ours)", "mu err (paper)", "sigma err (paper)"],
        &table,
    );
}
