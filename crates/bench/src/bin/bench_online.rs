//! Machine-readable online-learning benchmark: writes `BENCH_online.json`.
//!
//! Runs the continuous train→serve loop ([`vibnn::online::OnlineRuntime`])
//! over a seeded drift stream — a feature-pair rotation ramping in
//! mid-run, shearing the class geometry the initial model was fitted on —
//! and compares two arms on the *identical* stream:
//!
//! - **baseline**: the trigger is disabled (`entropy_threshold = ∞`, no
//!   periodic fallback), so the founding checkpoint serves the whole run;
//! - **adaptive**: the windowed served-entropy trigger is armed, so drift
//!   raises predictive uncertainty, fires retrains, and hot-swaps the
//!   refreshed checkpoints into the serving cluster mid-traffic.
//!
//! Before timing anything it asserts the online determinism contract: the
//! adaptive run's full report (per-round digests, triggers, swap points)
//! must be bit-identical across trainer-thread and cluster-worker counts.
//! The headline metric is mean serving accuracy over the post-drift-onset
//! rounds; the adaptive arm must not lose to the frozen baseline.
//!
//! Output path: `$VIBNN_BENCH_OUT` if set, else `BENCH_online.json` in
//! the working directory. `VIBNN_SCALE=quick` shrinks the workload.

use std::fmt::Write as _;
use std::time::Instant;

use vibnn::datasets::{Drift, DriftStream, SynthSpec};
use vibnn::online::{OnlineConfig, OnlineEventKind, OnlineReport, OnlineRuntime};
use vibnn_bench::RunScale;

const STREAM_SEED: u64 = 0xD21F7;

struct Workload {
    rounds: usize,
    serve_rows: usize,
    train_rows: usize,
    hidden: usize,
    initial_epochs: usize,
    epochs_per_round: usize,
    mc_samples: usize,
    trigger_window: usize,
    /// Stream step where the rotation starts ramping in.
    drift_start: u64,
    /// Ramp length in stream steps.
    drift_ramp: u64,
}

impl Workload {
    fn from_scale(scale: RunScale) -> Self {
        match scale {
            RunScale::Quick => Self {
                rounds: 10,
                serve_rows: 24,
                train_rows: 32,
                hidden: 8,
                initial_epochs: 4,
                epochs_per_round: 2,
                mc_samples: 4,
                trigger_window: 48,
                drift_start: 8,
                drift_ramp: 4,
            },
            RunScale::Default => Self {
                rounds: 14,
                serve_rows: 48,
                train_rows: 64,
                hidden: 16,
                initial_epochs: 6,
                epochs_per_round: 3,
                mc_samples: 8,
                trigger_window: 96,
                drift_start: 10,
                drift_ramp: 6,
            },
            RunScale::Full => Self {
                rounds: 20,
                serve_rows: 64,
                train_rows: 96,
                hidden: 24,
                initial_epochs: 8,
                epochs_per_round: 4,
                mc_samples: 8,
                trigger_window: 128,
                drift_start: 14,
                drift_ramp: 8,
            },
        }
    }

    /// First round whose *serving* batch carries any drift (round `t`
    /// serves stream step `2 + 2t`).
    fn drift_onset_round(&self) -> u64 {
        self.drift_start.saturating_sub(2).div_ceil(2)
    }

    fn stream(&self) -> DriftStream {
        DriftStream::new(
            SynthSpec::new("bench-online", 6, 2, 10, 10).with_separability(1.5),
            STREAM_SEED,
        )
        .with(
            Drift::Rotation { radians: 1.4 },
            self.drift_start,
            self.drift_ramp,
        )
        .with(
            Drift::CovariateShift { magnitude: 0.8 },
            self.drift_start + self.drift_ramp,
            self.drift_ramp,
        )
    }

    fn config(&self, dir: &std::path::Path, threads: usize, workers: usize) -> OnlineConfig {
        let mut cfg = OnlineConfig::new(dir);
        cfg.rounds = self.rounds;
        cfg.serve_rows = self.serve_rows;
        cfg.train_rows = self.train_rows;
        cfg.hidden = vec![self.hidden];
        cfg.initial_epochs = self.initial_epochs;
        cfg.epochs_per_round = self.epochs_per_round;
        cfg.train_batch = 16;
        cfg.threads = threads;
        cfg.mc_samples = self.mc_samples;
        cfg.trigger_window = self.trigger_window;
        cfg.entropy_threshold = 0.15;
        cfg.periodic_fallback = 0; // pure uncertainty triggering
        cfg.cluster.workers = workers;
        cfg
    }
}

fn run_arm(w: &Workload, tag: &str, threads: usize, workers: usize, armed: bool) -> OnlineReport {
    let dir = std::env::temp_dir().join(format!("vibnn_bench_online_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let mut cfg = w.config(&dir, threads, workers);
    if !armed {
        cfg.entropy_threshold = f64::INFINITY; // frozen: never retrains
    }
    let report = OnlineRuntime::new(cfg, w.stream())
        .expect("runtime")
        .run()
        .expect("online run");
    std::fs::remove_dir_all(&dir).ok();
    report
}

/// Mean serving accuracy over rounds at or after the drift onset.
fn drift_accuracy(report: &OnlineReport, onset: u64) -> f64 {
    let post: Vec<f64> = report
        .rounds
        .iter()
        .filter(|r| r.round >= onset)
        .map(|r| r.accuracy)
        .collect();
    post.iter().sum::<f64>() / post.len() as f64
}

fn mean_accuracy(report: &OnlineReport) -> f64 {
    report.rounds.iter().map(|r| r.accuracy).sum::<f64>() / report.rounds.len() as f64
}

fn main() {
    let scale = RunScale::from_env();
    let w = Workload::from_scale(scale);
    let onset = w.drift_onset_round();
    let host_parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());

    // Determinism gate: the adaptive run's full report — per-round result
    // digests, entropy aggregates, trigger firings, swap points — must be
    // bit-identical across trainer-thread and cluster-worker counts
    // before any number is worth reporting.
    let reference = run_arm(&w, "det_t1w1", 1, 1, true);
    for (threads, workers) in [(2usize, 2usize), (4, 1)] {
        let report = run_arm(&w, &format!("det_t{threads}w{workers}"), threads, workers, true);
        assert_eq!(
            report, reference,
            "online run diverged at threads={threads} workers={workers}"
        );
    }

    let start = Instant::now();
    let baseline = run_arm(&w, "baseline", 2, 2, false);
    let baseline_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let adaptive = run_arm(&w, "adaptive", 2, 2, true);
    let adaptive_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        adaptive, reference,
        "timed adaptive arm diverged from the determinism gate's report"
    );
    assert_eq!(baseline.swaps, 0, "the frozen baseline must never retrain");

    let acc_baseline = drift_accuracy(&baseline, onset);
    let acc_adaptive = drift_accuracy(&adaptive, onset);
    let triggers = adaptive
        .events
        .iter()
        .filter(|e| e.kind != OnlineEventKind::Swap)
        .count();
    assert!(
        acc_adaptive >= acc_baseline,
        "adaptive arm lost to the frozen baseline under drift: \
         {acc_adaptive:.4} < {acc_baseline:.4}"
    );

    println!("round  baseline-acc  adaptive-acc  adaptive-window  trig  swap");
    for (b, a) in baseline.rounds.iter().zip(&adaptive.rounds) {
        println!(
            "{:>5}  {:>11.1}%  {:>11.1}%  {:>14.4}  {:>4}  {:>4}",
            a.round,
            100.0 * b.accuracy,
            100.0 * a.accuracy,
            a.window_mean,
            if a.triggered { "yes" } else { "-" },
            if a.swapped { "yes" } else { "-" },
        );
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(json, "  \"rounds\": {},", w.rounds);
    let _ = writeln!(json, "  \"serve_rows_per_round\": {},", w.serve_rows);
    let _ = writeln!(json, "  \"train_rows_per_round\": {},", w.train_rows);
    let _ = writeln!(json, "  \"hidden\": {},", w.hidden);
    let _ = writeln!(json, "  \"mc_samples\": {},", w.mc_samples);
    let _ = writeln!(json, "  \"entropy_threshold_nats\": 0.15,");
    let _ = writeln!(json, "  \"drift_onset_round\": {onset},");
    let _ = writeln!(json, "  \"host_parallelism\": {host_parallelism},");
    let _ = writeln!(json, "  \"reports_bit_identical_across_thread_counts\": true,");
    let _ = writeln!(json, "  \"drift_accuracy_baseline\": {acc_baseline:.4},");
    let _ = writeln!(json, "  \"drift_accuracy_adaptive\": {acc_adaptive:.4},");
    let _ = writeln!(
        json,
        "  \"mean_accuracy_baseline\": {:.4},",
        mean_accuracy(&baseline)
    );
    let _ = writeln!(
        json,
        "  \"mean_accuracy_adaptive\": {:.4},",
        mean_accuracy(&adaptive)
    );
    let _ = writeln!(json, "  \"triggers_fired\": {triggers},");
    let _ = writeln!(json, "  \"swaps_completed\": {},", adaptive.swaps);
    let _ = writeln!(json, "  \"baseline_run_secs\": {baseline_secs:.3},");
    let _ = writeln!(json, "  \"adaptive_run_secs\": {adaptive_secs:.3},");
    json.push_str("  \"events\": [\n");
    for (i, e) in adaptive.events.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"round\": {}, \"kind\": \"{:?}\", \"window_mean\": {:.6}, \
             \"version\": {}}}{}",
            e.round,
            e.kind,
            e.entropy_window_mean,
            e.version,
            if i + 1 < adaptive.events.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n  \"rounds_adaptive\": [\n");
    for (i, r) in adaptive.rounds.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"round\": {}, \"accuracy\": {:.4}, \"entropy_mean\": {:.6}, \
             \"window_mean\": {:.6}, \"serving_version\": {}, \"digest\": {}}}{}",
            r.round,
            r.accuracy,
            r.entropy_mean,
            r.window_mean,
            r.serving_version,
            r.digest,
            if i + 1 < adaptive.rounds.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");

    let path = std::env::var("VIBNN_BENCH_OUT").unwrap_or_else(|_| "BENCH_online.json".to_owned());
    std::fs::write(&path, &json).expect("write benchmark output");
    println!("wrote {path}");
    println!(
        "post-drift accuracy: adaptive {:.1}% vs frozen baseline {:.1}% \
         ({} triggers, {} swaps)",
        100.0 * acc_adaptive,
        100.0 * acc_baseline,
        triggers,
        adaptive.swaps
    );
}
