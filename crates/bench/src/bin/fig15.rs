//! Figure 15: runs-test pass rates per GRNG design.
use vibnn::experiments::fig15;
use vibnn_bench::{pct, print_table, RunScale};

fn main() {
    let scale = RunScale::from_env();
    let rows = fig15(scale.runs_trials(), scale.runs_samples(), 7);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.design.clone(), pct(r.pass_rate)])
        .collect();
    print_table(
        &format!(
            "Figure 15: runs-test pass rate ({} trials x {} samples, alpha = 0.05)",
            scale.runs_trials(),
            scale.runs_samples()
        ),
        &["Design", "Pass rate"],
        &table,
    );
    println!("\nPaper shape: software Wallace and BNNWallace pass at high rates");
    println!("regardless of pool size; Wallace-NSS passes 0% of trials. The");
    println!("RLF row is our addition (see EXPERIMENTS.md on its stream");
    println!("correlation).");
}
