//! Figure 17: training convergence on 1/64 of the data.
use vibnn::experiments::fig17;
use vibnn_bench::{pct, print_table, RunScale};

fn main() {
    let pts = fig17(RunScale::from_env().learn(), 13);
    let table: Vec<Vec<String>> = pts
        .iter()
        .map(|p| vec![p.epoch.to_string(), pct(p.fnn_accuracy), pct(p.bnn_accuracy)])
        .collect();
    print_table(
        "Figure 17: per-epoch test accuracy, 1/64 training fraction",
        &["Epoch", "FNN", "BNN"],
        &table,
    );
}
