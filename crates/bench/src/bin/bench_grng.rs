//! Machine-readable GRNG throughput benchmark: writes `BENCH_grng.json`.
//!
//! Measures every GRNG design twice over the same batch size — `scalar`
//! (one `next_gaussian()` virtual call per sample) and `block` (one
//! `fill()` per batch) — and records samples/sec plus the block/scalar
//! speedup, so future PRs can diff the numbers and catch regressions.
//!
//! Output path: `$VIBNN_BENCH_OUT` if set, else `BENCH_grng.json` in the
//! working directory. `VIBNN_SCALE=quick` shrinks the measurement budget.
use std::fmt::Write as _;
use std::time::Instant;

use vibnn_bench::RunScale;
use vibnn_grng::{
    BnnWallaceGrng, BoxMullerGrng, CdfInversionGrng, CltGrng, GaussianSource, ParallelRlfGrng,
    SoftwareWallace, WallaceNss, ZigguratGrng,
};

const BATCH: usize = 4096;

struct Measurement {
    name: &'static str,
    scalar_samples_per_sec: f64,
    block_samples_per_sec: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.block_samples_per_sec / self.scalar_samples_per_sec
    }
}

/// Runs `f` repeatedly for at least `budget_ms`, returning samples/sec.
fn rate(batches_hint: usize, budget_ms: u64, mut f: impl FnMut()) -> f64 {
    // Warm-up pass so pool initialization and page faults stay out of the
    // measurement.
    f();
    let budget = std::time::Duration::from_millis(budget_ms);
    let start = Instant::now();
    let mut batches = 0usize;
    while start.elapsed() < budget || batches < batches_hint {
        f();
        batches += 1;
    }
    (batches * BATCH) as f64 / start.elapsed().as_secs_f64()
}

fn measure(
    name: &'static str,
    budget_ms: u64,
    mut src: Box<dyn GaussianSource>,
) -> Measurement {
    let mut buf = vec![0.0f64; BATCH];
    let scalar = rate(4, budget_ms, || {
        for slot in &mut buf {
            *slot = src.next_gaussian();
        }
        std::hint::black_box(buf[BATCH - 1]);
    });
    let block = rate(4, budget_ms, || {
        src.fill(&mut buf);
        std::hint::black_box(buf[BATCH - 1]);
    });
    Measurement {
        name,
        scalar_samples_per_sec: scalar,
        block_samples_per_sec: block,
    }
}

fn main() {
    let budget_ms = match RunScale::from_env() {
        RunScale::Quick => 40,
        RunScale::Default => 250,
        RunScale::Full => 1000,
    };
    let rows = vec![
        measure("rlf_64_lanes", budget_ms, Box::new(ParallelRlfGrng::new(64, 1))),
        measure("bnnwallace_8x256", budget_ms, Box::new(BnnWallaceGrng::new(8, 256, 2))),
        measure("software_wallace_4096", budget_ms, Box::new(SoftwareWallace::new(4096, 1, 3))),
        measure("wallace_nss_256", budget_ms, Box::new(WallaceNss::new(256, 4))),
        measure("clt_lfsr_pc", budget_ms, Box::new(CltGrng::new(255, 8, 5))),
        measure("box_muller", budget_ms, Box::new(BoxMullerGrng::new(6))),
        measure("ziggurat", budget_ms, Box::new(ZigguratGrng::new(7))),
        measure("cdf_inversion", budget_ms, Box::new(CdfInversionGrng::new(8))),
    ];

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"batch\": {BATCH},");
    let _ = writeln!(json, "  \"budget_ms\": {budget_ms},");
    json.push_str("  \"generators\": [\n");
    for (i, m) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"scalar_samples_per_sec\": {:.0}, \
             \"block_samples_per_sec\": {:.0}, \"block_speedup\": {:.3}}}{}",
            m.name,
            m.scalar_samples_per_sec,
            m.block_samples_per_sec,
            m.speedup(),
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");

    let path =
        std::env::var("VIBNN_BENCH_OUT").unwrap_or_else(|_| "BENCH_grng.json".to_owned());
    std::fs::write(&path, &json).expect("write benchmark output");

    println!("wrote {path}");
    for m in &rows {
        println!(
            "{:<24} scalar {:>10.2} Msamples/s   block {:>10.2} Msamples/s   x{:.2}",
            m.name,
            m.scalar_samples_per_sec / 1e6,
            m.block_samples_per_sec / 1e6,
            m.speedup(),
        );
    }
}
