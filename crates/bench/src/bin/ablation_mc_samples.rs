//! Ablation: Monte Carlo sample count vs accuracy and latency (eq. 6),
//! plus the adaptive operating curve — the same deployment served under
//! `EarlyExit` with the stability threshold `k` swept, reporting
//! accuracy against the mean `samples_used` each threshold actually
//! spends (compare against the static-N rows: the adaptive points sit
//! on or above the static curve at a fraction of the samples).
use vibnn::sampler::PolicySpec;
use vibnn::serve::{ServeConfig, ServeEngine};
use vibnn::VibnnBuilder;
use vibnn_bench::{pct, print_table, RunScale};
use vibnn_bnn::{Bnn, BnnConfig};
use vibnn_datasets::{mnist_like_with, MnistLikeSpec};
use vibnn_grng::{BnnWallaceGrng, ZigguratGrng};
use vibnn_hw::{AcceleratorConfig, QuantizedBnn, Schedule};

fn main() {
    let scale = RunScale::from_env().learn();
    let ds = mnist_like_with(
        MnistLikeSpec {
            train_size: scale.mnist_train,
            test_size: scale.mnist_test,
            ..Default::default()
        },
        31,
    );
    let arch = [ds.features(), scale.hidden, scale.hidden, ds.classes];
    let batch = 64;
    let batches = ds.train_len().div_ceil(batch);
    let mut bnn = Bnn::new(
        BnnConfig::new(&arch)
            .with_lr(2e-3)
            .with_kl_weight((1.0 / batches as f32).min(2e-3)),
        33,
    );
    for _ in 0..scale.epochs {
        bnn.train_epoch(&ds.train_x, &ds.train_y, batch);
    }
    let calib = ds.train_x.rows_slice(0, 128);
    let q = QuantizedBnn::from_params(&bnn.params(), 8, &calib);
    let mut rows = Vec::new();
    for mc in [1usize, 2, 4, 8, 16] {
        let mut eps = BnnWallaceGrng::new(8, 256, 35);
        let acc = q.evaluate_mc(&ds.test_x, &ds.test_y, mc, &mut eps);
        let cfg = AcceleratorConfig {
            mc_samples: mc,
            ..AcceleratorConfig::paper()
        };
        let sched = Schedule::new(&cfg, &[784, 200, 200, 10]);
        rows.push(vec![
            mc.to_string(),
            pct(acc),
            format!("{}", sched.cycles_per_image()),
            format!("{:.0}", sched.images_per_second()),
        ]);
    }
    print_table(
        "Ablation: MC samples vs accuracy and modelled throughput",
        &["MC samples", "HW accuracy", "Cycles/image", "Images/s"],
        &rows,
    );

    // Adaptive operating curve: the identical parameters deployed with a
    // fixed 16-sample budget, served under `EarlyExit{k, min_samples: 2}`
    // as `k` sweeps. Accuracy is measured the same way as above; "mean
    // samples" is what the requests actually cost under that threshold
    // (the static rows effectively pin mean samples = N).
    let budget = 16usize;
    let vibnn = VibnnBuilder::new(bnn.params())
        .mc_samples(budget)
        .calibration(calib)
        .build()
        .expect("valid deployment");
    let serve = |policy: PolicySpec| {
        ServeEngine::with_eps(
            vibnn.clone(),
            ServeConfig {
                max_batch: 128,
                max_queue: 256,
                workers: 1,
                backend: None,
                policy: Some(policy),
            },
            ZigguratGrng::new(35),
        )
        .expect("valid serve config")
        .submit_batch(&ds.test_x)
        .expect("serve test set")
    };
    let mut curve = Vec::new();
    for (label, policy) in std::iter::once(("exact N".to_owned(), PolicySpec::ExactN)).chain(
        [1u32, 2, 3, 4].into_iter().map(|k| {
            (
                format!("early-exit k={k}"),
                PolicySpec::EarlyExit { k, min_samples: 2 },
            )
        }),
    ) {
        let results = serve(policy);
        let correct = results
            .iter()
            .zip(&ds.test_y)
            .filter(|(res, &label)| res.argmax == label)
            .count();
        let acc = correct as f64 / ds.test_y.len().max(1) as f64;
        let mean = results
            .iter()
            .map(|r| u64::from(r.samples_used))
            .sum::<u64>() as f64
            / results.len().max(1) as f64;
        curve.push(vec![
            label,
            pct(acc),
            format!("{mean:.2}"),
            budget.to_string(),
        ]);
    }
    print_table(
        "Ablation: EarlyExit stability threshold vs accuracy and mean samples used",
        &["Policy", "Accuracy", "Mean samples", "Budget"],
        &curve,
    );
}
