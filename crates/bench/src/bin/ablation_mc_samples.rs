//! Ablation: Monte Carlo sample count vs accuracy and latency (eq. 6).
use vibnn_bench::{pct, print_table, RunScale};
use vibnn_bnn::{Bnn, BnnConfig};
use vibnn_datasets::{mnist_like_with, MnistLikeSpec};
use vibnn_grng::BnnWallaceGrng;
use vibnn_hw::{AcceleratorConfig, QuantizedBnn, Schedule};

fn main() {
    let scale = RunScale::from_env().learn();
    let ds = mnist_like_with(
        MnistLikeSpec {
            train_size: scale.mnist_train,
            test_size: scale.mnist_test,
            ..Default::default()
        },
        31,
    );
    let arch = [ds.features(), scale.hidden, scale.hidden, ds.classes];
    let batch = 64;
    let batches = ds.train_len().div_ceil(batch);
    let mut bnn = Bnn::new(
        BnnConfig::new(&arch)
            .with_lr(2e-3)
            .with_kl_weight((1.0 / batches as f32).min(2e-3)),
        33,
    );
    for _ in 0..scale.epochs {
        bnn.train_epoch(&ds.train_x, &ds.train_y, batch);
    }
    let calib = ds.train_x.rows_slice(0, 128);
    let q = QuantizedBnn::from_params(&bnn.params(), 8, &calib);
    let mut rows = Vec::new();
    for mc in [1usize, 2, 4, 8, 16] {
        let mut eps = BnnWallaceGrng::new(8, 256, 35);
        let acc = q.evaluate_mc(&ds.test_x, &ds.test_y, mc, &mut eps);
        let cfg = AcceleratorConfig {
            mc_samples: mc,
            ..AcceleratorConfig::paper()
        };
        let sched = Schedule::new(&cfg, &[784, 200, 200, 10]);
        rows.push(vec![
            mc.to_string(),
            pct(acc),
            format!("{}", sched.cycles_per_image()),
            format!("{:.0}", sched.images_per_second()),
        ]);
    }
    print_table(
        "Ablation: MC samples vs accuracy and modelled throughput",
        &["MC samples", "HW accuracy", "Cycles/image", "Images/s"],
        &rows,
    );
}
