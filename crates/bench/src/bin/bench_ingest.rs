//! Machine-readable ingest-serving benchmark: writes `BENCH_ingest.json`.
//!
//! Measures the TCP front door ([`vibnn::ingest::IngestServer`]) in front
//! of a replica cluster over real loopback sockets, in two regimes:
//!
//! * **closed loop** — a fixed pool of concurrent clients, each issuing
//!   its next request the moment the previous reply lands (throughput
//!   capacity and per-lane service latency);
//! * **open loop** — arrivals on a precomputed seeded schedule the
//!   server cannot slow down, both Poisson (memoryless interarrivals)
//!   and bursty (back-to-back packets at the same mean rate), with
//!   latency measured from the *scheduled* arrival, so queueing delay
//!   under bursts is charged to the server.
//!
//! Both regimes report requests/sec and p50/p99/p999 per scheduling lane
//! (interactive vs batch). Before timing anything it asserts the wire
//! contract: every prediction served over TCP must be bit-identical to
//! direct `ClusterEngine::submit` against an identically seeded cluster.
//!
//! Output path: `$VIBNN_BENCH_OUT` if set, else `BENCH_ingest.json` in
//! the working directory. `VIBNN_SCALE=quick` shrinks the workload.
//! Sandboxes that forbid loopback sockets get a JSON stub with
//! `"sockets_available": false` and exit code 0.

use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use vibnn::bnn::{Bnn, BnnConfig};
use vibnn::cluster::{ClusterConfig, ClusterEngine};
use vibnn::grng::ZigguratGrng;
use vibnn::nn::{GaussianInit, Matrix};
use vibnn::rng::{BitSource, SplitMix64};
use vibnn::{IngestClient, IngestConfig, IngestServer, Priority, Vibnn};
use vibnn_bench::RunScale;

const CLUSTER_SEED: u64 = 0x16E57;
const SCHEDULE_SEED: u64 = 0xA881;

struct Workload {
    features: usize,
    hidden: usize,
    classes: usize,
    requests: usize,
    mc_samples: usize,
    train_epochs: usize,
    closed_clients: usize,
    open_workers: usize,
}

impl Workload {
    fn from_scale(scale: RunScale) -> Self {
        match scale {
            RunScale::Quick => Self {
                features: 8,
                hidden: 16,
                classes: 2,
                requests: 128,
                mc_samples: 4,
                train_epochs: 2,
                closed_clients: 2,
                open_workers: 8,
            },
            RunScale::Default => Self {
                features: 26,
                hidden: 64,
                classes: 2,
                requests: 512,
                mc_samples: 8,
                train_epochs: 6,
                closed_clients: 4,
                open_workers: 16,
            },
            RunScale::Full => Self {
                features: 26,
                hidden: 128,
                classes: 2,
                requests: 2048,
                mc_samples: 8,
                train_epochs: 10,
                closed_clients: 8,
                open_workers: 32,
            },
        }
    }
}

fn synth_rows(n: usize, features: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = GaussianInit::new(seed);
    let mut x = Matrix::zeros(n, features);
    let mut y = Vec::with_capacity(n);
    for r in 0..n {
        let mut s = 0.0;
        for c in 0..features {
            let v = rng.next_gaussian() as f32;
            x[(r, c)] = v;
            s += v;
        }
        y.push(usize::from(s > 0.0));
    }
    (x, y)
}

fn deploy(w: &Workload) -> Vibnn {
    let (x, y) = synth_rows(512, w.features, 3);
    let mut bnn = Bnn::new(
        BnnConfig::new(&[w.features, w.hidden, w.classes]).with_lr(0.01),
        5,
    );
    for _ in 0..w.train_epochs {
        bnn.train_epoch(&x, &y, 64);
    }
    vibnn::VibnnBuilder::new(bnn.params())
        .mc_samples(w.mc_samples)
        .calibration(x.rows_slice(0, 64))
        .build()
        .expect("valid deployment")
}

fn cluster(vibnn: Vibnn) -> ClusterEngine<ZigguratGrng> {
    ClusterEngine::with_eps(
        vibnn,
        ClusterConfig {
            replicas: 2,
            max_batch: 16,
            max_queue: 1024,
            workers: 1,
            spill: true,
            batch_skip_bound: 4,
            backend: None,
            policy: None,
        },
        ZigguratGrng::new(CLUSTER_SEED),
    )
    .expect("valid cluster config")
}

/// The lane a request index rides: every third request is interactive,
/// the rest are batch — a plausible online/offline traffic mix that
/// exercises the bounded-skip dequeue under load.
fn lane_of(i: usize) -> Priority {
    if i % 3 == 0 {
        Priority::Interactive
    } else {
        Priority::Batch
    }
}

/// Latency percentiles (µs) of one lane's samples.
struct LaneStats {
    count: usize,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
}

fn lane_stats(mut samples: Vec<f64>) -> LaneStats {
    samples.sort_by(f64::total_cmp);
    let pct = |q: f64| -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let idx = ((samples.len() as f64 - 1.0) * q).round() as usize;
        samples[idx]
    };
    LaneStats {
        count: samples.len(),
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        p999_us: pct(0.999),
    }
}

fn lanes_json(json: &mut String, interactive: &LaneStats, batch: &LaneStats) {
    for (name, s, trailing) in [
        ("interactive", interactive, ","),
        ("batch", batch, ""),
    ] {
        let _ = writeln!(
            json,
            "      \"{name}\": {{\"count\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"p999_us\": {:.1}}}{trailing}",
            s.count, s.p50_us, s.p99_us, s.p999_us
        );
    }
}

/// Closed loop: `clients` connections, each firing its next request as
/// soon as the previous reply arrives. Returns total requests/sec plus
/// per-lane latency samples (µs, reply minus send).
fn closed_loop(
    addr: SocketAddr,
    x: &Matrix,
    clients: usize,
    total_requests: usize,
) -> (f64, Vec<f64>, Vec<f64>) {
    let next = AtomicUsize::new(0);
    let interactive = Mutex::new(Vec::new());
    let batch = Mutex::new(Vec::new());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                let mut client = IngestClient::connect(addr).expect("connect");
                let mut mine_i = Vec::new();
                let mut mine_b = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total_requests {
                        break;
                    }
                    let lane = lane_of(i);
                    let sent = Instant::now();
                    client
                        .predict_with(x.row(i % x.rows()), lane, 0)
                        .expect("closed-loop predict");
                    let us = sent.elapsed().as_secs_f64() * 1e6;
                    match lane {
                        Priority::Interactive => mine_i.push(us),
                        Priority::Batch => mine_b.push(us),
                    }
                }
                interactive.lock().unwrap().extend(mine_i);
                batch.lock().unwrap().extend(mine_b);
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    (
        total_requests as f64 / elapsed,
        interactive.into_inner().unwrap(),
        batch.into_inner().unwrap(),
    )
}

/// Open loop: requests arrive on `offsets` (seconds from the run start)
/// regardless of how fast the server answers; a worker pool large enough
/// to keep client-side queueing negligible carries them, and latency is
/// measured from the scheduled arrival. Returns achieved requests/sec
/// plus per-lane samples (µs).
fn open_loop(
    addr: SocketAddr,
    x: &Matrix,
    offsets: &[f64],
    workers: usize,
) -> (f64, Vec<f64>, Vec<f64>) {
    let next = AtomicUsize::new(0);
    let interactive = Mutex::new(Vec::new());
    let batch = Mutex::new(Vec::new());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut client = IngestClient::connect(addr).expect("connect");
                let mut mine_i = Vec::new();
                let mut mine_b = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= offsets.len() {
                        break;
                    }
                    let due = Duration::from_secs_f64(offsets[i]);
                    if let Some(wait) = due.checked_sub(start.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let scheduled = start + due;
                    let lane = lane_of(i);
                    client
                        .predict_with(x.row(i % x.rows()), lane, 0)
                        .expect("open-loop predict");
                    let us = scheduled.elapsed().as_secs_f64() * 1e6;
                    match lane {
                        Priority::Interactive => mine_i.push(us),
                        Priority::Batch => mine_b.push(us),
                    }
                }
                interactive.lock().unwrap().extend(mine_i);
                batch.lock().unwrap().extend(mine_b);
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    (
        offsets.len() as f64 / elapsed,
        interactive.into_inner().unwrap(),
        batch.into_inner().unwrap(),
    )
}

/// Seeded Poisson arrivals: exponential interarrival times at `rate`
/// requests/sec.
fn poisson_offsets(n: usize, rate: f64, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            // Uniform in (0, 1]: 53 random mantissa bits, never zero.
            let u = ((rng.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
            t += -u.ln() / rate;
            t
        })
        .collect()
}

/// Bursty arrivals: `burst` back-to-back requests, then silence until
/// the next burst, at the same mean `rate`.
fn bursty_offsets(n: usize, rate: f64, burst: usize) -> Vec<f64> {
    let period = burst as f64 / rate;
    (0..n).map(|i| (i / burst) as f64 * period).collect()
}

fn main() {
    let scale = RunScale::from_env();
    let w = Workload::from_scale(scale);
    let (x, _) = synth_rows(w.requests, w.features, 17);
    let vibnn = deploy(&w);
    let host_parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    let out_path =
        std::env::var("VIBNN_BENCH_OUT").unwrap_or_else(|_| "BENCH_ingest.json".to_owned());

    // The reference the wire must reproduce: direct ClusterEngine::submit
    // against an identically seeded cluster.
    let direct: Vec<Vec<u32>> = {
        let c = cluster(vibnn.clone());
        let ids: Vec<u64> = (0..x.rows())
            .map(|r| c.submit(x.row(r).to_vec()).expect("direct submit"))
            .collect();
        let rows = ids
            .into_iter()
            .map(|id| {
                c.wait(id)
                    .expect("direct result")
                    .proba
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect();
        c.shutdown();
        rows
    };

    let server = match IngestServer::bind(cluster(vibnn), "127.0.0.1:0", IngestConfig::default()) {
        Ok(server) => server,
        Err(e) => {
            // No sockets in this sandbox: record that, succeed anyway.
            let stub = format!(
                "{{\n  \"scale\": \"{scale:?}\",\n  \"sockets_available\": false,\n  \
                 \"note\": \"{e}\"\n}}\n"
            );
            std::fs::write(&out_path, stub).expect("write benchmark output");
            println!("sockets unavailable ({e}); wrote stub {out_path}");
            return;
        }
    };
    let addr = server.local_addr();

    // Bit-identity gate, both wire paths, before any timing: single
    // predicts on one connection, one pipelined batch on another.
    {
        let mut client = IngestClient::connect(addr).expect("connect");
        for (r, expect) in direct.iter().enumerate() {
            let res = client
                .predict_with(x.row(r), lane_of(r), 0)
                .expect("gate predict");
            let got: Vec<u32> = res.proba.iter().map(|v| v.to_bits()).collect();
            assert_eq!(&got, expect, "wire single-predict diverged at row {r}");
        }
        let rows: Vec<Vec<f32>> = (0..x.rows()).map(|r| x.row(r).to_vec()).collect();
        let outcomes = client
            .predict_batch_with(&rows, Priority::Batch, 0)
            .expect("gate batch");
        for (r, outcome) in outcomes.iter().enumerate() {
            let res = outcome.as_ref().expect("gate batch row");
            let got: Vec<u32> = res.proba.iter().map(|v| v.to_bits()).collect();
            assert_eq!(&got, &direct[r], "wire batch-predict diverged at row {r}");
        }
    }

    // Closed loop: warm-up pass, then the measured pass.
    let _ = closed_loop(addr, &x, w.closed_clients, w.requests);
    let (closed_rps, closed_i, closed_b) = closed_loop(addr, &x, w.closed_clients, w.requests);
    println!(
        "closed loop: {} clients, {closed_rps:.1} req/s ({} interactive / {} batch samples)",
        w.closed_clients,
        closed_i.len(),
        closed_b.len()
    );

    // Open loop at 60% of the measured closed-loop capacity: enough load
    // to queue under bursts without saturating outright.
    let offered = (closed_rps * 0.6).max(10.0);
    let poisson = poisson_offsets(w.requests, offered, SCHEDULE_SEED);
    let (poisson_rps, poisson_i, poisson_b) = open_loop(addr, &x, &poisson, w.open_workers);
    println!("open loop (poisson @ {offered:.1} req/s offered): {poisson_rps:.1} req/s achieved");
    let burst_size = 16usize;
    let bursty = bursty_offsets(w.requests, offered, burst_size);
    let (bursty_rps, bursty_i, bursty_b) = open_loop(addr, &x, &bursty, w.open_workers);
    println!("open loop (bursts of {burst_size} @ {offered:.1} req/s offered): {bursty_rps:.1} req/s achieved");

    let metrics = server.metrics();
    server.shutdown().shutdown();

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(
        json,
        "  \"arch\": [{}, {}, {}],",
        w.features, w.hidden, w.classes
    );
    let _ = writeln!(json, "  \"requests_per_regime\": {},", w.requests);
    let _ = writeln!(json, "  \"mc_samples\": {},", w.mc_samples);
    let _ = writeln!(json, "  \"host_parallelism\": {host_parallelism},");
    let _ = writeln!(json, "  \"sockets_available\": true,");
    let _ = writeln!(json, "  \"wire_bit_identical_to_direct_submit\": true,");
    let _ = writeln!(json, "  \"server_protocol_errors\": {},", metrics.protocol_errors);
    let _ = writeln!(json, "  \"closed_loop\": {{");
    let _ = writeln!(json, "    \"clients\": {},", w.closed_clients);
    let _ = writeln!(json, "    \"requests_per_sec\": {closed_rps:.1},");
    let _ = writeln!(json, "    \"lanes\": {{");
    lanes_json(&mut json, &lane_stats(closed_i), &lane_stats(closed_b));
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"open_loop_poisson\": {{");
    let _ = writeln!(json, "    \"offered_rps\": {offered:.1},");
    let _ = writeln!(json, "    \"achieved_rps\": {poisson_rps:.1},");
    let _ = writeln!(json, "    \"lanes\": {{");
    lanes_json(&mut json, &lane_stats(poisson_i), &lane_stats(poisson_b));
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"open_loop_bursty\": {{");
    let _ = writeln!(json, "    \"burst_size\": {burst_size},");
    let _ = writeln!(json, "    \"offered_rps\": {offered:.1},");
    let _ = writeln!(json, "    \"achieved_rps\": {bursty_rps:.1},");
    let _ = writeln!(json, "    \"lanes\": {{");
    lanes_json(&mut json, &lane_stats(bursty_i), &lane_stats(bursty_b));
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("wrote {out_path}");
}
