//! Table 7: accuracy on the nine disease-diagnosis datasets.
use vibnn::experiments::table7;
use vibnn_bench::{pct, print_table, RunScale};

fn main() {
    let mut scale = RunScale::from_env().learn();
    scale.hidden = scale.hidden.min(64); // tabular nets are smaller
    let rows = table7(scale, 23);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.dataset.clone(), pct(r.fnn), pct(r.bnn), pct(r.vibnn)])
        .collect();
    print_table(
        "Table 7: accuracy comparison on classification tasks",
        &["Dataset", "FNN (sw)", "BNN (sw)", "VIBNN (hw)"],
        &table,
    );
    println!("\nPaper shape: BNN >= FNN especially on small/imbalanced data;");
    println!("VIBNN within a fraction of a percent of software BNN.");
}
