//! Ablation: BNNWallace pool-size x unit-count trade-off (paper Section
//! 6.1's "memory savings improve with more sharing units").
use vibnn_bench::{f4, print_table, RunScale};
use vibnn_grng::{BnnWallaceGrng, GaussianSource};
use vibnn_stats::{runs_test, Moments};

fn main() {
    let samples = RunScale::from_env().grng_samples().min(500_000);
    let mut rows = Vec::new();
    for (units, pool) in [(2usize, 1024usize), (4, 512), (8, 256), (16, 128), (32, 64)] {
        let mut g = BnnWallaceGrng::new(units, pool, 99);
        let _ = g.take_vec(16_384); // mix
        let xs = g.take_vec(samples);
        let m = Moments::from_slice(&xs);
        let runs = runs_test(&xs[..samples.min(100_000)]);
        rows.push(vec![
            format!("{units} units x {pool} pool (total {})", units * pool),
            f4(m.stability_errors().0),
            f4(m.stability_errors().1),
            format!("{}", if runs.passes(0.05) { "pass" } else { "fail" }),
        ]);
    }
    print_table(
        "Ablation: sharing/shifting trade-off at constant total pool",
        &["Configuration", "mu err", "sigma err", "runs test"],
        &rows,
    );
}
