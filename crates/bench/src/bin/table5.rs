//! Table 5: throughput and energy-efficiency comparison.
use vibnn::experiments::table5;
use vibnn_bench::print_table;

fn main() {
    let rows = table5();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.configuration.clone(),
                format!("{:.1}", r.throughput),
                format!("{:.1}", r.energy_eff),
            ]
        })
        .collect();
    print_table(
        "Table 5: Performance comparison on the MNIST-like workload",
        &["Configuration", "Throughput (Images/s)", "Energy (Images/J)"],
        &table,
    );
    println!("\nPaper: FPGA 321,543.4 img/s; 52,694.8 img/J (RLF) / 37,722.1 img/J (Wallace).");
}
