//! Machine-readable serving-engine benchmark: writes `BENCH_serve.json`.
//!
//! Measures end-to-end requests/sec of the thread-backed
//! [`vibnn::serve::ServeEngine`] — single-row submissions through the
//! backpressured queue, coalesced into micro-batches — over a
//! `max_batch × workers` grid, plus the synchronous `submit_batch` path
//! and the raw batched `predict_proba_parallel` upper bound. Before
//! timing anything it asserts the serving determinism contract: engine
//! results must be bit-identical to the one-shot batched call.
//!
//! It then compares sampling policies at one fixed configuration:
//! `ExactN` (the pinned reference — re-asserted bit-identical to the
//! batched call before its timing counts) against `EarlyExit`, reporting
//! requests/sec, accuracy on the synthetic labels, the mean
//! `samples_used`, and the resulting `policy_speedup`.
//!
//! Output path: `$VIBNN_BENCH_OUT` if set, else `BENCH_serve.json` in the
//! working directory. `VIBNN_SCALE=quick` shrinks the workload.

use std::fmt::Write as _;
use std::time::Instant;

use vibnn::bnn::{Bnn, BnnConfig};
use vibnn::grng::ZigguratGrng;
use vibnn::nn::{GaussianInit, Matrix};
use vibnn::sampler::PolicySpec;
use vibnn::serve::{ServeConfig, ServeEngine, ServeResult};
use vibnn::{Vibnn, VibnnBuilder, VibnnError};
use vibnn_bench::RunScale;

const EPS_SEED: u64 = 0xBEAC;

struct Workload {
    features: usize,
    hidden: usize,
    classes: usize,
    requests: usize,
    mc_samples: usize,
    train_epochs: usize,
}

impl Workload {
    fn from_scale(scale: RunScale) -> Self {
        match scale {
            RunScale::Quick => Self {
                features: 8,
                hidden: 16,
                classes: 2,
                requests: 96,
                mc_samples: 4,
                train_epochs: 2,
            },
            RunScale::Default => Self {
                features: 26,
                hidden: 64,
                classes: 2,
                requests: 512,
                mc_samples: 8,
                train_epochs: 6,
            },
            RunScale::Full => Self {
                features: 26,
                hidden: 128,
                classes: 2,
                requests: 2048,
                mc_samples: 8,
                train_epochs: 10,
            },
        }
    }
}

fn synth_rows(n: usize, features: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = GaussianInit::new(seed);
    let mut x = Matrix::zeros(n, features);
    let mut y = Vec::with_capacity(n);
    for r in 0..n {
        let mut s = 0.0;
        for c in 0..features {
            let v = rng.next_gaussian() as f32;
            x[(r, c)] = v;
            s += v;
        }
        y.push(usize::from(s > 0.0));
    }
    (x, y)
}

fn deploy(w: &Workload) -> Vibnn {
    let (x, y) = synth_rows(512, w.features, 3);
    let mut bnn = Bnn::new(
        BnnConfig::new(&[w.features, w.hidden, w.classes]).with_lr(0.01),
        5,
    );
    for _ in 0..w.train_epochs {
        bnn.train_epoch(&x, &y, 64);
    }
    VibnnBuilder::new(bnn.params())
        .mc_samples(w.mc_samples)
        .calibration(x.rows_slice(0, 64))
        .build()
        .expect("valid deployment")
}

fn engine(vibnn: Vibnn, max_batch: usize, workers: usize) -> ServeEngine<ZigguratGrng> {
    policy_engine(vibnn, max_batch, workers, None)
}

fn policy_engine(
    vibnn: Vibnn,
    max_batch: usize,
    workers: usize,
    policy: Option<PolicySpec>,
) -> ServeEngine<ZigguratGrng> {
    ServeEngine::with_eps(
        vibnn,
        ServeConfig {
            max_batch,
            max_queue: 256,
            workers,
            backend: None,
            policy,
        },
        ZigguratGrng::new(EPS_SEED),
    )
    .expect("valid serve config")
}

fn accuracy(results: &[ServeResult], y: &[usize]) -> f64 {
    let correct = results
        .iter()
        .zip(y)
        .filter(|(res, &label)| res.argmax == label)
        .count();
    correct as f64 / y.len().max(1) as f64
}

fn mean_samples(results: &[ServeResult]) -> f64 {
    let total: u64 = results.iter().map(|r| u64::from(r.samples_used)).sum();
    total as f64 / results.len().max(1) as f64
}

/// Times the synchronous micro-batched path under one sampling policy,
/// returning `(requests/sec, results)`.
fn policy_rps(
    vibnn: Vibnn,
    x: &Matrix,
    max_batch: usize,
    policy: PolicySpec,
) -> (f64, Vec<ServeResult>) {
    let eng = policy_engine(vibnn, max_batch, 1, Some(policy));
    let _ = eng.submit_batch(x).expect("warm-up serve");
    let start = Instant::now();
    let results = eng.submit_batch(x).expect("serve");
    let elapsed = start.elapsed().as_secs_f64();
    (x.rows() as f64 / elapsed, results)
}

/// Requests/sec for `requests` single-row submissions through the
/// spawned queue (measured submit → last result, including queueing and
/// backpressure spins).
fn spawned_rps(vibnn: Vibnn, x: &Matrix, max_batch: usize, workers: usize) -> f64 {
    let handle = engine(vibnn, max_batch, workers).spawn();
    let start = Instant::now();
    let mut ids = Vec::with_capacity(x.rows());
    for r in 0..x.rows() {
        let id = loop {
            match handle.submit(x.row(r).to_vec()) {
                Ok(id) => break id,
                Err(VibnnError::QueueFull { .. }) => std::thread::yield_now(),
                Err(e) => panic!("submit failed: {e}"),
            }
        };
        ids.push(id);
    }
    for id in ids {
        handle.wait(id).expect("result");
    }
    let elapsed = start.elapsed().as_secs_f64();
    handle.shutdown();
    x.rows() as f64 / elapsed
}

/// Requests/sec for the synchronous `submit_batch` path (no queue; pure
/// micro-batched compute).
fn sync_rps(vibnn: Vibnn, x: &Matrix, max_batch: usize, workers: usize) -> f64 {
    let eng = engine(vibnn, max_batch, workers);
    let start = Instant::now();
    let results = eng.submit_batch(x).expect("serve");
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(results.len(), x.rows());
    x.rows() as f64 / elapsed
}

fn main() {
    let scale = RunScale::from_env();
    let w = Workload::from_scale(scale);
    let (x, y) = synth_rows(w.requests, w.features, 17);
    let vibnn = deploy(&w);

    // Determinism gate: engine rows must be bit-identical to the batched
    // parallel call before any number is worth reporting.
    let reference = vibnn.predict_proba_parallel(&x, &ZigguratGrng::new(EPS_SEED), 1);
    let served = engine(vibnn.clone(), 16, 2)
        .submit_batch(&x)
        .expect("serve");
    for (r, res) in served.iter().enumerate() {
        let same = res
            .proba
            .iter()
            .zip(reference.row(r))
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "serving diverged from batched inference at row {r}");
    }

    // The raw batched upper bound (one predict_proba_parallel call).
    let start = Instant::now();
    let _ = std::hint::black_box(vibnn.predict_proba_parallel(
        &x,
        &ZigguratGrng::new(EPS_SEED),
        0,
    ));
    let batched_rps = x.rows() as f64 / start.elapsed().as_secs_f64();

    let max_batches = [1usize, 8, 32];
    let workers_grid = [1usize, 2, 4];
    let mut rows = Vec::new();
    for &mb in &max_batches {
        for &wk in &workers_grid {
            // Warm-up pass, then measure.
            let _ = sync_rps(vibnn.clone(), &x, mb, wk);
            let sync = sync_rps(vibnn.clone(), &x, mb, wk);
            let queued = spawned_rps(vibnn.clone(), &x, mb, wk);
            println!(
                "max_batch {mb:3}  workers {wk}  sync {sync:9.1} req/s  queued {queued:9.1} req/s"
            );
            rows.push((mb, wk, sync, queued));
        }
    }

    // Sampling-policy comparison at one fixed configuration. `ExactN`
    // is the pinned reference: its bits must match the batched parallel
    // call (the historical serve path) before its timing counts.
    let early = PolicySpec::EarlyExit {
        k: 2,
        min_samples: 2,
    };
    let (exact_rps, exact_results) = policy_rps(vibnn.clone(), &x, 128, PolicySpec::ExactN);
    for (r, res) in exact_results.iter().enumerate() {
        let same = res
            .proba
            .iter()
            .zip(reference.row(r))
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "ExactN diverged from the batched reference at row {r}");
        assert_eq!(res.samples_used as usize, w.mc_samples);
    }
    let (early_rps, early_results) = policy_rps(vibnn.clone(), &x, 128, early);
    let exact_acc = accuracy(&exact_results, &y);
    let early_acc = accuracy(&early_results, &y);
    let early_mean_samples = mean_samples(&early_results);
    let policy_speedup = early_rps / exact_rps;
    println!(
        "policy exact-n     {exact_rps:9.1} req/s  acc {exact_acc:.3}  \
         mean samples {:.2}",
        w.mc_samples as f64
    );
    println!(
        "policy early-exit  {early_rps:9.1} req/s  acc {early_acc:.3}  \
         mean samples {early_mean_samples:.2}  speedup {policy_speedup:.2}x"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(
        json,
        "  \"arch\": [{}, {}, {}],",
        w.features, w.hidden, w.classes
    );
    let _ = writeln!(json, "  \"requests\": {},", w.requests);
    let _ = writeln!(json, "  \"mc_samples\": {},", w.mc_samples);
    let _ = writeln!(
        json,
        "  \"batched_parallel_upper_bound_rps\": {batched_rps:.1},"
    );
    let _ = writeln!(json, "  \"results_bit_identical_to_batched\": true,");
    json.push_str("  \"grid\": [\n");
    for (i, (mb, wk, sync, queued)) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"max_batch\": {mb}, \"workers\": {wk}, \
             \"sync_requests_per_sec\": {sync:.1}, \
             \"queued_requests_per_sec\": {queued:.1}}}{}",
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"policy_comparison\": {\n");
    json.push_str("    \"config\": {\"max_batch\": 128, \"workers\": 1},\n");
    let _ = writeln!(json, "    \"exact_n_bit_identical_to_batched\": true,");
    let _ = writeln!(
        json,
        "    \"exact_n\": {{\"requests_per_sec\": {exact_rps:.1}, \
         \"accuracy\": {exact_acc:.4}, \"samples_used_mean\": {:.2}}},",
        w.mc_samples as f64
    );
    let _ = writeln!(
        json,
        "    \"early_exit\": {{\"k\": 2, \"min_samples\": 2, \
         \"requests_per_sec\": {early_rps:.1}, \"accuracy\": {early_acc:.4}, \
         \"samples_used_mean\": {early_mean_samples:.2}}},"
    );
    let _ = writeln!(json, "    \"policy_speedup\": {policy_speedup:.2}");
    json.push_str("  }\n}\n");

    let path =
        std::env::var("VIBNN_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_owned());
    std::fs::write(&path, &json).expect("write benchmark output");
    println!("wrote {path}");
    println!("batched parallel upper bound: {batched_rps:.1} req/s");
}
