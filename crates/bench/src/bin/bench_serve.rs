//! Machine-readable serving-engine benchmark: writes `BENCH_serve.json`.
//!
//! Measures end-to-end requests/sec of the thread-backed
//! [`vibnn::serve::ServeEngine`] — single-row submissions through the
//! backpressured queue, coalesced into micro-batches — over a
//! `max_batch × workers` grid, plus the synchronous `submit_batch` path
//! and the raw batched `predict_proba_parallel` upper bound. Before
//! timing anything it asserts the serving determinism contract: engine
//! results must be bit-identical to the one-shot batched call.
//!
//! Output path: `$VIBNN_BENCH_OUT` if set, else `BENCH_serve.json` in the
//! working directory. `VIBNN_SCALE=quick` shrinks the workload.

use std::fmt::Write as _;
use std::time::Instant;

use vibnn::bnn::{Bnn, BnnConfig};
use vibnn::grng::ZigguratGrng;
use vibnn::nn::{GaussianInit, Matrix};
use vibnn::serve::{ServeConfig, ServeEngine};
use vibnn::{Vibnn, VibnnBuilder, VibnnError};
use vibnn_bench::RunScale;

const EPS_SEED: u64 = 0xBEAC;

struct Workload {
    features: usize,
    hidden: usize,
    classes: usize,
    requests: usize,
    mc_samples: usize,
    train_epochs: usize,
}

impl Workload {
    fn from_scale(scale: RunScale) -> Self {
        match scale {
            RunScale::Quick => Self {
                features: 8,
                hidden: 16,
                classes: 2,
                requests: 96,
                mc_samples: 4,
                train_epochs: 2,
            },
            RunScale::Default => Self {
                features: 26,
                hidden: 64,
                classes: 2,
                requests: 512,
                mc_samples: 8,
                train_epochs: 6,
            },
            RunScale::Full => Self {
                features: 26,
                hidden: 128,
                classes: 2,
                requests: 2048,
                mc_samples: 8,
                train_epochs: 10,
            },
        }
    }
}

fn synth_rows(n: usize, features: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = GaussianInit::new(seed);
    let mut x = Matrix::zeros(n, features);
    let mut y = Vec::with_capacity(n);
    for r in 0..n {
        let mut s = 0.0;
        for c in 0..features {
            let v = rng.next_gaussian() as f32;
            x[(r, c)] = v;
            s += v;
        }
        y.push(usize::from(s > 0.0));
    }
    (x, y)
}

fn deploy(w: &Workload) -> Vibnn {
    let (x, y) = synth_rows(512, w.features, 3);
    let mut bnn = Bnn::new(
        BnnConfig::new(&[w.features, w.hidden, w.classes]).with_lr(0.01),
        5,
    );
    for _ in 0..w.train_epochs {
        bnn.train_epoch(&x, &y, 64);
    }
    VibnnBuilder::new(bnn.params())
        .mc_samples(w.mc_samples)
        .calibration(x.rows_slice(0, 64))
        .build()
        .expect("valid deployment")
}

fn engine(vibnn: Vibnn, max_batch: usize, workers: usize) -> ServeEngine<ZigguratGrng> {
    ServeEngine::with_eps(
        vibnn,
        ServeConfig {
            max_batch,
            max_queue: 256,
            workers,
            backend: None,
        },
        ZigguratGrng::new(EPS_SEED),
    )
    .expect("valid serve config")
}

/// Requests/sec for `requests` single-row submissions through the
/// spawned queue (measured submit → last result, including queueing and
/// backpressure spins).
fn spawned_rps(vibnn: Vibnn, x: &Matrix, max_batch: usize, workers: usize) -> f64 {
    let handle = engine(vibnn, max_batch, workers).spawn();
    let start = Instant::now();
    let mut ids = Vec::with_capacity(x.rows());
    for r in 0..x.rows() {
        let id = loop {
            match handle.submit(x.row(r).to_vec()) {
                Ok(id) => break id,
                Err(VibnnError::QueueFull { .. }) => std::thread::yield_now(),
                Err(e) => panic!("submit failed: {e}"),
            }
        };
        ids.push(id);
    }
    for id in ids {
        handle.wait(id).expect("result");
    }
    let elapsed = start.elapsed().as_secs_f64();
    handle.shutdown();
    x.rows() as f64 / elapsed
}

/// Requests/sec for the synchronous `submit_batch` path (no queue; pure
/// micro-batched compute).
fn sync_rps(vibnn: Vibnn, x: &Matrix, max_batch: usize, workers: usize) -> f64 {
    let eng = engine(vibnn, max_batch, workers);
    let start = Instant::now();
    let results = eng.submit_batch(x).expect("serve");
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(results.len(), x.rows());
    x.rows() as f64 / elapsed
}

fn main() {
    let scale = RunScale::from_env();
    let w = Workload::from_scale(scale);
    let (x, _) = synth_rows(w.requests, w.features, 17);
    let vibnn = deploy(&w);

    // Determinism gate: engine rows must be bit-identical to the batched
    // parallel call before any number is worth reporting.
    let reference = vibnn.predict_proba_parallel(&x, &ZigguratGrng::new(EPS_SEED), 1);
    let served = engine(vibnn.clone(), 16, 2)
        .submit_batch(&x)
        .expect("serve");
    for (r, res) in served.iter().enumerate() {
        let same = res
            .proba
            .iter()
            .zip(reference.row(r))
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "serving diverged from batched inference at row {r}");
    }

    // The raw batched upper bound (one predict_proba_parallel call).
    let start = Instant::now();
    let _ = std::hint::black_box(vibnn.predict_proba_parallel(
        &x,
        &ZigguratGrng::new(EPS_SEED),
        0,
    ));
    let batched_rps = x.rows() as f64 / start.elapsed().as_secs_f64();

    let max_batches = [1usize, 8, 32];
    let workers_grid = [1usize, 2, 4];
    let mut rows = Vec::new();
    for &mb in &max_batches {
        for &wk in &workers_grid {
            // Warm-up pass, then measure.
            let _ = sync_rps(vibnn.clone(), &x, mb, wk);
            let sync = sync_rps(vibnn.clone(), &x, mb, wk);
            let queued = spawned_rps(vibnn.clone(), &x, mb, wk);
            println!(
                "max_batch {mb:3}  workers {wk}  sync {sync:9.1} req/s  queued {queued:9.1} req/s"
            );
            rows.push((mb, wk, sync, queued));
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(
        json,
        "  \"arch\": [{}, {}, {}],",
        w.features, w.hidden, w.classes
    );
    let _ = writeln!(json, "  \"requests\": {},", w.requests);
    let _ = writeln!(json, "  \"mc_samples\": {},", w.mc_samples);
    let _ = writeln!(
        json,
        "  \"batched_parallel_upper_bound_rps\": {batched_rps:.1},"
    );
    let _ = writeln!(json, "  \"results_bit_identical_to_batched\": true,");
    json.push_str("  \"grid\": [\n");
    for (i, (mb, wk, sync, queued)) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"max_batch\": {mb}, \"workers\": {wk}, \
             \"sync_requests_per_sec\": {sync:.1}, \
             \"queued_requests_per_sec\": {queued:.1}}}{}",
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");

    let path =
        std::env::var("VIBNN_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_owned());
    std::fs::write(&path, &json).expect("write benchmark output");
    println!("wrote {path}");
    println!("batched parallel upper bound: {batched_rps:.1} req/s");
}
