//! Table 2: hardware utilization & performance of the 64-lane GRNGs.
use vibnn::experiments::table2;
use vibnn_bench::print_table;

fn main() {
    let rows = table2();
    let paper = [
        ("RLF-GRNG", 831u64, 1780u64, 16_384u64, 3u64, 528.69, 212.95),
        ("BNNWallace-GRNG", 401, 1166, 1_048_576, 103, 560.25, 117.63),
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(paper)
        .map(|(r, (_, pa, pr, pb, pblk, pp, pf))| {
            vec![
                r.design.clone(),
                format!("{} (paper {})", r.alms, pa),
                format!("{} (paper {})", r.registers, pr),
                format!("{} (paper {})", r.block_bits, pb),
                format!("{} (paper {})", r.ram_blocks, pblk),
                format!("{:.2} (paper {:.2})", r.power_mw, pp),
                format!("{:.2} (paper {:.2})", r.fmax_mhz, pf),
            ]
        })
        .collect();
    print_table(
        "Table 2: 64-lane GRNG hardware comparison (model vs paper)",
        &["Type", "ALMs", "Registers", "Block bits", "RAM blocks", "Power (mW)", "Fmax (MHz)"],
        &table,
    );
}
