//! Figure 16: FNN vs BNN test accuracy as training data shrinks.
use vibnn::experiments::fig16;
use vibnn_bench::{pct, print_table, RunScale};

fn main() {
    let pts = fig16(RunScale::from_env().learn(), 11);
    let table: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                format!("1/{}", p.denominator),
                p.train_samples.to_string(),
                pct(p.fnn_accuracy),
                pct(p.bnn_accuracy),
            ]
        })
        .collect();
    print_table(
        "Figure 16: test accuracy vs training fraction (FNN vs BNN)",
        &["Fraction", "Train samples", "FNN", "BNN"],
        &table,
    );
    println!("\nPaper shape: BNN increasingly outperforms FNN as data shrinks.");
}
