//! Table 3: qualitative RLF vs BNNWallace comparison (derived from data).
fn main() {
    println!("\n## Table 3: RLF-GRNG and BNNWallace-GRNG comparison\n");
    println!("{}", vibnn::experiments::table3());
}
