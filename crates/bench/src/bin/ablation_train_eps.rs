//! Ablation: training convergence vs the GRNG family supplying the
//! Bayes-by-Backprop reparameterization noise (`TrainEpsSource`).
//!
//! The paper trains off-accelerator with ideal software Gaussians and
//! only commits hardware GRNGs at inference. This experiment asks what
//! happens if the hardware families feed *training* instead: each run
//! trains the same network, from the same initialization, on the same
//! minibatch schedule — only the ε stream changes. Reports the per-epoch
//! loss curve and the final mean-weight test accuracy per source.

use vibnn::{Pipeline, VibnnError};
use vibnn_bench::{pct, print_table, RunScale};
use vibnn_bnn::{BnnConfig, TrainEpsSource};
use vibnn_datasets::{mnist_like_with, MnistLikeSpec};

fn main() -> Result<(), VibnnError> {
    let scale = RunScale::from_env().learn();
    let ds = mnist_like_with(
        MnistLikeSpec {
            train_size: scale.mnist_train,
            test_size: scale.mnist_test,
            ..Default::default()
        },
        5,
    );
    let arch = [ds.features(), scale.hidden, ds.classes];
    let batch = 64;
    let batches = ds.train_len().div_ceil(batch);
    let sources = [
        TrainEpsSource::Ziggurat,
        TrainEpsSource::Rlf,
        TrainEpsSource::BnnWallace,
    ];
    let mut rows = Vec::new();
    for source in sources {
        let trained = Pipeline::new(
            BnnConfig::new(&arch)
                .with_lr(2e-3)
                .with_kl_weight((1.0 / batches as f32).min(2e-3))
                .with_sigma_init(0.05)
                .with_prior_std(0.3),
        )
        .seed(9)
        .epochs(scale.epochs)
        .batch(batch)
        .train_eps_source(source)
        .train(&ds.train_x, &ds.train_y)?;
        let curve: Vec<String> = trained
            .reports()
            .iter()
            .map(|r| format!("{:.4}", r.loss))
            .collect();
        println!("{source:>10}: loss curve [{}]", curve.join(", "));
        let final_loss = trained.reports().last().map_or(f64::NAN, |r| r.loss);
        let acc = trained.bnn().evaluate_mean(&ds.test_x, &ds.test_y);
        rows.push(vec![
            source.to_string(),
            format!("{final_loss:.4}"),
            pct(acc),
        ]);
    }
    print_table(
        "Ablation: convergence vs training eps source",
        &["eps source", "final loss", "accuracy"],
        &rows,
    );
    Ok(())
}
