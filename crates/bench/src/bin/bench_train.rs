//! Machine-readable training-engine benchmark: writes `BENCH_train.json`.
//!
//! Measures epochs/sec of BNN training on the MNIST-like workload in four
//! configurations — the retained seed path (single-threaded, scalar ε
//! draws, clone-heavy; `Bnn::train_epoch_reference`) and the
//! deterministic data-parallel engine at 1/2/4 worker threads (block ε
//! draws via forked substreams) — plus raw scalar-vs-block ε fill rates
//! for the training generator. The engine runs all start from one cloned
//! initial network, so the benchmark also *checks* the bit-identity
//! contract: per-epoch losses must match exactly across thread counts.
//!
//! Output path: `$VIBNN_BENCH_OUT` if set, else `BENCH_train.json` in the
//! working directory. `VIBNN_SCALE=quick` shrinks the workload;
//! `default`/`full` use the paper's 784-200-200-10 architecture
//! (`full` additionally uses the full `LearnScale::paper()` training-set
//! size).

use std::fmt::Write as _;
use std::time::Instant;

use vibnn::experiments::LearnScale;
use vibnn_bench::RunScale;
use vibnn_bnn::{Bnn, BnnConfig};
use vibnn_datasets::{mnist_like_with, MnistLikeSpec};
use vibnn_grng::{BoxMullerGrng, GaussianSource, ZigguratGrng};
use vibnn_nn::Matrix;

/// Forces the scalar ε path: only `next_gaussian` is implemented, so the
/// default `fill`/`fill_f32` loop one virtual-free scalar draw per slot —
/// exactly the seed's per-element consumption pattern.
struct ScalarEps<G>(G);

impl<G: GaussianSource> GaussianSource for ScalarEps<G> {
    fn next_gaussian(&mut self) -> f64 {
        self.0.next_gaussian()
    }
}

struct Run {
    threads: usize,
    epochs_per_sec: f64,
    losses: Vec<f64>,
}

/// Times each epoch individually and reports the *best* epoch's rate —
/// robust against transient slowdowns on shared machines (applied
/// identically to the baseline and every engine configuration, so the
/// comparison stays fair).
fn time_epochs(epochs: usize, mut f: impl FnMut() -> f64) -> (f64, Vec<f64>) {
    let mut best = f64::INFINITY;
    let mut losses = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let start = Instant::now();
        losses.push(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    (1.0 / best, losses)
}

/// One throwaway epoch on a scratch clone so page faults, allocator
/// growth, and CPU frequency ramp-up land outside every measurement.
fn warm_up(initial: &Bnn, x: &Matrix, y: &[usize], batch: usize) {
    let mut scratch = initial.clone();
    std::hint::black_box(scratch.train_epoch_mc_threads(x, y, batch, 1, 1));
}

fn fill_rate_msps(src: &mut impl GaussianSource, block: bool) -> f64 {
    let mut buf = vec![0.0f32; 65_536];
    // Warm-up.
    src.fill_f32(&mut buf);
    let start = Instant::now();
    let mut filled = 0usize;
    while start.elapsed().as_secs_f64() < 0.2 {
        if block {
            src.fill_f32(&mut buf);
        } else {
            for slot in &mut buf {
                *slot = src.next_gaussian() as f32;
            }
        }
        filled += buf.len();
    }
    std::hint::black_box(buf[0]);
    filled as f64 / start.elapsed().as_secs_f64() / 1e6
}

fn main() {
    let run_scale = RunScale::from_env();
    let scale = match run_scale {
        RunScale::Quick => LearnScale::smoke(),
        RunScale::Default => LearnScale {
            mnist_train: 2_000,
            ..LearnScale::paper()
        },
        RunScale::Full => LearnScale::paper(),
    };
    let epochs = match run_scale {
        RunScale::Quick => 2,
        _ => 3,
    };
    let ds = mnist_like_with(
        MnistLikeSpec {
            train_size: scale.mnist_train,
            test_size: 16,
            ..MnistLikeSpec::default()
        },
        1,
    );
    let arch = [ds.features(), scale.hidden, scale.hidden, ds.classes];
    let batch = 64.min(ds.train_len()).max(1);
    let cfg = BnnConfig::new(&arch)
        .with_lr(2e-3)
        .with_kl_weight(5e-4)
        .with_sigma_init(0.02)
        .with_prior_std(0.1);
    let initial = Bnn::new(cfg, 7);

    // Seed scalar path: one continuous scalar-ε stream, single thread.
    let (baseline_eps, baseline_losses) = {
        let mut bnn = initial.clone();
        let mut eps = ScalarEps(BoxMullerGrng::new(3));
        let x: &Matrix = &ds.train_x;
        warm_up(&initial, x, &ds.train_y, batch);
        time_epochs(epochs, || {
            bnn.train_epoch_reference(x, &ds.train_y, batch, &mut eps).loss
        })
    };

    // Engine at 1/2/4 threads, all from the same initial network.
    let engine: Vec<Run> = [1usize, 2, 4]
        .into_iter()
        .map(|threads| {
            let mut bnn = initial.clone();
            let x: &Matrix = &ds.train_x;
            warm_up(&initial, x, &ds.train_y, batch);
            let (eps_rate, losses) = time_epochs(epochs, || {
                bnn.train_epoch_mc_threads(x, &ds.train_y, batch, scale.train_mc, threads)
                    .loss
            });
            Run {
                threads,
                epochs_per_sec: eps_rate,
                losses,
            }
        })
        .collect();

    let bit_identical = engine.iter().all(|r| {
        r.losses
            .iter()
            .zip(&engine[0].losses)
            .all(|(a, b)| a.to_bits() == b.to_bits())
    });
    assert!(
        bit_identical,
        "engine losses diverged across thread counts: {:?}",
        engine.iter().map(|r| &r.losses).collect::<Vec<_>>()
    );
    let speedup_4t = engine
        .iter()
        .find(|r| r.threads == 4)
        .map(|r| r.epochs_per_sec / baseline_eps)
        .unwrap_or(0.0);

    // Raw ε fill rates: scalar draw loop vs block kernel.
    let mut zigg = ZigguratGrng::new(5);
    let zigg_scalar = fill_rate_msps(&mut zigg, false);
    let zigg_block = fill_rate_msps(&mut zigg, true);
    let mut bm = BoxMullerGrng::new(5);
    let bm_scalar = fill_rate_msps(&mut bm, false);
    let bm_block = fill_rate_msps(&mut bm, true);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": \"{run_scale:?}\",");
    let _ = writeln!(
        json,
        "  \"arch\": [{}],",
        arch.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(json, "  \"train_rows\": {},", ds.train_len());
    let _ = writeln!(json, "  \"batch\": {batch},");
    let _ = writeln!(json, "  \"epochs_measured\": {epochs},");
    let _ = writeln!(
        json,
        "  \"eps_fill_msamples_per_sec\": {{\"ziggurat_scalar\": {zigg_scalar:.1}, \
         \"ziggurat_block\": {zigg_block:.1}, \"boxmuller_scalar\": {bm_scalar:.1}, \
         \"boxmuller_block\": {bm_block:.1}}},"
    );
    let _ = writeln!(
        json,
        "  \"baseline_seed_scalar\": {{\"threads\": 1, \"epochs_per_sec\": {:.4}, \
         \"final_loss\": {:.6}}},",
        baseline_eps,
        baseline_losses.last().copied().unwrap_or(f64::NAN)
    );
    json.push_str("  \"engine_block_eps\": [\n");
    for (i, r) in engine.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"epochs_per_sec\": {:.4}, \"final_loss\": {:.6}, \
             \"speedup_vs_seed\": {:.3}}}{}",
            r.threads,
            r.epochs_per_sec,
            r.losses.last().copied().unwrap_or(f64::NAN),
            r.epochs_per_sec / baseline_eps,
            if i + 1 < engine.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"speedup_vs_seed_at_4_threads\": {speedup_4t:.3},");
    let _ = writeln!(json, "  \"losses_bit_identical_across_threads\": {bit_identical}");
    json.push_str("}\n");

    let path =
        std::env::var("VIBNN_BENCH_OUT").unwrap_or_else(|_| "BENCH_train.json".to_owned());
    std::fs::write(&path, &json).expect("write benchmark output");

    println!("wrote {path}");
    println!(
        "seed scalar path     1 thread   {:.3} epochs/s  (loss {:.4})",
        baseline_eps,
        baseline_losses.last().copied().unwrap_or(f64::NAN)
    );
    for r in &engine {
        println!(
            "engine (block eps)  {} thread{}  {:.3} epochs/s  x{:.2} vs seed  (loss {:.4})",
            r.threads,
            if r.threads == 1 { " " } else { "s" },
            r.epochs_per_sec,
            r.epochs_per_sec / baseline_eps,
            r.losses.last().copied().unwrap_or(f64::NAN)
        );
    }
    println!(
        "eps fill Msamples/s: ziggurat scalar {zigg_scalar:.1} block {zigg_block:.1} | \
         box-muller scalar {bm_scalar:.1} block {bm_block:.1}"
    );
}
