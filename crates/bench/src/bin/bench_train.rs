//! Machine-readable training-engine benchmark: writes `BENCH_train.json`.
//!
//! Measures epochs/sec of BNN training on the MNIST-like workload in four
//! configurations — the retained seed path (single-threaded, scalar ε
//! draws, clone-heavy; `Bnn::train_epoch_reference`) and the
//! deterministic data-parallel engine at 1/2/4 worker threads (block ε
//! draws via forked substreams) — plus raw scalar-vs-block ε fill rates
//! for the training generator. The engine runs all start from one cloned
//! initial network, so the benchmark also *checks* the bit-identity
//! contract: per-epoch losses must match exactly across thread counts.
//!
//! Output path: `$VIBNN_BENCH_OUT` if set, else `BENCH_train.json` in the
//! working directory. `VIBNN_SCALE=quick` shrinks the workload;
//! `default`/`full` use the paper's 784-200-200-10 architecture
//! (`full` additionally uses the full `LearnScale::paper()` training-set
//! size).
//!
//! The binary additionally reports a per-phase wall-time breakdown of the
//! engine step (ε draw / shard passes / gradient reduction / serial tail)
//! and, via a counting `#[global_allocator]` installed in this binary
//! only, the heap allocations per steady-state training step — the
//! `StepArena` contract says this must be 0 at one thread once the pools
//! are warm.

// The counting allocator below must implement `GlobalAlloc`, which is an
// `unsafe` trait; this is the one sanctioned exception to the workspace's
// `unsafe_code = "deny"` lint, scoped to this benchmark binary.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use vibnn::experiments::LearnScale;
use vibnn_bench::RunScale;
use vibnn_bnn::{Bnn, BnnConfig};
use vibnn_datasets::{mnist_like_with, MnistLikeSpec};
use vibnn_grng::{BoxMullerGrng, GaussianSource, ZigguratGrng};
use vibnn_nn::Matrix;

/// Counts every heap allocation (alloc + grow-realloc) made by the
/// process. Installed only in this benchmark binary — the library crates
/// never see it — so the steady-state zero-allocation claim is measured
/// against the real global allocator call stream.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations per steady-state `train_batch_mc_threads` step at one
/// thread: a few warm-up steps grow the `StepArena` pools to their
/// steady-state shapes, then `steps` further steps are counted.
fn allocations_per_step(
    initial: &Bnn,
    x: &Matrix,
    y: &[usize],
    batch: usize,
    samples: usize,
) -> f64 {
    let mut bnn = initial.clone();
    let rows = batch.min(x.rows());
    let bx = x.select_rows(&(0..rows).collect::<Vec<_>>());
    let by = &y[..rows];
    for _ in 0..3 {
        bnn.train_batch_mc_threads(&bx, by, samples, 1);
    }
    let steps = 16u32;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..steps {
        bnn.train_batch_mc_threads(&bx, by, samples, 1);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    f64::from((after - before) as u32) / f64::from(steps)
}

/// Forces the scalar ε path: only `next_gaussian` is implemented, so the
/// default `fill`/`fill_f32` loop one virtual-free scalar draw per slot —
/// exactly the seed's per-element consumption pattern.
struct ScalarEps<G>(G);

impl<G: GaussianSource> GaussianSource for ScalarEps<G> {
    fn next_gaussian(&mut self) -> f64 {
        self.0.next_gaussian()
    }
}

struct Run {
    threads: usize,
    epochs_per_sec: f64,
    losses: Vec<f64>,
}

/// Times each epoch individually and reports the *best* epoch's rate —
/// robust against transient slowdowns on shared machines (applied
/// identically to the baseline and every engine configuration, so the
/// comparison stays fair).
fn time_epochs(epochs: usize, mut f: impl FnMut() -> f64) -> (f64, Vec<f64>) {
    let mut best = f64::INFINITY;
    let mut losses = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let start = Instant::now();
        losses.push(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    (1.0 / best, losses)
}

/// One throwaway epoch on a scratch clone so page faults, allocator
/// growth, and CPU frequency ramp-up land outside every measurement.
fn warm_up(initial: &Bnn, x: &Matrix, y: &[usize], batch: usize) {
    let mut scratch = initial.clone();
    std::hint::black_box(scratch.train_epoch_mc_threads(x, y, batch, 1, 1));
}

/// Best-of-3 fill rate: each repetition times ~0.2 s of fills and the
/// fastest wins, so a transient stall on a shared machine cannot tip the
/// block-vs-scalar guard.
fn fill_rate_msps(src: &mut impl GaussianSource, block: bool) -> f64 {
    let mut buf = vec![0.0f32; 65_536];
    // Warm-up.
    src.fill_f32(&mut buf);
    let mut best = 0.0f64;
    for _ in 0..3 {
        let start = Instant::now();
        let mut filled = 0usize;
        while start.elapsed().as_secs_f64() < 0.2 {
            if block {
                src.fill_f32(&mut buf);
            } else {
                for slot in &mut buf {
                    *slot = src.next_gaussian() as f32;
                }
            }
            filled += buf.len();
        }
        std::hint::black_box(buf[0]);
        best = best.max(filled as f64 / start.elapsed().as_secs_f64() / 1e6);
    }
    best
}

fn main() {
    let run_scale = RunScale::from_env();
    let scale = match run_scale {
        RunScale::Quick => LearnScale::smoke(),
        RunScale::Default => LearnScale {
            mnist_train: 2_000,
            ..LearnScale::paper()
        },
        RunScale::Full => LearnScale::paper(),
    };
    let epochs = match run_scale {
        RunScale::Quick => 2,
        _ => 3,
    };
    let ds = mnist_like_with(
        MnistLikeSpec {
            train_size: scale.mnist_train,
            test_size: 16,
            ..MnistLikeSpec::default()
        },
        1,
    );
    let arch = [ds.features(), scale.hidden, scale.hidden, ds.classes];
    let batch = 64.min(ds.train_len()).max(1);
    let cfg = BnnConfig::new(&arch)
        .with_lr(2e-3)
        .with_kl_weight(5e-4)
        .with_sigma_init(0.02)
        .with_prior_std(0.1);
    let initial = Bnn::new(cfg, 7);

    // Seed scalar path: one continuous scalar-ε stream, single thread.
    let (baseline_eps, baseline_losses) = {
        let mut bnn = initial.clone();
        let mut eps = ScalarEps(BoxMullerGrng::new(3));
        let x: &Matrix = &ds.train_x;
        warm_up(&initial, x, &ds.train_y, batch);
        time_epochs(epochs, || {
            bnn.train_epoch_reference(x, &ds.train_y, batch, &mut eps).loss
        })
    };

    // Engine at 1/2/4 threads, all from the same initial network. The
    // 1-thread run also contributes the per-phase wall-time breakdown.
    let mut phase_1t = vibnn_bnn::StepPhaseSeconds::default();
    let engine: Vec<Run> = [1usize, 2, 4]
        .into_iter()
        .map(|threads| {
            let mut bnn = initial.clone();
            let x: &Matrix = &ds.train_x;
            warm_up(&initial, x, &ds.train_y, batch);
            let (eps_rate, losses) = time_epochs(epochs, || {
                bnn.train_epoch_mc_threads(x, &ds.train_y, batch, scale.train_mc, threads)
                    .loss
            });
            if threads == 1 {
                phase_1t = bnn.phase_seconds();
            }
            Run {
                threads,
                epochs_per_sec: eps_rate,
                losses,
            }
        })
        .collect();

    let allocs_per_step =
        allocations_per_step(&initial, &ds.train_x, &ds.train_y, batch, scale.train_mc);

    let bit_identical = engine.iter().all(|r| {
        r.losses
            .iter()
            .zip(&engine[0].losses)
            .all(|(a, b)| a.to_bits() == b.to_bits())
    });
    assert!(
        bit_identical,
        "engine losses diverged across thread counts: {:?}",
        engine.iter().map(|r| &r.losses).collect::<Vec<_>>()
    );
    let speedup_4t = engine
        .iter()
        .find(|r| r.threads == 4)
        .map(|r| r.epochs_per_sec / baseline_eps)
        .unwrap_or(0.0);

    // Raw ε fill rates: scalar draw loop vs block kernel.
    let mut zigg = ZigguratGrng::new(5);
    let zigg_scalar = fill_rate_msps(&mut zigg, false);
    let zigg_block = fill_rate_msps(&mut zigg, true);
    let mut bm = BoxMullerGrng::new(5);
    let bm_scalar = fill_rate_msps(&mut bm, false);
    let bm_block = fill_rate_msps(&mut bm, true);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": \"{run_scale:?}\",");
    let _ = writeln!(
        json,
        "  \"arch\": [{}],",
        arch.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(json, "  \"train_rows\": {},", ds.train_len());
    let _ = writeln!(json, "  \"batch\": {batch},");
    let _ = writeln!(json, "  \"epochs_measured\": {epochs},");
    let _ = writeln!(
        json,
        "  \"eps_fill_msamples_per_sec\": {{\"ziggurat_scalar\": {zigg_scalar:.1}, \
         \"ziggurat_block\": {zigg_block:.1}, \"boxmuller_scalar\": {bm_scalar:.1}, \
         \"boxmuller_block\": {bm_block:.1}}},"
    );
    let _ = writeln!(
        json,
        "  \"baseline_seed_scalar\": {{\"threads\": 1, \"epochs_per_sec\": {:.4}, \
         \"final_loss\": {:.6}}},",
        baseline_eps,
        baseline_losses.last().copied().unwrap_or(f64::NAN)
    );
    json.push_str("  \"engine_block_eps\": [\n");
    for (i, r) in engine.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"epochs_per_sec\": {:.4}, \"final_loss\": {:.6}, \
             \"speedup_vs_seed\": {:.3}}}{}",
            r.threads,
            r.epochs_per_sec,
            r.losses.last().copied().unwrap_or(f64::NAN),
            r.epochs_per_sec / baseline_eps,
            if i + 1 < engine.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"speedup_vs_seed_at_4_threads\": {speedup_4t:.3},");
    // Per-phase breakdown of the 1-thread engine run (seconds summed over
    // every measured step; `steps` is the step count behind the sums).
    let _ = writeln!(
        json,
        "  \"phase_seconds\": {{\"draw\": {:.6}, \"shards\": {:.6}, \"reduce\": {:.6}, \
         \"tail\": {:.6}, \"steps\": {}}},",
        phase_1t.draw, phase_1t.shards, phase_1t.reduce, phase_1t.tail, phase_1t.steps
    );
    let _ = writeln!(json, "  \"allocations_per_step\": {allocs_per_step:.2},");
    // Guard for the PR 7 block-fill fix: the block ε kernel must not be
    // slower than the scalar draw loop again.
    let zigg_guard = zigg_block >= zigg_scalar;
    let _ = writeln!(json, "  \"ziggurat_block_ge_scalar\": {zigg_guard},");
    let _ = writeln!(json, "  \"losses_bit_identical_across_threads\": {bit_identical}");
    json.push_str("}\n");

    let path =
        std::env::var("VIBNN_BENCH_OUT").unwrap_or_else(|_| "BENCH_train.json".to_owned());
    std::fs::write(&path, &json).expect("write benchmark output");

    println!("wrote {path}");
    println!(
        "seed scalar path     1 thread   {:.3} epochs/s  (loss {:.4})",
        baseline_eps,
        baseline_losses.last().copied().unwrap_or(f64::NAN)
    );
    for r in &engine {
        println!(
            "engine (block eps)  {} thread{}  {:.3} epochs/s  x{:.2} vs seed  (loss {:.4})",
            r.threads,
            if r.threads == 1 { " " } else { "s" },
            r.epochs_per_sec,
            r.epochs_per_sec / baseline_eps,
            r.losses.last().copied().unwrap_or(f64::NAN)
        );
    }
    println!(
        "eps fill Msamples/s: ziggurat scalar {zigg_scalar:.1} block {zigg_block:.1} | \
         box-muller scalar {bm_scalar:.1} block {bm_block:.1}"
    );
    if !zigg_guard {
        println!(
            "WARNING: ziggurat block fill ({zigg_block:.1} Ms/s) is slower than the \
             scalar loop ({zigg_scalar:.1} Ms/s) — block-fill regression is back"
        );
    }
    let total = phase_1t.draw + phase_1t.shards + phase_1t.reduce + phase_1t.tail;
    println!(
        "engine 1-thread phase split over {} steps: draw {:.1}%  shards {:.1}%  \
         reduce {:.1}%  tail {:.1}%",
        phase_1t.steps,
        100.0 * phase_1t.draw / total.max(f64::MIN_POSITIVE),
        100.0 * phase_1t.shards / total.max(f64::MIN_POSITIVE),
        100.0 * phase_1t.reduce / total.max(f64::MIN_POSITIVE),
        100.0 * phase_1t.tail / total.max(f64::MIN_POSITIVE),
    );
    println!("allocations per steady-state step (1 thread): {allocs_per_step:.2}");
}
