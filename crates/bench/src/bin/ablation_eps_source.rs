//! Ablation (reproduction finding): deployment accuracy vs the GRNG used
//! as the weight generator's eps source. A single RLF lane is a popcount
//! random walk; its within-sample correlation collapses accuracy even
//! though its marginal stability (Table 1) is excellent.
use vibnn_bench::{pct, print_table, RunScale};
use vibnn_bnn::{Bnn, BnnConfig};
use vibnn_datasets::{mnist_like_with, MnistLikeSpec};
use vibnn_grng::{BnnWallaceGrng, BoxMullerGrng, GaussianSource, ParallelRlfGrng};
use vibnn_hw::QuantizedBnn;

fn main() {
    let scale = RunScale::from_env().learn();
    let ds = mnist_like_with(
        MnistLikeSpec {
            train_size: scale.mnist_train,
            test_size: scale.mnist_test,
            ..Default::default()
        },
        5,
    );
    let arch = [ds.features(), scale.hidden, scale.hidden, ds.classes];
    let batch = 64;
    let batches = ds.train_len().div_ceil(batch);
    let mut bnn = Bnn::new(
        BnnConfig::new(&arch)
            .with_lr(2e-3)
            .with_kl_weight((1.0 / batches as f32).min(2e-3))
            .with_sigma_init(0.05)
            .with_prior_std(0.3),
        9,
    );
    for _ in 0..scale.epochs {
        bnn.train_epoch(&ds.train_x, &ds.train_y, batch);
    }
    let calib = ds.train_x.rows_slice(0, 128);
    let q = QuantizedBnn::from_params(&bnn.params(), 8, &calib);
    let mc = scale.mc_samples;
    let sources: Vec<(&str, Box<dyn GaussianSource>)> = vec![
        ("ideal iid (Box-Muller)", Box::new(BoxMullerGrng::new(7))),
        ("BNNWallace 8x256", Box::new(BnnWallaceGrng::new(8, 256, 7))),
        ("RLF 64 lanes (interleaved)", Box::new(ParallelRlfGrng::new(64, 7))),
        ("RLF 64 lanes (no interleaver)", Box::new(ParallelRlfGrng::without_interleaver(64, 7))),
        ("RLF 1024 lanes", Box::new(ParallelRlfGrng::new(1024, 7))),
        ("RLF 4096 lanes", Box::new(ParallelRlfGrng::new(4096, 7))),
    ];
    let mut rows = Vec::new();
    for (name, mut src) in sources {
        let acc = q.evaluate_mc(&ds.test_x, &ds.test_y, mc, &mut src);
        rows.push(vec![name.to_owned(), pct(acc)]);
    }
    println!("software float BNN (mean weights): {}", pct(bnn.evaluate_mean(&ds.test_x, &ds.test_y)));
    print_table(
        "Ablation: 8-bit hardware accuracy vs eps source",
        &["eps source", "accuracy"],
        &rows,
    );
}
