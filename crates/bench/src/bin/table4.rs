//! Table 4: full-accelerator FPGA resource utilization.
use vibnn::experiments::table4;
use vibnn_bench::print_table;
use vibnn_hw::{PAPER_RLF_SYSTEM, PAPER_WALLACE_SYSTEM};

fn main() {
    let rows = table4();
    let paper = [PAPER_RLF_SYSTEM, PAPER_WALLACE_SYSTEM];
    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(paper)
        .map(|(r, (pa, pr, pb))| {
            vec![
                r.design.clone(),
                format!("{} / {:.1}% (paper {} / {:.1}%)", r.alms, 100.0 * r.alm_frac, pa, 100.0 * pa as f64 / 113_560.0),
                format!("{} (paper 342)", r.dsps),
                format!("{} (paper {})", r.registers, pr),
                format!("{} / {:.1}% (paper {} / {:.1}%)", r.block_bits, 100.0 * r.block_frac, pb, 100.0 * pb as f64 / 12_492_800.0),
            ]
        })
        .collect();
    print_table(
        "Table 4: FPGA resource utilization (model vs paper)",
        &["Type", "ALMs", "DSPs", "Registers", "Block memory bits"],
        &table,
    );
}
