//! Machine-readable backend benchmark: writes `BENCH_backend.json`.
//!
//! Compares the three [`vibnn::backend::InferenceBackend`] implementations
//! — software float, quantized host (the default), and the cycle-ticked
//! accelerator model — on the same deployment and request stream, at
//! micro-batch sizes {1, 8, 32}. Reports requests/sec plus the hardware
//! ledger per request: cycles/request and nJ/request from the
//! [`vibnn::backend::BackendCost`] the engine accumulates (zero for host
//! backends by contract).
//!
//! Before timing anything it asserts the determinism contract: every
//! backend must be worker-count invariant, the quantized backend must be
//! bit-identical to the historical batched path, and the cycle backend
//! bit-identical to the ticked functional model.
//!
//! Output path: `$VIBNN_BENCH_OUT` if set, else `BENCH_backend.json` in
//! the working directory. `VIBNN_SCALE=quick` shrinks the workload.

use std::fmt::Write as _;
use std::time::Instant;

use vibnn::bnn::{Bnn, BnnConfig};
use vibnn::grng::ZigguratGrng;
use vibnn::hw::CycleAccelerator;
use vibnn::nn::{GaussianInit, Matrix};
use vibnn::serve::{ServeConfig, ServeEngine};
use vibnn::{BackendKind, Vibnn, VibnnBuilder};
use vibnn_bench::RunScale;

const EPS_SEED: u64 = 0xBACE;

struct Workload {
    features: usize,
    hidden: usize,
    classes: usize,
    requests: usize,
    mc_samples: usize,
    train_epochs: usize,
}

impl Workload {
    fn from_scale(scale: RunScale) -> Self {
        match scale {
            RunScale::Quick => Self {
                features: 8,
                hidden: 16,
                classes: 2,
                requests: 64,
                mc_samples: 4,
                train_epochs: 2,
            },
            RunScale::Default => Self {
                features: 26,
                hidden: 64,
                classes: 2,
                requests: 256,
                mc_samples: 8,
                train_epochs: 6,
            },
            RunScale::Full => Self {
                features: 26,
                hidden: 128,
                classes: 2,
                requests: 1024,
                mc_samples: 8,
                train_epochs: 10,
            },
        }
    }
}

fn synth_rows(n: usize, features: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = GaussianInit::new(seed);
    let mut x = Matrix::zeros(n, features);
    let mut y = Vec::with_capacity(n);
    for r in 0..n {
        let mut s = 0.0;
        for c in 0..features {
            let v = rng.next_gaussian() as f32;
            x[(r, c)] = v;
            s += v;
        }
        y.push(usize::from(s > 0.0));
    }
    (x, y)
}

fn deploy(w: &Workload) -> Vibnn {
    let (x, y) = synth_rows(512, w.features, 3);
    let mut bnn = Bnn::new(
        BnnConfig::new(&[w.features, w.hidden, w.classes]).with_lr(0.01),
        5,
    );
    for _ in 0..w.train_epochs {
        bnn.train_epoch(&x, &y, 64);
    }
    VibnnBuilder::new(bnn.params())
        .mc_samples(w.mc_samples)
        .calibration(x.rows_slice(0, 64))
        .build()
        .expect("valid deployment")
}

fn engine(
    vibnn: Vibnn,
    backend: BackendKind,
    max_batch: usize,
    workers: usize,
) -> ServeEngine<ZigguratGrng> {
    ServeEngine::with_eps(
        vibnn,
        ServeConfig {
            max_batch,
            max_queue: 256,
            workers,
            backend: Some(backend),
            policy: None,
        },
        ZigguratGrng::new(EPS_SEED),
    )
    .expect("valid serve config")
}

fn bits(row: &[f32]) -> Vec<u32> {
    row.iter().map(|v| v.to_bits()).collect()
}

fn served_bits(vibnn: Vibnn, backend: BackendKind, x: &Matrix, workers: usize) -> Vec<Vec<u32>> {
    engine(vibnn, backend, 8, workers)
        .submit_batch(x)
        .expect("serve")
        .iter()
        .map(|res| bits(&res.proba))
        .collect()
}

/// Pre-timing determinism gate: worker-count invariance for every
/// backend, quantized == historical batched path, cycle == ticked model.
fn assert_determinism(vibnn: &Vibnn, x: &Matrix) {
    for backend in [
        BackendKind::Software,
        BackendKind::Quantized,
        BackendKind::Cycle,
    ] {
        let one = served_bits(vibnn.clone(), backend, x, 1);
        let four = served_bits(vibnn.clone(), backend, x, 4);
        assert_eq!(one, four, "{backend:?} not worker-count invariant");
    }
    let quant = served_bits(vibnn.clone(), BackendKind::Quantized, x, 2);
    let reference = vibnn.predict_proba_parallel(x, &ZigguratGrng::new(EPS_SEED), 1);
    for (r, row) in quant.iter().enumerate() {
        assert_eq!(
            row,
            &bits(reference.row(r)),
            "quantized backend diverged from the batched path at row {r}"
        );
    }
    let cycle = served_bits(vibnn.clone(), BackendKind::Cycle, x, 2);
    let mut sim = CycleAccelerator::new(vibnn.config().clone(), vibnn.network().clone());
    let eps = ZigguratGrng::new(EPS_SEED);
    for (r, row) in cycle.iter().enumerate() {
        let ticked = sim.infer_forked(x.row(r), &eps).0;
        assert_eq!(
            row,
            &bits(&ticked),
            "cycle backend diverged from the ticked model at row {r}"
        );
    }
}

struct Sample {
    backend: BackendKind,
    max_batch: usize,
    rps: f64,
    cycles_per_request: f64,
    energy_nj_per_request: f64,
}

fn measure(vibnn: Vibnn, backend: BackendKind, x: &Matrix, max_batch: usize) -> Sample {
    let eng = engine(vibnn, backend, max_batch, 2);
    let start = Instant::now();
    let (results, cost) = eng.submit_batch_costed(x).expect("serve");
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(results.len(), x.rows());
    let n = x.rows() as f64;
    Sample {
        backend,
        max_batch,
        rps: n / elapsed,
        cycles_per_request: cost.cycles as f64 / n,
        energy_nj_per_request: cost.energy_nj / n,
    }
}

fn main() {
    let scale = RunScale::from_env();
    let w = Workload::from_scale(scale);
    let (x, _) = synth_rows(w.requests, w.features, 17);
    let vibnn = deploy(&w);

    assert_determinism(&vibnn, &x);

    let backends = [
        BackendKind::Software,
        BackendKind::Quantized,
        BackendKind::Cycle,
    ];
    let max_batches = [1usize, 8, 32];
    let mut samples = Vec::new();
    for &backend in &backends {
        for &mb in &max_batches {
            // Warm-up pass, then measure.
            let _ = measure(vibnn.clone(), backend, &x, mb);
            let s = measure(vibnn.clone(), backend, &x, mb);
            println!(
                "{:>9?}  max_batch {mb:3}  {:10.1} req/s  {:12.1} cycles/req  {:10.2} nJ/req",
                s.backend, s.rps, s.cycles_per_request, s.energy_nj_per_request
            );
            samples.push(s);
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(
        json,
        "  \"arch\": [{}, {}, {}],",
        w.features, w.hidden, w.classes
    );
    let _ = writeln!(json, "  \"requests\": {},", w.requests);
    let _ = writeln!(json, "  \"mc_samples\": {},", w.mc_samples);
    let _ = writeln!(json, "  \"determinism_asserted_before_timing\": true,");
    json.push_str("  \"grid\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"backend\": \"{:?}\", \"max_batch\": {}, \
             \"requests_per_sec\": {:.1}, \
             \"cycles_per_request\": {:.1}, \
             \"energy_nj_per_request\": {:.3}}}{}",
            s.backend,
            s.max_batch,
            s.rps,
            s.cycles_per_request,
            s.energy_nj_per_request,
            if i + 1 < samples.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");

    let path =
        std::env::var("VIBNN_BENCH_OUT").unwrap_or_else(|_| "BENCH_backend.json".to_owned());
    std::fs::write(&path, &json).expect("write benchmark output");
    println!("wrote {path}");
}
