//! Ablation: the combined 5-tap RLF update (paper eq. 12) vs the simple
//! 3-tap update (eq. 11) — per-cycle popcount swing and stream statistics.
use vibnn_bench::{f4, print_table};
use vibnn_grng::{GaussianSource, RlfGrng};
use vibnn_stats::{autocorrelation, Moments};

fn main() {
    let mut rows = Vec::new();
    for (name, mut g) in [
        ("Simple (3 taps, step 1)", RlfGrng::simple_mode(3)),
        ("Combined (5 taps, step 2)", RlfGrng::from_seed(3)),
    ] {
        let xs = g.take_vec(200_000);
        let m = Moments::from_slice(&xs);
        let max_delta = xs
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0f64, f64::max);
        rows.push(vec![
            name.to_owned(),
            f4(m.mean().abs()),
            f4((m.std_dev() - 1.0).abs()),
            f4(autocorrelation(&xs, 1)),
            f4(max_delta * (255.0f64 / 4.0).sqrt() / 2.0 * 2.0), // raw counts
        ]);
    }
    print_table(
        "Ablation: RLF update rule (paper eq. 11 vs eq. 12)",
        &["Update", "mu err", "sigma err", "lag-1 autocorr", "max per-cycle swing (sigma units x sqrt)"],
        &rows,
    );
}
