//! Figure 18: hardware test accuracy vs datapath bit length.
use vibnn::experiments::fig18;
use vibnn_bench::{pct, print_table, RunScale};

fn main() {
    let (pts, float_acc) = fig18(RunScale::from_env().learn(), 17);
    let table: Vec<Vec<String>> = pts
        .iter()
        .map(|p| vec![p.bits.to_string(), pct(p.accuracy)])
        .collect();
    print_table(
        "Figure 18: bit-length vs hardware test accuracy",
        &["Bits", "Accuracy"],
        &table,
    );
    println!("\nFloat software BNN accuracy: {}", pct(float_acc));
    println!("Paper shape: accuracy saturates by 8 bits (their threshold 97.5%).");
}
