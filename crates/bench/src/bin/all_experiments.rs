//! Runs every table and figure in sequence (same output as the individual
//! binaries). Honour VIBNN_SCALE=quick|default|full.
use std::process::Command;

fn main() {
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("bin dir");
    for bin in [
        "table1", "table2", "table3", "table4", "table5", "fig15", "fig16",
        "fig17", "fig18", "table6", "table7", "ablation_eps_source",
        "ablation_rlf_update", "ablation_wallace_sharing",
        "ablation_pe_geometry", "ablation_mc_samples",
    ] {
        println!("\n================ {bin} ================");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
