//! Machine-readable cluster-serving benchmark: writes `BENCH_cluster.json`.
//!
//! Measures end-to-end requests/sec of the sharded
//! [`vibnn::cluster::ClusterEngine`] — single-row submissions through the
//! cluster-level admission gate, routed across the replica pool and
//! micro-batched per replica — over a `replicas × workers × max_batch`
//! grid, against two baselines under the identical derived ε source: the
//! single spawned [`vibnn::serve::ServeEngine`] queue and the raw batched
//! `predict_proba_parallel` upper bound. Before timing anything it asserts
//! the cluster determinism contract: every cluster result must be
//! bit-identical to the batched reference.
//!
//! Replica scaling is only a speedup when the host has cores to give the
//! extra dispatchers; the output records `host_parallelism` and, when the
//! host caps the pool, a `scaling_note` documenting it.
//!
//! Output path: `$VIBNN_BENCH_OUT` if set, else `BENCH_cluster.json` in
//! the working directory. `VIBNN_SCALE=quick` shrinks the workload.

use std::fmt::Write as _;
use std::time::Instant;

use vibnn::bnn::{replica_source, Bnn, BnnConfig};
use vibnn::cluster::{ClusterConfig, ClusterEngine};
use vibnn::grng::ZigguratGrng;
use vibnn::nn::{GaussianInit, Matrix};
use vibnn::serve::{ServeConfig, ServeEngine};
use vibnn::{Vibnn, VibnnError};
use vibnn_bench::RunScale;

const CLUSTER_SEED: u64 = 0xC1BEAC;

struct Workload {
    features: usize,
    hidden: usize,
    classes: usize,
    requests: usize,
    mc_samples: usize,
    train_epochs: usize,
}

impl Workload {
    fn from_scale(scale: RunScale) -> Self {
        match scale {
            RunScale::Quick => Self {
                features: 8,
                hidden: 16,
                classes: 2,
                requests: 96,
                mc_samples: 4,
                train_epochs: 2,
            },
            RunScale::Default => Self {
                features: 26,
                hidden: 64,
                classes: 2,
                requests: 512,
                mc_samples: 8,
                train_epochs: 6,
            },
            RunScale::Full => Self {
                features: 26,
                hidden: 128,
                classes: 2,
                requests: 2048,
                mc_samples: 8,
                train_epochs: 10,
            },
        }
    }
}

fn synth_rows(n: usize, features: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = GaussianInit::new(seed);
    let mut x = Matrix::zeros(n, features);
    let mut y = Vec::with_capacity(n);
    for r in 0..n {
        let mut s = 0.0;
        for c in 0..features {
            let v = rng.next_gaussian() as f32;
            x[(r, c)] = v;
            s += v;
        }
        y.push(usize::from(s > 0.0));
    }
    (x, y)
}

fn deploy(w: &Workload) -> Vibnn {
    let (x, y) = synth_rows(512, w.features, 3);
    let mut bnn = Bnn::new(
        BnnConfig::new(&[w.features, w.hidden, w.classes]).with_lr(0.01),
        5,
    );
    for _ in 0..w.train_epochs {
        bnn.train_epoch(&x, &y, 64);
    }
    vibnn::VibnnBuilder::new(bnn.params())
        .mc_samples(w.mc_samples)
        .calibration(x.rows_slice(0, 64))
        .build()
        .expect("valid deployment")
}

fn cluster(
    vibnn: Vibnn,
    replicas: usize,
    workers: usize,
    max_batch: usize,
) -> ClusterEngine<ZigguratGrng> {
    ClusterEngine::with_eps(
        vibnn,
        ClusterConfig {
            replicas,
            max_batch,
            max_queue: 256,
            workers,
            spill: true,
            batch_skip_bound: 4,
            backend: None,
            policy: None,
        },
        ZigguratGrng::new(CLUSTER_SEED),
    )
    .expect("valid cluster config")
}

/// Requests/sec for `x.rows()` single-row submissions through the cluster
/// (measured submit → last result, including backpressure retries).
fn cluster_rps(vibnn: Vibnn, x: &Matrix, replicas: usize, workers: usize, max_batch: usize) -> f64 {
    let c = cluster(vibnn, replicas, workers, max_batch);
    let start = Instant::now();
    let mut ids = Vec::with_capacity(x.rows());
    for r in 0..x.rows() {
        let id = loop {
            match c.submit(x.row(r).to_vec()) {
                Ok(id) => break id,
                Err(VibnnError::QueueFull { .. }) => std::thread::yield_now(),
                Err(e) => panic!("submit failed: {e}"),
            }
        };
        ids.push(id);
    }
    for id in ids {
        c.wait(id).expect("result");
    }
    let elapsed = start.elapsed().as_secs_f64();
    c.shutdown();
    x.rows() as f64 / elapsed
}

/// Requests/sec for the single spawned `ServeEngine` queue under the same
/// derived ε source — the one-dispatcher baseline the cluster scales.
fn single_engine_rps(
    vibnn: Vibnn,
    eps: ZigguratGrng,
    x: &Matrix,
    workers: usize,
    max_batch: usize,
) -> f64 {
    let handle = ServeEngine::with_eps(
        vibnn,
        ServeConfig {
            max_batch,
            max_queue: 256,
            workers,
            backend: None,
            policy: None,
        },
        eps,
    )
    .expect("valid serve config")
    .spawn();
    let start = Instant::now();
    let mut ids = Vec::with_capacity(x.rows());
    for r in 0..x.rows() {
        let id = loop {
            match handle.submit(x.row(r).to_vec()) {
                Ok(id) => break id,
                Err(VibnnError::QueueFull { .. }) => std::thread::yield_now(),
                Err(e) => panic!("submit failed: {e}"),
            }
        };
        ids.push(id);
    }
    for id in ids {
        handle.wait(id).expect("result");
    }
    let elapsed = start.elapsed().as_secs_f64();
    handle.shutdown();
    x.rows() as f64 / elapsed
}

fn main() {
    let scale = RunScale::from_env();
    let w = Workload::from_scale(scale);
    let (x, _) = synth_rows(w.requests, w.features, 17);
    let vibnn = deploy(&w);
    let host_parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());

    // The derived replica source every path serves with — the same
    // derivation `ClusterEngine::replica_eps` returns for this seed.
    let eps = replica_source(&ZigguratGrng::new(CLUSTER_SEED));

    // Determinism gate: cluster rows must be bit-identical to the batched
    // reference before any number is worth reporting.
    let reference = vibnn.predict_proba_parallel(&x, &eps, 1);
    {
        let c = cluster(vibnn.clone(), 2, 2, 8);
        let ids: Vec<u64> = (0..x.rows())
            .map(|r| {
                loop {
                    match c.submit(x.row(r).to_vec()) {
                        Ok(id) => break id,
                        Err(VibnnError::QueueFull { .. }) => std::thread::yield_now(),
                        Err(e) => panic!("submit failed: {e}"),
                    }
                }
            })
            .collect();
        for (r, id) in ids.into_iter().enumerate() {
            let res = c.wait(id).expect("result");
            let same = res
                .proba
                .iter()
                .zip(reference.row(r))
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "cluster diverged from batched inference at row {r}");
        }
        c.shutdown();
    }

    // The raw batched upper bound (one predict_proba_parallel call).
    let start = Instant::now();
    let _ = std::hint::black_box(vibnn.predict_proba_parallel(&x, &eps, 0));
    let batched_rps = x.rows() as f64 / start.elapsed().as_secs_f64();

    let replica_grid = [1usize, 2, 4];
    let workers_grid = [1usize, 2];
    let batch_grid = [1usize, 8, 32];
    let mut single_rows = Vec::new();
    let mut rows = Vec::new();
    for &mb in &batch_grid {
        for &wk in &workers_grid {
            let single = single_engine_rps(vibnn.clone(), eps.clone(), &x, wk, mb);
            single_rows.push((mb, wk, single));
            for &n in &replica_grid {
                // Warm-up pass, then measure.
                let _ = cluster_rps(vibnn.clone(), &x, n, wk, mb);
                let rps = cluster_rps(vibnn.clone(), &x, n, wk, mb);
                println!(
                    "replicas {n}  workers {wk}  max_batch {mb:3}  {rps:9.1} req/s \
                     (single engine {single:9.1})"
                );
                rows.push((n, wk, mb, rps, single));
            }
        }
    }

    // Best 4-replica vs best 1-replica queued throughput.
    let best = |target: usize| {
        rows.iter()
            .filter(|(n, ..)| *n == target)
            .map(|&(_, _, _, rps, _)| rps)
            .fold(0.0f64, f64::max)
    };
    let speedup_4v1 = best(4) / best(1);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(
        json,
        "  \"arch\": [{}, {}, {}],",
        w.features, w.hidden, w.classes
    );
    let _ = writeln!(json, "  \"requests\": {},", w.requests);
    let _ = writeln!(json, "  \"mc_samples\": {},", w.mc_samples);
    let _ = writeln!(json, "  \"host_parallelism\": {host_parallelism},");
    let _ = writeln!(
        json,
        "  \"batched_parallel_upper_bound_rps\": {batched_rps:.1},"
    );
    let _ = writeln!(json, "  \"results_bit_identical_to_batched\": true,");
    let _ = writeln!(json, "  \"queued_speedup_4_replicas_vs_1\": {speedup_4v1:.2},");
    if host_parallelism < 4 {
        let _ = writeln!(
            json,
            "  \"scaling_note\": \"host has {host_parallelism} core(s): replica dispatchers \
             time-share the CPU, so added replicas cannot raise requests/sec here; the \
             cluster path's value on this host is isolation + hot swap, and the \u{2265}2x \
             scaling target needs \u{2265}4 cores\","
        );
    }
    json.push_str("  \"single_engine\": [\n");
    for (i, (mb, wk, rps)) in single_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"max_batch\": {mb}, \"workers\": {wk}, \
             \"queued_requests_per_sec\": {rps:.1}}}{}",
            if i + 1 < single_rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n  \"grid\": [\n");
    for (i, (n, wk, mb, rps, single)) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"replicas\": {n}, \"workers\": {wk}, \"max_batch\": {mb}, \
             \"queued_requests_per_sec\": {rps:.1}, \
             \"single_engine_requests_per_sec\": {single:.1}}}{}",
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");

    let path =
        std::env::var("VIBNN_BENCH_OUT").unwrap_or_else(|_| "BENCH_cluster.json".to_owned());
    std::fs::write(&path, &json).expect("write benchmark output");
    println!("wrote {path}");
    println!(
        "batched upper bound {batched_rps:.1} req/s; 4-vs-1 replica speedup {speedup_4v1:.2}x \
         on {host_parallelism} core(s)"
    );
}
