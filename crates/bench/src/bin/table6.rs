//! Table 6: MNIST-like accuracy — FNN+dropout, BNN, VIBNN hardware.
use vibnn::experiments::table6;
use vibnn_bench::{pct, print_table, RunScale};

fn main() {
    let rows = table6(RunScale::from_env().learn(), 19);
    let paper = [0.9750, 0.9810, 0.9781];
    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(paper)
        .map(|(r, p)| vec![r.model.clone(), pct(r.accuracy), pct(p)])
        .collect();
    print_table(
        "Table 6: accuracy comparison on the MNIST-like dataset",
        &["Model", "Testing accuracy (ours)", "(paper, real MNIST)"],
        &table,
    );
}
