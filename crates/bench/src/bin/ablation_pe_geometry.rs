//! Ablation: PE-set geometry sweep (T, N) under the eq. 14/15 bandwidth
//! constraints — the throughput surface behind Section 5.4's joint
//! optimization.
use vibnn_bench::print_table;
use vibnn_hw::{power, AcceleratorConfig, ResourceModel, Schedule};

fn main() {
    let layers = [784usize, 200, 200, 10];
    let weights: usize = layers.windows(2).map(|w| w[0] * w[1]).sum();
    let mut rows = Vec::new();
    for n in [4usize, 8, 16] {
        for t in [4usize, 8, 16, 32] {
            let cfg = AcceleratorConfig {
                pe_sets: t,
                pes_per_set: n,
                pe_inputs: n,
                max_word_size: 2048,
                ..AcceleratorConfig::paper()
            };
            let valid = cfg.validate().is_ok() && cfg.writeback_ok(200);
            if !valid {
                rows.push(vec![
                    format!("T={t} N=S={n}"),
                    "-".into(),
                    "-".into(),
                    "violates eq. 14/15".into(),
                ]);
                continue;
            }
            let sched = Schedule::new(&cfg, &layers);
            let res = ResourceModel.system(&cfg, weights, 784);
            let fits = res.fits_device();
            let tput = sched.images_per_second();
            let p = power::system_power_w(&cfg, weights, 784);
            rows.push(vec![
                format!("T={t} N=S={n} (M={})", cfg.total_pes()),
                format!("{tput:.0}"),
                format!("{:.0}", tput / p),
                if fits { "fits".into() } else { "exceeds device".into() },
            ]);
        }
    }
    print_table(
        "Ablation: PE geometry sweep (MNIST-like network)",
        &["Geometry", "Images/s", "Images/J", "Feasibility"],
        &rows,
    );
}
