//! Shared helpers for the VIBNN benchmark binaries.
//!
//! Every table and figure in the paper's evaluation has a binary in
//! `src/bin/` (`table1` … `table7`, `fig15` … `fig18`, ablations, and
//! `all_experiments`). Criterion micro-benchmarks live in `benches/`.
//!
//! Scaling: binaries honour the `VIBNN_SCALE` environment variable —
//! `full` (paper-scale trials; slow), `default`, or `quick`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Run scale for the experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// Fast sanity pass (seconds).
    Quick,
    /// Balanced defaults (a few minutes total).
    Default,
    /// Paper-scale trial counts (slow).
    Full,
}

impl RunScale {
    /// Reads `VIBNN_SCALE` (`quick` / `full`; anything else = default).
    pub fn from_env() -> Self {
        match std::env::var("VIBNN_SCALE").as_deref() {
            Ok("quick") => RunScale::Quick,
            Ok("full") => RunScale::Full,
            _ => RunScale::Default,
        }
    }

    /// Samples per GRNG stability measurement (Table 1).
    pub fn grng_samples(self) -> usize {
        match self {
            RunScale::Quick => 50_000,
            RunScale::Default => 1_000_000,
            RunScale::Full => 4_000_000,
        }
    }

    /// Runs-test trials (Figure 15; the paper uses 1000).
    pub fn runs_trials(self) -> usize {
        match self {
            RunScale::Quick => 5,
            RunScale::Default => 40,
            RunScale::Full => 1000,
        }
    }

    /// Samples per runs-test trial (the paper uses 100,000).
    pub fn runs_samples(self) -> usize {
        match self {
            RunScale::Quick => 20_000,
            _ => 100_000,
        }
    }

    /// Learning-experiment scale.
    pub fn learn(self) -> vibnn::experiments::LearnScale {
        use vibnn::experiments::LearnScale;
        match self {
            RunScale::Quick => LearnScale::smoke(),
            RunScale::Default => LearnScale {
                mnist_train: 4_000,
                mnist_test: 1_000,
                epochs: 10,
                mc_samples: 8,
                train_mc: 1,
                hidden: 128,
            },
            RunScale::Full => LearnScale::paper(),
        }
    }
}

/// Prints a markdown-style table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Formats a float with 4 decimal places.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a percentage with 2 decimal places.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_knobs_are_ordered() {
        assert_eq!(RunScale::Quick.runs_trials(), 5);
        assert!(RunScale::Full.grng_samples() > RunScale::Quick.grng_samples());
        assert!(RunScale::Full.learn().epochs >= RunScale::Quick.learn().epochs);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f4(1.23456), "1.2346");
        assert_eq!(pct(0.5), "50.00%");
    }
}
