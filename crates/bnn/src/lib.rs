//! Bayesian neural networks trained by Bayes-by-Backprop (Blundell et al.),
//! the model class VIBNN accelerates.
//!
//! Weights are Gaussian posteriors `q(w; θ) = N(µ, σ²)` with
//! `σ = ln(1 + exp(ρ))` (paper equation 2). Training minimizes the ELBO
//! (KL to a Gaussian prior + expected negative log likelihood) with the
//! reparameterization trick; inference averages the network output over
//! Monte Carlo weight samples (paper equations 5–6), with the unit
//! Gaussians supplied by *any* [`vibnn_grng::GaussianSource`] — which is
//! exactly the seam where the hardware GRNGs plug in.
//!
//! # Example
//!
//! ```
//! use vibnn_bnn::{Bnn, BnnConfig};
//! use vibnn_grng::BoxMullerGrng;
//! use vibnn_nn::Matrix;
//!
//! let mut bnn = Bnn::new(BnnConfig::new(&[4, 8, 2]), 42);
//! let x = Matrix::zeros(1, 4);
//! let mut eps = BoxMullerGrng::new(7);
//! let probs = bnn.predict_proba_mc(&x, 8, &mut eps);
//! let sum: f32 = probs.row(0).iter().sum();
//! assert!((sum - 1.0).abs() < 1e-5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bnn;
pub mod checkpoint;
mod fastmath;
mod mc;
mod prior;
mod schedule;
mod threads;
mod train;
mod var_dense;

pub use bnn::{Bnn, BnnConfig, BnnTrainReport, TrainEpsSource};
pub use checkpoint::CheckpointError;
pub use mc::{
    parallel_fork_map, parallel_mc_reduce, parallel_ordered_tasks, reduce_mean, replica_source,
};
pub use prior::{GaussianPrior, ScaleMixturePrior};
pub use schedule::{EarlyStop, LrSchedule, ScheduledRun, TrainSchedule};
pub use threads::vibnn_threads;
pub use train::StepPhaseSeconds;
pub use var_dense::{softplus, softplus_derivative, EpsScratch, LayerGrads, LayerShared, VarDense};

/// A frozen snapshot of a trained BNN's variational parameters, expressed
/// as per-layer `(µ, σ)` matrices — the exact artifact that gets migrated
/// to the accelerator's weight-parameter memory (paper Section 2.2).
#[derive(Debug, Clone)]
pub struct BnnParams {
    /// Per-layer weight means, each `in_dim × out_dim`.
    pub weight_mu: Vec<vibnn_nn::Matrix>,
    /// Per-layer weight standard deviations, same shapes.
    pub weight_sigma: Vec<vibnn_nn::Matrix>,
    /// Per-layer bias means.
    pub bias_mu: Vec<Vec<f32>>,
    /// Per-layer bias standard deviations.
    pub bias_sigma: Vec<Vec<f32>>,
}

impl BnnParams {
    /// Layer count.
    pub fn layers(&self) -> usize {
        self.weight_mu.len()
    }

    /// Layer sizes as `[input, hidden…, output]`.
    pub fn layer_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![self.weight_mu[0].rows()];
        sizes.extend(self.weight_mu.iter().map(|m| m.cols()));
        sizes
    }

    /// Total number of weight parameters (µ count; the paper notes BNNs
    /// double the parameters of an equivalent FNN by adding σ).
    pub fn weight_count(&self) -> usize {
        self.weight_mu.iter().map(|m| m.rows() * m.cols()).sum()
    }

    /// Largest absolute value over all µ and σ (used to pick fixed-point
    /// scaling for the hardware datapath).
    pub fn max_abs_param(&self) -> f32 {
        let mut m = 0.0f32;
        for w in self.weight_mu.iter().chain(&self.weight_sigma) {
            for &v in w.data() {
                m = m.max(v.abs());
            }
        }
        for b in self.bias_mu.iter().chain(&self.bias_sigma) {
            for &v in b {
                m = m.max(v.abs());
            }
        }
        m
    }
}
