//! The deterministic data-parallel training engine.
//!
//! One Bayes-by-Backprop step is decomposed into three phases, mirroring
//! the PR 2 Monte Carlo inference design:
//!
//! 1. **Draw** (parallel over MC samples): sample `s` forks the step's ε
//!    substream (`step_src.fork(s)`) and block-draws one reparameterized
//!    weight set `w_s = µ + σ ◦ ε_s` per layer via
//!    [`vibnn_grng::GaussianSource::fill_f32`]. σ comes from the step's
//!    shared [`LayerShared`] tensors, computed once from ρ.
//! 2. **Shard passes** (parallel over `(sample, shard)` units): the
//!    minibatch is split into fixed [`MICROBATCH_ROWS`]-row microbatches —
//!    a partition that depends only on the batch, never on the thread
//!    count — and each unit runs the forward/backward pass of its shard's
//!    rows against its sample's weights, producing per-layer likelihood
//!    gradients on reusable workspace buffers.
//! 3. **Ordered reduction** (serial): unit gradients are folded with the
//!    fixed-lane accumulation rule ([`vibnn_nn::LANES`]) in each fold
//!    dimension — shard `m` belongs to lane `m % LANES` within its
//!    sample, sample `s` to lane `s % LANES` overall, lanes combine in
//!    ascending lane order — so the result is **bit-identical at any
//!    thread count**. At the paper scales (≤ 8 shards, ≤ 8 samples) every
//!    lane holds at most one term and the rule degenerates to the plain
//!    ascending fold.
//!
//! The ρ-gradient trick: within a sample every shard shares ε, so the
//! likelihood ρ-gradient is `(Σ_shards ∂L/∂w) ∘ ε_s ∘ σ′`. The engine
//! reduces the cheap `∘ ε_s` part per sample (phase 3) and applies the
//! shared `σ′` factor once per step in
//! [`VarDense::finish_step_grads`] — the seed path recomputed
//! `softplus`/`sigmoid` per weight up to six times per batch, which
//! dominated its CPU profile.
//!
//! Every tensor a step touches lives in the engine-owned [`StepArena`]:
//! draws, unit gradients, worker workspaces, shard views, and the reduced
//! gradients are all capacity-preserving pools keyed by shape, so a
//! steady-state step at one thread performs **zero heap allocations**
//! (pinned by `tests/alloc_steady_state.rs`).

use std::time::Instant;

use vibnn_grng::StreamFork;
use vibnn_nn::{relu, relu_backward, softmax_rows, Matrix, LANES};

use crate::mc::{effective_threads, parallel_ordered_mut};
use crate::{LayerGrads, LayerShared, VarDense};

/// Rows per gradient microbatch. A fixed constant (rather than
/// `batch / threads`) so the shard partition — and therefore the gradient
/// reduction tree — is identical at every thread count. At the paper's
/// batch size of 64 this yields 4 shards, matching the 4-worker sweet
/// spot of the bench.
pub(crate) const MICROBATCH_ROWS: usize = 16;

/// One MC sample's drawn tensors, shared read-only by its shard units.
#[derive(Debug, Clone, Default)]
struct SampleDraw {
    w: Vec<Matrix>,
    b: Vec<Vec<f32>>,
    eps: Vec<Matrix>,
    bias_eps: Vec<Vec<f32>>,
}

/// Likelihood gradients produced by one `(sample, shard)` unit. During
/// the ordered reduction the first shard's tensors double as its sample's
/// fold accumulator.
#[derive(Debug, Clone, Default)]
struct UnitGrads {
    w: Vec<Matrix>,
    b: Vec<Vec<f32>>,
    nll: f64,
}

/// Per-worker reusable buffers for the shard forward/backward pass.
#[derive(Debug, Clone, Default)]
struct ShardWorkspace {
    /// Post-activation output of every layer (`acts[last]` holds logits,
    /// then softmax probabilities).
    acts: Vec<Matrix>,
    /// Current upstream gradient.
    grad: Matrix,
    /// Landing buffer for the next `dL/dx` (swapped with `grad`).
    grad_next: Matrix,
}

/// The engine-owned pool of every per-step tensor: shared σ/σ′ tensors,
/// sample draws, unit gradients, worker workspaces, shard views, reduced
/// gradients, lane-fold temporaries, and the epoch driver's minibatch
/// buffers.
///
/// All buffers grow to their steady-state shapes on the first step and
/// are reused (capacity-preserving resizes) afterwards, making the
/// steady-state training step allocation-free at one thread. The pool is
/// a pure cache: its contents never carry state between steps, so
/// checkpoints ignore it and a cloned network simply re-warms its own.
#[derive(Debug, Clone, Default)]
pub(crate) struct StepArena {
    /// Per-layer σ/σ′/`Σ ln σ` tensors of the current step.
    pub(crate) shared: Vec<LayerShared>,
    draws: Vec<SampleDraw>,
    units: Vec<UnitGrads>,
    workspaces: Vec<ShardWorkspace>,
    shard_x: Vec<Matrix>,
    /// The reduced likelihood gradients, handed to
    /// [`VarDense::finish_step_grads`] (which swaps its tensors back in).
    pub(crate) reduced: Vec<LayerGrads>,
    // Lane-fold temporaries for the > LANES cases.
    lane_w: Matrix,
    lane_b: Vec<f32>,
    lane_mu: Matrix,
    lane_rho: Matrix,
    lane_bmu: Vec<f32>,
    lane_brho: Vec<f32>,
    // Epoch-driver minibatch pools (taken/restored around the batch loop).
    pub(crate) order: Vec<usize>,
    pub(crate) batch_x: Matrix,
    pub(crate) batch_y: Vec<usize>,
}

/// What [`run_step`] hands back besides the reduced gradients (which land
/// in [`StepArena::reduced`]): the NLL sum and the per-phase wall-clock
/// spend.
pub(crate) struct StepStats {
    /// `Σ −ln p[label]` over every `(sample, shard, row)`, accumulated in
    /// ascending unit order; divide by `batch × samples` for the NLL.
    pub nll_sum: f64,
    /// Seconds in phase 1 (ε draws).
    pub draw: f64,
    /// Seconds in phase 2 (shard forward/backward passes).
    pub shards: f64,
    /// Seconds in phase 3 (ordered gradient reduction).
    pub reduce: f64,
}

/// Cumulative wall-clock seconds a network has spent in each phase of the
/// training engine (see [`crate::Bnn::phase_seconds`]). `tail` covers
/// everything outside the three `run_step` phases: the σ/σ′ precompute,
/// `finish_step_grads`, and the optimizer update.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepPhaseSeconds {
    /// Phase 1: reparameterized ε draws.
    pub draw: f64,
    /// Phase 2: shard forward/backward passes.
    pub shards: f64,
    /// Phase 3: ordered gradient reduction.
    pub reduce: f64,
    /// σ/σ′ precompute + gradient finish + optimizer update.
    pub tail: f64,
    /// Steps accounted for.
    pub steps: u64,
}

/// Forward + backward over one shard with one sample's weights, writing
/// the per-layer gradients into the pooled `out` slot.
fn unit_pass(
    layers: &[VarDense],
    draw: &SampleDraw,
    x: &Matrix,
    labels: &[usize],
    inv_scale: f32,
    out: &mut UnitGrads,
    ws: &mut ShardWorkspace,
) {
    let num_layers = layers.len();
    let last = num_layers - 1;
    if ws.acts.len() != num_layers {
        ws.acts = (0..num_layers).map(|_| Matrix::default()).collect();
    }
    for l in 0..num_layers {
        let (done, rest) = ws.acts.split_at_mut(l);
        let input = if l == 0 { x } else { &done[l - 1] };
        let act = &mut rest[0];
        input.matmul_into(&draw.w[l], act);
        act.add_row_broadcast(&draw.b[l]);
        if l < last {
            relu(act);
        }
    }
    softmax_rows(&mut ws.acts[last]);
    let probs = &ws.acts[last];
    let mut nll = 0.0f64;
    for (r, &label) in labels.iter().enumerate() {
        nll -= f64::from(probs[(r, label)]).max(1e-12).ln();
    }
    out.nll = nll;
    // dL/dlogits = (probs − onehot) / (batch × samples).
    ws.grad.resize(probs.rows(), probs.cols());
    ws.grad.data_mut().copy_from_slice(probs.data());
    for (r, &label) in labels.iter().enumerate() {
        ws.grad[(r, label)] -= 1.0;
    }
    ws.grad.scale(inv_scale);
    if out.w.len() != num_layers {
        out.w.resize_with(num_layers, Matrix::default);
        out.b.resize_with(num_layers, Vec::new);
    }
    for l in (0..num_layers).rev() {
        if l < last {
            relu_backward(&mut ws.grad, &ws.acts[l]);
        }
        let input = if l == 0 { x } else { &ws.acts[l - 1] };
        input.t_matmul_into(&ws.grad, &mut out.w[l]);
        out.b[l].resize(ws.grad.cols(), 0.0);
        ws.grad.col_sums_into(&mut out.b[l]);
        if l > 0 {
            // dL/dx through the *sampled* weights; skipped for the first
            // layer, whose input gradient nobody consumes.
            ws.grad.matmul_t_into(&draw.w[l], &mut ws.grad_next);
            std::mem::swap(&mut ws.grad, &mut ws.grad_next);
        }
    }
}

/// Folds the shard gradients of sample `s`, layer `l`, into the sample's
/// first unit slot with the fixed-lane rule: shard `m` belongs to lane
/// `m % LANES`, lanes combine in ascending lane order. For
/// `num_shards ≤ LANES` every lane holds at most one shard and the fold
/// is the plain ascending chain.
fn fold_sample_shards(
    units: &mut [UnitGrads],
    s: usize,
    num_shards: usize,
    l: usize,
    lane_w: &mut Matrix,
    lane_b: &mut Vec<f32>,
) {
    let (first, rest) = units[s * num_shards..(s + 1) * num_shards]
        .split_first_mut()
        .expect("at least one shard");
    if num_shards <= LANES {
        for u in rest.iter() {
            first.w[l].axpy(1.0, &u.w[l]);
            for (a, &v) in first.b[l].iter_mut().zip(&u.b[l]) {
                *a += v;
            }
        }
    } else {
        // Lane 0 accumulates into the first unit's tensors; lanes 1..
        // build in the pooled temporaries and fold in ascending order.
        let mut m = LANES;
        while m < num_shards {
            first.w[l].axpy(1.0, &rest[m - 1].w[l]);
            for (a, &v) in first.b[l].iter_mut().zip(&rest[m - 1].b[l]) {
                *a += v;
            }
            m += LANES;
        }
        for lane in 1..LANES {
            let seed = &rest[lane - 1];
            lane_w.resize(seed.w[l].rows(), seed.w[l].cols());
            lane_w.data_mut().copy_from_slice(seed.w[l].data());
            lane_b.resize(seed.b[l].len(), 0.0);
            lane_b.copy_from_slice(&seed.b[l]);
            let mut m = lane + LANES;
            while m < num_shards {
                lane_w.axpy(1.0, &rest[m - 1].w[l]);
                for (a, &v) in lane_b.iter_mut().zip(&rest[m - 1].b[l]) {
                    *a += v;
                }
                m += LANES;
            }
            first.w[l].axpy(1.0, lane_w);
            for (a, &v) in first.b[l].iter_mut().zip(lane_b.iter()) {
                *a += v;
            }
        }
    }
}

/// Runs the draw / shard-pass / ordered-reduction phases of one training
/// step on the pooled arena tensors. `arena.shared` must already hold
/// this step's per-layer σ tensors; the reduced gradients land in
/// `arena.reduced`. `threads == 0` resolves through
/// [`crate::vibnn_threads`].
pub(crate) fn run_step<S: StreamFork + Sync>(
    layers: &[VarDense],
    x: &Matrix,
    labels: &[usize],
    samples: usize,
    threads: usize,
    step_src: &S,
    arena: &mut StepArena,
) -> StepStats {
    let num_layers = layers.len();
    let batch = x.rows();
    let num_shards = batch.div_ceil(MICROBATCH_ROWS).max(1);
    let StepArena {
        shared,
        draws,
        units,
        workspaces,
        shard_x,
        reduced,
        lane_w,
        lane_b,
        lane_mu,
        lane_rho,
        lane_bmu,
        lane_brho,
        ..
    } = arena;
    let shared: &[LayerShared] = shared;

    let need_ws = effective_threads(threads, samples)
        .max(effective_threads(threads, samples * num_shards));
    if workspaces.len() < need_ws {
        workspaces.resize_with(need_ws, ShardWorkspace::default);
    }
    if shard_x.len() < num_shards {
        shard_x.resize_with(num_shards, Matrix::default);
    }
    for (m, sx) in shard_x.iter_mut().enumerate().take(num_shards) {
        x.rows_slice_into(
            m * MICROBATCH_ROWS,
            ((m + 1) * MICROBATCH_ROWS).min(batch),
            sx,
        );
    }

    // Phase 1: one forked ε substream per MC sample.
    let t0 = Instant::now();
    if draws.len() < samples {
        draws.resize_with(samples, SampleDraw::default);
    }
    parallel_ordered_mut(
        &mut draws[..samples],
        threads,
        workspaces,
        |s, draw, _ws| {
            let mut src = step_src.fork(s as u64);
            if draw.w.len() != num_layers {
                draw.w.resize_with(num_layers, Matrix::default);
                draw.b.resize_with(num_layers, Vec::new);
                draw.eps.resize_with(num_layers, Matrix::default);
                draw.bias_eps.resize_with(num_layers, Vec::new);
            }
            for (l, (layer, sh)) in layers.iter().zip(shared).enumerate() {
                layer.draw_sample_into(
                    sh,
                    &mut src,
                    &mut draw.w[l],
                    &mut draw.b[l],
                    &mut draw.eps[l],
                    &mut draw.bias_eps[l],
                );
            }
        },
    );
    let draw_s = t0.elapsed().as_secs_f64();

    // Phase 2: (sample, shard) units on reusable worker workspaces.
    let t1 = Instant::now();
    let inv_scale = 1.0 / (batch as f32 * samples as f32);
    let num_units = samples * num_shards;
    if units.len() < num_units {
        units.resize_with(num_units, UnitGrads::default);
    }
    {
        let draws: &[SampleDraw] = draws;
        let shard_x: &[Matrix] = shard_x;
        parallel_ordered_mut(
            &mut units[..num_units],
            threads,
            workspaces,
            |u, unit, ws| {
                let s = u / num_shards;
                let m = u % num_shards;
                let rows = m * MICROBATCH_ROWS..((m + 1) * MICROBATCH_ROWS).min(batch);
                unit_pass(
                    layers,
                    &draws[s],
                    &shard_x[m],
                    &labels[rows],
                    inv_scale,
                    unit,
                    ws,
                );
            },
        );
    }
    let shards_s = t1.elapsed().as_secs_f64();

    // Phase 3: ordered lane-rule reduction (see the module docs).
    let t2 = Instant::now();
    let units = &mut units[..num_units];
    let nll_sum: f64 = units.iter().map(|u| u.nll).sum();
    if reduced.len() != num_layers {
        reduced.resize_with(num_layers, LayerGrads::default);
    }
    for (l, (layer, acc)) in layers.iter().zip(reduced.iter_mut()).enumerate() {
        let (di, dj) = (layer.in_dim(), layer.out_dim());
        acc.mu.resize(di, dj);
        acc.mu.data_mut().fill(0.0);
        acc.rho_pre.resize(di, dj);
        acc.rho_pre.data_mut().fill(0.0);
        acc.bias_mu.resize(dj, 0.0);
        acc.bias_mu.fill(0.0);
        acc.bias_rho_pre.resize(dj, 0.0);
        acc.bias_rho_pre.fill(0.0);
        if samples <= LANES {
            for (s, draw) in draws.iter().enumerate().take(samples) {
                fold_sample_shards(units, s, num_shards, l, lane_w, lane_b);
                let sum = &units[s * num_shards];
                acc.mu.axpy(1.0, &sum.w[l]);
                acc.rho_pre.fma_assign(&sum.w[l], &draw.eps[l]);
                for (a, &v) in acc.bias_mu.iter_mut().zip(&sum.b[l]) {
                    *a += v;
                }
                for (a, (&v, &e)) in acc
                    .bias_rho_pre
                    .iter_mut()
                    .zip(sum.b[l].iter().zip(&draw.bias_eps[l]))
                {
                    *a += v * e;
                }
            }
        } else {
            // Sample lanes: sample s → lane s % LANES, folded through the
            // pooled lane accumulators, lanes combined in ascending order.
            for lane in 0..LANES {
                lane_mu.resize(di, dj);
                lane_mu.data_mut().fill(0.0);
                lane_rho.resize(di, dj);
                lane_rho.data_mut().fill(0.0);
                lane_bmu.resize(dj, 0.0);
                lane_bmu.fill(0.0);
                lane_brho.resize(dj, 0.0);
                lane_brho.fill(0.0);
                let mut s = lane;
                while s < samples {
                    fold_sample_shards(units, s, num_shards, l, lane_w, lane_b);
                    let sum = &units[s * num_shards];
                    let draw = &draws[s];
                    lane_mu.axpy(1.0, &sum.w[l]);
                    lane_rho.fma_assign(&sum.w[l], &draw.eps[l]);
                    for (a, &v) in lane_bmu.iter_mut().zip(&sum.b[l]) {
                        *a += v;
                    }
                    for (a, (&v, &e)) in lane_brho
                        .iter_mut()
                        .zip(sum.b[l].iter().zip(&draw.bias_eps[l]))
                    {
                        *a += v * e;
                    }
                    s += LANES;
                }
                acc.mu.axpy(1.0, lane_mu);
                acc.rho_pre.axpy(1.0, lane_rho);
                for (a, &v) in acc.bias_mu.iter_mut().zip(lane_bmu.iter()) {
                    *a += v;
                }
                for (a, &v) in acc.bias_rho_pre.iter_mut().zip(lane_brho.iter()) {
                    *a += v;
                }
            }
        }
    }
    let reduce_s = t2.elapsed().as_secs_f64();
    StepStats {
        nll_sum,
        draw: draw_s,
        shards: shards_s,
        reduce: reduce_s,
    }
}
