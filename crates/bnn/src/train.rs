//! The deterministic data-parallel training engine.
//!
//! One Bayes-by-Backprop step is decomposed into three phases, mirroring
//! the PR 2 Monte Carlo inference design:
//!
//! 1. **Draw** (parallel over MC samples): sample `s` forks the step's ε
//!    substream (`step_src.fork(s)`) and block-draws one reparameterized
//!    weight set `w_s = µ + σ ◦ ε_s` per layer via
//!    [`vibnn_grng::GaussianSource::fill_f32`]. σ comes from the step's
//!    shared [`LayerShared`] tensors, computed once from ρ.
//! 2. **Shard passes** (parallel over `(sample, shard)` units): the
//!    minibatch is split into fixed [`MICROBATCH_ROWS`]-row microbatches —
//!    a partition that depends only on the batch, never on the thread
//!    count — and each unit runs the forward/backward pass of its shard's
//!    rows against its sample's weights, producing per-layer likelihood
//!    gradients on reusable workspace buffers.
//! 3. **Ordered reduction** (serial): unit gradients are folded in
//!    ascending `(sample, shard)` order — one fixed float accumulation
//!    chain — so the result is **bit-identical at any thread count**.
//!
//! The ρ-gradient trick: within a sample every shard shares ε, so the
//! likelihood ρ-gradient is `(Σ_shards ∂L/∂w) ∘ ε_s ∘ σ′`. The engine
//! reduces the cheap `∘ ε_s` part per sample (phase 3) and applies the
//! shared `σ′` factor once per step in
//! [`VarDense::finish_step_grads`] — the seed path recomputed
//! `softplus`/`sigmoid` per weight up to six times per batch, which
//! dominated its CPU profile.

use vibnn_grng::StreamFork;
use vibnn_nn::{relu, relu_backward, softmax_rows, Matrix};

use crate::{parallel_fork_map, parallel_ordered_tasks, LayerGrads, LayerShared, VarDense};

/// Rows per gradient microbatch. A fixed constant (rather than
/// `batch / threads`) so the shard partition — and therefore the gradient
/// reduction tree — is identical at every thread count. At the paper's
/// batch size of 64 this yields 4 shards, matching the 4-worker sweet
/// spot of the bench.
pub(crate) const MICROBATCH_ROWS: usize = 16;

/// One MC sample's drawn tensors, shared read-only by its shard units.
struct SampleDraw {
    w: Vec<Matrix>,
    b: Vec<Vec<f32>>,
    eps: Vec<Matrix>,
    bias_eps: Vec<Vec<f32>>,
}

/// Likelihood gradients produced by one `(sample, shard)` unit.
struct UnitGrads {
    w: Vec<Matrix>,
    b: Vec<Vec<f32>>,
    nll: f64,
}

/// Per-worker reusable buffers for the shard forward/backward pass.
#[derive(Default)]
struct ShardWorkspace {
    /// Post-activation output of every layer (`acts[last]` holds logits,
    /// then softmax probabilities).
    acts: Vec<Matrix>,
    /// Current upstream gradient.
    grad: Matrix,
    /// Landing buffer for the next `dL/dx` (swapped with `grad`).
    grad_next: Matrix,
}

/// The reduced likelihood gradients of one training step, still missing
/// the `σ′` ρ-factor and the KL terms (both applied by
/// [`VarDense::finish_step_grads`]).
pub(crate) struct StepGrads {
    /// One [`LayerGrads`] per layer.
    pub layers: Vec<LayerGrads>,
    /// `Σ −ln p[label]` over every `(sample, shard, row)`, accumulated in
    /// unit order; divide by `batch × samples` for the reported NLL.
    pub nll_sum: f64,
}

/// Forward + backward over one shard with one sample's weights.
fn unit_pass(
    layers: &[VarDense],
    draw: &SampleDraw,
    x: &Matrix,
    labels: &[usize],
    inv_scale: f32,
    ws: &mut ShardWorkspace,
) -> UnitGrads {
    let num_layers = layers.len();
    let last = num_layers - 1;
    if ws.acts.len() != num_layers {
        ws.acts = (0..num_layers).map(|_| Matrix::default()).collect();
    }
    for l in 0..num_layers {
        let (done, rest) = ws.acts.split_at_mut(l);
        let input = if l == 0 { x } else { &done[l - 1] };
        let out = &mut rest[0];
        input.matmul_into(&draw.w[l], out);
        out.add_row_broadcast(&draw.b[l]);
        if l < last {
            relu(out);
        }
    }
    softmax_rows(&mut ws.acts[last]);
    let probs = &ws.acts[last];
    let mut nll = 0.0f64;
    for (r, &label) in labels.iter().enumerate() {
        nll -= f64::from(probs[(r, label)]).max(1e-12).ln();
    }
    // dL/dlogits = (probs − onehot) / (batch × samples).
    ws.grad.resize(probs.rows(), probs.cols());
    ws.grad.data_mut().copy_from_slice(probs.data());
    for (r, &label) in labels.iter().enumerate() {
        ws.grad[(r, label)] -= 1.0;
    }
    ws.grad.scale(inv_scale);
    let mut gw: Vec<Matrix> = (0..num_layers).map(|_| Matrix::default()).collect();
    let mut gb: Vec<Vec<f32>> = vec![Vec::new(); num_layers];
    for l in (0..num_layers).rev() {
        if l < last {
            relu_backward(&mut ws.grad, &ws.acts[l]);
        }
        let input = if l == 0 { x } else { &ws.acts[l - 1] };
        gw[l] = input.t_matmul(&ws.grad);
        gb[l] = ws.grad.col_sums();
        if l > 0 {
            // dL/dx through the *sampled* weights; skipped for the first
            // layer, whose input gradient nobody consumes.
            ws.grad.matmul_t_into(&draw.w[l], &mut ws.grad_next);
            std::mem::swap(&mut ws.grad, &mut ws.grad_next);
        }
    }
    UnitGrads { w: gw, b: gb, nll }
}

/// Runs the draw / shard-pass / ordered-reduction phases of one training
/// step. `threads == 0` resolves through [`crate::vibnn_threads`].
pub(crate) fn run_step<S: StreamFork + Sync>(
    layers: &[VarDense],
    shared: &[LayerShared],
    x: &Matrix,
    labels: &[usize],
    samples: usize,
    threads: usize,
    step_src: &S,
) -> StepGrads {
    let num_layers = layers.len();
    let batch = x.rows();
    let num_shards = batch.div_ceil(MICROBATCH_ROWS).max(1);
    let shard_x: Vec<Matrix> = (0..num_shards)
        .map(|m| x.rows_slice(m * MICROBATCH_ROWS, ((m + 1) * MICROBATCH_ROWS).min(batch)))
        .collect();
    let shard_y: Vec<&[usize]> = labels.chunks(MICROBATCH_ROWS).collect();

    // Phase 1: one forked ε substream per MC sample.
    let draws: Vec<SampleDraw> =
        parallel_fork_map(samples, threads, step_src, |_, src, _: &mut ()| {
            let mut w = Vec::with_capacity(num_layers);
            let mut b = Vec::with_capacity(num_layers);
            let mut eps = Vec::with_capacity(num_layers);
            let mut bias_eps = Vec::with_capacity(num_layers);
            for (layer, sh) in layers.iter().zip(shared) {
                let (wi, bi, ei, bei) = layer.draw_sample(sh, src);
                w.push(wi);
                b.push(bi);
                eps.push(ei);
                bias_eps.push(bei);
            }
            SampleDraw { w, b, eps, bias_eps }
        });

    // Phase 2: (sample, shard) units on reusable worker workspaces.
    let inv_scale = 1.0 / (batch as f32 * samples as f32);
    let units = parallel_ordered_tasks(
        samples * num_shards,
        threads,
        |u, ws: &mut ShardWorkspace| {
            let s = u / num_shards;
            let m = u % num_shards;
            unit_pass(layers, &draws[s], &shard_x[m], shard_y[m], inv_scale, ws)
        },
    );

    // Phase 3: ordered reduction — ascending shard order within each
    // sample, ascending sample order overall.
    let mut reduced: Vec<LayerGrads> = layers
        .iter()
        .map(|l| LayerGrads {
            mu: Matrix::zeros(l.in_dim(), l.out_dim()),
            rho_pre: Matrix::zeros(l.in_dim(), l.out_dim()),
            bias_mu: vec![0.0; l.out_dim()],
            bias_rho_pre: vec![0.0; l.out_dim()],
        })
        .collect();
    let mut units = units;
    for (s, draw) in draws.iter().enumerate() {
        for (l, acc) in reduced.iter_mut().enumerate() {
            // The first shard's gradient doubles as the per-sample
            // accumulator (taken by move; later shards fold in ascending
            // order).
            let mut sample_sum = std::mem::take(&mut units[s * num_shards].w[l]);
            for m in 1..num_shards {
                sample_sum.axpy(1.0, &units[s * num_shards + m].w[l]);
            }
            acc.mu.axpy(1.0, &sample_sum);
            acc.rho_pre.fma_assign(&sample_sum, &draw.eps[l]);
            let mut bias_sum = std::mem::take(&mut units[s * num_shards].b[l]);
            for m in 1..num_shards {
                for (a, &v) in bias_sum.iter_mut().zip(&units[s * num_shards + m].b[l]) {
                    *a += v;
                }
            }
            for (a, &v) in acc.bias_mu.iter_mut().zip(&bias_sum) {
                *a += v;
            }
            for (a, (&v, &e)) in acc
                .bias_rho_pre
                .iter_mut()
                .zip(bias_sum.iter().zip(&draw.bias_eps[l]))
            {
                *a += v * e;
            }
        }
    }
    let nll_sum: f64 = units.iter().map(|u| u.nll).sum();
    StepGrads {
        layers: reduced,
        nll_sum,
    }
}
