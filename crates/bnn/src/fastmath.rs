//! Branch-free polynomial `softplus`/`sigmoid` kernels.
//!
//! The Bayes-by-Backprop step evaluates `softplus(ρ)` and `sigmoid(ρ)` for
//! every variational parameter every minibatch (σ/σ′ precompute, sampled
//! serving weights). The libm `exp`/`ln_1p` pair behind the seed
//! implementation is scalar, branchy, and was the single largest
//! transcendental cost per step. The kernels here use the classic
//! float-only recipe — `softplus(x) = max(x, 0) + ln1p(e^{-|x|})` with a
//! range-reduced degree-6 polynomial `exp` and an atanh-series `ln1p` —
//! with no data-dependent branches, so the whole pipeline autovectorizes
//! on stable Rust (no intrinsics, no `unsafe`).
//!
//! Accuracy: a few ulp against the f64 reference over the whole finite
//! range (the unit tests sweep ±40 and pin relative error below `3e-7`),
//! comfortably inside every tolerance the training and serving paths
//! assume. Inputs below ≈ −87.3 clamp to `exp(−87.33654) ≈ 1.2e-38`
//! (smallest-normal territory) instead of producing subnormals — at such σ
//! the KL term is ±inf regardless.
//!
//! `softplus` and `sigmoid` are exposed only as the fused
//! [`softplus_sigmoid`] evaluation (plus slice helpers); callers that need
//! one half simply drop the other, which keeps every call site
//! bit-identical to every other by construction.

use vibnn_nn::LANES;

/// `log2(e)`.
const LOG2E: f32 = std::f32::consts::LOG2_E;
/// `1.5 · 2²³` — adding and subtracting this rounds to nearest integer for
/// `|x| < 2²²` without needing the (SSE4.1-only) `roundps` instruction.
const MAGIC: f32 = 12_582_912.0;
/// High/low split of `ln 2` (Cody–Waite): `C1 + C2 == ln 2` to ~2⁻³³, with
/// `C1` exactly representable so `x − k·C1` is exact for small `k`. The
/// full digit string is deliberate — it documents the exact dyadic value.
#[allow(clippy::excessive_precision)]
const LN2_HI: f32 = 0.693_359_375;
const LN2_LO: f32 = -2.121_944_4e-4;

/// `e^x` for `x ≤ 0`, clamped at `x = −87.33654` (where the result reaches
/// the smallest normal `f32`). Range reduction `x = k·ln2 + r`,
/// `|r| ≤ ln2/2`, degree-6 polynomial on `r`, exponent assembled with
/// `from_bits` — every step is straight-line float/int arithmetic.
#[inline]
fn exp_neg(x: f32) -> f32 {
    let x = x.max(-87.33654);
    let k = (x * LOG2E + MAGIC) - MAGIC; // round-to-nearest integer
    let r = (x - k * LN2_HI) - k * LN2_LO;
    // Horner over the cephes expf minimax coefficients.
    let mut p = 1.987_569_2e-4f32;
    p = p * r + 1.398_2e-3;
    p = p * r + 8.333_452e-3;
    p = p * r + 4.166_579_6e-2;
    p = p * r + 1.666_666_5e-1;
    p = p * r + 5.000_000_3e-1;
    let e = 1.0 + r + r * r * p;
    // 2^k via the exponent field: k ∈ [−126, 0] ⇒ biased exponent ≥ 1.
    let two_k = f32::from_bits(((127 + k as i32) as u32) << 23);
    two_k * e
}

/// `ln(1 + z)` for `z ∈ [0, 1]` via the atanh form: `s = z/(2+z)`,
/// `ln1p(z) = 2·atanh(s) = 2s·(1 + s²/3 + s⁴/5 + … + s¹⁰/11)`.
/// `s ≤ 1/3`, so the truncated series is accurate to ~1.5e-7 relative at
/// the worst point `z = 1`.
#[inline]
fn ln1p_unit(z: f32) -> f32 {
    let s = z / (2.0 + z);
    let w = s * s;
    let mut p = 1.0f32 / 11.0;
    p = p * w + 1.0 / 9.0;
    p = p * w + 1.0 / 7.0;
    p = p * w + 1.0 / 5.0;
    p = p * w + 1.0 / 3.0;
    p = p * w + 1.0;
    2.0 * s * p
}

/// Fused `(softplus(x), sigmoid(x))` sharing one `exp` evaluation:
/// `z = e^{-|x|}`, `softplus = max(x,0) + ln1p(z)`, and
/// `sigmoid = 1/(1+z)` (mirrored to `z/(1+z)` for negative `x`).
///
/// This is *the* σ/σ′ evaluation of the crate — the public
/// [`softplus`](crate::softplus) / [`softplus_derivative`](crate::softplus_derivative)
/// wrappers and every internal kernel call it, so all paths agree bitwise.
#[inline]
pub(crate) fn softplus_sigmoid(x: f32) -> (f32, f32) {
    let z = exp_neg(-x.abs());
    let sp = x.max(0.0) + ln1p_unit(z);
    let inv = 1.0 / (1.0 + z);
    let sd = if x >= 0.0 { inv } else { z * inv };
    (sp, sd)
}

/// Slice form of [`softplus_sigmoid`]: writes σ and σ′ for each ρ, walking
/// the three slices in [`LANES`]-wide strips (plus a scalar tail) so the
/// branch-free scalar kernel maps onto SIMD registers. Elementwise, so the
/// strip width cannot change any value.
///
/// # Panics
///
/// Panics if the slices have differing lengths.
pub(crate) fn softplus_sigmoid_slice(rho: &[f32], sigma: &mut [f32], deriv: &mut [f32]) {
    assert_eq!(rho.len(), sigma.len(), "rho/sigma length mismatch");
    assert_eq!(rho.len(), deriv.len(), "rho/deriv length mismatch");
    let mut rc = rho.chunks_exact(LANES);
    let mut sc = sigma.chunks_exact_mut(LANES);
    let mut dc = deriv.chunks_exact_mut(LANES);
    for ((r, s), d) in (&mut rc).zip(&mut sc).zip(&mut dc) {
        for l in 0..LANES {
            let (sg, sd) = softplus_sigmoid(r[l]);
            s[l] = sg;
            d[l] = sd;
        }
    }
    for ((&r, s), d) in rc
        .remainder()
        .iter()
        .zip(sc.into_remainder().iter_mut())
        .zip(dc.into_remainder().iter_mut())
    {
        let (sg, sd) = softplus_sigmoid(r);
        *s = sg;
        *d = sd;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ref_softplus(x: f64) -> f64 {
        x.max(0.0) + (-x.abs()).exp().ln_1p()
    }

    fn ref_sigmoid(x: f64) -> f64 {
        1.0 / (1.0 + (-x).exp())
    }

    #[test]
    fn matches_f64_reference_across_range() {
        let mut worst_sp = 0.0f64;
        let mut worst_sd = 0.0f64;
        for i in -40_000..=40_000 {
            let x = i as f32 * 1e-3; // ±40 in 0.001 steps
            let (sp, sd) = softplus_sigmoid(x);
            let rsp = ref_softplus(f64::from(x));
            let rsd = ref_sigmoid(f64::from(x));
            worst_sp = worst_sp.max((f64::from(sp) - rsp).abs() / rsp.max(1e-30));
            worst_sd = worst_sd.max((f64::from(sd) - rsd).abs() / rsd.max(1e-30));
        }
        assert!(worst_sp < 3e-7, "softplus rel err {worst_sp}");
        assert!(worst_sd < 3e-7, "sigmoid rel err {worst_sd}");
    }

    #[test]
    fn deep_negative_tail_is_positive_and_tiny() {
        for x in [-50.0f32, -80.0, -87.0, -90.0, -200.0] {
            let (sp, sd) = softplus_sigmoid(x);
            assert!(sp > 0.0 && sp < 2e-20, "softplus({x}) = {sp}");
            assert!(sd > 0.0 && sd < 2e-20, "sigmoid({x}) = {sd}");
        }
    }

    #[test]
    fn large_positive_saturates_exactly() {
        for x in [25.0f32, 50.0, 1e4] {
            let (sp, sd) = softplus_sigmoid(x);
            assert_eq!(sp, x, "softplus({x})");
            assert_eq!(sd, 1.0, "sigmoid({x})");
        }
    }

    #[test]
    fn slice_kernel_is_bitwise_scalar() {
        let rho: Vec<f32> = (0..103).map(|i| (i as f32 - 51.0) * 0.7).collect();
        let mut sigma = vec![0.0f32; rho.len()];
        let mut deriv = vec![0.0f32; rho.len()];
        softplus_sigmoid_slice(&rho, &mut sigma, &mut deriv);
        for (i, &r) in rho.iter().enumerate() {
            let (sg, sd) = softplus_sigmoid(r);
            assert_eq!(sigma[i].to_bits(), sg.to_bits());
            assert_eq!(deriv[i].to_bits(), sd.to_bits());
        }
    }
}
