//! The full Bayesian MLP: stacked [`VarDense`] layers trained by
//! Bayes-by-Backprop, with Monte Carlo inference (paper equations 4–6).

use vibnn_grng::{BnnWallaceGrng, GaussianSource, ParallelRlfGrng, StreamFork, ZigguratGrng};
use vibnn_nn::{
    accuracy, cross_entropy_loss, relu, relu_backward, softmax_rows, Adam, GaussianInit, Matrix,
    Optimizer,
};

use crate::mc::{chunked_fold, TAIL_CHUNK};
use crate::train::{run_step, StepArena, StepPhaseSeconds};
use crate::{parallel_mc_reduce, BnnParams, EpsScratch, GaussianPrior, VarDense};

/// Configuration for [`Bnn`].
///
/// # Example
///
/// ```
/// use vibnn_bnn::BnnConfig;
/// let cfg = BnnConfig::new(&[784, 200, 200, 10]).with_kl_weight(1e-3);
/// assert_eq!(cfg.layer_sizes(), &[784, 200, 200, 10]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BnnConfig {
    sizes: Vec<usize>,
    lr: f32,
    prior: GaussianPrior,
    sigma_init: f32,
    kl_weight: f32,
}

impl BnnConfig {
    /// Creates a configuration from layer sizes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes or any size is zero.
    pub fn new(sizes: &[usize]) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        Self {
            sizes: sizes.to_vec(),
            lr: 1e-3,
            prior: GaussianPrior::new(0.5),
            sigma_init: 0.05,
            kl_weight: 1e-4,
        }
    }

    /// The paper's MNIST architecture: 784-200-200-10.
    pub fn paper_mnist() -> Self {
        Self::new(&[784, 200, 200, 10])
    }

    /// Sets the Adam learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn with_lr(mut self, lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
        self
    }

    /// Sets the Gaussian prior standard deviation.
    pub fn with_prior_std(mut self, std: f64) -> Self {
        self.prior = GaussianPrior::new(std);
        self
    }

    /// Sets the initial posterior σ.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0`.
    pub fn with_sigma_init(mut self, sigma: f32) -> Self {
        assert!(sigma > 0.0, "sigma_init must be positive");
        self.sigma_init = sigma;
        self
    }

    /// Sets the per-batch KL weight (Blundell's `1/num_batches`, often
    /// tuned smaller for heavily over-parameterized models).
    ///
    /// # Panics
    ///
    /// Panics if `w < 0`.
    pub fn with_kl_weight(mut self, w: f32) -> Self {
        assert!(w >= 0.0, "kl weight must be non-negative");
        self.kl_weight = w;
        self
    }

    /// Layer sizes.
    pub fn layer_sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// The prior.
    pub fn prior(&self) -> GaussianPrior {
        self.prior
    }

    /// The configured base learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// The initial posterior σ.
    pub fn sigma_init(&self) -> f32 {
        self.sigma_init
    }

    /// The per-batch KL weight.
    pub fn kl_weight(&self) -> f32 {
        self.kl_weight
    }
}

/// Per-epoch training statistics for a BNN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BnnTrainReport {
    /// Mean minibatch total loss (NLL + weighted KL).
    pub loss: f64,
    /// Mean minibatch NLL component.
    pub nll: f64,
    /// Mean minibatch KL component (unweighted).
    pub kl: f64,
    /// Training accuracy (mean-weight network).
    pub accuracy: f64,
}

/// Which generator family supplies training ε (the reparameterization
/// noise of Bayes-by-Backprop).
///
/// The default is the software Ziggurat — the fastest high-quality
/// generator in the workspace, and the stream every existing checkpoint
/// and test was trained with. The two hardware-faithful families model
/// the paper's GRNG designs feeding *training* instead of inference:
/// RLF (RAM-based linear feedback, Section 4.1) and BNNWallace
/// (Section 4.2). All three fork the same way (`seed → step → sample`),
/// so swapping the source changes only the noise values, never the
/// scheduling contract.
///
/// ```
/// use vibnn_bnn::TrainEpsSource;
/// assert_eq!(TrainEpsSource::default(), TrainEpsSource::Ziggurat);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum TrainEpsSource {
    /// Software Ziggurat (the default; bit-identical to historical runs).
    #[default]
    Ziggurat,
    /// RLF-GRNG: the paper's RAM-based linear feedback design.
    Rlf,
    /// BNNWallace-GRNG: the paper's Wallace-transform design.
    BnnWallace,
}

impl std::fmt::Display for TrainEpsSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TrainEpsSource::Ziggurat => "ziggurat",
            TrainEpsSource::Rlf => "rlf",
            TrainEpsSource::BnnWallace => "bnnwallace",
        })
    }
}

/// The training ε generator behind [`TrainEpsSource`]: one concrete
/// generator per family, all forked identically. Only ever forked,
/// never consumed in place, so checkpoints persist nothing beyond the
/// seed and the (runtime-only) source choice.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // Ziggurat (table-heavy, the default) is
// forked once per MC sample in the hot step loop; boxing it would trade a
// stack copy for a per-fork heap allocation and break the allocation-free
// steady-state contract (`tests/alloc_steady_state.rs`).
pub(crate) enum TrainEps {
    Ziggurat(ZigguratGrng),
    Rlf(ParallelRlfGrng),
    BnnWallace(BnnWallaceGrng),
}

impl TrainEps {
    /// Builds the family's generator from the (already-mixed) seed. The
    /// RLF and Wallace shapes follow the workspace idiom: 64 RLF lanes,
    /// an 8-unit / 256-pool Wallace.
    pub(crate) fn new(source: TrainEpsSource, seed: u64) -> Self {
        match source {
            TrainEpsSource::Ziggurat => TrainEps::Ziggurat(ZigguratGrng::new(seed)),
            TrainEpsSource::Rlf => TrainEps::Rlf(ParallelRlfGrng::new(64, seed)),
            TrainEpsSource::BnnWallace => {
                TrainEps::BnnWallace(BnnWallaceGrng::new(8, 256, seed))
            }
        }
    }

    pub(crate) fn source(&self) -> TrainEpsSource {
        match self {
            TrainEps::Ziggurat(_) => TrainEpsSource::Ziggurat,
            TrainEps::Rlf(_) => TrainEpsSource::Rlf,
            TrainEps::BnnWallace(_) => TrainEpsSource::BnnWallace,
        }
    }
}

impl GaussianSource for TrainEps {
    fn next_gaussian(&mut self) -> f64 {
        match self {
            TrainEps::Ziggurat(g) => g.next_gaussian(),
            TrainEps::Rlf(g) => g.next_gaussian(),
            TrainEps::BnnWallace(g) => g.next_gaussian(),
        }
    }

    fn fill(&mut self, out: &mut [f64]) {
        match self {
            TrainEps::Ziggurat(g) => g.fill(out),
            TrainEps::Rlf(g) => g.fill(out),
            TrainEps::BnnWallace(g) => g.fill(out),
        }
    }

    fn fill_f32(&mut self, out: &mut [f32]) {
        match self {
            TrainEps::Ziggurat(g) => g.fill_f32(out),
            TrainEps::Rlf(g) => g.fill_f32(out),
            TrainEps::BnnWallace(g) => g.fill_f32(out),
        }
    }
}

impl StreamFork for TrainEps {
    fn fork(&self, stream_id: u64) -> Self {
        match self {
            TrainEps::Ziggurat(g) => TrainEps::Ziggurat(g.fork(stream_id)),
            TrainEps::Rlf(g) => TrainEps::Rlf(g.fork(stream_id)),
            TrainEps::BnnWallace(g) => TrainEps::BnnWallace(g.fork(stream_id)),
        }
    }
}

/// A Bayesian MLP with Gaussian variational posteriors over all weights.
///
/// Training runs through the deterministic data-parallel engine (see
/// [`Self::train_batch_mc`]): each step forks one ε substream per Monte
/// Carlo gradient sample, shards the minibatch into fixed-size
/// microbatches across `std::thread::scope` workers, and reduces the
/// gradients in a fixed order — so the trained parameters are
/// **bit-identical at any thread count**.
#[derive(Debug, Clone)]
pub struct Bnn {
    pub(crate) cfg: BnnConfig,
    pub(crate) layers: Vec<VarDense>,
    pub(crate) opt: Adam,
    pub(crate) slots: Vec<[usize; 4]>,
    /// Base generator for training ε. Step `t`, sample `s` draws from
    /// `train_eps.fork(t).fork(s)` — consumption-independent, so the
    /// stream a sample sees never depends on scheduling. The software
    /// Ziggurat is the fastest high-quality generator in the workspace;
    /// training happens off-accelerator (paper Section 2.2), so the
    /// hardware-GRNG seam only binds at inference/deployment.
    ///
    /// `train_eps` is only ever *forked*, never consumed, so its state is
    /// fully determined by `seed` — checkpoints persist the seed alone.
    /// [`Bnn::set_train_eps_source`] swaps the generator family behind
    /// the same forking discipline.
    pub(crate) train_eps: TrainEps,
    pub(crate) shuffle_rng: GaussianInit,
    pub(crate) step: u64,
    /// The construction seed (all internal RNGs derive from it).
    pub(crate) seed: u64,
    /// Uniform draws consumed from `shuffle_rng` so far. A checkpoint
    /// stores this count; loading fast-forwards a fresh generator by the
    /// same number of draws, making epoch shuffles resume exactly.
    pub(crate) shuffle_draws: u64,
    /// Completed training epochs. LR schedules index on this, so a
    /// checkpointed run resumes its schedule where it left off.
    pub(crate) epochs_trained: u64,
    /// Pooled per-step tensors (a pure cache — carries no training state;
    /// checkpoints ignore it).
    pub(crate) arena: StepArena,
    /// Cumulative per-phase wall-clock spend of the training engine.
    pub(crate) phase_seconds: StepPhaseSeconds,
}

impl Bnn {
    /// Builds the network.
    pub fn new(cfg: BnnConfig, seed: u64) -> Self {
        let mut layers = Vec::new();
        for (i, w) in cfg.sizes.windows(2).enumerate() {
            layers.push(VarDense::new(
                w[0],
                w[1],
                cfg.sigma_init,
                seed.wrapping_add(i as u64 * 104_729),
            ));
        }
        let mut opt = Adam::new(cfg.lr);
        let slots = layers
            .iter()
            .map(|l| {
                [
                    opt.slot(l.in_dim(), l.out_dim()),
                    opt.slot(l.in_dim(), l.out_dim()),
                    opt.slot(1, l.out_dim()),
                    opt.slot(1, l.out_dim()),
                ]
            })
            .collect();
        Self {
            cfg,
            layers,
            opt,
            slots,
            train_eps: TrainEps::new(TrainEpsSource::Ziggurat, seed ^ 0xBEEF),
            shuffle_rng: GaussianInit::new(seed ^ 0xFACE),
            step: 0,
            seed,
            shuffle_draws: 0,
            epochs_trained: 0,
            arena: StepArena::default(),
            phase_seconds: StepPhaseSeconds::default(),
        }
    }

    /// Selects which generator family supplies training ε from the next
    /// step on, re-deriving the stream from the construction seed (the
    /// same `seed ^ 0xBEEF` mixing every family uses). Setting
    /// [`TrainEpsSource::Ziggurat`] restores the historical stream
    /// bit-for-bit. The choice is runtime-only: checkpoints don't
    /// persist it, and loads come back with the Ziggurat default —
    /// re-apply it before resuming if a run trained with another
    /// family.
    pub fn set_train_eps_source(&mut self, source: TrainEpsSource) {
        self.train_eps = TrainEps::new(source, self.seed ^ 0xBEEF);
    }

    /// Which generator family currently supplies training ε.
    pub fn train_eps_source(&self) -> TrainEpsSource {
        self.train_eps.source()
    }

    /// Cumulative wall-clock seconds the training engine has spent in
    /// each step phase (draw / shard passes / reduction / tail) since
    /// construction, plus the step count — the source of `bench_train`'s
    /// phase breakdown. Subtract two snapshots to profile a window.
    pub fn phase_seconds(&self) -> StepPhaseSeconds {
        self.phase_seconds
    }

    /// The configuration.
    pub fn config(&self) -> &BnnConfig {
        &self.cfg
    }

    /// The construction seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of optimizer steps (minibatches) taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.step
    }

    /// Number of completed training epochs (any epoch driver). LR
    /// schedules index on this, so resumed runs continue their schedule
    /// instead of restarting it.
    pub fn epochs_trained(&self) -> u64 {
        self.epochs_trained
    }

    /// The optimizer's current learning rate (may differ from the
    /// configured base rate when a schedule is active).
    pub fn lr(&self) -> f32 {
        self.opt.lr()
    }

    /// Sets the optimizer learning rate — the seam LR schedules plug
    /// into (see [`crate::LrSchedule`]).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn set_lr(&mut self, lr: f32) {
        self.opt.set_lr(lr);
    }

    /// Borrow the layers.
    pub fn layers(&self) -> &[VarDense] {
        &self.layers
    }

    /// Snapshots the trained `(µ, σ)` parameters for deployment.
    pub fn params(&self) -> BnnParams {
        BnnParams {
            weight_mu: self.layers.iter().map(|l| l.mu().clone()).collect(),
            weight_sigma: self.layers.iter().map(|l| l.sigma()).collect(),
            bias_mu: self.layers.iter().map(|l| l.bias_mu().to_vec()).collect(),
            bias_sigma: self.layers.iter().map(|l| l.bias_sigma()).collect(),
        }
    }

    /// One sampled forward pass ending in softmax, on reusable buffers.
    /// The input is borrowed directly by the first layer — no per-sample
    /// clone of the batch.
    fn sample_probs(
        &self,
        x: &Matrix,
        eps_src: &mut impl GaussianSource,
        scratch: &mut EpsScratch,
    ) -> Matrix {
        let last = self.layers.len() - 1;
        let mut h: Option<Matrix> = None;
        for (i, layer) in self.layers.iter().enumerate() {
            let input = h.as_ref().unwrap_or(x);
            let mut out = layer.forward_sample_inference_with(input, eps_src, scratch);
            if i < last {
                relu(&mut out);
            }
            h = Some(out);
        }
        let mut probs = h.expect("at least one layer");
        softmax_rows(&mut probs);
        probs
    }

    /// Monte Carlo predictive probabilities: averages the softmax output
    /// over `samples` weight draws whose unit Gaussians come from
    /// `eps_src` (paper equation 6). This is the seam where the hardware
    /// GRNGs plug in. All ε tensors are drawn through the block API; one
    /// continuous stream feeds every sample in order.
    ///
    /// For multi-core inference see [`Self::predict_proba_mc_parallel`].
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn predict_proba_mc(
        &self,
        x: &Matrix,
        samples: usize,
        eps_src: &mut impl GaussianSource,
    ) -> Matrix {
        assert!(samples > 0, "need at least one Monte Carlo sample");
        let mut acc = Matrix::zeros(x.rows(), *self.cfg.sizes.last().expect("sizes"));
        let mut scratch = EpsScratch::new();
        for _ in 0..samples {
            let h = self.sample_probs(x, eps_src, &mut scratch);
            acc.axpy(1.0, &h);
        }
        acc.scale(1.0 / samples as f32);
        acc
    }

    /// Monte Carlo predictive probabilities with the sample ensemble
    /// spread across `threads` `std::thread::scope` workers.
    ///
    /// Sample `s` always draws its ε from `eps_src.fork(s)`, and the
    /// per-sample softmax outputs are reduced in ascending sample order
    /// after all workers join — so the result is **bit-identical for every
    /// thread count** (and to `threads == 1`). Pass `threads == 0` to use
    /// the [`crate::vibnn_threads`] knob (`VIBNN_THREADS`).
    ///
    /// Note the ε-stream *assignment* differs from
    /// [`Self::predict_proba_mc`], which feeds one continuous stream
    /// through all samples; the two paths are statistically equivalent but
    /// not numerically interchangeable.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn predict_proba_mc_parallel<S: StreamFork + Sync>(
        &self,
        x: &Matrix,
        samples: usize,
        eps_src: &S,
        threads: usize,
    ) -> Matrix {
        parallel_mc_reduce(samples, threads, eps_src, |src, scratch: &mut EpsScratch| {
            self.sample_probs(x, src, scratch)
        })
    }

    /// Deterministic predictive probabilities using the posterior means.
    pub fn predict_proba_mean(&self, x: &Matrix) -> Matrix {
        let last = self.layers.len() - 1;
        let mut h: Option<Matrix> = None;
        for (i, layer) in self.layers.iter().enumerate() {
            let input = h.as_ref().unwrap_or(x);
            let mut out = layer.forward_mean(input);
            if i < last {
                relu(&mut out);
            }
            h = Some(out);
        }
        let mut probs = h.expect("at least one layer");
        softmax_rows(&mut probs);
        probs
    }

    /// Accuracy under MC inference.
    pub fn evaluate_mc(
        &self,
        x: &Matrix,
        labels: &[usize],
        samples: usize,
        eps_src: &mut impl GaussianSource,
    ) -> f64 {
        accuracy(&self.predict_proba_mc(x, samples, eps_src), labels)
    }

    /// Accuracy under parallel MC inference (see
    /// [`Self::predict_proba_mc_parallel`] for the threading contract).
    pub fn evaluate_mc_parallel<S: StreamFork + Sync>(
        &self,
        x: &Matrix,
        labels: &[usize],
        samples: usize,
        eps_src: &S,
        threads: usize,
    ) -> f64 {
        accuracy(
            &self.predict_proba_mc_parallel(x, samples, eps_src, threads),
            labels,
        )
    }

    /// Accuracy under mean-weight inference.
    pub fn evaluate_mean(&self, x: &Matrix, labels: &[usize]) -> f64 {
        accuracy(&self.predict_proba_mean(x), labels)
    }

    /// One Bayes-by-Backprop step on a minibatch (single MC gradient
    /// sample) through the data-parallel engine; returns
    /// `(total loss, nll, kl)`. Equivalent to
    /// [`Self::train_batch_mc`]`(x, labels, 1)`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn train_batch(&mut self, x: &Matrix, labels: &[usize]) -> (f64, f64, f64) {
        self.train_batch_mc_threads(x, labels, 1, 0)
    }

    /// One Bayes-by-Backprop step with the gradient averaged over
    /// `samples` Monte Carlo weight draws (the paper's
    /// reparameterization-trick estimator), with worker count from the
    /// `VIBNN_THREADS` knob. See [`Self::train_batch_mc_threads`] for the
    /// full contract.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or `samples == 0`.
    pub fn train_batch_mc(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        samples: usize,
    ) -> (f64, f64, f64) {
        self.train_batch_mc_threads(x, labels, samples, 0)
    }

    /// One step of the deterministic data-parallel training engine;
    /// returns `(total loss, nll, kl)`.
    ///
    /// MC sample `s` of step `t` draws every ε tensor from the forked
    /// substream `fork(t).fork(s)` in block form; the minibatch is
    /// sharded into fixed 16-row microbatches whose forward/backward
    /// passes are spread over `threads` `std::thread::scope` workers
    /// (`threads == 0` honours [`crate::vibnn_threads`]); and gradients
    /// are reduced in ascending `(sample, shard)` order. Both the shard
    /// partition and the reduction order depend only on the inputs, so
    /// losses and parameters are **bit-identical for every thread
    /// count**.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, an empty batch, or `samples == 0`.
    pub fn train_batch_mc_threads(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        samples: usize,
        threads: usize,
    ) -> (f64, f64, f64) {
        assert_eq!(x.rows(), labels.len(), "batch size mismatch");
        assert!(x.rows() > 0, "empty batch");
        assert!(samples > 0, "need at least one Monte Carlo sample");
        // Tail (part 1): σ/σ′ precompute over fixed-boundary chunks.
        let t_tail = std::time::Instant::now();
        let num_layers = self.layers.len();
        if self.arena.shared.len() != num_layers {
            self.arena
                .shared
                .resize_with(num_layers, crate::LayerShared::default);
        }
        for (layer, sh) in self.layers.iter().zip(self.arena.shared.iter_mut()) {
            layer.step_shared_into(sh, threads);
        }
        let mut tail_s = t_tail.elapsed().as_secs_f64();
        let step_src = self.train_eps.fork(self.step);
        self.step += 1;
        let stats = run_step(
            &self.layers,
            x,
            labels,
            samples,
            threads,
            &step_src,
            &mut self.arena,
        );
        let nll = stats.nll_sum / (x.rows() as f64 * samples as f64);
        // Tail (part 2): gradient finish + optimizer, both chunk-parallel
        // over the same fixed boundaries.
        let t_tail = std::time::Instant::now();
        let prior_std = self.cfg.prior.std() as f32;
        let kl_weight = self.cfg.kl_weight;
        let mut kl = 0.0;
        for ((layer, sh), lg) in self
            .layers
            .iter_mut()
            .zip(&self.arena.shared)
            .zip(self.arena.reduced.iter_mut())
        {
            kl += layer.finish_step_grads(sh, prior_std, kl_weight, lg, threads);
        }
        self.opt.tick();
        let step = self.opt.step_params();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let [smu, srho, sbmu, sbrho] = self.slots[i];
            let ((mu, gmu), (rho, grho), (bmu, gbmu), (brho, gbrho)) = layer.params_mut();
            for (slot, param, grad) in [
                (smu, mu.data_mut(), gmu.data()),
                (srho, rho.data_mut(), grho.data()),
            ] {
                let (m, v) = self.opt.slot_state_mut(slot);
                // Adam is elementwise, so fixed-chunk parallelism cannot
                // change any value.
                let items = param
                    .chunks_mut(TAIL_CHUNK)
                    .zip(grad.chunks(TAIL_CHUNK))
                    .zip(m.chunks_mut(TAIL_CHUNK))
                    .zip(v.chunks_mut(TAIL_CHUNK));
                chunked_fold(threads, items, |(((p, g), m), v)| {
                    step.apply(p, g, m, v);
                    0.0
                });
            }
            let (m, v) = self.opt.slot_state_mut(sbmu);
            step.apply(bmu, gbmu, m, v);
            let (m, v) = self.opt.slot_state_mut(sbrho);
            step.apply(brho, gbrho, m, v);
        }
        tail_s += t_tail.elapsed().as_secs_f64();
        self.phase_seconds.draw += stats.draw;
        self.phase_seconds.shards += stats.shards;
        self.phase_seconds.reduce += stats.reduce;
        self.phase_seconds.tail += tail_s;
        self.phase_seconds.steps += 1;
        let total = nll + f64::from(kl_weight) * kl;
        (total, nll, kl)
    }

    /// One epoch with deterministic shuffling (single MC gradient sample,
    /// `VIBNN_THREADS` workers). Equivalent to
    /// [`Self::train_epoch_mc`]`(x, labels, batch, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or shapes mismatch.
    pub fn train_epoch(&mut self, x: &Matrix, labels: &[usize], batch: usize) -> BnnTrainReport {
        self.train_epoch_mc_threads(x, labels, batch, 1, 0)
    }

    /// One epoch with the per-step gradient averaged over `samples` MC
    /// weight draws, worker count from the `VIBNN_THREADS` knob.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`, `samples == 0`, or shapes mismatch.
    pub fn train_epoch_mc(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        batch: usize,
        samples: usize,
    ) -> BnnTrainReport {
        self.train_epoch_mc_threads(x, labels, batch, samples, 0)
    }

    /// One epoch through the data-parallel engine with an explicit worker
    /// count (`threads == 0` honours [`crate::vibnn_threads`]). The
    /// shuffle, ε substreams, shard partition, and reduction order are all
    /// thread-count-independent, so the report and the trained parameters
    /// are bit-identical for every `threads` value.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`, `samples == 0`, or shapes mismatch.
    pub fn train_epoch_mc_threads(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        batch: usize,
        samples: usize,
        threads: usize,
    ) -> BnnTrainReport {
        self.epoch_driver(x, labels, batch, |bnn, bx, by| {
            bnn.train_batch_mc_threads(bx, by, samples, threads)
        })
    }

    /// The shared epoch loop: one deterministic Fisher–Yates shuffle from
    /// `shuffle_rng`, then `step` per minibatch. Both the engine epochs
    /// and the seed-reference epoch run through this single driver, so
    /// their shuffles (and therefore their batch sequences) can never
    /// drift apart.
    fn epoch_driver(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        batch: usize,
        mut step: impl FnMut(&mut Self, &Matrix, &[usize]) -> (f64, f64, f64),
    ) -> BnnTrainReport {
        assert!(batch > 0, "batch size must be positive");
        assert_eq!(x.rows(), labels.len(), "dataset size mismatch");
        let n = x.rows();
        // Pooled epoch scratch: take the buffers out of the arena so
        // `step` can borrow `self` mutably, then put them back.
        let mut order = std::mem::take(&mut self.arena.order);
        let mut bx = std::mem::take(&mut self.arena.batch_x);
        let mut by = std::mem::take(&mut self.arena.batch_y);
        order.clear();
        order.extend(0..n);
        for i in (1..n).rev() {
            let j = (self.shuffle_rng.next_uniform() * (i + 1) as f64) as usize;
            order.swap(i, j.min(i));
        }
        self.shuffle_draws += n.saturating_sub(1) as u64;
        let (mut tl, mut tn, mut tk, mut b) = (0.0, 0.0, 0.0, 0u32);
        for chunk in order.chunks(batch) {
            x.select_rows_into(chunk, &mut bx);
            by.clear();
            by.extend(chunk.iter().map(|&i| labels[i]));
            let (l, nll, kl) = step(self, &bx, &by);
            tl += l;
            tn += nll;
            tk += kl;
            b += 1;
        }
        self.arena.order = order;
        self.arena.batch_x = bx;
        self.arena.batch_y = by;
        self.epochs_trained += 1;
        let b = f64::from(b.max(1));
        BnnTrainReport {
            loss: tl / b,
            nll: tn / b,
            kl: tk / b,
            accuracy: self.evaluate_mean(x, labels),
        }
    }

    /// The seed's scalar training step, retained verbatim as the
    /// benchmark baseline (`bench_train`'s "seed scalar path") and as a
    /// statistical cross-check for the engine: single-threaded, one
    /// continuous ε stream through the whole batch, per-layer activation
    /// clones, and optimizer round-trips through temporary buffers.
    /// Not part of the engine's bit-identity contract.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn train_batch_reference(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        eps_src: &mut impl GaussianSource,
    ) -> (f64, f64, f64) {
        assert_eq!(x.rows(), labels.len(), "batch size mismatch");
        let last = self.layers.len() - 1;
        let mut h = x.clone();
        let mut post_relu: Vec<Matrix> = Vec::with_capacity(last);
        for i in 0..self.layers.len() {
            h = self.layers[i].forward_sample(&h, eps_src);
            if i < last {
                relu(&mut h);
                post_relu.push(h.clone());
            }
        }
        let mut probs = h;
        softmax_rows(&mut probs);
        let nll = cross_entropy_loss(&probs, labels);

        let batch = x.rows() as f32;
        let mut grad = probs;
        for (r, &label) in labels.iter().enumerate() {
            grad[(r, label)] -= 1.0;
        }
        grad.scale(1.0 / batch);
        for i in (0..self.layers.len()).rev() {
            if i < last {
                relu_backward(&mut grad, &post_relu[i]);
            }
            grad = self.layers[i].backward(&grad);
        }
        // KL term and its gradients.
        let prior_std = self.cfg.prior.std() as f32;
        let mut kl = 0.0;
        for layer in &mut self.layers {
            kl += layer.accumulate_kl(prior_std, self.cfg.kl_weight);
        }
        // Apply updates (the seed's copy-out/copy-back round-trip).
        self.opt.tick();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let [smu, srho, sbmu, sbrho] = self.slots[i];
            let ((mu, gmu), (rho, grho), (bmu, gbmu), (brho, gbrho)) = layer.params_mut();
            let mut buf = mu.data().to_vec();
            self.opt.update(smu, &mut buf, gmu.data());
            mu.data_mut().copy_from_slice(&buf);
            let mut buf = rho.data().to_vec();
            self.opt.update(srho, &mut buf, grho.data());
            rho.data_mut().copy_from_slice(&buf);
            self.opt.update(sbmu, bmu, gbmu);
            self.opt.update(sbrho, brho, gbrho);
        }
        let total = nll + f64::from(self.cfg.kl_weight) * kl;
        (total, nll, kl)
    }

    /// One epoch over the seed's scalar path (see
    /// [`Self::train_batch_reference`]); same deterministic shuffle as the
    /// engine epochs.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or shapes mismatch.
    pub fn train_epoch_reference(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        batch: usize,
        eps_src: &mut impl GaussianSource,
    ) -> BnnTrainReport {
        self.epoch_driver(x, labels, batch, |bnn, bx, by| {
            bnn.train_batch_reference(bx, by, eps_src)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibnn_grng::BoxMullerGrng;

    fn toy_data(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = GaussianInit::new(seed);
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for r in 0..n {
            let a = rng.next_gaussian() as f32;
            let b = rng.next_gaussian() as f32;
            x[(r, 0)] = a;
            x[(r, 1)] = b;
            y.push(usize::from(a + b > 0.0));
        }
        (x, y)
    }

    #[test]
    fn bnn_learns_toy_problem() {
        let (x, y) = toy_data(512, 1);
        let mut bnn = Bnn::new(BnnConfig::new(&[2, 16, 2]).with_lr(0.02), 3);
        for _ in 0..40 {
            bnn.train_epoch(&x, &y, 64);
        }
        let acc = bnn.evaluate_mean(&x, &y);
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn mc_prediction_close_to_mean_prediction_when_trained() {
        let (x, y) = toy_data(256, 5);
        let mut bnn = Bnn::new(BnnConfig::new(&[2, 8, 2]).with_lr(0.02), 7);
        for _ in 0..30 {
            bnn.train_epoch(&x, &y, 64);
        }
        let mut eps = BoxMullerGrng::new(11);
        let acc_mc = bnn.evaluate_mc(&x, &y, 16, &mut eps);
        let acc_mean = bnn.evaluate_mean(&x, &y);
        assert!(
            (acc_mc - acc_mean).abs() < 0.1,
            "mc {acc_mc} vs mean {acc_mean}"
        );
    }

    #[test]
    fn kl_pressure_keeps_sigma_alive() {
        // With a KL term, posterior sigmas should not collapse to zero.
        let (x, y) = toy_data(256, 9);
        let mut bnn = Bnn::new(
            BnnConfig::new(&[2, 8, 2]).with_lr(0.02).with_kl_weight(1e-2),
            11,
        );
        for _ in 0..30 {
            bnn.train_epoch(&x, &y, 64);
        }
        let min_sigma = bnn
            .layers()
            .iter()
            .flat_map(|l| l.sigma().data().to_vec())
            .fold(f32::INFINITY, f32::min);
        assert!(min_sigma > 1e-4, "sigma collapsed to {min_sigma}");
    }

    #[test]
    fn loss_decreases_over_training() {
        let (x, y) = toy_data(256, 13);
        let mut bnn = Bnn::new(BnnConfig::new(&[2, 8, 2]).with_lr(0.02), 15);
        let first = bnn.train_epoch(&x, &y, 32).loss;
        for _ in 0..15 {
            bnn.train_epoch(&x, &y, 32);
        }
        let last = bnn.train_epoch(&x, &y, 32).loss;
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn params_snapshot_shapes() {
        let bnn = Bnn::new(BnnConfig::new(&[4, 6, 3]), 17);
        let p = bnn.params();
        assert_eq!(p.layers(), 2);
        assert_eq!(p.layer_sizes(), vec![4, 6, 3]);
        assert_eq!(p.weight_count(), 4 * 6 + 6 * 3);
        assert!(p.max_abs_param() > 0.0);
        // All sigmas positive.
        for s in &p.weight_sigma {
            assert!(s.data().iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn mc_averaging_reduces_prediction_variance() {
        let bnn = Bnn::new(BnnConfig::new(&[2, 8, 2]).with_sigma_init(0.3), 19);
        let x = Matrix::from_rows(&[&[0.5, -0.5]]);
        let spread = |samples: usize, seed: u64| -> f64 {
            let mut outs = Vec::new();
            for trial in 0..20 {
                let mut eps = BoxMullerGrng::new(seed + trial);
                let p = bnn.predict_proba_mc(&x, samples, &mut eps);
                outs.push(f64::from(p[(0, 0)]));
            }
            let m: f64 = outs.iter().sum::<f64>() / outs.len() as f64;
            outs.iter().map(|o| (o - m).powi(2)).sum::<f64>() / outs.len() as f64
        };
        let v1 = spread(1, 100);
        let v16 = spread(16, 200);
        assert!(v16 < v1, "variance should shrink with samples: {v1} -> {v16}");
    }

    #[test]
    fn deterministic_training() {
        let (x, y) = toy_data(64, 21);
        let mut a = Bnn::new(BnnConfig::new(&[2, 4, 2]), 23);
        let mut b = Bnn::new(BnnConfig::new(&[2, 4, 2]), 23);
        assert_eq!(a.train_epoch(&x, &y, 16), b.train_epoch(&x, &y, 16));
    }

    #[test]
    #[should_panic(expected = "at least one Monte Carlo sample")]
    fn zero_samples_panics() {
        let bnn = Bnn::new(BnnConfig::new(&[2, 2]), 1);
        let mut eps = BoxMullerGrng::new(1);
        let _ = bnn.predict_proba_mc(&Matrix::zeros(1, 2), 0, &mut eps);
    }

    // The thread-count bit-identity and `train_batch_mc(1) == train_batch`
    // contracts are pinned by the integration suite
    // (`tests/train_determinism.rs`, run explicitly by ci.sh) — not
    // duplicated here.

    #[test]
    fn multi_sample_gradients_still_learn() {
        let (x, y) = toy_data(256, 71);
        let mut bnn = Bnn::new(BnnConfig::new(&[2, 16, 2]).with_lr(0.02), 73);
        for _ in 0..25 {
            bnn.train_epoch_mc(&x, &y, 64, 3);
        }
        let acc = bnn.evaluate_mean(&x, &y);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn reference_path_statistically_agrees_with_engine() {
        // Different ε assignment (one continuous stream vs forked
        // substreams), same estimator: both should learn the toy problem
        // to a similar accuracy.
        let (x, y) = toy_data(256, 81);
        let mut engine = Bnn::new(BnnConfig::new(&[2, 12, 2]).with_lr(0.02), 83);
        let mut seed_path = engine.clone();
        let mut eps = BoxMullerGrng::new(85);
        for _ in 0..25 {
            engine.train_epoch(&x, &y, 64);
            seed_path.train_epoch_reference(&x, &y, 64, &mut eps);
        }
        let ea = engine.evaluate_mean(&x, &y);
        let ra = seed_path.evaluate_mean(&x, &y);
        assert!(ea > 0.85 && ra > 0.85, "engine {ea} vs reference {ra}");
    }

    #[test]
    #[should_panic(expected = "at least one Monte Carlo sample")]
    fn zero_gradient_samples_panics() {
        let (x, y) = toy_data(8, 91);
        let mut bnn = Bnn::new(BnnConfig::new(&[2, 2]), 93);
        let _ = bnn.train_batch_mc(&x, &y, 0);
    }

    #[test]
    fn parallel_mc_is_bit_identical_across_thread_counts() {
        let bnn = Bnn::new(BnnConfig::new(&[3, 8, 2]).with_sigma_init(0.3), 25);
        let x = Matrix::from_rows(&[&[0.3, -0.7, 1.1], &[0.0, 0.4, -0.2]]);
        let eps = BoxMullerGrng::new(31);
        let reference = bnn.predict_proba_mc_parallel(&x, 7, &eps, 1);
        for threads in [2usize, 3, 4, 16] {
            let got = bnn.predict_proba_mc_parallel(&x, 7, &eps, threads);
            assert_eq!(
                got.data(),
                reference.data(),
                "{threads} threads diverged from 1 thread"
            );
        }
    }

    #[test]
    fn parallel_mc_reasonably_agrees_with_serial_mc() {
        // Different ε assignment (forked substreams vs one continuous
        // stream), same statistics: class probabilities of a trained model
        // should land close.
        let (x, y) = toy_data(128, 33);
        let mut bnn = Bnn::new(BnnConfig::new(&[2, 8, 2]).with_lr(0.02), 35);
        for _ in 0..20 {
            bnn.train_epoch(&x, &y, 32);
        }
        let mut serial_eps = BoxMullerGrng::new(41);
        let serial = bnn.evaluate_mc(&x, &y, 16, &mut serial_eps);
        let parallel = bnn.evaluate_mc_parallel(&x, &y, 16, &BoxMullerGrng::new(41), 4);
        assert!(
            (serial - parallel).abs() < 0.1,
            "serial {serial} vs parallel {parallel}"
        );
    }
}
