//! The `VIBNN_THREADS` worker-count knob.

/// Returns the Monte Carlo worker count configured for this process.
///
/// Reads the `VIBNN_THREADS` environment variable; any positive integer
/// wins. Unset, empty, or unparsable values fall back to the machine's
/// available parallelism (or 1 if that cannot be determined).
///
/// Thread count never affects results: the parallel inference paths fork
/// one substream per Monte Carlo sample and reduce in sample order, so
/// `VIBNN_THREADS=1` and `VIBNN_THREADS=64` produce bit-identical outputs.
///
/// # Example
///
/// ```
/// let n = vibnn_bnn::vibnn_threads();
/// assert!(n >= 1);
/// ```
pub fn vibnn_threads() -> usize {
    match std::env::var("VIBNN_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_least_one_worker() {
        // Whatever the environment says, the answer is usable.
        assert!(vibnn_threads() >= 1);
    }
}
