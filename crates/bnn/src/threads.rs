//! The `VIBNN_THREADS` worker-count knob.

use std::sync::OnceLock;

static THREADS: OnceLock<usize> = OnceLock::new();

/// Returns the Monte Carlo / training worker count configured for this
/// process.
///
/// Reads the `VIBNN_THREADS` environment variable **once per process**
/// (the value is cached in a `OnceLock`, so the per-batch training hot
/// loop never touches the environment); any positive integer wins.
/// Unset, empty, or unparsable values fall back to the machine's
/// available parallelism (or 1 if that cannot be determined). Changing
/// the variable after the first call has no effect — APIs that take an
/// explicit `threads` argument bypass the knob entirely.
///
/// Thread count never affects results: the parallel inference and
/// training paths fork one substream per work unit and reduce in unit
/// order, so `VIBNN_THREADS=1` and `VIBNN_THREADS=64` produce
/// bit-identical outputs.
///
/// # Example
///
/// ```
/// let n = vibnn_bnn::vibnn_threads();
/// assert!(n >= 1);
/// ```
pub fn vibnn_threads() -> usize {
    *THREADS.get_or_init(|| {
        match std::env::var("VIBNN_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) if n > 0 => n,
            _ => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_least_one_worker() {
        // Whatever the environment says, the answer is usable.
        assert!(vibnn_threads() >= 1);
    }

    #[test]
    fn cached_value_is_stable() {
        // The OnceLock guarantees every call sees the same resolved count.
        assert_eq!(vibnn_threads(), vibnn_threads());
    }
}
