//! Weight priors for the variational objective.

/// An isotropic Gaussian prior `N(0, std²)` over weights.
///
/// The closed-form KL between the factorized Gaussian posterior and this
/// prior is what [`crate::VarDense::accumulate_kl`] computes; this type
/// centralizes the prior hyperparameter and exposes the per-weight formula
/// for testing.
///
/// # Example
///
/// ```
/// use vibnn_bnn::GaussianPrior;
/// let prior = GaussianPrior::new(1.0);
/// // KL(N(0,1) || N(0,1)) = 0.
/// assert!(prior.kl_single(0.0, 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianPrior {
    std: f64,
}

impl GaussianPrior {
    /// Creates the prior with the given standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std <= 0`.
    pub fn new(std: f64) -> Self {
        assert!(std > 0.0, "prior std must be positive");
        Self { std }
    }

    /// Prior standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// KL divergence `KL(N(mu, sigma²) || N(0, std²))` for one weight.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0`.
    pub fn kl_single(&self, mu: f64, sigma: f64) -> f64 {
        assert!(sigma > 0.0, "posterior sigma must be positive");
        (self.std / sigma).ln() + (sigma * sigma + mu * mu) / (2.0 * self.std * self.std) - 0.5
    }

    /// Log density of the prior at `w`.
    pub fn log_density(&self, w: f64) -> f64 {
        let z = w / self.std;
        -0.5 * z * z - self.std.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }
}

impl Default for GaussianPrior {
    fn default() -> Self {
        Self::new(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_nonnegative() {
        let prior = GaussianPrior::new(0.7);
        for &(mu, sigma) in &[(0.0, 0.7), (0.5, 0.3), (-2.0, 1.5), (0.1, 0.05)] {
            assert!(prior.kl_single(mu, sigma) >= -1e-12, "KL({mu},{sigma})");
        }
    }

    #[test]
    fn kl_zero_iff_match() {
        let prior = GaussianPrior::new(0.5);
        assert!(prior.kl_single(0.0, 0.5).abs() < 1e-12);
        assert!(prior.kl_single(0.1, 0.5) > 0.0);
        assert!(prior.kl_single(0.0, 0.6) > 0.0);
    }

    #[test]
    fn log_density_integrates_to_one() {
        let prior = GaussianPrior::new(1.3);
        // Trapezoid over [-10, 10].
        let n = 20_000;
        let h = 20.0 / n as f64;
        let integral: f64 = (0..=n)
            .map(|i| {
                let x = -10.0 + h * i as f64;
                let w = if i == 0 || i == n { 0.5 } else { 1.0 };
                w * prior.log_density(x).exp()
            })
            .sum::<f64>()
            * h;
        assert!((integral - 1.0).abs() < 1e-6, "integral {integral}");
    }

    #[test]
    #[should_panic(expected = "prior std must be positive")]
    fn zero_std_panics() {
        let _ = GaussianPrior::new(0.0);
    }
}

/// Blundell et al.'s scale-mixture prior:
/// `p(w) = π N(0, σ1²) + (1-π) N(0, σ2²)` with `σ1 > σ2`.
///
/// The KL against a Gaussian posterior has no closed form; this type
/// provides the log density and a deterministic-seed Monte Carlo KL
/// estimator, used for ELBO evaluation and the prior-choice studies. (The
/// training loop uses the closed-form Gaussian KL of [`GaussianPrior`] —
/// the common practical simplification.)
///
/// # Example
///
/// ```
/// use vibnn_bnn::ScaleMixturePrior;
/// let prior = ScaleMixturePrior::new(0.5, 1.0, 0.1);
/// assert!(prior.log_density(0.0) > prior.log_density(3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleMixturePrior {
    pi: f64,
    sigma1: f64,
    sigma2: f64,
}

impl ScaleMixturePrior {
    /// Creates the mixture prior.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < pi < 1` and both sigmas are positive with
    /// `sigma1 >= sigma2`.
    pub fn new(pi: f64, sigma1: f64, sigma2: f64) -> Self {
        assert!(pi > 0.0 && pi < 1.0, "pi must be in (0,1)");
        assert!(sigma1 > 0.0 && sigma2 > 0.0, "sigmas must be positive");
        assert!(sigma1 >= sigma2, "sigma1 is the wide component");
        Self { pi, sigma1, sigma2 }
    }

    /// Mixture weight of the wide component.
    pub fn pi(&self) -> f64 {
        self.pi
    }

    /// Log density of the mixture at `w`.
    pub fn log_density(&self, w: f64) -> f64 {
        let g = |s: f64| {
            let z = w / s;
            (-0.5 * z * z).exp() / (s * (2.0 * std::f64::consts::PI).sqrt())
        };
        (self.pi * g(self.sigma1) + (1.0 - self.pi) * g(self.sigma2))
            .max(1e-300)
            .ln()
    }

    /// Monte Carlo estimate of `KL(N(mu, sigma²) || mixture)` using
    /// `samples` draws from a deterministic stream.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0` or `samples == 0`.
    pub fn kl_monte_carlo(&self, mu: f64, sigma: f64, samples: usize, seed: u64) -> f64 {
        assert!(sigma > 0.0, "posterior sigma must be positive");
        assert!(samples > 0, "need at least one sample");
        // Inline Box-Muller over SplitMix64 keeps this crate's dependency
        // surface unchanged.
        let mut state = seed;
        let mut next_u64 = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut next_f64 = move || (next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let ln_sigma = sigma.ln();
        let norm_const = 0.5 * (2.0 * std::f64::consts::PI).ln();
        let mut acc = 0.0;
        let mut i = 0;
        while i < samples {
            let u1 = next_f64().max(f64::MIN_POSITIVE);
            let u2 = next_f64();
            let r = (-2.0 * u1.ln()).sqrt();
            let e1 = r * (2.0 * std::f64::consts::PI * u2).cos();
            let e2 = r * (2.0 * std::f64::consts::PI * u2).sin();
            for &e in &[e1, e2] {
                if i >= samples {
                    break;
                }
                let w = mu + sigma * e;
                let log_q = -0.5 * e * e - ln_sigma - norm_const;
                acc += log_q - self.log_density(w);
                i += 1;
            }
        }
        acc / samples as f64
    }
}

#[cfg(test)]
mod mixture_tests {
    use super::*;

    #[test]
    fn log_density_integrates_to_one() {
        let prior = ScaleMixturePrior::new(0.25, 1.0, 0.05);
        let n = 40_000;
        let h = 16.0 / n as f64;
        let integral: f64 = (0..=n)
            .map(|i| {
                let x = -8.0 + h * i as f64;
                let w = if i == 0 || i == n { 0.5 } else { 1.0 };
                w * prior.log_density(x).exp()
            })
            .sum::<f64>()
            * h;
        assert!((integral - 1.0).abs() < 1e-4, "integral {integral}");
    }

    #[test]
    fn mc_kl_matches_closed_form_for_degenerate_mixture() {
        // With sigma1 == sigma2 the mixture is a plain Gaussian; the MC
        // estimate must match the closed form.
        let prior = ScaleMixturePrior::new(0.5, 0.7, 0.7);
        let gauss = GaussianPrior::new(0.7);
        let (mu, sigma) = (0.4, 0.2);
        let mc = prior.kl_monte_carlo(mu, sigma, 60_000, 9);
        let exact = gauss.kl_single(mu, sigma);
        assert!((mc - exact).abs() < 0.02, "mc {mc} vs exact {exact}");
    }

    #[test]
    fn kl_nonnegative_and_zero_at_match() {
        let prior = ScaleMixturePrior::new(0.5, 1.0, 0.1);
        // Posterior approximately equal to one mixture component still has
        // positive KL to the mixture; a spread posterior more so.
        let kl = prior.kl_monte_carlo(0.0, 0.5, 40_000, 3);
        assert!(kl > -0.02, "KL should be (near) non-negative: {kl}");
    }

    #[test]
    fn heavier_tail_than_narrow_gaussian() {
        // The wide component gives the mixture heavier tails than the
        // narrow Gaussian alone — the property Blundell exploits.
        let prior = ScaleMixturePrior::new(0.25, 1.0, 0.05);
        let narrow = GaussianPrior::new(0.05);
        assert!(prior.log_density(2.0) > narrow.log_density(2.0));
    }

    #[test]
    #[should_panic(expected = "pi must be in (0,1)")]
    fn bad_pi_panics() {
        let _ = ScaleMixturePrior::new(1.0, 1.0, 0.5);
    }
}
