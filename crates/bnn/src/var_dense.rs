//! Variational fully-connected layer with Gaussian weight posteriors.

use vibnn_grng::GaussianSource;
use vibnn_nn::{GaussianInit, Matrix};

use crate::fastmath::{softplus_sigmoid, softplus_sigmoid_slice};
use crate::mc::{chunked_fold, TAIL_CHUNK};

/// Softplus `ln(1 + exp(x))`, the paper's σ parameterization (equation 2).
///
/// Delegates to the crate's fused polynomial kernel
/// (`fastmath::softplus_sigmoid`) — the same evaluation every training and
/// serving path uses — so all σ call sites agree bitwise.
pub fn softplus(x: f32) -> f32 {
    softplus_sigmoid(x).0
}

/// Derivative of softplus: the logistic sigmoid. Shares the fused kernel
/// with [`softplus`], so σ and σ′ always come from the same evaluation.
pub fn softplus_derivative(x: f32) -> f32 {
    softplus_sigmoid(x).1
}

/// Reusable ε-sampling buffers for repeated sampled-inference passes.
///
/// One Monte Carlo forward pass per layer needs a sampled
/// `in_dim × out_dim` weight matrix (drawn from an ε block of the same
/// shape) and a sampled bias row. Allocating those per sample dominated
/// the original hot loop; a single `EpsScratch`, threaded through
/// [`VarDense::forward_sample_inference_with`], grows to the largest layer
/// once and is reused for every subsequent sample.
#[derive(Debug, Clone)]
pub struct EpsScratch {
    /// Sampled bias row `bµ + softplus(bρ) ◦ ε`.
    bias: Vec<f32>,
    /// Sampled weight matrix `µ + softplus(ρ) ◦ ε`. Doubles as the ε
    /// landing buffer: the draws are written here and transformed in
    /// place.
    weights: Matrix,
}

impl EpsScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self {
            bias: Vec::new(),
            weights: Matrix::zeros(0, 0),
        }
    }
}

impl Default for EpsScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-training-step derived tensors of one [`VarDense`] layer, computed
/// **once** from ρ and shared read-only by every microbatch worker.
///
/// The seed training loop re-derived `softplus(ρ)` and its sigmoid in at
/// least six places per batch (forward sampling, backward sampling,
/// ρ-gradients, KL value, KL gradients) — ~1.2M transcendental evaluations
/// per 784-200-200-10 minibatch, the single largest cost on a CPU. One
/// fused pass per step computes σ, σ′ = sigmoid(ρ), and `Σ ln σ` (the
/// KL value's only transcendental), and everything downstream is
/// fused-multiply-add arithmetic.
#[derive(Debug, Clone, Default)]
pub struct LayerShared {
    /// Weight standard deviations `softplus(ρ)`.
    pub sigma: Matrix,
    /// `dσ/dρ = sigmoid(ρ)` for the weight tensor.
    pub sig_deriv: Matrix,
    /// Bias standard deviations.
    pub bias_sigma: Vec<f32>,
    /// `dσ/dρ` for the bias row.
    pub bias_sig_deriv: Vec<f32>,
    /// `Σ ln σ` over the weight tensor (f64, ascending element order).
    pub ln_sigma_sum: f64,
    /// `Σ ln σ` over the bias row.
    pub bias_ln_sigma_sum: f64,
}

/// One layer's reduced likelihood-gradient tensors for a training step,
/// as produced by the engine's ordered reduction and consumed by
/// [`VarDense::finish_step_grads`]. The ρ entries are "pre" gradients:
/// `Σ_s ∂NLL/∂w_s ∘ ε_s`, still missing the shared `σ′` factor.
#[derive(Debug, Clone, Default)]
pub struct LayerGrads {
    /// `Σ ∂NLL/∂w` (equals `∂NLL/∂µ`).
    pub mu: Matrix,
    /// `Σ_s (∂NLL/∂w)_s ∘ ε_s`.
    pub rho_pre: Matrix,
    /// `Σ ∂NLL/∂b`.
    pub bias_mu: Vec<f32>,
    /// `Σ_s (∂NLL/∂b)_s ∘ ε_s`.
    pub bias_rho_pre: Vec<f32>,
}

/// `Σ ln vᵢ` accumulated as `ln` of short products — one `ln` per 16
/// elements instead of per element — with an underflow guard that flushes
/// early whenever the running product leaves comfortable f64 range, so
/// pathologically tiny σ still contribute their (possibly `-inf`)
/// logarithm instead of vanishing.
///
/// The step tail calls this **per [`TAIL_CHUNK`]-element chunk** and folds
/// the chunk partials in ascending chunk order; `TAIL_CHUNK` is a multiple
/// of 16, so without underflow flushes the 16-element groups are identical
/// to a whole-tensor pass and only the f64 fold association differs.
fn ln_product_sum(values: &[f32]) -> f64 {
    let mut total = 0.0f64;
    let mut prod = 1.0f64;
    let mut pending = 0u32;
    for &v in values {
        prod *= f64::from(v);
        pending += 1;
        if pending == 16 || !(1e-270..=1e270).contains(&prod) {
            total += prod.ln();
            prod = 1.0;
            pending = 0;
        }
    }
    if pending > 0 {
        total += prod.ln();
    }
    total
}

/// One fixed chunk of the finish-step gradient pass: returns the chunk's
/// `Σ(σ² + µ²)` partial (f64, ascending element order) and applies the
/// KL/σ′ gradient updates in explicit [`vibnn_nn::LANES`]-wide strips
/// (plus a scalar tail). The updates are elementwise, so the strip width
/// cannot change any value — it only keeps the f32 loop free of the f64
/// accumulator so it autovectorizes.
fn finish_grads_chunk(
    g_mu: &mut [f32],
    g_rho: &mut [f32],
    mu: &[f32],
    sigma: &[f32],
    sd: &[f32],
    inv_ps2: f32,
    kl_weight: f32,
) -> f64 {
    use vibnn_nn::LANES;
    let mut quad = 0.0f64;
    for (&s, &m) in sigma.iter().zip(mu) {
        quad += f64::from(s * s + m * m);
    }
    let mut gm = g_mu.chunks_exact_mut(LANES);
    let mut gr = g_rho.chunks_exact_mut(LANES);
    let mut mc = mu.chunks_exact(LANES);
    let mut sc = sigma.chunks_exact(LANES);
    let mut dc = sd.chunks_exact(LANES);
    for ((((gm, gr), m), s), d) in (&mut gm).zip(&mut gr).zip(&mut mc).zip(&mut sc).zip(&mut dc) {
        for l in 0..LANES {
            let dsigma = s[l] * inv_ps2 - 1.0 / s[l];
            gm[l] += kl_weight * (m[l] * inv_ps2);
            gr[l] = gr[l] * d[l] + kl_weight * dsigma * d[l];
        }
    }
    for ((((gm, gr), &m), &s), &d) in gm
        .into_remainder()
        .iter_mut()
        .zip(gr.into_remainder().iter_mut())
        .zip(mc.remainder())
        .zip(sc.remainder())
        .zip(dc.remainder())
    {
        let dsigma = s * inv_ps2 - 1.0 / s;
        *gm += kl_weight * (m * inv_ps2);
        *gr = *gr * d + kl_weight * dsigma * d;
    }
    quad
}

/// A dense layer whose weights and biases are Gaussian posteriors
/// `N(µ, softplus(ρ)²)`, trained with the reparameterization trick
/// `w = µ + σ ◦ ε`.
#[derive(Debug, Clone)]
pub struct VarDense {
    mu: Matrix,
    rho: Matrix,
    bias_mu: Vec<f32>,
    bias_rho: Vec<f32>,
    // Gradients.
    grad_mu: Matrix,
    grad_rho: Matrix,
    grad_bias_mu: Vec<f32>,
    grad_bias_rho: Vec<f32>,
    // Forward caches.
    cached_input: Option<Matrix>,
    cached_eps: Option<Matrix>,
    cached_bias_eps: Option<Vec<f32>>,
}

impl VarDense {
    /// Creates the layer: µ ~ He-normal, ρ initialized so σ ≈ `sigma_init`.
    pub fn new(in_dim: usize, out_dim: usize, sigma_init: f32, seed: u64) -> Self {
        assert!(sigma_init > 0.0, "sigma_init must be positive");
        let mut init = GaussianInit::new(seed);
        let mu = init.he_matrix(in_dim, out_dim);
        // rho = softplus^{-1}(sigma) = ln(exp(sigma) - 1).
        let rho0 = (sigma_init.exp() - 1.0).ln();
        Self {
            mu,
            rho: GaussianInit::constant_matrix(in_dim, out_dim, rho0),
            bias_mu: vec![0.0; out_dim],
            bias_rho: vec![rho0; out_dim],
            grad_mu: Matrix::zeros(in_dim, out_dim),
            grad_rho: Matrix::zeros(in_dim, out_dim),
            grad_bias_mu: vec![0.0; out_dim],
            grad_bias_rho: vec![0.0; out_dim],
            cached_input: None,
            cached_eps: None,
            cached_bias_eps: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.mu.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.mu.cols()
    }

    /// Weight means.
    pub fn mu(&self) -> &Matrix {
        &self.mu
    }

    /// Weight standard deviations `softplus(ρ)` (materialized).
    pub fn sigma(&self) -> Matrix {
        let mut s = self.rho.clone();
        s.map_inplace(softplus);
        s
    }

    /// Raw weight posterior ρ parameters (`σ = softplus(ρ)`) — the tensor
    /// a training checkpoint must persist (σ alone loses the exact ρ).
    pub fn rho(&self) -> &Matrix {
        &self.rho
    }

    /// Bias means.
    pub fn bias_mu(&self) -> &[f32] {
        &self.bias_mu
    }

    /// Raw bias posterior ρ parameters.
    pub fn bias_rho(&self) -> &[f32] {
        &self.bias_rho
    }

    /// Overwrites the layer's variational parameters with checkpointed
    /// tensors, clearing gradient and forward caches.
    ///
    /// # Panics
    ///
    /// Panics if any tensor's shape differs from the layer's.
    pub fn restore_params(
        &mut self,
        mu: Matrix,
        rho: Matrix,
        bias_mu: Vec<f32>,
        bias_rho: Vec<f32>,
    ) {
        let (i, o) = (self.in_dim(), self.out_dim());
        assert_eq!((mu.rows(), mu.cols()), (i, o), "mu shape mismatch");
        assert_eq!((rho.rows(), rho.cols()), (i, o), "rho shape mismatch");
        assert_eq!(bias_mu.len(), o, "bias_mu length mismatch");
        assert_eq!(bias_rho.len(), o, "bias_rho length mismatch");
        self.mu = mu;
        self.rho = rho;
        self.bias_mu = bias_mu;
        self.bias_rho = bias_rho;
        self.grad_mu = Matrix::zeros(i, o);
        self.grad_rho = Matrix::zeros(i, o);
        self.grad_bias_mu = vec![0.0; o];
        self.grad_bias_rho = vec![0.0; o];
        self.cached_input = None;
        self.cached_eps = None;
        self.cached_bias_eps = None;
    }

    /// Bias standard deviations.
    pub fn bias_sigma(&self) -> Vec<f32> {
        self.bias_rho.iter().map(|&r| softplus(r)).collect()
    }

    /// Draws one weight sample `w = µ + σ ◦ ε` and runs `y = x·w + b`,
    /// caching everything needed for `backward`. The ε tensors are drawn
    /// through the block API ([`GaussianSource::fill_f32`]): one block for
    /// the weights, one for the biases — the same stream order the scalar
    /// path consumed.
    pub fn forward_sample(&mut self, x: &Matrix, eps_src: &mut impl GaussianSource) -> Matrix {
        let (i, o) = (self.in_dim(), self.out_dim());
        let mut eps = Matrix::zeros(i, o);
        eps_src.fill_f32(eps.data_mut());
        let mut bias_eps = vec![0.0f32; o];
        eps_src.fill_f32(&mut bias_eps);
        let w = self.sampled_weights(&eps);
        let b: Vec<f32> = self
            .bias_mu
            .iter()
            .zip(&self.bias_rho)
            .zip(&bias_eps)
            .map(|((&m, &r), &e)| m + softplus(r) * e)
            .collect();
        let mut y = x.matmul(&w);
        y.add_row_broadcast(&b);
        self.cached_input = Some(x.clone());
        self.cached_eps = Some(eps);
        self.cached_bias_eps = Some(bias_eps);
        y
    }

    /// Inference-only sampled forward (no caching).
    ///
    /// Allocates fresh buffers each call; the Monte Carlo hot loop should
    /// prefer [`Self::forward_sample_inference_with`] and reuse one
    /// [`EpsScratch`] across samples.
    pub fn forward_sample_inference(
        &self,
        x: &Matrix,
        eps_src: &mut impl GaussianSource,
    ) -> Matrix {
        self.forward_sample_inference_with(x, eps_src, &mut EpsScratch::new())
    }

    /// Inference-only sampled forward on reusable buffers: ε is drawn in
    /// two blocks (weights, then biases — the scalar path's stream order),
    /// and the sampled weight/bias tensors live in `scratch`, so a warm
    /// scratch makes the per-sample cost allocation-free outside the
    /// matmul.
    pub fn forward_sample_inference_with(
        &self,
        x: &Matrix,
        eps_src: &mut impl GaussianSource,
        scratch: &mut EpsScratch,
    ) -> Matrix {
        let (i, o) = (self.in_dim(), self.out_dim());
        // ε lands directly in the weight scratch and is transformed in
        // place to w = µ + softplus(ρ) ◦ ε — one buffer, one pass
        // (capacity-preserving resize: no allocation once the scratch has
        // visited the largest layer).
        scratch.weights.resize(i, o);
        eps_src.fill_f32(scratch.weights.data_mut());
        for ((w, &m), &r) in scratch
            .weights
            .data_mut()
            .iter_mut()
            .zip(self.mu.data())
            .zip(self.rho.data())
        {
            *w = m + softplus(r) * *w;
        }
        scratch.bias.resize(o, 0.0);
        eps_src.fill_f32(&mut scratch.bias);
        for ((b, &m), &r) in scratch
            .bias
            .iter_mut()
            .zip(&self.bias_mu)
            .zip(&self.bias_rho)
        {
            *b = m + softplus(r) * *b;
        }
        let mut y = x.matmul(&scratch.weights);
        y.add_row_broadcast(&scratch.bias);
        y
    }

    /// Mean-weights forward (the deterministic `w = µ` network).
    pub fn forward_mean(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.mu);
        y.add_row_broadcast(&self.bias_mu);
        y
    }

    fn sampled_weights(&self, eps: &Matrix) -> Matrix {
        let mut w = self.mu.clone();
        for ((w, &r), &e) in w
            .data_mut()
            .iter_mut()
            .zip(self.rho.data())
            .zip(eps.data())
        {
            *w += softplus(r) * e;
        }
        w
    }

    /// Backward through the sampled forward: accumulates ∂L/∂µ, ∂L/∂ρ
    /// (likelihood part) and returns ∂L/∂x.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward_sample`.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self
            .cached_input
            .as_ref()
            .expect("backward called before forward_sample");
        let eps = self.cached_eps.as_ref().expect("missing eps cache");
        let bias_eps = self.cached_bias_eps.as_ref().expect("missing bias eps");
        // dL/dw = xᵀ · dy ; dµ = dw ; dρ = dw ∘ ε ∘ sigmoid(ρ).
        let grad_w = x.t_matmul(grad_out);
        self.grad_mu = grad_w.clone();
        let mut grad_rho = grad_w;
        for ((g, &e), &r) in grad_rho
            .data_mut()
            .iter_mut()
            .zip(eps.data())
            .zip(self.rho.data())
        {
            *g *= e * softplus_derivative(r);
        }
        self.grad_rho = grad_rho;
        let grad_b = grad_out.col_sums();
        self.grad_bias_mu = grad_b.clone();
        self.grad_bias_rho = grad_b
            .iter()
            .zip(bias_eps)
            .zip(&self.bias_rho)
            .map(|((&g, &e), &r)| g * e * softplus_derivative(r))
            .collect();
        // dL/dx uses the *sampled* weights.
        let w = self.sampled_weights(eps);
        grad_out.matmul_t(&w)
    }

    /// Adds the KL-divergence gradient w.r.t. a `N(0, prior_std²)` prior,
    /// scaled by `weight` (the minibatch KL share). Returns this layer's
    /// KL contribution (unscaled).
    pub fn accumulate_kl(&mut self, prior_std: f32, weight: f32) -> f64 {
        let ps2 = f64::from(prior_std) * f64::from(prior_std);
        let mut kl = 0.0f64;
        // Weights.
        for i in 0..self.mu.data().len() {
            let mu = f64::from(self.mu.data()[i]);
            let rho = self.rho.data()[i];
            let sigma = f64::from(softplus(rho));
            kl += (f64::from(prior_std) / sigma).ln() + (sigma * sigma + mu * mu) / (2.0 * ps2)
                - 0.5;
            // dKL/dµ = µ/σp², dKL/dσ = σ/σp² - 1/σ.
            let dmu = (mu / ps2) as f32;
            let dsigma = (sigma / ps2 - 1.0 / sigma) as f32;
            self.grad_mu.data_mut()[i] += weight * dmu;
            self.grad_rho.data_mut()[i] += weight * dsigma * softplus_derivative(rho);
        }
        // Biases.
        for j in 0..self.bias_mu.len() {
            let mu = f64::from(self.bias_mu[j]);
            let rho = self.bias_rho[j];
            let sigma = f64::from(softplus(rho));
            kl += (f64::from(prior_std) / sigma).ln() + (sigma * sigma + mu * mu) / (2.0 * ps2)
                - 0.5;
            let dmu = (mu / ps2) as f32;
            let dsigma = (sigma / ps2 - 1.0 / sigma) as f32;
            self.grad_bias_mu[j] += weight * dmu;
            self.grad_bias_rho[j] += weight * dsigma * softplus_derivative(rho);
        }
        kl
    }

    /// Computes this step's [`LayerShared`] tensors (one fused pass over
    /// ρ; see the type docs for why this is hoisted out of the per-shard
    /// hot path). Allocating convenience wrapper over
    /// [`Self::step_shared_into`].
    pub fn step_shared(&self) -> LayerShared {
        let mut out = LayerShared::default();
        self.step_shared_into(&mut out, 1);
        out
    }

    /// Fills `out` with this step's σ, σ′ = sigmoid(ρ), and `Σ ln σ`
    /// tensors on reusable buffers (capacity-preserving resizes — no
    /// allocation once warm).
    ///
    /// The weight tensor is processed in fixed `TAIL_CHUNK`-element
    /// chunks spread across `threads` workers: σ/σ′ are elementwise
    /// (chunking cannot change them) and each chunk's `Σ ln σ` partial is
    /// folded in ascending chunk order, so the result is bit-identical at
    /// every thread count. The bias row is a single short pass.
    pub fn step_shared_into(&self, out: &mut LayerShared, threads: usize) {
        let (i, o) = (self.in_dim(), self.out_dim());
        out.sigma.resize(i, o);
        out.sig_deriv.resize(i, o);
        let rho = self.rho.data();
        let items = rho
            .chunks(TAIL_CHUNK)
            .zip(out.sigma.data_mut().chunks_mut(TAIL_CHUNK))
            .zip(out.sig_deriv.data_mut().chunks_mut(TAIL_CHUNK));
        out.ln_sigma_sum = chunked_fold(threads, items, |((r, s), d)| {
            softplus_sigmoid_slice(r, s, d);
            ln_product_sum(s)
        });
        out.bias_sigma.resize(o, 0.0);
        out.bias_sig_deriv.resize(o, 0.0);
        softplus_sigmoid_slice(&self.bias_rho, &mut out.bias_sigma, &mut out.bias_sig_deriv);
        out.bias_ln_sigma_sum = ln_product_sum(&out.bias_sigma);
    }

    /// Draws one reparameterized sample of this layer against precomputed
    /// σ tensors: ε blocks come from `src` via [`GaussianSource::fill_f32`]
    /// (weights first, then biases — the canonical stream order), and the
    /// returned tuple is `(w, b, ε, bias ε)` with `w = µ + σ ◦ ε`.
    pub fn draw_sample(
        &self,
        shared: &LayerShared,
        src: &mut impl GaussianSource,
    ) -> (Matrix, Vec<f32>, Matrix, Vec<f32>) {
        let (mut w, mut b, mut eps, mut bias_eps) =
            (Matrix::default(), Vec::new(), Matrix::default(), Vec::new());
        self.draw_sample_into(shared, src, &mut w, &mut b, &mut eps, &mut bias_eps);
        (w, b, eps, bias_eps)
    }

    /// [`Self::draw_sample`] onto reusable buffers (capacity-preserving
    /// resizes): warm buffers make the per-sample draw allocation-free.
    /// Same stream order — the weight ε block, then the bias ε block.
    pub fn draw_sample_into(
        &self,
        shared: &LayerShared,
        src: &mut impl GaussianSource,
        w: &mut Matrix,
        b: &mut Vec<f32>,
        eps: &mut Matrix,
        bias_eps: &mut Vec<f32>,
    ) {
        let (i, o) = (self.in_dim(), self.out_dim());
        eps.resize(i, o);
        src.fill_f32(eps.data_mut());
        bias_eps.resize(o, 0.0);
        src.fill_f32(bias_eps);
        w.resize(i, o);
        w.data_mut().copy_from_slice(self.mu.data());
        w.fma_assign(&shared.sigma, eps);
        b.resize(o, 0.0);
        for (((bo, &m), &s), &e) in b
            .iter_mut()
            .zip(&self.bias_mu)
            .zip(&shared.bias_sigma)
            .zip(bias_eps.iter())
        {
            *bo = m + s * e;
        }
    }

    /// Finalizes one training step's gradients from the reduced
    /// likelihood terms in `grads` and installs them in the layer: the
    /// `rho_pre` tensors gain their `σ′` factor, and the KL gradients
    /// (`∂KL/∂µ = µ/σp²`, `∂KL/∂ρ = (σ/σp² − 1/σ)·σ′`), scaled by
    /// `kl_weight`, are added on top.
    ///
    /// `grads` is taken by `&mut` and its tensors are **swapped** into the
    /// layer's gradient slots (the layer's previous gradient buffers swap
    /// back out), so a pooled `LayerGrads` keeps its allocations across
    /// steps. The weight pass runs in fixed `TAIL_CHUNK`-element chunks
    /// over `threads` workers: the gradient updates are elementwise and
    /// the `Σ(σ² + µ²)` chunk partials fold in ascending chunk order, so
    /// the result is bit-identical at every thread count.
    ///
    /// Returns this layer's (unscaled) KL divergence to the
    /// `N(0, prior_std²)` prior, computed from the precomputed `Σ ln σ`
    /// plus the fused `Σ(σ² + µ²)` pass.
    pub fn finish_step_grads(
        &mut self,
        shared: &LayerShared,
        prior_std: f32,
        kl_weight: f32,
        grads: &mut LayerGrads,
        threads: usize,
    ) -> f64 {
        std::mem::swap(&mut self.grad_mu, &mut grads.mu);
        std::mem::swap(&mut self.grad_rho, &mut grads.rho_pre);
        std::mem::swap(&mut self.grad_bias_mu, &mut grads.bias_mu);
        std::mem::swap(&mut self.grad_bias_rho, &mut grads.bias_rho_pre);
        let ps2 = f64::from(prior_std) * f64::from(prior_std);
        let inv_ps2 = (1.0 / ps2) as f32;
        let n_w = self.mu.data().len();
        let n_b = self.bias_mu.len();
        // f32 arithmetic throughout the gradient pass (it vectorizes; the
        // seed's per-element f64 divisions were a measurable cost), with
        // f64 only for the Σ(σ² + µ²) loss accumulator.
        let Self {
            mu,
            grad_mu,
            grad_rho,
            ..
        } = self;
        let items = grad_mu
            .data_mut()
            .chunks_mut(TAIL_CHUNK)
            .zip(grad_rho.data_mut().chunks_mut(TAIL_CHUNK))
            .zip(mu.data().chunks(TAIL_CHUNK))
            .zip(shared.sigma.data().chunks(TAIL_CHUNK))
            .zip(shared.sig_deriv.data().chunks(TAIL_CHUNK));
        let quad = chunked_fold(threads, items, |((((g_mu, g_rho), mu), sigma), sd)| {
            finish_grads_chunk(g_mu, g_rho, mu, sigma, sd, inv_ps2, kl_weight)
        });
        let bias_quad = finish_grads_chunk(
            &mut self.grad_bias_mu,
            &mut self.grad_bias_rho,
            &self.bias_mu,
            &shared.bias_sigma,
            &shared.bias_sig_deriv,
            inv_ps2,
            kl_weight,
        );
        let ln_prior = f64::from(prior_std).ln();
        (n_w + n_b) as f64 * ln_prior - shared.ln_sigma_sum - shared.bias_ln_sigma_sum
            + (quad + bias_quad) / (2.0 * ps2)
            - 0.5 * (n_w + n_b) as f64
    }

    /// Parameter/gradient access for the optimizer, flattened as four
    /// tensors: `(µ, ∂µ), (ρ, ∂ρ), (bµ, ∂bµ), (bρ, ∂bρ)`.
    #[allow(clippy::type_complexity)]
    pub fn params_mut(
        &mut self,
    ) -> (
        (&mut Matrix, &Matrix),
        (&mut Matrix, &Matrix),
        (&mut Vec<f32>, &Vec<f32>),
        (&mut Vec<f32>, &Vec<f32>),
    ) {
        (
            (&mut self.mu, &self.grad_mu),
            (&mut self.rho, &self.grad_rho),
            (&mut self.bias_mu, &self.grad_bias_mu),
            (&mut self.bias_rho, &self.grad_bias_rho),
        )
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_mu.scale(0.0);
        self.grad_rho.scale(0.0);
        for g in &mut self.grad_bias_mu {
            *g = 0.0;
        }
        for g in &mut self.grad_bias_rho {
            *g = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibnn_grng::BoxMullerGrng;

    #[test]
    fn softplus_properties() {
        assert!((softplus(0.0) - 2.0f32.ln()).abs() < 1e-6);
        assert!(softplus(30.0) - 30.0 < 1e-5);
        assert!(softplus(-30.0) > 0.0);
        assert!(softplus(-30.0) < 1e-10);
        // Derivative is sigmoid.
        assert!((softplus_derivative(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn sigma_matches_rho_parameterization() {
        let layer = VarDense::new(3, 2, 0.1, 1);
        for &s in layer.sigma().data() {
            assert!((s - 0.1).abs() < 1e-5);
        }
    }

    #[test]
    fn forward_mean_is_deterministic() {
        let layer = VarDense::new(4, 3, 0.05, 2);
        let x = Matrix::from_rows(&[&[1.0, -1.0, 0.5, 0.2]]);
        assert_eq!(layer.forward_mean(&x).data(), layer.forward_mean(&x).data());
    }

    #[test]
    fn sampled_forward_varies_but_centers_on_mean() {
        let mut layer = VarDense::new(4, 2, 0.2, 3);
        let x = Matrix::from_rows(&[&[1.0, 1.0, 1.0, 1.0]]);
        let mean_out = layer.forward_mean(&x);
        let mut eps = BoxMullerGrng::new(5);
        let n = 2000;
        let mut acc = [0.0f64; 2];
        let mut sq = [0.0f64; 2];
        for _ in 0..n {
            let y = layer.forward_sample(&x, &mut eps);
            for c in 0..2 {
                acc[c] += f64::from(y[(0, c)]);
                sq[c] += f64::from(y[(0, c)]).powi(2);
            }
        }
        for c in 0..2 {
            let m = acc[c] / f64::from(n);
            let var = sq[c] / f64::from(n) - m * m;
            assert!(
                (m - f64::from(mean_out[(0, c)])).abs() < 0.05,
                "output mean {m} vs {}",
                mean_out[(0, c)]
            );
            // Output variance = Σ_i x_i² σ_i² + σ_b² = 4·0.04 + 0.04 = 0.2.
            assert!((var - 0.2).abs() < 0.05, "output var {var}");
        }
    }

    /// Finite-difference validation of the reparameterized gradients.
    #[test]
    fn gradients_match_finite_differences() {
        let mut layer = VarDense::new(3, 2, 0.3, 7);
        let x = Matrix::from_rows(&[&[0.4, -0.6, 1.2]]);
        // Fix epsilon by using identical seeded sources.
        let loss_with = |l: &VarDense, seed: u64| -> f32 {
            let mut src = BoxMullerGrng::new(seed);
            let mut l2 = l.clone();
            let y = l2.forward_sample(&x, &mut src);
            y.data().iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        let mut src = BoxMullerGrng::new(99);
        let y = layer.forward_sample(&x, &mut src);
        let _ = layer.backward(&y.clone());
        let eps = 1e-3;
        for (r, c) in [(0, 0), (2, 1)] {
            // dmu check.
            let mut plus = layer.clone();
            plus.mu[(r, c)] += eps;
            let mut minus = layer.clone();
            minus.mu[(r, c)] -= eps;
            let num = (loss_with(&plus, 99) - loss_with(&minus, 99)) / (2.0 * eps);
            let ana = layer.grad_mu[(r, c)];
            assert!(
                (num - ana).abs() < 3e-2 * ana.abs().max(1.0),
                "dmu[{r},{c}] numeric {num} vs {ana}"
            );
            // drho check.
            let mut plus = layer.clone();
            plus.rho[(r, c)] += eps;
            let mut minus = layer.clone();
            minus.rho[(r, c)] -= eps;
            let num = (loss_with(&plus, 99) - loss_with(&minus, 99)) / (2.0 * eps);
            let ana = layer.grad_rho[(r, c)];
            assert!(
                (num - ana).abs() < 3e-2 * ana.abs().max(1.0),
                "drho[{r},{c}] numeric {num} vs {ana}"
            );
        }
    }

    #[test]
    fn step_shared_matches_scalar_softplus_functions() {
        let mut layer = VarDense::new(5, 4, 0.3, 21);
        // Spread ρ across the branch boundaries.
        for (i, r) in layer.rho.data_mut().iter_mut().enumerate() {
            *r = [-25.0, -3.0, 0.0, 2.5, 25.0][i % 5];
        }
        let sh = layer.step_shared();
        for (i, &r) in layer.rho.data().iter().enumerate() {
            let s = sh.sigma.data()[i];
            let d = sh.sig_deriv.data()[i];
            assert!((s - softplus(r)).abs() <= 1e-6 * softplus(r).abs().max(1e-30));
            assert!((d - softplus_derivative(r)).abs() <= 1e-6);
        }
        let expect: f64 = layer
            .rho
            .data()
            .iter()
            .map(|&r| f64::from(softplus(r).ln()))
            .sum();
        assert!((sh.ln_sigma_sum - expect).abs() < 1e-3, "{}", sh.ln_sigma_sum);
    }

    #[test]
    fn draw_sample_matches_forward_sample_weights() {
        let mut layer = VarDense::new(4, 3, 0.2, 31);
        let shared = layer.step_shared();
        let x = Matrix::from_rows(&[&[0.5, -1.0, 0.25, 2.0]]);
        let mut src_a = BoxMullerGrng::new(77);
        let mut src_b = BoxMullerGrng::new(77);
        let y_cached = layer.forward_sample(&x, &mut src_a);
        let (w, b, _eps, _beps) = layer.draw_sample(&shared, &mut src_b);
        let mut y = x.matmul(&w);
        y.add_row_broadcast(&b);
        for (a, b) in y_cached.data().iter().zip(y.data()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn finish_step_grads_agrees_with_accumulate_kl() {
        let mut a = VarDense::new(3, 4, 0.4, 41);
        let mut b = a.clone();
        a.zero_grad();
        let kl_a = a.accumulate_kl(0.7, 0.3);
        let shared = b.step_shared();
        let (i, o) = (b.in_dim(), b.out_dim());
        let mut zero_grads = LayerGrads {
            mu: Matrix::zeros(i, o),
            rho_pre: Matrix::zeros(i, o),
            bias_mu: vec![0.0; o],
            bias_rho_pre: vec![0.0; o],
        };
        let kl_b = b.finish_step_grads(&shared, 0.7, 0.3, &mut zero_grads, 1);
        assert!((kl_a - kl_b).abs() < 1e-6 * kl_a.abs().max(1.0), "{kl_a} vs {kl_b}");
        for (x, y) in a.grad_mu.data().iter().zip(b.grad_mu.data()) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
        for (x, y) in a.grad_rho.data().iter().zip(b.grad_rho.data()) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
        for (x, y) in a.grad_bias_rho.iter().zip(&b.grad_bias_rho) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn kl_is_zero_when_posterior_equals_prior() {
        let mut layer = VarDense::new(2, 2, 1.0, 9);
        // Force µ = 0 and σ = 1 = prior.
        layer.mu.scale(0.0);
        let kl = layer.accumulate_kl(1.0, 0.0);
        assert!(kl.abs() < 1e-6, "KL {kl}");
    }

    #[test]
    fn kl_grows_with_posterior_mean() {
        let mut a = VarDense::new(2, 2, 0.5, 11);
        a.mu.scale(0.0);
        let kl0 = a.accumulate_kl(1.0, 0.0);
        a.mu.map_inplace(|_| 2.0);
        let kl2 = a.accumulate_kl(1.0, 0.0);
        assert!(kl2 > kl0 + 1.0, "KL should grow: {kl0} -> {kl2}");
    }

    #[test]
    fn kl_gradient_matches_finite_difference() {
        let mut layer = VarDense::new(2, 2, 0.4, 13);
        layer.zero_grad();
        let _ = layer.accumulate_kl(0.8, 1.0);
        let ana_mu = layer.grad_mu[(0, 0)];
        let ana_rho = layer.grad_rho[(0, 0)];
        let eps = 1e-3;
        let kl_of = |l: &VarDense| {
            let mut c = l.clone();
            c.zero_grad();
            c.accumulate_kl(0.8, 0.0)
        };
        let mut plus = layer.clone();
        plus.mu[(0, 0)] += eps;
        let mut minus = layer.clone();
        minus.mu[(0, 0)] -= eps;
        let num_mu = ((kl_of(&plus) - kl_of(&minus)) / (2.0 * f64::from(eps))) as f32;
        assert!(
            (num_mu - ana_mu).abs() < 2e-2 * ana_mu.abs().max(1.0),
            "dKL/dmu numeric {num_mu} vs {ana_mu}"
        );
        let mut plus = layer.clone();
        plus.rho[(0, 0)] += eps;
        let mut minus = layer.clone();
        minus.rho[(0, 0)] -= eps;
        let num_rho = ((kl_of(&plus) - kl_of(&minus)) / (2.0 * f64::from(eps))) as f32;
        assert!(
            (num_rho - ana_rho).abs() < 2e-2 * ana_rho.abs().max(1.0),
            "dKL/drho numeric {num_rho} vs {ana_rho}"
        );
    }
}
