//! Versioned binary checkpoints for trained parameters and full training
//! state.
//!
//! All checkpoint files share one self-describing envelope, little-endian
//! throughout:
//!
//! ```text
//! magic   4 bytes  b"VIBN"
//! version u16      format version (currently 1)
//! kind    u8       1 = BnnParams, 2 = Bnn training state, 3 = deployment
//! payload …        kind-specific (shapes first, then f32/f64 LE tensors)
//! ```
//!
//! - **Kind 1** ([`BnnParams::save`]) is the frozen `(µ, σ)` snapshot —
//!   what gets migrated to the accelerator's weight-parameter memory.
//! - **Kind 2** ([`Bnn::save`]) is the complete training state: config,
//!   raw `(µ, ρ)` tensors, the Adam optimizer's step counter and moment
//!   vectors, the ε-substream step counter, the shuffle position, and the
//!   lifetime epoch count (which LR schedules index on) — everything
//!   needed for [`Bnn::load`] to resume training with losses
//!   **bit-identical** to a never-interrupted run.
//! - **Kind 3** is written by the root crate's `Vibnn::save` on top of the
//!   [`WireWriter`] / [`write_params_payload`] primitives exported here.

use std::io;
use std::path::Path;

use vibnn_nn::Matrix;

use crate::{Bnn, BnnConfig, BnnParams};

/// File magic for every VIBNN checkpoint.
pub const MAGIC: [u8; 4] = *b"VIBN";
/// Current checkpoint format version.
pub const FORMAT_VERSION: u16 = 1;
/// Envelope kind: frozen `(µ, σ)` parameters ([`BnnParams`]).
pub const KIND_PARAMS: u8 = 1;
/// Envelope kind: full training state ([`Bnn`]).
pub const KIND_TRAINER: u8 = 2;
/// Envelope kind: deployed accelerator (written by the root crate).
pub const KIND_DEPLOY: u8 = 3;

/// Why a checkpoint could not be written or read back.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The file does not start with the `VIBN` magic.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion(u16),
    /// The file holds a different kind of checkpoint than requested.
    WrongKind {
        /// The kind the caller asked to load.
        expected: u8,
        /// The kind found in the file.
        found: u8,
    },
    /// The file ended before the payload its header promises.
    Truncated,
    /// The payload is structurally invalid (impossible shapes, trailing
    /// bytes, out-of-range values).
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a VIBNN checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (max {FORMAT_VERSION})")
            }
            CheckpointError::WrongKind { expected, found } => {
                write!(f, "wrong checkpoint kind: expected {expected}, found {found}")
            }
            CheckpointError::Truncated => write!(f, "checkpoint file is truncated"),
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Crash-safe file replacement: writes `bytes` to a temporary file in the
/// same directory as `path`, then `rename`s it into place.
///
/// The rename is the commit point, so a crash (or I/O error) mid-save can
/// never corrupt an existing checkpoint at `path` — the worst outcome is a
/// stale `.<name>.tmp.<pid>.<n>` file left next to it, which is harmless
/// to delete. Temp names carry the process id *and* a process-wide
/// counter, so concurrent saves to the same path never share a temp file.
/// Every checkpoint writer in the workspace ([`BnnParams::save`],
/// [`Bnn::save`], and the root crate's `Vibnn::save`) goes through here.
///
/// # Errors
///
/// [`CheckpointError::Io`] if the temporary file cannot be written or
/// renamed; the temporary file is removed on failure, `path` is untouched.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), CheckpointError> {
    static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let path = path.as_ref();
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            CheckpointError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("checkpoint path {} has no file name", path.display()),
            ))
        })?
        .to_os_string();
    // Same directory as the target, so the rename never crosses a
    // filesystem boundary (cross-device renames are not atomic).
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(&file_name);
    tmp_name.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let tmp = path.with_file_name(tmp_name);
    let write_then_rename = (|| {
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path)
    })();
    if let Err(e) = write_then_rename {
        std::fs::remove_file(&tmp).ok();
        return Err(CheckpointError::Io(e));
    }
    Ok(())
}

/// Default cap on a framed message's length, in bytes (1 MiB). Generous
/// for every message the workspace frames today; streams carrying a
/// larger length prefix are treated as corrupt rather than trusted.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Writes one length-prefixed frame: a `u32` little-endian byte count
/// followed by the envelope bytes, then flushes.
///
/// This is the unit of transfer for the root crate's ingestion protocol;
/// the framed payload is a standard [`WireWriter`] envelope
/// (magic/version/kind), so a stream of frames is self-describing the
/// same way checkpoint files are.
///
/// # Errors
///
/// [`CheckpointError::Corrupt`] if `envelope` is empty or longer than
/// `u32::MAX` bytes (neither is ever a valid frame);
/// [`CheckpointError::Io`] if the underlying write or flush fails.
pub fn write_frame<W: io::Write>(w: &mut W, envelope: &[u8]) -> Result<(), CheckpointError> {
    let len = u32::try_from(envelope.len())
        .map_err(|_| CheckpointError::Corrupt(format!("frame of {} bytes", envelope.len())))?;
    if len == 0 {
        return Err(CheckpointError::Corrupt("zero-length frame".into()));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(envelope)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame written by [`write_frame`].
///
/// Returns `Ok(None)` on a clean end of stream (EOF exactly at a frame
/// boundary, before any prefix byte) — the peer closed between messages.
/// The length prefix is validated **before** any payload allocation:
/// zero and anything above `max_len` are rejected as
/// [`CheckpointError::Corrupt`], so a hostile prefix can never drive an
/// allocation.
///
/// # Errors
///
/// - [`CheckpointError::Truncated`] — the stream ended mid-prefix or
///   mid-payload.
/// - [`CheckpointError::Corrupt`] — zero or oversized length prefix.
/// - [`CheckpointError::Io`] — any other read failure (including read
///   timeouts on sockets).
pub fn read_frame<R: io::Read>(r: &mut R, max_len: u32) -> Result<Option<Vec<u8>>, CheckpointError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(CheckpointError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(CheckpointError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len == 0 {
        return Err(CheckpointError::Corrupt("zero-length frame".into()));
    }
    if len > max_len {
        return Err(CheckpointError::Corrupt(format!(
            "frame length {len} exceeds the {max_len}-byte cap"
        )));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            CheckpointError::Truncated
        } else {
            CheckpointError::Io(e)
        }
    })?;
    Ok(Some(buf))
}

/// Little-endian byte-stream writer producing one checkpoint envelope.
///
/// Constructed with the envelope kind (which writes the magic, version,
/// and kind header); the caller then appends the payload and calls
/// [`WireWriter::into_bytes`].
#[derive(Debug)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Starts an envelope of the given kind.
    pub fn new(kind: u8) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.push(kind);
        Self { buf }
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32`.
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64`.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u32` (checkpoint dimensions are < 2³²).
    ///
    /// # Panics
    ///
    /// Panics if `v` does not fit in a `u32`.
    pub fn dim(&mut self, v: usize) {
        self.u32(u32::try_from(v).expect("checkpoint dimension exceeds u32"));
    }

    /// Appends a raw `f32` slice (no length prefix — lengths are implied
    /// by previously written shape information).
    pub fn f32s(&mut self, vals: &[f32]) {
        self.buf.reserve(vals.len() * 4);
        for &v in vals {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends raw bytes verbatim (no length prefix — lengths are implied
    /// or written separately by the caller).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Finishes the envelope.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian byte-stream reader over one checkpoint envelope.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Opens an envelope, verifying magic, version, and kind.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::BadMagic`], [`CheckpointError::UnsupportedVersion`],
    /// [`CheckpointError::WrongKind`], or [`CheckpointError::Truncated`].
    pub fn open(bytes: &'a [u8], expected_kind: u8) -> Result<Self, CheckpointError> {
        let (kind, r) = Self::open_any(bytes)?;
        if kind != expected_kind {
            return Err(CheckpointError::WrongKind {
                expected: expected_kind,
                found: kind,
            });
        }
        Ok(r)
    }

    /// Opens an envelope of any kind, verifying magic and version, and
    /// returns the kind alongside the positioned reader — the dispatch
    /// entry point for protocols multiplexing several kinds on one
    /// stream (e.g. the root crate's ingestion protocol).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::BadMagic`], [`CheckpointError::UnsupportedVersion`],
    /// or [`CheckpointError::Truncated`].
    pub fn open_any(bytes: &'a [u8]) -> Result<(u8, Self), CheckpointError> {
        let mut r = Self { buf: bytes, pos: 0 };
        let magic = r.bytes(4)?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u16()?;
        if version == 0 || version > FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let kind = r.u8()?;
        Ok((kind, r))
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
        if end > self.buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().expect("2 bytes")))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `i32`.
    pub fn i32(&mut self) -> Result<i32, CheckpointError> {
        Ok(i32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }

    /// Reads an `f32`.
    pub fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }

    /// Reads an `f64`.
    pub fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a dimension written by [`WireWriter::dim`].
    pub fn dim(&mut self) -> Result<usize, CheckpointError> {
        Ok(self.u32()? as usize)
    }

    /// Reads `n` raw bytes (written by [`WireWriter::raw`]).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] if fewer than `n` bytes remain.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        self.bytes(n)
    }

    /// Reads `n` consecutive `f32` values.
    pub fn f32_vec(&mut self, n: usize) -> Result<Vec<f32>, CheckpointError> {
        let raw = self.bytes(n.checked_mul(4).ok_or(CheckpointError::Truncated)?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] if trailing bytes remain.
    pub fn finish(self) -> Result<(), CheckpointError> {
        if self.pos != self.buf.len() {
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Reads the layer-size header common to every payload: `L` then `L + 1`
/// sizes, all required positive.
fn read_sizes(r: &mut WireReader<'_>) -> Result<Vec<usize>, CheckpointError> {
    let layers = r.dim()?;
    if layers == 0 {
        return Err(CheckpointError::Corrupt("zero layers".into()));
    }
    if layers > 1 << 16 {
        return Err(CheckpointError::Corrupt(format!(
            "implausible layer count {layers}"
        )));
    }
    let mut sizes = Vec::with_capacity(layers + 1);
    for _ in 0..=layers {
        let s = r.dim()?;
        if s == 0 {
            return Err(CheckpointError::Corrupt("zero layer size".into()));
        }
        sizes.push(s);
    }
    Ok(sizes)
}

fn write_sizes(w: &mut WireWriter, sizes: &[usize]) {
    w.dim(sizes.len() - 1);
    for &s in sizes {
        w.dim(s);
    }
}

/// Appends a [`BnnParams`] payload (sizes, then per layer `weight_mu`,
/// `weight_sigma`, `bias_mu`, `bias_sigma`) to an open envelope. Exported
/// so the root crate's deployment checkpoints embed the identical layout.
pub fn write_params_payload(w: &mut WireWriter, params: &BnnParams) {
    write_sizes(w, &params.layer_sizes());
    for l in 0..params.layers() {
        w.f32s(params.weight_mu[l].data());
        w.f32s(params.weight_sigma[l].data());
        w.f32s(&params.bias_mu[l]);
        w.f32s(&params.bias_sigma[l]);
    }
}

/// Reads a [`BnnParams`] payload written by [`write_params_payload`].
///
/// # Errors
///
/// [`CheckpointError::Truncated`] / [`CheckpointError::Corrupt`] on
/// malformed payloads.
pub fn read_params_payload(r: &mut WireReader<'_>) -> Result<BnnParams, CheckpointError> {
    let sizes = read_sizes(r)?;
    let layers = sizes.len() - 1;
    let mut params = BnnParams {
        weight_mu: Vec::with_capacity(layers),
        weight_sigma: Vec::with_capacity(layers),
        bias_mu: Vec::with_capacity(layers),
        bias_sigma: Vec::with_capacity(layers),
    };
    for l in 0..layers {
        let (i, o) = (sizes[l], sizes[l + 1]);
        params
            .weight_mu
            .push(Matrix::from_vec(i, o, r.f32_vec(i * o)?));
        params
            .weight_sigma
            .push(Matrix::from_vec(i, o, r.f32_vec(i * o)?));
        params.bias_mu.push(r.f32_vec(o)?);
        params.bias_sigma.push(r.f32_vec(o)?);
    }
    Ok(params)
}

impl BnnParams {
    /// Serializes the snapshot as a kind-1 checkpoint envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new(KIND_PARAMS);
        write_params_payload(&mut w, self);
        w.into_bytes()
    }

    /// Parses a kind-1 envelope produced by [`BnnParams::to_bytes`].
    ///
    /// # Errors
    ///
    /// Any [`CheckpointError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = WireReader::open(bytes, KIND_PARAMS)?;
        let params = read_params_payload(&mut r)?;
        r.finish()?;
        Ok(params)
    }

    /// Writes the snapshot to `path` (see the module docs for the format)
    /// via [`atomic_write`], so an interrupted save never corrupts an
    /// existing file.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on write failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        atomic_write(path, &self.to_bytes())
    }

    /// Loads a snapshot written by [`BnnParams::save`].
    ///
    /// # Errors
    ///
    /// Any [`CheckpointError`] on I/O failure or malformed content.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

impl Bnn {
    /// Serializes the full training state as a kind-2 envelope: config,
    /// raw `(µ, ρ)` tensors, Adam moments and step counter, the training
    /// ε step counter, and the shuffle position.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new(KIND_TRAINER);
        let cfg = &self.cfg;
        write_sizes(&mut w, cfg.layer_sizes());
        w.f32(cfg.lr());
        w.f64(cfg.prior().std());
        w.f32(cfg.sigma_init());
        w.f32(cfg.kl_weight());
        w.u64(self.seed);
        w.u64(self.step);
        w.u64(self.shuffle_draws);
        w.u64(self.epochs_trained);
        for layer in &self.layers {
            w.f32s(layer.mu().data());
            w.f32s(layer.rho().data());
            w.f32s(layer.bias_mu());
            w.f32s(layer.bias_rho());
        }
        // Adam: current (possibly scheduled) rate, step, per-slot moments.
        w.f32(self.opt.lr());
        w.i32(self.opt.step_count());
        w.dim(self.opt.slot_count());
        for slot in 0..self.opt.slot_count() {
            let (m, v) = self.opt.slot_moments(slot);
            w.dim(m.len());
            w.f32s(m);
            w.f32s(v);
        }
        w.into_bytes()
    }

    /// Reconstructs a [`Bnn`] from a kind-2 envelope. The result trains on
    /// **bit-identically** to the network that was saved: same parameters,
    /// same optimizer moments, same ε substreams, same epoch shuffles.
    ///
    /// # Errors
    ///
    /// Any [`CheckpointError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = WireReader::open(bytes, KIND_TRAINER)?;
        let sizes = read_sizes(&mut r)?;
        let lr = r.f32()?;
        let prior_std = r.f64()?;
        let sigma_init = r.f32()?;
        let kl_weight = r.f32()?;
        if !(lr.is_finite() && lr > 0.0) {
            return Err(CheckpointError::Corrupt(format!("bad base lr {lr}")));
        }
        if !(sigma_init.is_finite() && sigma_init > 0.0) {
            return Err(CheckpointError::Corrupt(format!(
                "bad sigma_init {sigma_init}"
            )));
        }
        if !(kl_weight.is_finite() && kl_weight >= 0.0) {
            return Err(CheckpointError::Corrupt(format!(
                "bad kl_weight {kl_weight}"
            )));
        }
        if !(prior_std.is_finite() && prior_std > 0.0) {
            return Err(CheckpointError::Corrupt(format!(
                "bad prior std {prior_std}"
            )));
        }
        let cfg = BnnConfig::new(&sizes)
            .with_lr(lr)
            .with_prior_std(prior_std)
            .with_sigma_init(sigma_init)
            .with_kl_weight(kl_weight);
        let seed = r.u64()?;
        let step = r.u64()?;
        let shuffle_draws = r.u64()?;
        let epochs_trained = r.u64()?;
        // Rebuild the skeleton (layer shapes, optimizer slots, RNGs from
        // the seed), then overwrite every tensor with the checkpoint.
        let mut bnn = Bnn::new(cfg, seed);
        for l in 0..sizes.len() - 1 {
            let (i, o) = (sizes[l], sizes[l + 1]);
            let mu = Matrix::from_vec(i, o, r.f32_vec(i * o)?);
            let rho = Matrix::from_vec(i, o, r.f32_vec(i * o)?);
            let bias_mu = r.f32_vec(o)?;
            let bias_rho = r.f32_vec(o)?;
            bnn.layers[l].restore_params(mu, rho, bias_mu, bias_rho);
        }
        let adam_lr = r.f32()?;
        let adam_t = r.i32()?;
        let slots = r.dim()?;
        let mut moments = Vec::with_capacity(slots);
        for _ in 0..slots {
            let len = r.dim()?;
            let m = r.f32_vec(len)?;
            let v = r.f32_vec(len)?;
            moments.push((m, v));
        }
        r.finish()?;
        bnn.opt
            .restore_state(adam_lr, adam_t, moments)
            .map_err(CheckpointError::Corrupt)?;
        bnn.step = step;
        bnn.shuffle_draws = shuffle_draws;
        bnn.epochs_trained = epochs_trained;
        // `train_eps` is reconstruction-exact from the seed (it is only
        // forked, never consumed); the shuffle generator jumps to its
        // exact position in O(1), so even an absurd (corrupt) draw count
        // cannot stall the loader.
        bnn.shuffle_rng.skip_uniforms(shuffle_draws);
        Ok(bnn)
    }

    /// Writes the full training state to `path` via [`atomic_write`], so
    /// an interrupted save never corrupts an existing file.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on write failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        atomic_write(path, &self.to_bytes())
    }

    /// Loads a training checkpoint written by [`Bnn::save`].
    ///
    /// # Errors
    ///
    /// Any [`CheckpointError`] on I/O failure or malformed content.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibnn_nn::GaussianInit;

    fn toy_data(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = GaussianInit::new(seed);
        let mut x = Matrix::zeros(n, 3);
        let mut y = Vec::with_capacity(n);
        for r in 0..n {
            let mut s = 0.0;
            for c in 0..3 {
                let v = rng.next_gaussian() as f32;
                x[(r, c)] = v;
                s += v;
            }
            y.push(usize::from(s > 0.0));
        }
        (x, y)
    }

    #[test]
    fn params_round_trip_is_bit_exact() {
        let bnn = Bnn::new(BnnConfig::new(&[3, 5, 2]), 41);
        let p = bnn.params();
        let q = BnnParams::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(q.layer_sizes(), p.layer_sizes());
        for l in 0..p.layers() {
            assert_eq!(p.weight_mu[l].data(), q.weight_mu[l].data());
            assert_eq!(p.weight_sigma[l].data(), q.weight_sigma[l].data());
            assert_eq!(p.bias_mu[l], q.bias_mu[l]);
            assert_eq!(p.bias_sigma[l], q.bias_sigma[l]);
        }
    }

    #[test]
    fn trainer_round_trip_resumes_bit_identically_at_batch_level() {
        let (x, y) = toy_data(48, 3);
        let mut a = Bnn::new(BnnConfig::new(&[3, 6, 2]).with_lr(0.02), 5);
        for _ in 0..4 {
            a.train_batch_mc(&x, &y, 2);
        }
        let mut b = Bnn::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(b.steps_taken(), a.steps_taken());
        for _ in 0..3 {
            let la = a.train_batch_mc(&x, &y, 2);
            let lb = b.train_batch_mc(&x, &y, 2);
            assert_eq!(la.0.to_bits(), lb.0.to_bits(), "total loss diverged");
            assert_eq!(la.1.to_bits(), lb.1.to_bits(), "nll diverged");
            assert_eq!(la.2.to_bits(), lb.2.to_bits(), "kl diverged");
        }
        for (la, lb) in a.layers().iter().zip(b.layers()) {
            assert_eq!(la.mu().data(), lb.mu().data());
            assert_eq!(la.rho().data(), lb.rho().data());
        }
    }

    #[test]
    fn trainer_round_trip_resumes_epoch_shuffles_exactly() {
        let (x, y) = toy_data(32, 7);
        let mut a = Bnn::new(BnnConfig::new(&[3, 4, 2]).with_lr(0.02), 9);
        a.train_epoch(&x, &y, 8);
        a.set_lr(0.004); // a mid-run schedule change must survive the trip
        let mut b = Bnn::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(b.lr(), a.lr());
        for _ in 0..2 {
            let ra = a.train_epoch(&x, &y, 8);
            let rb = b.train_epoch(&x, &y, 8);
            assert_eq!(ra, rb, "epoch reports diverged after resume");
        }
    }

    #[test]
    fn resumed_lr_schedule_continues_instead_of_restarting() {
        use crate::{LrSchedule, TrainSchedule};
        let (x, y) = toy_data(32, 11);
        let sched = |epochs| TrainSchedule {
            epochs,
            lr: LrSchedule::StepDecay {
                every: 1,
                gamma: 0.5,
            },
            early_stop: None,
        };
        // Uninterrupted: 4 scheduled epochs.
        let mut full = Bnn::new(BnnConfig::new(&[3, 4, 2]).with_lr(0.02), 13);
        let full_run = full.train_mc_scheduled(&x, &y, 8, 1, 1, &sched(4));
        // Interrupted: 2 epochs, checkpoint, load, 2 more.
        let mut first = Bnn::new(BnnConfig::new(&[3, 4, 2]).with_lr(0.02), 13);
        let first_run = first.train_mc_scheduled(&x, &y, 8, 1, 1, &sched(2));
        let mut resumed = Bnn::from_bytes(&first.to_bytes()).unwrap();
        assert_eq!(resumed.epochs_trained(), 2);
        let resumed_run = resumed.train_mc_scheduled(&x, &y, 8, 1, 1, &sched(2));
        // The schedule continued (0.02·γ³ on the last epoch), and the
        // stitched run matches the uninterrupted one bit for bit.
        assert_eq!(resumed_run.final_lr, full_run.final_lr);
        let stitched: Vec<_> = first_run
            .reports
            .iter()
            .chain(&resumed_run.reports)
            .copied()
            .collect();
        assert_eq!(stitched, full_run.reports);
        for (a, b) in full.layers().iter().zip(resumed.layers()) {
            assert_eq!(a.mu().data(), b.mu().data());
            assert_eq!(a.rho().data(), b.rho().data());
        }
    }

    #[test]
    fn atomic_save_survives_a_simulated_crash_mid_write() {
        // Regression: `save` used to write the target file in place, so a
        // crash mid-write could leave a truncated checkpoint. The atomic
        // writer goes through a temp file + rename, so the worst a crash
        // can leave behind is a stale temp file — the original stays
        // loadable.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("vibnn_atomic_save_{}.ckpt", std::process::id()));
        let (x, y) = toy_data(16, 3);
        let mut bnn = Bnn::new(BnnConfig::new(&[3, 4, 2]).with_lr(0.02), 5);
        bnn.train_epoch(&x, &y, 8);
        bnn.save(&path).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Simulate a crash during a later save: a truncated temp file is
        // left next to the checkpoint (the rename never happened).
        let tmp = path.with_file_name(format!(
            ".{}.tmp.{}.0",
            path.file_name().unwrap().to_string_lossy(),
            std::process::id()
        ));
        std::fs::write(&tmp, &good[..good.len() / 2]).unwrap();
        let loaded = Bnn::load(&path).expect("original checkpoint still loads");
        assert_eq!(loaded.to_bytes(), good);
        // A subsequent save goes through its own temp file (the counter
        // keeps concurrent/stale temps from colliding) and replaces the
        // target whole.
        bnn.train_epoch(&x, &y, 8);
        bnn.save(&path).unwrap();
        assert_eq!(Bnn::load(&path).unwrap().to_bytes(), bnn.to_bytes());
        std::fs::remove_file(&tmp).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_write_rejects_pathless_targets_and_leaves_no_droppings() {
        assert!(matches!(
            atomic_write(Path::new("/"), b"x"),
            Err(CheckpointError::Io(_))
        ));
        // A failing write (unwritable directory) must not leave a temp
        // file behind.
        let missing = Path::new("/nonexistent_vibnn_dir/ckpt.bin");
        assert!(matches!(
            atomic_write(missing, b"x"),
            Err(CheckpointError::Io(_))
        ));
    }

    #[test]
    fn frame_round_trip_and_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        write_frame(&mut buf, &[0u8; 300]).unwrap();
        let mut cur = io::Cursor::new(&buf);
        assert_eq!(
            read_frame(&mut cur, MAX_FRAME_LEN).unwrap().as_deref(),
            Some(b"first".as_slice())
        );
        assert_eq!(
            read_frame(&mut cur, MAX_FRAME_LEN).unwrap().as_deref(),
            Some([0u8; 300].as_slice())
        );
        // EOF exactly at a frame boundary is a clean close, not an error.
        assert!(read_frame(&mut cur, MAX_FRAME_LEN).unwrap().is_none());
    }

    #[test]
    fn frame_rejects_hostile_prefixes_before_allocating() {
        // Empty frames cannot be written or read.
        assert!(matches!(
            write_frame(&mut Vec::new(), b""),
            Err(CheckpointError::Corrupt(_))
        ));
        let zero = 0u32.to_le_bytes();
        assert!(matches!(
            read_frame(&mut io::Cursor::new(&zero[..]), MAX_FRAME_LEN),
            Err(CheckpointError::Corrupt(_))
        ));
        // A length prefix above the cap is corrupt, even though the
        // stream could never deliver the promised bytes anyway.
        let huge = u32::MAX.to_le_bytes();
        assert!(matches!(
            read_frame(&mut io::Cursor::new(&huge[..]), MAX_FRAME_LEN),
            Err(CheckpointError::Corrupt(_))
        ));
        // Truncation mid-prefix and mid-payload are both typed.
        assert!(matches!(
            read_frame(&mut io::Cursor::new(&[7u8, 0][..]), MAX_FRAME_LEN),
            Err(CheckpointError::Truncated)
        ));
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        buf.truncate(buf.len() - 3);
        let mut cur = io::Cursor::new(&buf);
        assert!(matches!(
            read_frame(&mut cur, MAX_FRAME_LEN),
            Err(CheckpointError::Truncated)
        ));
    }

    #[test]
    fn open_any_dispatches_on_kind() {
        let mut w = WireWriter::new(KIND_PARAMS);
        w.u64(7);
        w.raw(b"xyz");
        let bytes = w.into_bytes();
        let (kind, mut r) = WireReader::open_any(&bytes).unwrap();
        assert_eq!(kind, KIND_PARAMS);
        assert_eq!(r.u64().unwrap(), 7);
        assert_eq!(r.raw(3).unwrap(), b"xyz");
        r.finish().unwrap();
        assert!(matches!(
            WireReader::open_any(b"NOPE\x01\x00\x01"),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn header_errors_are_typed() {
        let bnn = Bnn::new(BnnConfig::new(&[3, 4, 2]), 1);
        let bytes = bnn.to_bytes();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            Bnn::from_bytes(&bad),
            Err(CheckpointError::BadMagic)
        ));
        // Future version.
        let mut bad = bytes.clone();
        bad[4] = 0xFF;
        assert!(matches!(
            Bnn::from_bytes(&bad),
            Err(CheckpointError::UnsupportedVersion(_))
        ));
        // Wrong kind: a params file is not a trainer file.
        let params = bnn.params().to_bytes();
        assert!(matches!(
            Bnn::from_bytes(&params),
            Err(CheckpointError::WrongKind {
                expected: KIND_TRAINER,
                found: KIND_PARAMS
            })
        ));
        // Truncation anywhere in the payload.
        assert!(matches!(
            Bnn::from_bytes(&bytes[..bytes.len() - 5]),
            Err(CheckpointError::Truncated)
        ));
        // Trailing garbage.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(matches!(
            Bnn::from_bytes(&bad),
            Err(CheckpointError::Corrupt(_))
        ));
    }
}
