//! The parallel Monte Carlo harness: fork-per-sample scheduling with an
//! order-deterministic reduction.
//!
//! Both the float BNN (`Bnn::predict_proba_mc_parallel`) and the
//! fixed-point datapath (`vibnn_hw`'s parallel inference) run their MC
//! ensembles through [`parallel_mc_reduce`], so the bit-identity contract
//! — thread count never changes the result — lives in exactly one place.

use vibnn_grng::StreamFork;
use vibnn_nn::Matrix;

use crate::vibnn_threads;

/// Runs `samples` Monte Carlo draws of `sample_fn` across `threads`
/// `std::thread::scope` workers and averages the resulting matrices.
///
/// The contract that makes results **bit-identical for every thread
/// count**:
///
/// - sample `s` always draws its ε from `eps_src.fork(s)`, never from a
///   shared stream, so its value is independent of scheduling;
/// - the per-sample outputs are accumulated in ascending sample order
///   after all workers join, so the float reduction order is fixed.
///
/// `threads == 0` resolves through [`vibnn_threads`] (the `VIBNN_THREADS`
/// environment knob). Each worker gets one `W::default()` as reusable
/// per-worker state (scratch buffers; use `()` if none is needed).
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn parallel_mc_reduce<S, W, F>(
    samples: usize,
    threads: usize,
    eps_src: &S,
    sample_fn: F,
) -> Matrix
where
    S: StreamFork + Sync,
    W: Default,
    F: Fn(&mut S, &mut W) -> Matrix + Sync,
{
    assert!(samples > 0, "need at least one Monte Carlo sample");
    let threads = if threads == 0 { vibnn_threads() } else { threads }
        .min(samples)
        .max(1);
    let mut per_sample: Vec<Option<Matrix>> = (0..samples).map(|_| None).collect();
    let chunk = samples.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slots) in per_sample.chunks_mut(chunk).enumerate() {
            let base = t * chunk;
            let sample_fn = &sample_fn;
            scope.spawn(move || {
                let mut worker_state = W::default();
                for (off, slot) in slots.iter_mut().enumerate() {
                    let mut src = eps_src.fork((base + off) as u64);
                    *slot = Some(sample_fn(&mut src, &mut worker_state));
                }
            });
        }
    });
    // Deterministic reduction: ascending sample order, independent of how
    // the chunks were scheduled.
    let mut draws = per_sample
        .into_iter()
        .map(|m| m.expect("worker filled every slot"));
    let mut acc = draws.next().expect("samples > 0");
    for m in draws {
        acc.axpy(1.0, &m);
    }
    acc.scale(1.0 / samples as f32);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibnn_grng::{BoxMullerGrng, GaussianSource};

    #[test]
    fn reduction_is_schedule_independent() {
        let eps = BoxMullerGrng::new(7);
        let run = |threads| {
            parallel_mc_reduce(10, threads, &eps, |src: &mut BoxMullerGrng, _: &mut ()| {
                let mut m = Matrix::zeros(2, 3);
                src.fill_f32(m.data_mut());
                m
            })
        };
        let one = run(1);
        for threads in [2usize, 3, 7, 32] {
            assert_eq!(run(threads).data(), one.data(), "{threads} threads");
        }
    }

    #[test]
    #[should_panic(expected = "at least one Monte Carlo sample")]
    fn zero_samples_panics() {
        let eps = BoxMullerGrng::new(1);
        let _ = parallel_mc_reduce(0, 1, &eps, |_: &mut BoxMullerGrng, _: &mut ()| {
            Matrix::zeros(1, 1)
        });
    }
}
