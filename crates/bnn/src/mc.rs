//! The deterministic parallel harness: ordered fan-out over
//! `std::thread::scope` workers with fork-per-unit ε streams.
//!
//! Three layers, each built on the one below:
//!
//! - [`parallel_ordered_tasks`] — run `units` closures across workers and
//!   return their results **in unit order**, independent of scheduling.
//! - [`parallel_fork_map`] — the same, with unit `u` handed the forked
//!   substream `eps_src.fork(u)` (the [`StreamFork`] seam).
//! - [`parallel_mc_reduce`] — fork-per-sample Monte Carlo with an
//!   order-deterministic matrix reduction.
//!
//! Both the float BNN (`Bnn::predict_proba_mc_parallel`, the training
//! engine in [`crate::Bnn::train_batch_mc`]) and the fixed-point datapath
//! (`vibnn_hw`'s parallel inference) run through these helpers, so the
//! bit-identity contract — thread count never changes the result — lives
//! in exactly one place.

use vibnn_grng::StreamFork;
use vibnn_nn::{Matrix, LANES};

use crate::vibnn_threads;

/// Fixed chunk width (in elements) for the parallel step-tail passes
/// (σ/σ′ precompute, KL gradients, Adam): flat tensors are partitioned at
/// multiples of `TAIL_CHUNK` — a function of the tensor shape only, never
/// of the thread count — and any per-chunk partial sums are folded in
/// ascending chunk order, so tail results are bit-identical at every
/// thread count. A multiple of both [`LANES`] and the `Σ ln σ` 16-element
/// grouping so chunk boundaries never split a lane strip or an ln group.
pub(crate) const TAIL_CHUNK: usize = 16_384;

/// The worker count the harnesses actually use for `units` tasks:
/// `requested` (0 ⇒ [`vibnn_threads`]) capped at `units` — spawning more
/// workers than units only adds idle threads and, by the determinism
/// contract, can never change the result.
pub(crate) fn effective_threads(requested: usize, units: usize) -> usize {
    let requested = if requested == 0 {
        vibnn_threads()
    } else {
        requested
    };
    requested.min(units).max(1)
}

/// Folds `f` over a sequence of fixed-boundary work items (normally
/// [`TAIL_CHUNK`]-element tensor chunks) across `threads` scoped workers,
/// returning the per-item partials summed in **ascending item order**.
///
/// The mutable-view sibling of [`parallel_ordered_tasks`] for the step
/// tail: each item owns disjoint `&mut` tensor chunks, `f` mutates them
/// in place and returns an `f64` partial (0.0 when the pass has no
/// reduction). Because item boundaries are fixed by the caller and the
/// partial fold order is ascending, the result is independent of the
/// thread count. `threads <= 1` runs inline without collecting or
/// spawning — the training engine's allocation-free steady-state path.
pub(crate) fn chunked_fold<T, I, F>(threads: usize, items: I, f: F) -> f64
where
    T: Send,
    I: Iterator<Item = T>,
    F: Fn(&mut T) -> f64 + Sync,
{
    if threads <= 1 {
        let mut acc = 0.0f64;
        for mut item in items {
            acc += f(&mut item);
        }
        return acc;
    }
    let mut collected: Vec<T> = items.collect();
    let n = collected.len();
    let threads = effective_threads(threads, n);
    if threads <= 1 {
        let mut acc = 0.0f64;
        for item in &mut collected {
            acc += f(item);
        }
        return acc;
    }
    let chunk = n.div_ceil(threads);
    let mut partials = vec![0.0f64; n];
    std::thread::scope(|scope| {
        for (group, pgroup) in collected.chunks_mut(chunk).zip(partials.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (item, p) in group.iter_mut().zip(pgroup.iter_mut()) {
                    *p = f(item);
                }
            });
        }
    });
    // Same ascending fold as the inline path: 0.0 + p₀ + p₁ + …
    let mut acc = 0.0f64;
    for p in partials {
        acc += p;
    }
    acc
}

/// [`parallel_ordered_tasks`] over caller-owned slots and worker
/// workspaces: unit `u` mutates `slots[u]` in place instead of returning a
/// value, and each worker borrows one entry of `workspaces` instead of
/// building a fresh `W::default()`.
///
/// This is the training engine's pooled variant — with warm slots and
/// workspaces a steady-state step performs no allocation at
/// `threads == 1`, and the same unit→slot assignment keeps every
/// order-sensitive downstream reduction schedule-independent.
///
/// # Panics
///
/// Panics if `workspaces` holds fewer entries than the effective worker
/// count (see [`effective_threads`]).
pub(crate) fn parallel_ordered_mut<S, W, F>(
    slots: &mut [S],
    threads: usize,
    workspaces: &mut [W],
    f: F,
) where
    S: Send,
    W: Send,
    F: Fn(usize, &mut S, &mut W) + Sync,
{
    if slots.is_empty() {
        return;
    }
    let threads = effective_threads(threads, slots.len());
    assert!(
        workspaces.len() >= threads,
        "need {threads} workspaces, have {}",
        workspaces.len()
    );
    if threads == 1 {
        let ws = &mut workspaces[0];
        for (u, slot) in slots.iter_mut().enumerate() {
            f(u, slot, ws);
        }
    } else {
        let chunk = slots.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for ((t, group), ws) in slots
                .chunks_mut(chunk)
                .enumerate()
                .zip(workspaces.iter_mut())
            {
                let f = &f;
                scope.spawn(move || {
                    for (off, slot) in group.iter_mut().enumerate() {
                        f(t * chunk + off, slot, ws);
                    }
                });
            }
        });
    }
}

/// Runs `units` independent tasks across `threads` `std::thread::scope`
/// workers and returns the per-unit results in ascending unit order.
///
/// Units are split into contiguous chunks, one per worker; each worker
/// owns one `W::default()` of reusable scratch state for its whole chunk.
/// Because every unit writes its own slot and the returned `Vec` is in
/// unit order, any *order-sensitive* reduction the caller performs is
/// independent of how units were scheduled — the foundation of the
/// bit-identical-at-any-thread-count contract. `threads == 0` resolves
/// through [`vibnn_threads`]; `threads == 1` runs inline without spawning.
///
/// `threads` is a scheduling hint, not a spawn count: the worker pool is
/// additionally capped at the machine's available parallelism, since
/// oversubscribing a CPU-bound fan-out only adds context-switch cost and
/// — by the determinism contract above — can never change the result.
pub fn parallel_ordered_tasks<W, T, F>(units: usize, threads: usize, f: F) -> Vec<T>
where
    W: Default,
    T: Send,
    F: Fn(usize, &mut W) -> T + Sync,
{
    if units == 0 {
        return Vec::new();
    }
    let threads = effective_threads(threads, units);
    let mut slots: Vec<Option<T>> = (0..units).map(|_| None).collect();
    if threads == 1 {
        let mut worker_state = W::default();
        for (u, slot) in slots.iter_mut().enumerate() {
            *slot = Some(f(u, &mut worker_state));
        }
    } else {
        let chunk = units.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, chunk_slots) in slots.chunks_mut(chunk).enumerate() {
                let base = t * chunk;
                let f = &f;
                scope.spawn(move || {
                    let mut worker_state = W::default();
                    for (off, slot) in chunk_slots.iter_mut().enumerate() {
                        *slot = Some(f(base + off, &mut worker_state));
                    }
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|s| s.expect("worker filled every slot"))
        .collect()
}

/// [`parallel_ordered_tasks`] where unit `u` draws its ε from
/// `eps_src.fork(u)` — never from a shared stream — so each unit's random
/// draws are independent of scheduling.
pub fn parallel_fork_map<S, W, T, F>(units: usize, threads: usize, eps_src: &S, f: F) -> Vec<T>
where
    S: StreamFork + Sync,
    W: Default,
    T: Send,
    F: Fn(usize, &mut S, &mut W) -> T + Sync,
{
    parallel_ordered_tasks(units, threads, |u, worker_state: &mut W| {
        let mut src = eps_src.fork(u as u64);
        f(u, &mut src, worker_state)
    })
}

/// Runs `samples` Monte Carlo draws of `sample_fn` across `threads`
/// `std::thread::scope` workers and averages the resulting matrices.
///
/// The contract that makes results **bit-identical for every thread
/// count**:
///
/// - sample `s` always draws its ε from `eps_src.fork(s)`, never from a
///   shared stream, so its value is independent of scheduling;
/// - the per-sample outputs are accumulated in ascending sample order
///   after all workers finish, so the float reduction order is fixed.
///
/// `threads == 0` resolves through [`vibnn_threads`] (the `VIBNN_THREADS`
/// environment knob). Each worker gets one `W::default()` as reusable
/// per-worker state (scratch buffers; use `()` if none is needed).
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn parallel_mc_reduce<S, W, F>(
    samples: usize,
    threads: usize,
    eps_src: &S,
    sample_fn: F,
) -> Matrix
where
    S: StreamFork + Sync,
    W: Default,
    F: Fn(&mut S, &mut W) -> Matrix + Sync,
{
    assert!(samples > 0, "need at least one Monte Carlo sample");
    let per_sample = parallel_fork_map(samples, threads, eps_src, |_, src, worker: &mut W| {
        sample_fn(src, worker)
    });
    reduce_mean(&per_sample)
}

/// Domain tag separating serving-replica ε substreams from the Monte
/// Carlo sample ids (`fork(0..samples)`) the inference engines consume.
const REPLICA_STREAM: u64 = 0x5EED_C105_7E12;

/// Derives the dispatcher ε source for one serving replica from a shared
/// cluster source.
///
/// Every replica receives the **same** substream (an independently owned
/// generator instance of an identical stream), deliberately *not* one
/// keyed by replica id: a replica's result for a feature row depends only
/// on the row, its parameters, and its ε source, so replicas loaded from
/// the same checkpoint become interchangeable — any of them can serve any
/// request with bit-identical output, which is what lets a cluster route
/// (and spill) requests freely while staying bit-identical to a single
/// engine. Per-replica-id derivation would silently tie results to the
/// router's placement decisions and break that contract.
///
/// The substream is forked under a dedicated domain tag so it can never
/// collide with the per-sample forks (`fork(s)` for `s < mc_samples`)
/// the serving engines draw from.
pub fn replica_source<S: StreamFork>(cluster_eps: &S) -> S {
    cluster_eps.fork(REPLICA_STREAM)
}

/// The engine's order-deterministic mean reduction, following the
/// fixed-lane accumulation contract ([`vibnn_nn::LANES`]): draw `k`
/// belongs to lane `k % LANES`, each lane folds its draws in ascending
/// `k`, and the lane totals are combined in ascending lane order before
/// scaling by `1/n`.
///
/// For `n ≤ LANES` each lane holds at most one draw, so the lane fold
/// degenerates to the plain ascending chain `draws[0] + draws[1] + …` —
/// the default `mc_samples = 8` ensemble reduces exactly as it always
/// has. Lane membership depends only on the draw index, never on
/// scheduling, so the result is bit-identical at every thread count.
///
/// This is the *only* reduction used by the parallel Monte Carlo paths —
/// callers that need the per-sample members (e.g. the serving engine's
/// uncertainty estimates) fetch them via
/// [`parallel_fork_map`] and re-derive the mean through this function,
/// which guarantees bit-identity with [`parallel_mc_reduce`].
///
/// # Panics
///
/// Panics if `draws` is empty.
pub fn reduce_mean(draws: &[Matrix]) -> Matrix {
    assert!(!draws.is_empty(), "need at least one Monte Carlo sample");
    let n = draws.len();
    let mut acc = draws[0].clone();
    if n <= LANES {
        for m in &draws[1..] {
            acc.axpy(1.0, m);
        }
    } else {
        // Lane 0 accumulates directly into `acc` (seeded with draws[0]);
        // lanes 1.. build in one reusable temp and fold in ascending lane
        // order.
        let mut k = LANES;
        while k < n {
            acc.axpy(1.0, &draws[k]);
            k += LANES;
        }
        let mut lane = Matrix::zeros(0, 0);
        for l in 1..LANES {
            lane.resize(draws[0].rows(), draws[0].cols());
            lane.data_mut().copy_from_slice(draws[l].data());
            let mut k = l + LANES;
            while k < n {
                lane.axpy(1.0, &draws[k]);
                k += LANES;
            }
            acc.axpy(1.0, &lane);
        }
    }
    acc.scale(1.0 / n as f32);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibnn_grng::{BoxMullerGrng, GaussianSource};

    #[test]
    fn reduction_is_schedule_independent() {
        let eps = BoxMullerGrng::new(7);
        let run = |threads| {
            parallel_mc_reduce(10, threads, &eps, |src: &mut BoxMullerGrng, _: &mut ()| {
                let mut m = Matrix::zeros(2, 3);
                src.fill_f32(m.data_mut());
                m
            })
        };
        let one = run(1);
        for threads in [2usize, 3, 7, 32] {
            assert_eq!(run(threads).data(), one.data(), "{threads} threads");
        }
    }

    #[test]
    fn ordered_tasks_return_results_in_unit_order() {
        for threads in [1usize, 2, 3, 8] {
            let out = parallel_ordered_tasks(17, threads, |u, _: &mut ()| u * u);
            assert_eq!(out, (0..17).map(|u| u * u).collect::<Vec<_>>());
        }
        assert!(parallel_ordered_tasks(0, 4, |u, _: &mut ()| u).is_empty());
    }

    #[test]
    fn fork_map_assigns_substreams_by_unit_not_schedule() {
        let eps = BoxMullerGrng::new(11);
        let run = |threads| {
            parallel_fork_map(9, threads, &eps, |_, src: &mut BoxMullerGrng, _: &mut ()| {
                src.next_gaussian()
            })
        };
        let one = run(1);
        for threads in [2usize, 4, 9] {
            assert_eq!(run(threads), one, "{threads} threads");
        }
    }

    #[test]
    fn replica_sources_are_identical_and_disjoint_from_sample_forks() {
        let cluster = BoxMullerGrng::new(23);
        let mut a = replica_source(&cluster);
        let mut b = replica_source(&cluster);
        let draws_a: Vec<u64> = (0..32).map(|_| a.next_gaussian().to_bits()).collect();
        let draws_b: Vec<u64> = (0..32).map(|_| b.next_gaussian().to_bits()).collect();
        // Independently owned instances of the same stream …
        assert_eq!(draws_a, draws_b);
        // … that never alias the Monte Carlo sample substreams.
        for s in 0..64u64 {
            let mut sample = cluster.fork(s);
            let first = sample.next_gaussian().to_bits();
            assert_ne!(first, draws_a[0], "replica stream collides with fork({s})");
        }
    }

    #[test]
    fn worker_spawn_is_capped_by_unit_count() {
        // Oversubscribing (threads ≫ units) must not spawn idle workers:
        // with 3 units and 16 requested threads at most 3 distinct threads
        // may run tasks.
        use std::collections::HashSet;
        use std::sync::Mutex;
        assert_eq!(effective_threads(16, 3), 3);
        assert_eq!(effective_threads(16, 1), 1);
        let ids = Mutex::new(HashSet::new());
        let out = parallel_ordered_tasks(3, 16, |u, _: &mut ()| {
            ids.lock().unwrap().insert(std::thread::current().id());
            u
        });
        assert_eq!(out, vec![0, 1, 2]);
        assert!(
            ids.lock().unwrap().len() <= 3,
            "spawned more workers than units"
        );
    }

    #[test]
    fn reduce_mean_follows_lane_rule_beyond_lane_count() {
        // 11 draws > LANES: lane l folds draws l, l+8, … and lanes combine
        // in ascending order.
        let draws: Vec<Matrix> = (0..11)
            .map(|k| {
                let mut m = Matrix::zeros(2, 2);
                for (i, v) in m.data_mut().iter_mut().enumerate() {
                    *v = ((k * 7 + i * 3) as f32).sin();
                }
                m
            })
            .collect();
        let got = reduce_mean(&draws);
        for i in 0..4 {
            let mut lanes = [0.0f32; LANES];
            for (k, d) in draws.iter().enumerate() {
                lanes[k % LANES] += d.data()[i];
            }
            let mut want = lanes[0];
            for &l in &lanes[1..] {
                want += l;
            }
            want *= 1.0 / draws.len() as f32;
            assert_eq!(got.data()[i].to_bits(), want.to_bits(), "element {i}");
        }
    }

    #[test]
    fn chunked_fold_is_thread_count_independent() {
        let data: Vec<f32> = (0..70_000).map(|i| (i as f32 * 0.37).sin()).collect();
        let run = |threads: usize| {
            let mut out = vec![0.0f32; data.len()];
            let partial = chunked_fold(
                threads,
                data.chunks(TAIL_CHUNK).zip(out.chunks_mut(TAIL_CHUNK)),
                |(src, dst)| {
                    let mut s = 0.0f64;
                    for (d, &v) in dst.iter_mut().zip(src.iter()) {
                        *d = v * v;
                        s += f64::from(v);
                    }
                    s
                },
            );
            (partial, out)
        };
        let (p1, o1) = run(1);
        for threads in [2usize, 3, 8] {
            let (p, o) = run(threads);
            assert_eq!(p.to_bits(), p1.to_bits(), "{threads} threads partial");
            assert_eq!(o, o1, "{threads} threads output");
        }
    }

    #[test]
    fn ordered_mut_fills_slots_in_unit_order() {
        for threads in [1usize, 2, 5] {
            let mut slots = vec![0usize; 13];
            let mut workspaces = vec![0u32; 8];
            parallel_ordered_mut(&mut slots, threads, &mut workspaces, |u, slot, ws| {
                *slot = u * 3;
                *ws += 1;
            });
            assert_eq!(slots, (0..13).map(|u| u * 3).collect::<Vec<_>>());
            let done: u32 = workspaces.iter().sum();
            assert_eq!(done, 13, "{threads} threads");
        }
    }

    #[test]
    #[should_panic(expected = "at least one Monte Carlo sample")]
    fn zero_samples_panics() {
        let eps = BoxMullerGrng::new(1);
        let _ = parallel_mc_reduce(0, 1, &eps, |_: &mut BoxMullerGrng, _: &mut ()| {
            Matrix::zeros(1, 1)
        });
    }
}
