//! The deterministic parallel harness: ordered fan-out over
//! `std::thread::scope` workers with fork-per-unit ε streams.
//!
//! Three layers, each built on the one below:
//!
//! - [`parallel_ordered_tasks`] — run `units` closures across workers and
//!   return their results **in unit order**, independent of scheduling.
//! - [`parallel_fork_map`] — the same, with unit `u` handed the forked
//!   substream `eps_src.fork(u)` (the [`StreamFork`] seam).
//! - [`parallel_mc_reduce`] — fork-per-sample Monte Carlo with an
//!   order-deterministic matrix reduction.
//!
//! Both the float BNN (`Bnn::predict_proba_mc_parallel`, the training
//! engine in [`crate::Bnn::train_batch_mc`]) and the fixed-point datapath
//! (`vibnn_hw`'s parallel inference) run through these helpers, so the
//! bit-identity contract — thread count never changes the result — lives
//! in exactly one place.

use vibnn_grng::StreamFork;
use vibnn_nn::Matrix;

use crate::vibnn_threads;

/// Runs `units` independent tasks across `threads` `std::thread::scope`
/// workers and returns the per-unit results in ascending unit order.
///
/// Units are split into contiguous chunks, one per worker; each worker
/// owns one `W::default()` of reusable scratch state for its whole chunk.
/// Because every unit writes its own slot and the returned `Vec` is in
/// unit order, any *order-sensitive* reduction the caller performs is
/// independent of how units were scheduled — the foundation of the
/// bit-identical-at-any-thread-count contract. `threads == 0` resolves
/// through [`vibnn_threads`]; `threads == 1` runs inline without spawning.
///
/// `threads` is a scheduling hint, not a spawn count: the worker pool is
/// additionally capped at the machine's available parallelism, since
/// oversubscribing a CPU-bound fan-out only adds context-switch cost and
/// — by the determinism contract above — can never change the result.
pub fn parallel_ordered_tasks<W, T, F>(units: usize, threads: usize, f: F) -> Vec<T>
where
    W: Default,
    T: Send,
    F: Fn(usize, &mut W) -> T + Sync,
{
    if units == 0 {
        return Vec::new();
    }
    let requested = if threads == 0 { vibnn_threads() } else { threads };
    let hardware = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(requested);
    let threads = requested.min(hardware).min(units).max(1);
    let mut slots: Vec<Option<T>> = (0..units).map(|_| None).collect();
    if threads == 1 {
        let mut worker_state = W::default();
        for (u, slot) in slots.iter_mut().enumerate() {
            *slot = Some(f(u, &mut worker_state));
        }
    } else {
        let chunk = units.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, chunk_slots) in slots.chunks_mut(chunk).enumerate() {
                let base = t * chunk;
                let f = &f;
                scope.spawn(move || {
                    let mut worker_state = W::default();
                    for (off, slot) in chunk_slots.iter_mut().enumerate() {
                        *slot = Some(f(base + off, &mut worker_state));
                    }
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|s| s.expect("worker filled every slot"))
        .collect()
}

/// [`parallel_ordered_tasks`] where unit `u` draws its ε from
/// `eps_src.fork(u)` — never from a shared stream — so each unit's random
/// draws are independent of scheduling.
pub fn parallel_fork_map<S, W, T, F>(units: usize, threads: usize, eps_src: &S, f: F) -> Vec<T>
where
    S: StreamFork + Sync,
    W: Default,
    T: Send,
    F: Fn(usize, &mut S, &mut W) -> T + Sync,
{
    parallel_ordered_tasks(units, threads, |u, worker_state: &mut W| {
        let mut src = eps_src.fork(u as u64);
        f(u, &mut src, worker_state)
    })
}

/// Runs `samples` Monte Carlo draws of `sample_fn` across `threads`
/// `std::thread::scope` workers and averages the resulting matrices.
///
/// The contract that makes results **bit-identical for every thread
/// count**:
///
/// - sample `s` always draws its ε from `eps_src.fork(s)`, never from a
///   shared stream, so its value is independent of scheduling;
/// - the per-sample outputs are accumulated in ascending sample order
///   after all workers finish, so the float reduction order is fixed.
///
/// `threads == 0` resolves through [`vibnn_threads`] (the `VIBNN_THREADS`
/// environment knob). Each worker gets one `W::default()` as reusable
/// per-worker state (scratch buffers; use `()` if none is needed).
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn parallel_mc_reduce<S, W, F>(
    samples: usize,
    threads: usize,
    eps_src: &S,
    sample_fn: F,
) -> Matrix
where
    S: StreamFork + Sync,
    W: Default,
    F: Fn(&mut S, &mut W) -> Matrix + Sync,
{
    assert!(samples > 0, "need at least one Monte Carlo sample");
    let per_sample = parallel_fork_map(samples, threads, eps_src, |_, src, worker: &mut W| {
        sample_fn(src, worker)
    });
    reduce_mean(&per_sample)
}

/// Domain tag separating serving-replica ε substreams from the Monte
/// Carlo sample ids (`fork(0..samples)`) the inference engines consume.
const REPLICA_STREAM: u64 = 0x5EED_C105_7E12;

/// Derives the dispatcher ε source for one serving replica from a shared
/// cluster source.
///
/// Every replica receives the **same** substream (an independently owned
/// generator instance of an identical stream), deliberately *not* one
/// keyed by replica id: a replica's result for a feature row depends only
/// on the row, its parameters, and its ε source, so replicas loaded from
/// the same checkpoint become interchangeable — any of them can serve any
/// request with bit-identical output, which is what lets a cluster route
/// (and spill) requests freely while staying bit-identical to a single
/// engine. Per-replica-id derivation would silently tie results to the
/// router's placement decisions and break that contract.
///
/// The substream is forked under a dedicated domain tag so it can never
/// collide with the per-sample forks (`fork(s)` for `s < mc_samples`)
/// the serving engines draw from.
pub fn replica_source<S: StreamFork>(cluster_eps: &S) -> S {
    cluster_eps.fork(REPLICA_STREAM)
}

/// The engine's order-deterministic mean reduction: accumulate the draws
/// in ascending index order (`acc = draws[0]; acc += draws[i]`), then
/// scale by `1/n`.
///
/// This is the *only* reduction used by the parallel Monte Carlo paths —
/// callers that need the per-sample members (e.g. the serving engine's
/// uncertainty estimates) fetch them via
/// [`parallel_fork_map`] and re-derive the mean through this function,
/// which guarantees bit-identity with [`parallel_mc_reduce`].
///
/// # Panics
///
/// Panics if `draws` is empty.
pub fn reduce_mean(draws: &[Matrix]) -> Matrix {
    assert!(!draws.is_empty(), "need at least one Monte Carlo sample");
    let mut acc = draws[0].clone();
    for m in &draws[1..] {
        acc.axpy(1.0, m);
    }
    acc.scale(1.0 / draws.len() as f32);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibnn_grng::{BoxMullerGrng, GaussianSource};

    #[test]
    fn reduction_is_schedule_independent() {
        let eps = BoxMullerGrng::new(7);
        let run = |threads| {
            parallel_mc_reduce(10, threads, &eps, |src: &mut BoxMullerGrng, _: &mut ()| {
                let mut m = Matrix::zeros(2, 3);
                src.fill_f32(m.data_mut());
                m
            })
        };
        let one = run(1);
        for threads in [2usize, 3, 7, 32] {
            assert_eq!(run(threads).data(), one.data(), "{threads} threads");
        }
    }

    #[test]
    fn ordered_tasks_return_results_in_unit_order() {
        for threads in [1usize, 2, 3, 8] {
            let out = parallel_ordered_tasks(17, threads, |u, _: &mut ()| u * u);
            assert_eq!(out, (0..17).map(|u| u * u).collect::<Vec<_>>());
        }
        assert!(parallel_ordered_tasks(0, 4, |u, _: &mut ()| u).is_empty());
    }

    #[test]
    fn fork_map_assigns_substreams_by_unit_not_schedule() {
        let eps = BoxMullerGrng::new(11);
        let run = |threads| {
            parallel_fork_map(9, threads, &eps, |_, src: &mut BoxMullerGrng, _: &mut ()| {
                src.next_gaussian()
            })
        };
        let one = run(1);
        for threads in [2usize, 4, 9] {
            assert_eq!(run(threads), one, "{threads} threads");
        }
    }

    #[test]
    fn replica_sources_are_identical_and_disjoint_from_sample_forks() {
        let cluster = BoxMullerGrng::new(23);
        let mut a = replica_source(&cluster);
        let mut b = replica_source(&cluster);
        let draws_a: Vec<u64> = (0..32).map(|_| a.next_gaussian().to_bits()).collect();
        let draws_b: Vec<u64> = (0..32).map(|_| b.next_gaussian().to_bits()).collect();
        // Independently owned instances of the same stream …
        assert_eq!(draws_a, draws_b);
        // … that never alias the Monte Carlo sample substreams.
        for s in 0..64u64 {
            let mut sample = cluster.fork(s);
            let first = sample.next_gaussian().to_bits();
            assert_ne!(first, draws_a[0], "replica stream collides with fork({s})");
        }
    }

    #[test]
    #[should_panic(expected = "at least one Monte Carlo sample")]
    fn zero_samples_panics() {
        let eps = BoxMullerGrng::new(1);
        let _ = parallel_mc_reduce(0, 1, &eps, |_: &mut BoxMullerGrng, _: &mut ()| {
            Matrix::zeros(1, 1)
        });
    }
}
