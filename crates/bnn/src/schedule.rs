//! Learning-rate schedules and patience-based early stopping for the
//! multi-epoch training driver.
//!
//! Schedules are pure functions of `(base_lr, epoch)` and the stopper is a
//! pure fold over the per-epoch losses, so scheduled training keeps the
//! engine's determinism contract: the epoch at which training stops and
//! every parameter along the way are bit-identical at any thread count.

use crate::{Bnn, BnnTrainReport};
use vibnn_nn::Matrix;

/// A learning-rate schedule over epochs, applied through
/// [`Bnn::set_lr`] before each [`Bnn::train_epoch_mc_threads`] call.
///
/// # Example
///
/// ```
/// use vibnn_bnn::LrSchedule;
/// let cosine = LrSchedule::Cosine { total_epochs: 10, min_lr: 1e-5 };
/// assert!((cosine.lr_for_epoch(1e-3, 0) - 1e-3).abs() < 1e-9);
/// assert!(cosine.lr_for_epoch(1e-3, 9) <= 2e-5);
/// let step = LrSchedule::StepDecay { every: 2, gamma: 0.5 };
/// assert_eq!(step.lr_for_epoch(0.1, 3), 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate (the base rate every epoch).
    Const,
    /// Multiply the rate by `gamma` every `every` epochs.
    StepDecay {
        /// Epochs between decays (must be positive).
        every: usize,
        /// Decay factor per step (must be in `(0, 1]`).
        gamma: f32,
    },
    /// Cosine annealing from the base rate down to `min_lr` over
    /// `total_epochs` epochs (Loshchilov & Hutter, without restarts).
    Cosine {
        /// Epochs over which the rate anneals to `min_lr`.
        total_epochs: usize,
        /// Floor learning rate (must be positive).
        min_lr: f32,
    },
}

impl LrSchedule {
    /// The learning rate for `epoch` (0-based) given the base rate.
    ///
    /// The result is always positive: step decay and cosine annealing are
    /// clamped away from zero so [`Bnn::set_lr`] never rejects it.
    pub fn lr_for_epoch(&self, base_lr: f32, epoch: usize) -> f32 {
        const LR_FLOOR: f32 = 1e-12;
        match *self {
            LrSchedule::Const => base_lr,
            LrSchedule::StepDecay { every, gamma } => {
                let every = every.max(1);
                let decays = (epoch / every) as i32;
                (base_lr * gamma.powi(decays)).max(LR_FLOOR)
            }
            LrSchedule::Cosine {
                total_epochs,
                min_lr,
            } => {
                let span = total_epochs.saturating_sub(1).max(1);
                let t = (epoch.min(span) as f64) / span as f64;
                let min = f64::from(min_lr);
                let lr = min
                    + 0.5 * (f64::from(base_lr) - min) * (1.0 + (std::f64::consts::PI * t).cos());
                (lr as f32).max(LR_FLOOR)
            }
        }
    }
}

/// Patience-based early stopping on the per-epoch training loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStop {
    /// Consecutive epochs without improvement tolerated before stopping.
    pub patience: usize,
    /// Minimum loss decrease that counts as an improvement.
    pub min_delta: f64,
}

impl EarlyStop {
    /// Stop after `patience` stale epochs; any decrease counts.
    pub fn patience(patience: usize) -> Self {
        Self {
            patience,
            min_delta: 0.0,
        }
    }
}

/// A multi-epoch training plan: epoch budget, LR schedule, and optional
/// early stopping — consumed by [`Bnn::train_mc_scheduled`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainSchedule {
    /// Maximum number of epochs.
    pub epochs: usize,
    /// Learning-rate schedule.
    pub lr: LrSchedule,
    /// Optional patience-based stop on the epoch training loss.
    pub early_stop: Option<EarlyStop>,
}

impl TrainSchedule {
    /// A constant-rate plan with no early stopping.
    pub fn constant(epochs: usize) -> Self {
        Self {
            epochs,
            lr: LrSchedule::Const,
            early_stop: None,
        }
    }
}

/// The outcome of a scheduled training run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledRun {
    /// Per-epoch reports, in order (length ≤ the epoch budget).
    pub reports: Vec<BnnTrainReport>,
    /// Whether the early stopper ended the run before the budget.
    pub stopped_early: bool,
    /// The learning rate in effect for the last epoch run.
    pub final_lr: f32,
}

impl Bnn {
    /// Runs up to `sched.epochs` epochs of the deterministic data-parallel
    /// engine ([`Bnn::train_epoch_mc_threads`]), setting the learning rate
    /// from `sched.lr` before each epoch (via the [`Bnn::set_lr`] /
    /// `Adam::set_lr` plumbing) and stopping early when `sched.early_stop`
    /// sees `patience` consecutive epochs whose loss fails to improve the
    /// best seen by more than `min_delta`.
    ///
    /// The schedule indexes on the network's **lifetime** epoch count
    /// ([`Bnn::epochs_trained`]), not this call's loop counter — so a run
    /// split across calls (or across a checkpoint save/load, which
    /// persists the count) anneals exactly like one uninterrupted run.
    /// The early-stop fold, by contrast, is local to the call.
    ///
    /// The schedule is a pure function of that epoch index and the stopper
    /// folds over the (thread-count-independent) epoch losses, so the
    /// whole run — including *when* it stops — is bit-identical for every
    /// `threads` value (`0` honours `VIBNN_THREADS`).
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`, `samples == 0`, or shapes mismatch.
    pub fn train_mc_scheduled(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        batch: usize,
        samples: usize,
        threads: usize,
        sched: &TrainSchedule,
    ) -> ScheduledRun {
        let run = self.train_mc_scheduled_with(x, labels, batch, samples, threads, sched, |_, _| {
            Ok::<(), std::convert::Infallible>(())
        });
        match run {
            Ok(run) => run,
            Err(never) => match never {},
        }
    }

    /// [`Bnn::train_mc_scheduled`] with a fallible per-epoch observer:
    /// `on_epoch(bnn, report)` runs after every completed epoch (after the
    /// lifetime epoch counter advances), before the early stopper folds the
    /// loss. This is the seam periodic auto-checkpointing hangs off —
    /// the observer sees the exact state a kind-2 save would persist.
    ///
    /// The observer never influences training: schedules, stopping, and
    /// every parameter stay bit-identical to the unobserved run.
    ///
    /// # Errors
    ///
    /// Stops after the current epoch and returns the observer's error.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`, `samples == 0`, or shapes mismatch.
    #[allow(clippy::too_many_arguments)]
    pub fn train_mc_scheduled_with<E>(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        batch: usize,
        samples: usize,
        threads: usize,
        sched: &TrainSchedule,
        mut on_epoch: impl FnMut(&Bnn, &BnnTrainReport) -> Result<(), E>,
    ) -> Result<ScheduledRun, E> {
        let base_lr = self.config().lr();
        let mut reports = Vec::with_capacity(sched.epochs);
        let mut stopped_early = false;
        let mut final_lr = self.lr();
        let mut best = f64::INFINITY;
        let mut stale = 0usize;
        for _ in 0..sched.epochs {
            let epoch = usize::try_from(self.epochs_trained()).unwrap_or(usize::MAX);
            final_lr = sched.lr.lr_for_epoch(base_lr, epoch);
            self.set_lr(final_lr);
            let report = self.train_epoch_mc_threads(x, labels, batch, samples, threads);
            on_epoch(self, &report)?;
            let loss = report.loss;
            reports.push(report);
            if let Some(es) = sched.early_stop {
                if loss < best - es.min_delta {
                    best = loss;
                    stale = 0;
                } else {
                    stale += 1;
                    if stale >= es.patience.max(1) {
                        stopped_early = true;
                        break;
                    }
                }
            }
        }
        Ok(ScheduledRun {
            reports,
            stopped_early,
            final_lr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BnnConfig;
    use vibnn_nn::GaussianInit;

    fn toy_data(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = GaussianInit::new(seed);
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for r in 0..n {
            let a = rng.next_gaussian() as f32;
            let b = rng.next_gaussian() as f32;
            x[(r, 0)] = a;
            x[(r, 1)] = b;
            y.push(usize::from(a + b > 0.0));
        }
        (x, y)
    }

    #[test]
    fn cosine_anneals_monotonically_to_floor() {
        let s = LrSchedule::Cosine {
            total_epochs: 8,
            min_lr: 1e-4,
        };
        let mut prev = f32::INFINITY;
        for e in 0..8 {
            let lr = s.lr_for_epoch(1e-2, e);
            assert!(lr <= prev, "epoch {e}: {lr} > {prev}");
            assert!(lr >= 1e-4 - 1e-9);
            prev = lr;
        }
        assert!((s.lr_for_epoch(1e-2, 7) - 1e-4).abs() < 1e-7);
        // Past the horizon the schedule stays at the floor.
        assert_eq!(s.lr_for_epoch(1e-2, 20), s.lr_for_epoch(1e-2, 7));
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = LrSchedule::StepDecay {
            every: 3,
            gamma: 0.5,
        };
        assert_eq!(s.lr_for_epoch(0.8, 0), 0.8);
        assert_eq!(s.lr_for_epoch(0.8, 2), 0.8);
        assert_eq!(s.lr_for_epoch(0.8, 3), 0.4);
        assert_eq!(s.lr_for_epoch(0.8, 6), 0.2);
    }

    #[test]
    fn schedule_is_applied_to_the_optimizer() {
        let (x, y) = toy_data(32, 3);
        let mut bnn = Bnn::new(BnnConfig::new(&[2, 4, 2]).with_lr(0.02), 5);
        let run = bnn.train_mc_scheduled(
            &x,
            &y,
            16,
            1,
            1,
            &TrainSchedule {
                epochs: 4,
                lr: LrSchedule::StepDecay {
                    every: 2,
                    gamma: 0.1,
                },
                early_stop: None,
            },
        );
        assert_eq!(run.reports.len(), 4);
        assert!(!run.stopped_early);
        // Epoch 3 (0-based) has had one decay: 0.02 * 0.1.
        assert!((run.final_lr - 0.002).abs() < 1e-9);
        assert!((bnn.lr() - 0.002).abs() < 1e-9);
    }

    #[test]
    fn early_stop_triggers_on_stale_loss() {
        let (x, y) = toy_data(64, 7);
        // An absurd min_delta means no epoch ever "improves": training
        // stops after exactly `patience` epochs beyond the first.
        let mut bnn = Bnn::new(BnnConfig::new(&[2, 4, 2]).with_lr(0.01), 9);
        let run = bnn.train_mc_scheduled(
            &x,
            &y,
            16,
            1,
            1,
            &TrainSchedule {
                epochs: 50,
                lr: LrSchedule::Const,
                early_stop: Some(EarlyStop {
                    patience: 3,
                    min_delta: f64::INFINITY,
                }),
            },
        );
        assert!(run.stopped_early);
        assert_eq!(run.reports.len(), 3);
    }

    #[test]
    fn epoch_observer_sees_every_epoch_and_can_abort() {
        let (x, y) = toy_data(32, 5);
        let sched = TrainSchedule::constant(4);
        // The observer sees the post-epoch state and never perturbs it.
        let mut observed = Bnn::new(BnnConfig::new(&[2, 4, 2]).with_lr(0.02), 7);
        let mut epochs_seen = Vec::new();
        let run = observed
            .train_mc_scheduled_with(&x, &y, 16, 1, 1, &sched, |bnn, report| {
                epochs_seen.push((bnn.epochs_trained(), report.loss.to_bits()));
                Ok::<(), std::convert::Infallible>(())
            })
            .unwrap();
        assert_eq!(epochs_seen.len(), 4);
        assert_eq!(epochs_seen.last().unwrap().0, 4);
        let mut plain = Bnn::new(BnnConfig::new(&[2, 4, 2]).with_lr(0.02), 7);
        let plain_run = plain.train_mc_scheduled(&x, &y, 16, 1, 1, &sched);
        assert_eq!(run, plain_run, "observer perturbed training");
        // An erroring observer stops the run after the epoch it saw.
        let mut aborted = Bnn::new(BnnConfig::new(&[2, 4, 2]).with_lr(0.02), 7);
        let err = aborted.train_mc_scheduled_with(&x, &y, 16, 1, 1, &sched, |bnn, _| {
            if bnn.epochs_trained() == 2 {
                Err("stop")
            } else {
                Ok(())
            }
        });
        assert_eq!(err.unwrap_err(), "stop");
        assert_eq!(aborted.epochs_trained(), 2);
    }

    #[test]
    fn scheduled_training_is_bit_identical_across_thread_counts() {
        let (x, y) = toy_data(48, 11);
        let sched = TrainSchedule {
            epochs: 3,
            lr: LrSchedule::Cosine {
                total_epochs: 3,
                min_lr: 1e-4,
            },
            early_stop: Some(EarlyStop::patience(2)),
        };
        let mut a = Bnn::new(BnnConfig::new(&[2, 6, 2]).with_lr(0.02), 13);
        let mut b = a.clone();
        let ra = a.train_mc_scheduled(&x, &y, 16, 2, 1, &sched);
        let rb = b.train_mc_scheduled(&x, &y, 16, 2, 4, &sched);
        assert_eq!(ra, rb);
    }
}
