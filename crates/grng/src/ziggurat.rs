//! Ziggurat rejection sampler (taxonomy category 3, Marsaglia & Tsang).

use vibnn_rng::{BitSource, Xoshiro256};

use crate::{substream_seed, GaussianSource, StreamFork};

const LAYERS: usize = 128;
/// x-coordinate of the base layer for 128 layers.
const R: f64 = 3.442619855899;
const V: f64 = 9.91256303526217e-3;

/// Marsaglia–Tsang ziggurat sampler for N(0, 1) with 128 layers.
///
/// The paper's taxonomy lists rejection methods (the Ziggurat algorithm) as
/// high-quality but hardware-unfriendly; it serves here as the software
/// gold standard for speed/quality comparisons.
///
/// # Example
///
/// ```
/// use vibnn_grng::{GaussianSource, ZigguratGrng};
/// let mut g = ZigguratGrng::new(1);
/// assert!(g.next_gaussian().is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct ZigguratGrng {
    uniform: Xoshiro256,
    x: [f64; LAYERS + 1],
    y: [f64; LAYERS],
    seed: u64,
}

fn pdf_unscaled(x: f64) -> f64 {
    (-0.5 * x * x).exp()
}

impl ZigguratGrng {
    /// Creates the generator, building the layer tables.
    pub fn new(seed: u64) -> Self {
        let mut x = [0.0; LAYERS + 1];
        let mut y = [0.0; LAYERS];
        x[0] = V / pdf_unscaled(R);
        x[1] = R;
        for i in 2..LAYERS {
            let prev_y = pdf_unscaled(x[i - 1]);
            let target = prev_y + V / x[i - 1];
            x[i] = (-2.0 * target.ln()).sqrt();
        }
        x[LAYERS] = 0.0;
        for i in 0..LAYERS {
            y[i] = pdf_unscaled(x[i.max(1)]);
        }
        // y[i] is the pdf at the *outer* edge of layer i; store pdf(x[i])
        // with y[0] at pdf(R).
        for (i, slot) in y.iter_mut().enumerate() {
            *slot = pdf_unscaled(x[i + 1]);
        }
        Self {
            uniform: Xoshiro256::new(seed),
            x,
            y,
            seed,
        }
    }

    fn sample_tail(rng: &mut Xoshiro256) -> f64 {
        // Marsaglia's tail algorithm for x > R.
        loop {
            let u1 = rng.next_f64().max(f64::MIN_POSITIVE);
            let u2 = rng.next_f64().max(f64::MIN_POSITIVE);
            let x = -u1.ln() / R;
            let y = -u2.ln();
            if 2.0 * y > x * x {
                return R + x;
            }
        }
    }

    /// One draw from explicit state — shared by the scalar and block
    /// paths so they consume the identical uniform stream.
    #[inline(always)]
    fn draw(x_tab: &[f64; LAYERS + 1], y_tab: &[f64; LAYERS], rng: &mut Xoshiro256) -> f64 {
        loop {
            let bits = rng.next_u64();
            let layer = (bits & (LAYERS as u64 - 1)) as usize;
            let sign = if bits & LAYERS as u64 != 0 { 1.0 } else { -1.0 };
            let u = ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
            let x = u * x_tab[layer];
            if x < x_tab[layer + 1] {
                return sign * x;
            }
            if layer == 0 {
                return sign * Self::sample_tail(rng);
            }
            // Wedge: accept with probability proportional to pdf.
            let y0 = y_tab[layer - 1];
            let y1 = y_tab[layer];
            let v = rng.next_f64();
            if y0 + v * (y1 - y0) < pdf_unscaled(x) {
                return sign * x;
            }
        }
    }
}

impl StreamFork for ZigguratGrng {
    fn fork(&self, stream_id: u64) -> Self {
        Self::new(substream_seed(self.seed, stream_id))
    }
}

impl GaussianSource for ZigguratGrng {
    fn next_gaussian(&mut self) -> f64 {
        Self::draw(&self.x, &self.y, &mut self.uniform)
    }

    /// Writes each sample straight into the `f32` slice instead of
    /// round-tripping 256-element `f64` chunks through the trait's default
    /// (which cost ~10% block throughput versus the scalar path — the
    /// `bench_train` ε fill-rate guard watches this). The uniform state is
    /// hoisted into a local for the duration of the fill so the hot loop
    /// keeps it in registers instead of round-tripping through `&mut self`
    /// on every draw. Identical stream: one draw per slot, in order.
    fn fill_f32(&mut self, out: &mut [f32]) {
        let mut rng = self.uniform;
        for slot in out {
            *slot = Self::draw(&self.x, &self.y, &mut rng) as f32;
        }
        self.uniform = rng;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibnn_stats::{ks_test_normal, Moments};

    #[test]
    fn ziggurat_moments() {
        let mut g = ZigguratGrng::new(11);
        let m = Moments::from_slice(&g.take_vec(300_000));
        assert!(m.mean().abs() < 0.01, "mean {}", m.mean());
        assert!((m.std_dev() - 1.0).abs() < 0.01, "std {}", m.std_dev());
        assert!(m.skewness().abs() < 0.05);
        assert!(m.excess_kurtosis().abs() < 0.1);
    }

    #[test]
    fn ziggurat_passes_ks() {
        let mut g = ZigguratGrng::new(12);
        let out = ks_test_normal(&g.take_vec(50_000));
        assert!(out.passes(0.01), "p={} D={}", out.p_value, out.statistic);
    }

    #[test]
    fn tail_mass_is_correct() {
        let mut g = ZigguratGrng::new(13);
        let xs = g.take_vec(500_000);
        let beyond3 = xs.iter().filter(|&&x| x.abs() > 3.0).count() as f64;
        // P(|Z| > 3) = 0.0027.
        assert!(
            (beyond3 / 500_000.0 - 0.0027).abs() < 0.0008,
            "tail mass {}",
            beyond3 / 500_000.0
        );
    }

    #[test]
    fn fill_f32_matches_scalar_stream() {
        let mut scalar = ZigguratGrng::new(44);
        let mut block = ZigguratGrng::new(44);
        let want: Vec<f32> = (0..1000).map(|_| scalar.next_gaussian() as f32).collect();
        let mut got = vec![0.0f32; 1000];
        block.fill_f32(&mut got[..300]);
        block.fill_f32(&mut got[300..]);
        assert_eq!(got, want);
    }

    #[test]
    fn layer_table_is_monotone() {
        let g = ZigguratGrng::new(1);
        for i in 1..LAYERS {
            assert!(g.x[i] > g.x[i + 1], "x table must decrease");
        }
    }
}
