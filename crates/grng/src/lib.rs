//! Gaussian random number generators — the core contribution of VIBNN.
//!
//! The paper (Section 2.3) classifies GRNG algorithms into four families
//! and implements hardware-friendly members of two of them. This crate
//! provides all of them behind the [`GaussianSource`] trait:
//!
//! **The paper's designs**
//! - [`RlfGrng`] — the RAM-based Linear Feedback GRNG (Section 4.1):
//!   a 255-bit seed whose population count follows `B(255, ½) ≈ N(127.5,
//!   63.75)`, updated by the combined 5-tap feedback, normalized to N(0,1).
//! - [`ParallelRlfGrng`] — `m` RLF lanes sharing one indexer, with the
//!   output-multiplexer shuffling of Figure 8.
//! - [`BnnWallaceGrng`] — the BNN-oriented Wallace generator (Section 4.2):
//!   N Wallace units with small per-unit pools made to act as one large
//!   pool by the *sharing-and-shifting* write-back scheme.
//!
//! **Baselines from the paper's evaluation**
//! - [`SoftwareWallace`] — the classic software Wallace method with a
//!   configurable pool size (Table 1 rows 1–3).
//! - [`WallaceNss`] — hardware Wallace with *neither sharing and shifting
//!   nor multi-loop transforms* (Table 1 row 4, the failing baseline).
//! - [`CltGrng`] — naive CLT generator: LFSR + full-width parallel counter.
//!
//! **Reference generators (taxonomy categories 1–3)**
//! - [`CdfInversionGrng`] (category 1), [`BoxMullerGrng`] /
//!   [`PolarGrng`] (category 2), [`ZigguratGrng`] (category 3).
//!
//! # Example
//!
//! ```
//! use vibnn_grng::{GaussianSource, RlfGrng};
//! let mut g = RlfGrng::from_seed(1);
//! let eps: Vec<f64> = (0..1000).map(|_| g.next_gaussian()).collect();
//! let mean = eps.iter().sum::<f64>() / 1000.0;
//! assert!(mean.abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffered;
mod clt;
mod inversion;
mod rlf;
mod transform;
pub mod wallace;
mod ziggurat;

pub use buffered::Buffered;
pub use clt::{CltGrng, UniformSumGrng};
pub use inversion::CdfInversionGrng;
pub use rlf::{ParallelRlfGrng, RlfGrng};
pub use transform::{BoxMullerGrng, PolarGrng};
pub use wallace::{BnnWallaceGrng, SoftwareWallace, WallaceNss, WallaceUnit};
pub use ziggurat::ZigguratGrng;

/// A stream of (approximately) standard normal random numbers.
///
/// **Block generation is the primitive.** [`fill`](Self::fill) is the
/// hot-path entry point: every generator in this crate overrides it (or
/// inherits a default that amortizes dispatch over the whole slice) with a
/// kernel that emits whole blocks — RLF lanes stepped cycle-by-cycle into
/// the output, Wallace transform rounds written as whole pool slices,
/// batched Box–Muller pairs. Implementations are required to produce
/// **exactly** the same stream as repeated
/// [`next_gaussian`](Self::next_gaussian) calls, in any interleaving of
/// scalar and block reads — the block-determinism integration suite
/// enforces this for every generator. Scalar callers keep working, and
/// [`Buffered`] adapts any block kernel back to a cheap scalar interface.
pub trait GaussianSource {
    /// Returns the next sample, targeting N(0, 1).
    fn next_gaussian(&mut self) -> f64;

    /// Fills `out` with the next `out.len()` samples of the stream.
    ///
    /// The default loops [`next_gaussian`](Self::next_gaussian); because
    /// the loop is monomorphized per implementor, even the default turns
    /// one virtual dispatch per *block* into statically dispatched scalar
    /// calls when invoked through `dyn GaussianSource`.
    fn fill(&mut self, out: &mut [f64]) {
        for slot in out {
            *slot = self.next_gaussian();
        }
    }

    /// Fills an `f32` slice with the next samples (each `as f32`).
    ///
    /// Chunks through a small stack buffer so the optimized
    /// [`fill`](Self::fill) kernel is used without any heap allocation —
    /// the entry point for the BNN layers, whose ε tensors are `f32`.
    fn fill_f32(&mut self, out: &mut [f32]) {
        let mut chunk = [0.0f64; 256];
        for piece in out.chunks_mut(chunk.len()) {
            let c = &mut chunk[..piece.len()];
            self.fill(c);
            for (slot, &v) in piece.iter_mut().zip(c.iter()) {
                *slot = v as f32;
            }
        }
    }

    /// Collects `n` samples into a vector.
    fn take_vec(&mut self, n: usize) -> Vec<f64> {
        let mut v = vec![0.0; n];
        self.fill(&mut v);
        v
    }
}

impl<T: GaussianSource + ?Sized> GaussianSource for &mut T {
    fn next_gaussian(&mut self) -> f64 {
        (**self).next_gaussian()
    }

    fn fill(&mut self, out: &mut [f64]) {
        (**self).fill(out);
    }

    fn fill_f32(&mut self, out: &mut [f32]) {
        (**self).fill_f32(out);
    }
}

impl GaussianSource for Box<dyn GaussianSource> {
    fn next_gaussian(&mut self) -> f64 {
        (**self).next_gaussian()
    }

    fn fill(&mut self, out: &mut [f64]) {
        (**self).fill(out);
    }

    fn fill_f32(&mut self, out: &mut [f32]) {
        (**self).fill_f32(out);
    }
}

/// Derives the seed of substream `stream_id` from a base seed.
///
/// A SplitMix64 avalanche over `(seed, stream_id)`; used by every
/// [`StreamFork`] implementation so fork semantics are uniform across
/// generator families. For a fixed `seed` the map is a composition of
/// bijections of `stream_id` (odd-constant multiply, add, xor with a
/// constant, and the SplitMix64 finalizer — each invertible mod 2⁶⁴), so
/// `substream_seed(s, a) == substream_seed(s, b)` only when `a == b`, and
/// the result is decorrelated from `s` itself.
pub fn substream_seed(seed: u64, stream_id: u64) -> u64 {
    use vibnn_rng::{BitSource, SplitMix64};
    let mut mixer =
        SplitMix64::new(seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream_id.wrapping_add(1)));
    mixer.next_u64()
}

/// A Gaussian stream that can be split into independent substreams.
///
/// `fork(stream_id)` derives a *statistically independent, reproducible*
/// generator of the same design: the substream depends only on the parent's
/// construction parameters and `stream_id`, never on how much of the parent
/// stream has been consumed. This is the seam the parallel Monte Carlo
/// ensemble builds on — sample `s` always draws from `fork(s)`, so results
/// are bit-identical regardless of how samples are scheduled across
/// threads.
pub trait StreamFork: GaussianSource {
    /// Returns the substream with the given id.
    fn fork(&self, stream_id: u64) -> Self
    where
        Self: Sized;
}

/// Which GRNG design to instantiate — used by the accelerator configuration
/// in `vibnn-hw` and the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GrngKind {
    /// RAM-based Linear Feedback GRNG (paper Section 4.1).
    Rlf,
    /// BNN-oriented Wallace GRNG (paper Section 4.2).
    BnnWallace,
}

impl std::fmt::Display for GrngKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GrngKind::Rlf => write!(f, "RLF-GRNG"),
            GrngKind::BnnWallace => write!(f, "BNNWallace-GRNG"),
        }
    }
}

impl GrngKind {
    /// Builds a boxed generator of this kind with `lanes` parallel outputs.
    pub fn build(self, lanes: usize, seed: u64) -> Box<dyn GaussianSource> {
        match self {
            GrngKind::Rlf => Box::new(ParallelRlfGrng::new(lanes, seed)),
            GrngKind::BnnWallace => {
                Box::new(BnnWallaceGrng::new(lanes.max(1), 32, seed))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display() {
        assert_eq!(GrngKind::Rlf.to_string(), "RLF-GRNG");
        assert_eq!(GrngKind::BnnWallace.to_string(), "BNNWallace-GRNG");
    }

    #[test]
    fn kind_build_produces_samples() {
        for kind in [GrngKind::Rlf, GrngKind::BnnWallace] {
            let mut g = kind.build(8, 42);
            let xs = g.take_vec(256);
            assert_eq!(xs.len(), 256);
            assert!(xs.iter().all(|x| x.is_finite()));
        }
    }
}
