//! Gaussian random number generators — the core contribution of VIBNN.
//!
//! The paper (Section 2.3) classifies GRNG algorithms into four families
//! and implements hardware-friendly members of two of them. This crate
//! provides all of them behind the [`GaussianSource`] trait:
//!
//! **The paper's designs**
//! - [`RlfGrng`] — the RAM-based Linear Feedback GRNG (Section 4.1):
//!   a 255-bit seed whose population count follows `B(255, ½) ≈ N(127.5,
//!   63.75)`, updated by the combined 5-tap feedback, normalized to N(0,1).
//! - [`ParallelRlfGrng`] — `m` RLF lanes sharing one indexer, with the
//!   output-multiplexer shuffling of Figure 8.
//! - [`BnnWallaceGrng`] — the BNN-oriented Wallace generator (Section 4.2):
//!   N Wallace units with small per-unit pools made to act as one large
//!   pool by the *sharing-and-shifting* write-back scheme.
//!
//! **Baselines from the paper's evaluation**
//! - [`SoftwareWallace`] — the classic software Wallace method with a
//!   configurable pool size (Table 1 rows 1–3).
//! - [`WallaceNss`] — hardware Wallace with *neither sharing and shifting
//!   nor multi-loop transforms* (Table 1 row 4, the failing baseline).
//! - [`CltGrng`] — naive CLT generator: LFSR + full-width parallel counter.
//!
//! **Reference generators (taxonomy categories 1–3)**
//! - [`CdfInversionGrng`] (category 1), [`BoxMullerGrng`] /
//!   [`PolarGrng`] (category 2), [`ZigguratGrng`] (category 3).
//!
//! # Example
//!
//! ```
//! use vibnn_grng::{GaussianSource, RlfGrng};
//! let mut g = RlfGrng::from_seed(1);
//! let eps: Vec<f64> = (0..1000).map(|_| g.next_gaussian()).collect();
//! let mean = eps.iter().sum::<f64>() / 1000.0;
//! assert!(mean.abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clt;
mod inversion;
mod rlf;
mod transform;
pub mod wallace;
mod ziggurat;

pub use clt::{CltGrng, UniformSumGrng};
pub use inversion::CdfInversionGrng;
pub use rlf::{ParallelRlfGrng, RlfGrng};
pub use transform::{BoxMullerGrng, PolarGrng};
pub use wallace::{BnnWallaceGrng, SoftwareWallace, WallaceNss, WallaceUnit};
pub use ziggurat::ZigguratGrng;

/// A stream of (approximately) standard normal random numbers.
pub trait GaussianSource {
    /// Returns the next sample, targeting N(0, 1).
    fn next_gaussian(&mut self) -> f64;

    /// Fills `out` with samples.
    fn fill(&mut self, out: &mut [f64]) {
        for slot in out {
            *slot = self.next_gaussian();
        }
    }

    /// Collects `n` samples into a vector.
    fn take_vec(&mut self, n: usize) -> Vec<f64> {
        let mut v = vec![0.0; n];
        self.fill(&mut v);
        v
    }
}

impl<T: GaussianSource + ?Sized> GaussianSource for &mut T {
    fn next_gaussian(&mut self) -> f64 {
        (**self).next_gaussian()
    }
}

impl GaussianSource for Box<dyn GaussianSource> {
    fn next_gaussian(&mut self) -> f64 {
        (**self).next_gaussian()
    }
}

/// Which GRNG design to instantiate — used by the accelerator configuration
/// in `vibnn-hw` and the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GrngKind {
    /// RAM-based Linear Feedback GRNG (paper Section 4.1).
    Rlf,
    /// BNN-oriented Wallace GRNG (paper Section 4.2).
    BnnWallace,
}

impl std::fmt::Display for GrngKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GrngKind::Rlf => write!(f, "RLF-GRNG"),
            GrngKind::BnnWallace => write!(f, "BNNWallace-GRNG"),
        }
    }
}

impl GrngKind {
    /// Builds a boxed generator of this kind with `lanes` parallel outputs.
    pub fn build(self, lanes: usize, seed: u64) -> Box<dyn GaussianSource> {
        match self {
            GrngKind::Rlf => Box::new(ParallelRlfGrng::new(lanes, seed)),
            GrngKind::BnnWallace => {
                Box::new(BnnWallaceGrng::new(lanes.max(1), 32, seed))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display() {
        assert_eq!(GrngKind::Rlf.to_string(), "RLF-GRNG");
        assert_eq!(GrngKind::BnnWallace.to_string(), "BNNWallace-GRNG");
    }

    #[test]
    fn kind_build_produces_samples() {
        for kind in [GrngKind::Rlf, GrngKind::BnnWallace] {
            let mut g = kind.build(8, 42);
            let xs = g.take_vec(256);
            assert_eq!(xs.len(), 256);
            assert!(xs.iter().all(|x| x.is_finite()));
        }
    }
}
