//! CDF-inversion reference generator (taxonomy category 1).

use vibnn_rng::{BitSource, Xoshiro256};

use crate::{substream_seed, GaussianSource, StreamFork};

/// Generates Gaussians by inverting the normal CDF with the
/// Beasley–Springer–Moro rational approximation — the classic
/// inversion-method sampler the paper cites ([7, 37] in its references).
///
/// # Example
///
/// ```
/// use vibnn_grng::{CdfInversionGrng, GaussianSource};
/// let mut g = CdfInversionGrng::new(1);
/// assert!(g.next_gaussian().is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct CdfInversionGrng {
    uniform: Xoshiro256,
    seed: u64,
}

impl CdfInversionGrng {
    /// Creates the generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            uniform: Xoshiro256::new(seed),
            seed,
        }
    }
}

impl StreamFork for CdfInversionGrng {
    fn fork(&self, stream_id: u64) -> Self {
        Self::new(substream_seed(self.seed, stream_id))
    }
}

impl GaussianSource for CdfInversionGrng {
    fn next_gaussian(&mut self) -> f64 {
        // Map away from exact 0/1.
        let u = self.uniform.next_f64().clamp(1e-15, 1.0 - 1e-15);
        vibnn_stats::normal::quantile_bsm(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibnn_stats::{chi_square_gof_normal, Moments};

    #[test]
    fn inversion_moments() {
        let mut g = CdfInversionGrng::new(5);
        let m = Moments::from_slice(&g.take_vec(200_000));
        assert!(m.mean().abs() < 0.01);
        assert!((m.std_dev() - 1.0).abs() < 0.01);
    }

    #[test]
    fn inversion_passes_chi_square() {
        let mut g = CdfInversionGrng::new(6);
        let out = chi_square_gof_normal(&g.take_vec(50_000), 32);
        assert!(out.passes(0.01), "p={}", out.p_value);
    }

    #[test]
    fn symmetric_tails() {
        let mut g = CdfInversionGrng::new(7);
        let xs = g.take_vec(100_000);
        let left = xs.iter().filter(|&&x| x < -2.0).count() as f64;
        let right = xs.iter().filter(|&&x| x > 2.0).count() as f64;
        // Both tails should hold about 2.28% of mass.
        assert!((left / 100_000.0 - 0.0228).abs() < 0.004);
        assert!((right / 100_000.0 - 0.0228).abs() < 0.004);
    }
}
