//! The Wallace Unit: one 4×4 Hadamard transformation stage (Figure 9).

/// Performs the paper's equation (13):
///
/// ```text
/// t = (x1 + x2 + x3 + x4) / 2          (adder tree + 1-bit right shift)
/// x1' = t - x1;  x2' = t - x2;  x3' = x3 - t;  x4' = x4 - t
/// ```
///
/// which is multiplication by the scaled Hadamard matrix `H/2` — an
/// orthogonal map, so `Σ x'² = Σ x²` exactly (verified by property tests).
///
/// # Example
///
/// ```
/// use vibnn_grng::WallaceUnit;
/// let out = WallaceUnit::transform([1.0, 2.0, 3.0, 4.0]);
/// let before: f64 = [1.0f64, 2.0, 3.0, 4.0].iter().map(|x| x * x).sum();
/// let after: f64 = out.iter().map(|x| x * x).sum();
/// assert!((before - after).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallaceUnit;

impl WallaceUnit {
    /// Applies one Hadamard transformation to a quad.
    #[inline]
    pub fn transform(x: [f64; 4]) -> [f64; 4] {
        let t = 0.5 * (x[0] + x[1] + x[2] + x[3]);
        [t - x[0], t - x[1], x[2] - t, x[3] - t]
    }

    /// Applies the transform `loops` times (multi-loop transformation).
    #[inline]
    pub fn transform_loops(mut x: [f64; 4], loops: u32) -> [f64; 4] {
        for _ in 0..loops {
            x = Self::transform(x);
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_sq(x: &[f64; 4]) -> f64 {
        x.iter().map(|v| v * v).sum()
    }

    #[test]
    fn preserves_energy() {
        let x = [0.3, -1.2, 2.4, 0.05];
        let y = WallaceUnit::transform(x);
        assert!((sum_sq(&x) - sum_sq(&y)).abs() < 1e-12);
    }

    #[test]
    fn matches_hadamard_matrix() {
        // H from the paper: rows (-1 1 1 1; 1 -1 1 1; -1 -1 1 -1; -1 -1 -1 1),
        // the transform is H/2 with the sign conventions of equation 13.
        let x = [1.0, -2.0, 0.5, 3.0];
        let y = WallaceUnit::transform(x);
        let t = 0.5 * (x[0] + x[1] + x[2] + x[3]);
        assert_eq!(y[0], t - x[0]);
        assert_eq!(y[1], t - x[1]);
        assert_eq!(y[2], x[2] - t);
        assert_eq!(y[3], x[3] - t);
    }

    #[test]
    fn transform_is_involutive_up_to_sign_structure() {
        // (H/2)² = I for this Hadamard normalization? Verify numerically:
        // applying twice returns the original quad (H² = 4I, (H/2)² = I)
        // up to the sign conventions baked into equation 13.
        let x = [0.7, -0.1, 1.3, -2.2];
        let y = WallaceUnit::transform_loops(x, 2);
        // Energy is conserved regardless; check it first.
        assert!((sum_sq(&x) - sum_sq(&y)).abs() < 1e-12);
    }

    #[test]
    fn zero_is_fixed_point() {
        assert_eq!(WallaceUnit::transform([0.0; 4]), [0.0; 4]);
    }

    #[test]
    fn loops_compose() {
        let x = [0.9, 1.1, -0.4, 0.2];
        let a = WallaceUnit::transform_loops(x, 3);
        let b = WallaceUnit::transform(WallaceUnit::transform(WallaceUnit::transform(x)));
        assert_eq!(a, b);
    }
}
