//! Wallace-NSS: the hardware strawman with No Sharing/Shifting.

use crate::{substream_seed, GaussianSource, StreamFork, WallaceUnit};

/// Hardware Wallace with sequential addressing, in-place write-back, no
/// sharing-and-shifting, and no multi-loop transformations (the paper's
/// "Wallace-NSS" baseline, Table 1 row 4).
///
/// Because each quad of pool positions is read, transformed, and written
/// back in place, the pool decomposes into `pool_size / 4` *closed orbits*:
/// values never mix across quads. The output stream consequently fails
/// every randomness test — exactly the behaviour Figure 15 reports (0%
/// pass rate).
///
/// # Example
///
/// ```
/// use vibnn_grng::{GaussianSource, WallaceNss};
/// let mut g = WallaceNss::new(256, 1);
/// assert!(g.next_gaussian().is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct WallaceNss {
    pool: Vec<f64>,
    addr: usize,
    out_buf: [f64; 4],
    out_pos: usize,
    seed: u64,
}

impl WallaceNss {
    /// Creates the generator with a pool of `pool_size` initial normals.
    ///
    /// # Panics
    ///
    /// Panics if `pool_size < 8` or not a multiple of 4.
    pub fn new(pool_size: usize, seed: u64) -> Self {
        assert!(pool_size >= 8, "pool must hold at least two quads");
        assert!(pool_size % 4 == 0, "pool size must be a multiple of 4");
        Self {
            pool: super::initial_pool(pool_size, seed),
            addr: 0,
            out_buf: [0.0; 4],
            out_pos: 4,
            seed,
        }
    }

    /// Pool size.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// Transforms the quad at the current address in place and returns it.
    fn next_quad(pool: &mut [f64], addr: &mut usize) -> [f64; 4] {
        let a = *addr;
        let quad = [pool[a], pool[a + 1], pool[a + 2], pool[a + 3]];
        let out = WallaceUnit::transform(quad);
        pool[a..a + 4].copy_from_slice(&out);
        *addr = (a + 4) % pool.len();
        out
    }
}

impl GaussianSource for WallaceNss {
    fn next_gaussian(&mut self) -> f64 {
        if self.out_pos >= 4 {
            self.out_buf = Self::next_quad(&mut self.pool, &mut self.addr);
            self.out_pos = 0;
        }
        let v = self.out_buf[self.out_pos];
        self.out_pos += 1;
        v
    }

    fn fill(&mut self, out: &mut [f64]) {
        let Self {
            pool,
            addr,
            out_buf,
            out_pos,
            ..
        } = self;
        super::fill_from_quads(out, out_buf, out_pos, || Self::next_quad(pool, addr));
    }
}

impl StreamFork for WallaceNss {
    fn fork(&self, stream_id: u64) -> Self {
        Self::new(self.pool.len(), substream_seed(self.seed, stream_id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibnn_stats::runs_test;

    #[test]
    fn fails_runs_test() {
        // The defining property of the strawman: 0% randomness pass rate.
        let mut g = WallaceNss::new(256, 3);
        let out = runs_test(&g.take_vec(100_000));
        assert!(!out.passes(0.05), "NSS should fail, p = {}", out.p_value);
    }

    #[test]
    fn quads_are_closed_orbits() {
        // Energy of each 4-element quad is individually conserved: values
        // never leak between quads.
        let mut g = WallaceNss::new(64, 5);
        let quad_energy: Vec<f64> = g
            .pool
            .chunks(4)
            .map(|q| q.iter().map(|x| x * x).sum())
            .collect();
        let _ = g.take_vec(10_000);
        for (i, q) in g.pool.chunks(4).enumerate() {
            let e: f64 = q.iter().map(|x| x * x).sum();
            assert!(
                (e - quad_energy[i]).abs() < 1e-9,
                "quad {i} energy changed: {} -> {e}",
                quad_energy[i]
            );
        }
    }

    #[test]
    fn sequential_addressing_cycles_the_pool() {
        let mut g = WallaceNss::new(16, 7);
        let _ = g.take_vec(16); // 4 quads -> addr wraps to 0
        assert_eq!(g.addr, 0);
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn unaligned_pool_panics() {
        let _ = WallaceNss::new(10, 1);
    }
}
