//! The Wallace GRNG family (paper Section 4.2).
//!
//! Wallace's method exploits the fact that an orthogonal linear combination
//! of Gaussians is still Gaussian: a pool of pre-generated normals is
//! repeatedly transformed by a scaled 4×4 Hadamard matrix (equation 13).
//! Because `H/2` is orthogonal, the pool's sum of squares — and therefore
//! its variance — is *exactly* conserved; quality concerns are entirely
//! about correlation and pool mixing, which is what the three variants here
//! differ in:
//!
//! - [`SoftwareWallace`] — random pool addressing (needs a uniform RNG for
//!   addresses, the hardware cost the paper wants to avoid).
//! - [`WallaceNss`] — sequential addressing with in-place write-back and
//!   no sharing/shifting: the pool decomposes into closed 4-element orbits
//!   and the output stream is blatantly non-random (Table 1 row 4 /
//!   Figure 15's failing bar).
//! - [`BnnWallaceGrng`] — the paper's design: N units with small private
//!   pools, sequential addressing, and a one-number rotation of the
//!   write-back across units so all small pools behave as one large pool.

mod bnn;
mod nss;
mod software;
mod unit;

pub use bnn::BnnWallaceGrng;
pub use nss::WallaceNss;
pub use software::SoftwareWallace;
pub use unit::WallaceUnit;

use crate::{BoxMullerGrng, GaussianSource};

/// Draws an initial Wallace pool of `size` standard normals from a
/// Box–Muller reference generator (the paper samples the initial pool from
/// the standard normal distribution).
pub fn initial_pool(size: usize, seed: u64) -> Vec<f64> {
    assert!(size >= 4, "a Wallace pool needs at least one quad");
    let mut bm = BoxMullerGrng::new(seed);
    bm.take_vec(size)
}

/// Shared block-fill driver for the quad-buffered Wallace generators
/// ([`WallaceNss`], [`SoftwareWallace`]): drain the partially consumed
/// quad in `out_buf`, emit whole quads from `next_quad` straight into
/// `out`, and buffer the tail quad for the scalar path. Keeping the
/// drain/whole-block/tail bookkeeping — the part whose off-by-ones would
/// silently break the block = scalar contract — in one audited place.
pub(super) fn fill_from_quads(
    out: &mut [f64],
    out_buf: &mut [f64; 4],
    out_pos: &mut usize,
    mut next_quad: impl FnMut() -> [f64; 4],
) {
    let take = (4 - *out_pos).min(out.len());
    out[..take].copy_from_slice(&out_buf[*out_pos..*out_pos + take]);
    *out_pos += take;
    let mut rest = &mut out[take..];
    while rest.len() >= 4 {
        rest[..4].copy_from_slice(&next_quad());
        rest = &mut rest[4..];
    }
    if !rest.is_empty() {
        *out_buf = next_quad();
        let n = rest.len();
        rest.copy_from_slice(&out_buf[..n]);
        *out_pos = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_pool_is_roughly_standard() {
        let pool = initial_pool(4096, 1);
        let m = vibnn_stats::Moments::from_slice(&pool);
        assert!(m.mean().abs() < 0.05);
        assert!((m.std_dev() - 1.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "at least one quad")]
    fn tiny_pool_panics() {
        let _ = initial_pool(3, 1);
    }
}
