//! Software Wallace method with random pool addressing.

use vibnn_rng::{BitSource, SplitMix64};

use crate::{substream_seed, GaussianSource, StreamFork, WallaceUnit};

/// The classic software Wallace generator (paper Table 1 rows 1–3).
///
/// A pool of `pool_size` Gaussians is maintained; each generation step
/// chooses four distinct random positions, applies `loops` Hadamard
/// transformations, writes the results back to the same positions, and
/// emits them. Random addressing requires a uniform RNG — acceptable in
/// software, costly in hardware, which is the drawback the BNNWallace
/// design removes.
///
/// # Example
///
/// ```
/// use vibnn_grng::{GaussianSource, SoftwareWallace};
/// let mut g = SoftwareWallace::new(1024, 1, 42);
/// let xs = g.take_vec(100);
/// assert!(xs.iter().all(|x| x.is_finite()));
/// ```
#[derive(Debug, Clone)]
pub struct SoftwareWallace {
    pool: Vec<f64>,
    addr_rng: SplitMix64,
    loops: u32,
    out_buf: [f64; 4],
    out_pos: usize,
    seed: u64,
}

impl SoftwareWallace {
    /// Creates a generator with a `pool_size`-element pool initialized from
    /// the standard normal, applying `loops` transformations per quad.
    ///
    /// # Panics
    ///
    /// Panics if `pool_size < 8` or `loops == 0`.
    pub fn new(pool_size: usize, loops: u32, seed: u64) -> Self {
        assert!(pool_size >= 8, "pool must hold at least two quads");
        assert!(loops > 0, "at least one transformation loop required");
        let mut seeder = SplitMix64::new(seed);
        let pool = super::initial_pool(pool_size, seeder.next_u64());
        Self {
            pool,
            addr_rng: seeder.fork(),
            loops,
            out_buf: [0.0; 4],
            out_pos: 4,
            seed,
        }
    }

    /// Pool size.
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// Current pool contents (for stability diagnostics).
    pub fn pool(&self) -> &[f64] {
        &self.pool
    }

    fn pick_distinct_indices(pool_len: usize, addr_rng: &mut SplitMix64) -> [usize; 4] {
        let n = pool_len as u64;
        let mut idx = [0usize; 4];
        let mut filled = 0;
        while filled < 4 {
            let cand = addr_rng.next_bounded(n) as usize;
            if !idx[..filled].contains(&cand) {
                idx[filled] = cand;
                filled += 1;
            }
        }
        idx
    }

    /// Transforms one randomly addressed quad in place and returns it.
    fn next_quad(pool: &mut [f64], addr_rng: &mut SplitMix64, loops: u32) -> [f64; 4] {
        let idx = Self::pick_distinct_indices(pool.len(), addr_rng);
        let quad = [pool[idx[0]], pool[idx[1]], pool[idx[2]], pool[idx[3]]];
        let out = WallaceUnit::transform_loops(quad, loops);
        for (k, &i) in idx.iter().enumerate() {
            pool[i] = out[k];
        }
        out
    }
}

impl GaussianSource for SoftwareWallace {
    fn next_gaussian(&mut self) -> f64 {
        if self.out_pos >= 4 {
            self.out_buf = Self::next_quad(&mut self.pool, &mut self.addr_rng, self.loops);
            self.out_pos = 0;
        }
        let v = self.out_buf[self.out_pos];
        self.out_pos += 1;
        v
    }

    fn fill(&mut self, out: &mut [f64]) {
        let Self {
            pool,
            addr_rng,
            loops,
            out_buf,
            out_pos,
            ..
        } = self;
        super::fill_from_quads(out, out_buf, out_pos, || {
            Self::next_quad(pool, addr_rng, *loops)
        });
    }
}

impl StreamFork for SoftwareWallace {
    fn fork(&self, stream_id: u64) -> Self {
        Self::new(
            self.pool.len(),
            self.loops,
            substream_seed(self.seed, stream_id),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibnn_stats::{runs_test, Moments};

    #[test]
    fn pool_energy_is_conserved() {
        let mut g = SoftwareWallace::new(256, 1, 7);
        let before: f64 = g.pool().iter().map(|x| x * x).sum();
        let _ = g.take_vec(10_000);
        let after: f64 = g.pool().iter().map(|x| x * x).sum();
        assert!(
            (before - after).abs() < 1e-6 * before.abs().max(1.0),
            "energy drifted: {before} -> {after}"
        );
    }

    #[test]
    fn output_moments_follow_pool_size() {
        // Bigger pools start closer to N(0,1), so stability errors shrink
        // with pool size — the Table 1 trend.
        let err = |pool: usize| {
            let mut g = SoftwareWallace::new(pool, 1, 123);
            let m = Moments::from_slice(&g.take_vec(100_000));
            m.stability_errors().1
        };
        let e256 = err(256);
        let e4096 = err(4096);
        assert!(
            e4096 < e256 + 1e-9,
            "sigma error should shrink with pool size: 256 -> {e256}, 4096 -> {e4096}"
        );
    }

    #[test]
    fn passes_runs_test() {
        let mut g = SoftwareWallace::new(1024, 1, 9);
        let out = runs_test(&g.take_vec(100_000));
        assert!(out.passes(0.05), "p = {}", out.p_value);
    }

    #[test]
    fn deterministic() {
        let mut a = SoftwareWallace::new(256, 2, 5);
        let mut b = SoftwareWallace::new(256, 2, 5);
        assert_eq!(a.take_vec(64), b.take_vec(64));
    }

    #[test]
    #[should_panic(expected = "two quads")]
    fn tiny_pool_panics() {
        let _ = SoftwareWallace::new(4, 1, 1);
    }
}
