//! Naive CLT generator: LFSR + full-width parallel counter.
//!
//! This is the conceptually simple binomial-approximation design the paper
//! starts from in Section 4.1.1 (an n-bit LFSR whose popcount approximates
//! `N(n/2, n/4)`), before replacing it with the RAM-based RLF design. It is
//! kept as the ablation baseline: it works, but costs a huge parallel
//! counter (`n - log2(n+1)` full adders) and registers.

use vibnn_rng::{BitSource, CircularLfsr, ParallelCounter, SplitMix64};

use crate::{substream_seed, GaussianSource, StreamFork};

/// LFSR + parallel-counter CLT generator.
///
/// Each sample requires `decimation` LFSR steps; decimating reduces the
/// sample-to-sample correlation inherent in popcount outputs (the popcount
/// changes by at most the tap count per step).
///
/// # Example
///
/// ```
/// use vibnn_grng::{CltGrng, GaussianSource};
/// let mut g = CltGrng::new(255, 16, 1);
/// assert!(g.next_gaussian().is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct CltGrng {
    lfsr: CircularLfsr,
    counter: ParallelCounter,
    decimation: u32,
    mean: f64,
    std: f64,
    seed: u64,
}

impl CltGrng {
    /// Creates a CLT generator over a `width`-bit LFSR, emitting one sample
    /// every `decimation` steps.
    ///
    /// # Panics
    ///
    /// Panics if `width` has no tabulated taps, `width < 19` (equation 8:
    /// `n > 9(1-p)/p = 9` and the binomial approximation needs n > 18), or
    /// `decimation == 0`.
    pub fn new(width: usize, decimation: u32, seed: u64) -> Self {
        assert!(width > 18, "binomial approximation requires n > 18 (paper eq. 8)");
        assert!(decimation > 0, "decimation must be at least 1");
        let taps = vibnn_rng::taps::taps_for(width)
            .unwrap_or_else(|| panic!("no tabulated taps for width {width}"));
        let mut src = SplitMix64::new(seed);
        let lfsr = CircularLfsr::random(width, taps, &mut src);
        let n = width as f64;
        Self {
            lfsr,
            counter: ParallelCounter::new(width),
            decimation,
            mean: n / 2.0,
            std: (n / 4.0).sqrt(),
            seed,
        }
    }

    /// Hardware cost of the full-width parallel counter (full adders).
    pub fn counter_full_adders(&self) -> usize {
        self.counter.full_adders()
    }

    /// LFSR register count (the resource the RLF design eliminates).
    pub fn register_bits(&self) -> usize {
        self.lfsr.width()
    }
}

impl GaussianSource for CltGrng {
    fn next_gaussian(&mut self) -> f64 {
        let mut count = 0;
        for _ in 0..self.decimation {
            count = self.lfsr.step();
        }
        (f64::from(count) - self.mean) / self.std
    }
}

impl StreamFork for CltGrng {
    fn fork(&self, stream_id: u64) -> Self {
        Self::new(
            self.lfsr.width(),
            self.decimation,
            substream_seed(self.seed, stream_id),
        )
    }
}

/// Sum-of-uniforms CLT generator (the textbook variant: sum of `k` uniform
/// variates, standardized). Included for the taxonomy's completeness.
#[derive(Debug, Clone)]
pub struct UniformSumGrng {
    uniform: vibnn_rng::Xoshiro256,
    k: u32,
    seed: u64,
}

impl UniformSumGrng {
    /// Creates a sum-of-`k`-uniforms generator.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u32, seed: u64) -> Self {
        assert!(k > 0, "need at least one uniform");
        Self {
            uniform: vibnn_rng::Xoshiro256::new(seed),
            k,
            seed,
        }
    }
}

impl StreamFork for UniformSumGrng {
    fn fork(&self, stream_id: u64) -> Self {
        Self::new(self.k, substream_seed(self.seed, stream_id))
    }
}

impl GaussianSource for UniformSumGrng {
    fn next_gaussian(&mut self) -> f64 {
        let k = f64::from(self.k);
        let sum: f64 = (0..self.k).map(|_| self.uniform.next_f64()).sum();
        (sum - k / 2.0) / (k / 12.0).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibnn_stats::{autocorrelation, Moments};

    #[test]
    fn clt_moments_match_binomial() {
        let mut g = CltGrng::new(255, 8, 3);
        let m = Moments::from_slice(&g.take_vec(100_000));
        assert!(m.mean().abs() < 0.05, "mean {}", m.mean());
        assert!((m.std_dev() - 1.0).abs() < 0.05, "std {}", m.std_dev());
    }

    #[test]
    fn decimation_reduces_autocorrelation() {
        let mut fast = CltGrng::new(255, 1, 5);
        let mut slow = CltGrng::new(255, 64, 5);
        let fast_r1 = autocorrelation(&fast.take_vec(20_000), 1);
        let slow_r1 = autocorrelation(&slow.take_vec(20_000), 1);
        assert!(
            fast_r1 > slow_r1 + 0.2,
            "fast {fast_r1} should exceed slow {slow_r1}"
        );
        assert!(fast_r1 > 0.8, "undecimated popcount walks slowly: {fast_r1}");
    }

    #[test]
    fn hardware_cost_figures() {
        let g = CltGrng::new(255, 1, 1);
        // 255-input PC: 255 - 8 = 247 full adders; the RLF replaces this
        // with a 5-input PC (2 FAs).
        assert_eq!(g.counter_full_adders(), 247);
        assert_eq!(g.register_bits(), 255);
    }

    #[test]
    fn uniform_sum_moments() {
        let mut g = UniformSumGrng::new(12, 7);
        let m = Moments::from_slice(&g.take_vec(100_000));
        assert!(m.mean().abs() < 0.02);
        assert!((m.std_dev() - 1.0).abs() < 0.02);
    }

    #[test]
    fn uniform_sum_small_k_has_bounded_support() {
        let mut g = UniformSumGrng::new(2, 9);
        // Sum of 2 uniforms standardized: support is [-sqrt(6), sqrt(6)].
        let bound = 6.0f64.sqrt() + 1e-9;
        assert!(g.take_vec(10_000).iter().all(|x| x.abs() <= bound));
    }

    #[test]
    #[should_panic(expected = "n > 18")]
    fn too_narrow_width_panics() {
        let _ = CltGrng::new(16, 1, 1);
    }
}
