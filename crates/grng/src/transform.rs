//! Transformation-method reference generators (taxonomy category 2):
//! Box–Muller and the Marsaglia polar method.

use vibnn_rng::{BitSource, Xoshiro256};

use crate::GaussianSource;

/// Box–Muller transform over a Xoshiro256++ uniform stream.
///
/// Produces exact standard normals (up to floating-point error); used to
/// initialize Wallace pools and as a software-quality reference.
///
/// # Example
///
/// ```
/// use vibnn_grng::{BoxMullerGrng, GaussianSource};
/// let mut g = BoxMullerGrng::new(3);
/// let x = g.next_gaussian();
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct BoxMullerGrng {
    uniform: Xoshiro256,
    cached: Option<f64>,
}

impl BoxMullerGrng {
    /// Creates the generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            uniform: Xoshiro256::new(seed),
            cached: None,
        }
    }
}

impl GaussianSource for BoxMullerGrng {
    fn next_gaussian(&mut self) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        let u1 = self.uniform.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.uniform.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos()
    }
}

/// Marsaglia polar method (rejection-free trig-free Box–Muller variant).
#[derive(Debug, Clone)]
pub struct PolarGrng {
    uniform: Xoshiro256,
    cached: Option<f64>,
}

impl PolarGrng {
    /// Creates the generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            uniform: Xoshiro256::new(seed),
            cached: None,
        }
    }
}

impl GaussianSource for PolarGrng {
    fn next_gaussian(&mut self) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        loop {
            let u = 2.0 * self.uniform.next_f64() - 1.0;
            let v = 2.0 * self.uniform.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.cached = Some(v * factor);
                return u * factor;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibnn_stats::{ks_test_normal, Moments};

    #[test]
    fn box_muller_moments() {
        let mut g = BoxMullerGrng::new(1);
        let m = Moments::from_slice(&g.take_vec(200_000));
        assert!(m.mean().abs() < 0.01);
        assert!((m.std_dev() - 1.0).abs() < 0.01);
        assert!(m.excess_kurtosis().abs() < 0.05);
    }

    #[test]
    fn box_muller_passes_ks() {
        let mut g = BoxMullerGrng::new(2);
        let out = ks_test_normal(&g.take_vec(50_000));
        assert!(out.passes(0.01), "p={}", out.p_value);
    }

    #[test]
    fn polar_moments() {
        let mut g = PolarGrng::new(3);
        let m = Moments::from_slice(&g.take_vec(200_000));
        assert!(m.mean().abs() < 0.01);
        assert!((m.std_dev() - 1.0).abs() < 0.01);
    }

    #[test]
    fn polar_passes_ks() {
        let mut g = PolarGrng::new(4);
        let out = ks_test_normal(&g.take_vec(50_000));
        assert!(out.passes(0.01), "p={}", out.p_value);
    }

    #[test]
    fn deterministic_streams() {
        let mut a = BoxMullerGrng::new(9);
        let mut b = BoxMullerGrng::new(9);
        for _ in 0..100 {
            assert_eq!(a.next_gaussian(), b.next_gaussian());
        }
    }
}
