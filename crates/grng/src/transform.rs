//! Transformation-method reference generators (taxonomy category 2):
//! Box–Muller and the Marsaglia polar method.

use vibnn_rng::{BitSource, Xoshiro256};

use crate::{substream_seed, GaussianSource, StreamFork};

/// Box–Muller transform over a Xoshiro256++ uniform stream.
///
/// Produces exact standard normals (up to floating-point error); used to
/// initialize Wallace pools and as a software-quality reference. The block
/// kernel generates whole (cos, sin) pairs directly into the output slice,
/// replicating the scalar cache behaviour exactly.
///
/// # Example
///
/// ```
/// use vibnn_grng::{BoxMullerGrng, GaussianSource};
/// let mut g = BoxMullerGrng::new(3);
/// let x = g.next_gaussian();
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct BoxMullerGrng {
    uniform: Xoshiro256,
    cached: Option<f64>,
    seed: u64,
}

impl BoxMullerGrng {
    /// Creates the generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            uniform: Xoshiro256::new(seed),
            cached: None,
            seed,
        }
    }

    /// Draws one (cos, sin) Box–Muller pair.
    #[inline]
    fn next_pair(&mut self) -> (f64, f64) {
        let u1 = self.uniform.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.uniform.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        (r * theta.cos(), r * theta.sin())
    }
}

impl GaussianSource for BoxMullerGrng {
    fn next_gaussian(&mut self) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        let (c, s) = self.next_pair();
        self.cached = Some(s);
        c
    }

    fn fill(&mut self, out: &mut [f64]) {
        let mut out = out;
        if let Some(z) = self.cached.take() {
            let Some((first, rest)) = out.split_first_mut() else {
                // Zero-length request: put the cached value back untouched.
                self.cached = Some(z);
                return;
            };
            *first = z;
            out = rest;
        }
        let mut pairs = out.chunks_exact_mut(2);
        for pair in &mut pairs {
            let (c, s) = self.next_pair();
            pair[0] = c;
            pair[1] = s;
        }
        if let [last] = pairs.into_remainder() {
            let (c, s) = self.next_pair();
            *last = c;
            self.cached = Some(s);
        }
    }
}

impl StreamFork for BoxMullerGrng {
    fn fork(&self, stream_id: u64) -> Self {
        Self::new(substream_seed(self.seed, stream_id))
    }
}

/// Marsaglia polar method (rejection-free trig-free Box–Muller variant).
#[derive(Debug, Clone)]
pub struct PolarGrng {
    uniform: Xoshiro256,
    cached: Option<f64>,
    seed: u64,
}

impl PolarGrng {
    /// Creates the generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            uniform: Xoshiro256::new(seed),
            cached: None,
            seed,
        }
    }
}

impl StreamFork for PolarGrng {
    fn fork(&self, stream_id: u64) -> Self {
        Self::new(substream_seed(self.seed, stream_id))
    }
}

impl GaussianSource for PolarGrng {
    fn next_gaussian(&mut self) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        loop {
            let u = 2.0 * self.uniform.next_f64() - 1.0;
            let v = 2.0 * self.uniform.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.cached = Some(v * factor);
                return u * factor;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vibnn_stats::{ks_test_normal, Moments};

    #[test]
    fn box_muller_moments() {
        let mut g = BoxMullerGrng::new(1);
        let m = Moments::from_slice(&g.take_vec(200_000));
        assert!(m.mean().abs() < 0.01);
        assert!((m.std_dev() - 1.0).abs() < 0.01);
        assert!(m.excess_kurtosis().abs() < 0.05);
    }

    #[test]
    fn box_muller_passes_ks() {
        let mut g = BoxMullerGrng::new(2);
        let out = ks_test_normal(&g.take_vec(50_000));
        assert!(out.passes(0.01), "p={}", out.p_value);
    }

    #[test]
    fn polar_moments() {
        let mut g = PolarGrng::new(3);
        let m = Moments::from_slice(&g.take_vec(200_000));
        assert!(m.mean().abs() < 0.01);
        assert!((m.std_dev() - 1.0).abs() < 0.01);
    }

    #[test]
    fn polar_passes_ks() {
        let mut g = PolarGrng::new(4);
        let out = ks_test_normal(&g.take_vec(50_000));
        assert!(out.passes(0.01), "p={}", out.p_value);
    }

    #[test]
    fn deterministic_streams() {
        let mut a = BoxMullerGrng::new(9);
        let mut b = BoxMullerGrng::new(9);
        for _ in 0..100 {
            assert_eq!(a.next_gaussian(), b.next_gaussian());
        }
    }

    #[test]
    fn block_fill_matches_scalar_stream() {
        // Odd-sized fills exercise the pair cache across block boundaries.
        let mut scalar = BoxMullerGrng::new(21);
        let mut block = BoxMullerGrng::new(21);
        for n in [1usize, 2, 5, 8, 33] {
            let via_block = block.take_vec(n);
            let via_scalar: Vec<f64> = (0..n).map(|_| scalar.next_gaussian()).collect();
            assert_eq!(via_block, via_scalar, "fill({n}) diverged");
        }
        // And a scalar read after the odd fills still lines up.
        assert_eq!(block.next_gaussian(), scalar.next_gaussian());
    }

    #[test]
    fn fork_is_reproducible_and_distinct() {
        use crate::StreamFork;
        let parent = BoxMullerGrng::new(77);
        let mut a = parent.fork(3);
        let mut b = parent.fork(3);
        let mut c = parent.fork(4);
        let xs = a.take_vec(64);
        assert_eq!(xs, b.take_vec(64), "same id must reproduce");
        assert_ne!(xs, c.take_vec(64), "different ids must diverge");
        let mut p = BoxMullerGrng::new(77);
        assert_ne!(xs, p.take_vec(64), "fork must not alias the parent");
    }
}
